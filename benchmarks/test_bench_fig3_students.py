"""Figure 3: student-dataset pruning statistics (n, m, M, n' per K).

Two predicate levels; the paper observes the second level is especially
effective here ("the second stage was lot more effective due to a
tighter necessary predicate").
"""

import pytest

from repro.experiments import (
    benchmark_scale,
    format_table,
    run_pruning_table,
    shape_checks,
    student_pipeline,
)

K_VALUES = (1, 5, 10, 50, 100, 500)


@pytest.fixture(scope="module")
def pipeline():
    return student_pipeline(n_records=benchmark_scale())


def test_fig3_student_pruning(benchmark, pipeline, record_table):
    rows = benchmark.pedantic(
        lambda: run_pruning_table(pipeline, k_values=K_VALUES),
        rounds=1,
        iterations=1,
    )
    record_table(
        format_table(
            rows,
            title=(
                f"Figure 3 — student pruning ({len(pipeline.store)} records)"
            ),
        )
    )
    checks = shape_checks(rows)
    assert checks["small_k_prunes_hard"], checks
    assert checks["bound_shrinks_with_k"], checks

    # Paper-specific shape: the second level prunes far beyond the first.
    k_small = [r for r in rows if r["K"] == 1]
    assert float(k_small[-1]["n_prime_pct"]) < float(k_small[0]["n_prime_pct"])
