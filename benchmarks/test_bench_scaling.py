"""Scaling sweep: retained fraction and runtime vs corpus size.

Supports the paper's economic claim: the prunable tail grows faster
than the Top-K head, so the retained fraction falls (or holds) with
scale while the index-based pipeline stays far from quadratic.
"""

from repro.experiments import format_table, run_scaling_sweep, scaling_checks


def test_scaling_students(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: run_scaling_sweep("students", sizes=(1000, 2000, 4000, 8000)),
        rounds=1,
        iterations=1,
    )
    record_table(format_table(rows, title="Scaling — students, K=10"))
    checks = scaling_checks(rows)
    assert checks["retained_fraction_not_growing"], rows
    assert checks["subquadratic_runtime"], rows


def test_scaling_citations(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: run_scaling_sweep("citations", sizes=(1000, 2000, 4000, 8000)),
        rounds=1,
        iterations=1,
    )
    record_table(format_table(rows, title="Scaling — citations, K=10"))
    checks = scaling_checks(rows)
    assert checks["subquadratic_runtime"], rows
