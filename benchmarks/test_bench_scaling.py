"""Scaling sweep: retained fraction and runtime vs corpus size.

Supports the paper's economic claim: the prunable tail grows faster
than the Top-K head, so the retained fraction falls (or holds) with
scale while the index-based pipeline stays far from quadratic.

The default sweep tops out at 8k records so the benchmark stays
CI-sized; ``REPRO_BENCH_LARGE=1`` unlocks the 100k sweeps that the
vectorized batch hot path exists for (pre-tokenized int32 corpora plus
NumPy block verification keep the per-candidate cost flat as postings
grow).
"""

import os

import pytest

from repro.experiments import format_table, run_scaling_sweep, scaling_checks

large_scale = pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_LARGE", "") != "1",
    reason="100k sweep; enable with REPRO_BENCH_LARGE=1",
)


def test_scaling_students(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: run_scaling_sweep("students", sizes=(1000, 2000, 4000, 8000)),
        rounds=1,
        iterations=1,
    )
    record_table(format_table(rows, title="Scaling — students, K=10"))
    checks = scaling_checks(rows)
    assert checks["retained_fraction_not_growing"], rows
    assert checks["subquadratic_runtime"], rows


def test_scaling_citations(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: run_scaling_sweep("citations", sizes=(1000, 2000, 4000, 8000)),
        rounds=1,
        iterations=1,
    )
    record_table(format_table(rows, title="Scaling — citations, K=10"))
    checks = scaling_checks(rows)
    assert checks["subquadratic_runtime"], rows


@large_scale
def test_scaling_citations_100k(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: run_scaling_sweep(
            "citations", sizes=(25_000, 50_000, 100_000)
        ),
        rounds=1,
        iterations=1,
    )
    record_table(format_table(rows, title="Scaling — citations to 100k, K=10"))
    checks = scaling_checks(rows)
    assert checks["subquadratic_runtime"], rows


@large_scale
def test_scaling_students_100k(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: run_scaling_sweep(
            "students", sizes=(25_000, 50_000, 100_000)
        ),
        rounds=1,
        iterations=1,
    )
    record_table(format_table(rows, title="Scaling — students to 100k, K=10"))
    checks = scaling_checks(rows)
    assert checks["retained_fraction_not_growing"], rows
    assert checks["subquadratic_runtime"], rows
