"""Ablation benches X1-X4 (see DESIGN.md section 6).

X1 — prune-iteration depth (Section 6.2's "two-fold more pruning" claim);
X2 — CPN lower bound vs the naive sequential bound;
X3 — segmentation vs hierarchy frontiers, greedy vs spectral embedding;
X4 — rank-query extra pruning beyond the count query.
"""

import pytest

from repro.clustering.correlation import ScoreMatrix
from repro.datasets import generate_author_sample
from repro.experiments import (
    benchmark_scale,
    citation_pipeline,
    cpn_vs_naive_checks,
    format_table,
    prune_iteration_checks,
    rank_query_checks,
    run_cpn_vs_naive,
    run_cpn_vs_naive_constructed,
    run_prune_iterations_ablation,
    run_rank_query_ablation,
    run_segmentation_vs_hierarchy,
    segmentation_vs_hierarchy_checks,
    student_pipeline,
    train_scorer_for,
)
from repro.experiments.accuracy import _level_shim
from repro.predicates.library import NgramOverlapPredicate


@pytest.fixture(scope="module")
def citation():
    return citation_pipeline(
        n_records=benchmark_scale() // 2, with_scorer=False
    )


@pytest.fixture(scope="module")
def students():
    return student_pipeline(n_records=benchmark_scale() // 2)


def test_x1_prune_iterations(benchmark, students, record_table):
    rows = benchmark.pedantic(
        lambda: run_prune_iterations_ablation(students),
        rounds=1,
        iterations=1,
    )
    record_table(format_table(rows, title="X1 — prune iteration depth"))
    checks = prune_iteration_checks(rows)
    assert checks["second_pass_tightens"], rows
    assert checks["third_pass_marginal"], rows


def test_x2_cpn_vs_naive(benchmark, citation, record_table):
    rows = benchmark.pedantic(
        lambda: run_cpn_vs_naive(citation), rounds=1, iterations=1
    )
    record_table(format_table(rows, title="X2 — CPN bound vs naive bound"))
    checks = cpn_vs_naive_checks(rows)
    assert checks["m_no_later"], rows
    assert checks["bound_no_smaller"], rows
    assert checks["pruning_no_weaker"], rows


def test_x2_cpn_vs_naive_constructed(benchmark, record_table):
    rows = benchmark.pedantic(run_cpn_vs_naive_constructed, rounds=1, iterations=1)
    record_table(
        format_table(rows, title="X2 (constructed) — Figure-1 separation")
    )
    row = rows[0]
    assert int(row["m_cpn"]) == 3
    assert int(row["m_naive"]) == 5
    assert float(row["M_cpn"]) > float(row["M_naive"])


def test_x3_segmentation_vs_hierarchy(benchmark, record_table):
    dataset = generate_author_sample(n_records=500)
    canopy = NgramOverlapPredicate("name", 0.6, name="authors-canopy")
    scorer = train_scorer_for(
        dataset, "name", levels=[_level_shim(canopy)], seed=0
    )
    scores = ScoreMatrix.from_scorer(list(dataset.store), scorer, canopy)
    row = benchmark.pedantic(
        lambda: run_segmentation_vs_hierarchy(scores), rounds=1, iterations=1
    )
    record_table(format_table([row], title="X3 — segmentation vs hierarchy"))
    checks = segmentation_vs_hierarchy_checks(row)
    assert checks["leaves_dominate_frontier"], row


def test_x4_rank_query_pruning(benchmark, record_table):
    from repro.experiments import address_pipeline

    addresses = address_pipeline(n_records=benchmark_scale() // 2)
    rows = benchmark.pedantic(
        lambda: run_rank_query_ablation(addresses), rounds=1, iterations=1
    )
    record_table(format_table(rows, title="X4 — rank-query extra pruning"))
    checks = rank_query_checks(rows)
    assert checks["rank_no_bigger"], rows
