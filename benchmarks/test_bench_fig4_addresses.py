"""Figure 4: address-dataset pruning statistics (single predicate level).

The paper reports reductions to 0.55-4.05% of the starting size across
K = 1..1000 with one (S1, N1) level.
"""

import pytest

from repro.experiments import (
    address_pipeline,
    benchmark_scale,
    format_table,
    run_pruning_table,
    shape_checks,
)

K_VALUES = (1, 5, 10, 50, 100, 500)


@pytest.fixture(scope="module")
def pipeline():
    return address_pipeline(n_records=benchmark_scale())


def test_fig4_address_pruning(benchmark, pipeline, record_table):
    rows = benchmark.pedantic(
        lambda: run_pruning_table(pipeline, k_values=K_VALUES),
        rounds=1,
        iterations=1,
    )
    record_table(
        format_table(
            rows,
            title=(
                f"Figure 4 — address pruning ({len(pipeline.store)} records)"
            ),
        )
    )
    checks = shape_checks(rows)
    assert checks["small_k_prunes_hard"], checks
    assert checks["bound_shrinks_with_k"], checks
    assert checks["m_tight_at_small_k"], checks
