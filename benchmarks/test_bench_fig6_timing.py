"""Figure 6: running time vs K — None / Canopy / Canopy+Collapse / PrunedDedup.

The Cartesian "None" reference is quadratic in pure Python, so it runs
on a sub-sample (the paper likewise restricted Figure 6 to a 45k subset
because the slowest methods "took too long on the entire data").  Shape
targets: canopy cuts the Cartesian cost by orders of magnitude, the
sufficient-predicate collapse roughly halves canopy, and the K-aware
pruning pipeline wins clearly at small K.
"""

import pytest

from repro.experiments import (
    benchmark_scale,
    citation_pipeline,
    format_table,
    run_timing_comparison,
    timing_shape_checks,
)

K_VALUES = (1, 10, 100)
NONE_SAMPLE_CAP = 1200


@pytest.fixture(scope="module")
def pipeline():
    n = max(1000, benchmark_scale() // 2)
    return citation_pipeline(n_records=n, with_scorer=True)


@pytest.fixture(scope="module")
def small_pipeline():
    return citation_pipeline(n_records=NONE_SAMPLE_CAP, with_scorer=True)


def test_fig6_timing_comparison(benchmark, pipeline, record_table):
    rows = benchmark.pedantic(
        lambda: run_timing_comparison(
            pipeline, k_values=K_VALUES, include_none=False
        ),
        rounds=1,
        iterations=1,
    )
    record_table(
        format_table(
            rows,
            title=f"Figure 6 — timing vs K ({len(pipeline.store)} records)",
        )
    )
    checks = timing_shape_checks(rows)
    assert checks["pruned_beats_canopy_collapse"], checks
    assert checks["pruned_does_far_less_work"], checks
    assert checks["collapse_beats_canopy"], checks
    assert checks["collapse_does_less_work"], checks


def test_fig6_none_reference(benchmark, small_pipeline, record_table):
    rows = benchmark.pedantic(
        lambda: run_timing_comparison(
            small_pipeline,
            k_values=(10,),
            include_none=True,
            none_cap=NONE_SAMPLE_CAP,
        ),
        rounds=1,
        iterations=1,
    )
    record_table(
        format_table(
            rows,
            title=(
                "Figure 6 (reference) — Cartesian None baseline "
                f"({len(small_pipeline.store)} records)"
            ),
        )
    )
    checks = timing_shape_checks(rows)
    assert checks["canopy_beats_none"], checks
    assert checks["canopy_does_less_work_than_none"], checks
