"""Figure 6: running time vs K — None / Canopy / Canopy+Collapse / PrunedDedup.

The Cartesian "None" reference is quadratic in pure Python, so it runs
on a sub-sample (the paper likewise restricted Figure 6 to a 45k subset
because the slowest methods "took too long on the entire data").  Shape
targets: canopy cuts the Cartesian cost by orders of magnitude, the
sufficient-predicate collapse roughly halves canopy, and the K-aware
pruning pipeline wins clearly at small K.
"""

import pytest

from repro.core.collapse import collapse
from repro.core.lower_bound import estimate_lower_bound
from repro.core.prune import prune
from repro.core.records import GroupSet
from repro.core.verification import VerificationContext
from repro.experiments import (
    benchmark_scale,
    citation_pipeline,
    format_table,
    run_timing_comparison,
    timing_shape_checks,
)

K_VALUES = (1, 10, 100)
NONE_SAMPLE_CAP = 1200


@pytest.fixture(scope="module")
def pipeline():
    n = max(1000, benchmark_scale() // 2)
    return citation_pipeline(n_records=n, with_scorer=True)


@pytest.fixture(scope="module")
def small_pipeline():
    return citation_pipeline(n_records=NONE_SAMPLE_CAP, with_scorer=True)


def test_fig6_timing_comparison(benchmark, pipeline, record_table):
    rows = benchmark.pedantic(
        lambda: run_timing_comparison(
            pipeline, k_values=K_VALUES, include_none=False
        ),
        rounds=1,
        iterations=1,
    )
    record_table(
        format_table(
            rows,
            title=f"Figure 6 — timing vs K ({len(pipeline.store)} records)",
        )
    )
    checks = timing_shape_checks(rows)
    assert checks["pruned_beats_canopy_collapse"], checks
    assert checks["pruned_does_far_less_work"], checks
    assert checks["collapse_beats_canopy"], checks
    assert checks["collapse_does_less_work"], checks


def test_fig6_shared_verification_counters(pipeline, record_table):
    """The shared VerificationContext must beat the historical
    double-build (independent lower-bound and prune indexes) on
    necessary-predicate evaluations at every level, while leaving the
    surviving groups and the LevelStats m/M values bit-identical."""
    k = 10
    rows = []
    current = GroupSet.singletons(pipeline.store)
    for level in pipeline.levels:
        current = collapse(current, level.sufficient)

        legacy = VerificationContext(caching=False)
        legacy_estimate = estimate_lower_bound(
            current, level.necessary, k, context=legacy
        )
        legacy_pruned = prune(
            current, level.necessary, legacy_estimate.bound, context=legacy
        )

        shared = VerificationContext()
        estimate = estimate_lower_bound(
            current, level.necessary, k, context=shared
        )
        pruned = prune(current, level.necessary, estimate.bound, context=shared)

        # Identical m/M and identical surviving group set.
        assert estimate.m == legacy_estimate.m
        assert estimate.bound == legacy_estimate.bound
        assert pruned.kept_group_ids == legacy_pruned.kept_group_ids
        assert (
            pruned.retained.weights() == legacy_pruned.retained.weights()
        )

        # Measurably less verification work, counter-verified.
        assert (
            shared.counters.total_evaluations
            < legacy.counters.total_evaluations
        ), (shared.counters, legacy.counters)
        assert shared.counters.index_builds < legacy.counters.index_builds

        rows.append(
            {
                "level": level.name,
                "legacy evals": legacy.counters.total_evaluations,
                "shared evals": shared.counters.total_evaluations,
                "legacy builds": legacy.counters.index_builds,
                "shared builds": shared.counters.index_builds,
                "cache hits": shared.counters.cache_hits,
            }
        )
        current = pruned.retained
    record_table(
        format_table(
            rows,
            title=(
                "Figure 6 (verification sharing) — necessary-predicate "
                f"evaluations per level ({len(pipeline.store)} records, K={k})"
            ),
        )
    )


def test_fig6_none_reference(benchmark, small_pipeline, record_table):
    rows = benchmark.pedantic(
        lambda: run_timing_comparison(
            small_pipeline,
            k_values=(10,),
            include_none=True,
            none_cap=NONE_SAMPLE_CAP,
        ),
        rounds=1,
        iterations=1,
    )
    record_table(
        format_table(
            rows,
            title=(
                "Figure 6 (reference) — Cartesian None baseline "
                f"({len(small_pipeline.store)} records)"
            ),
        )
    )
    checks = timing_shape_checks(rows)
    assert checks["canopy_beats_none"], checks
    assert checks["canopy_does_less_work_than_none"], checks
