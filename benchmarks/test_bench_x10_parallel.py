"""X10: sharded parallel pipeline speedup vs. worker count (docs/performance.md).

Runs the fig2-scale citations pruning query serially and at 2 and 4
workers, recording wall-clock seconds, speedup over serial, and whether
the group partition is bit-identical to the serial baseline (it must
always be).  The >= 1.5x speedup expectation at 4 workers is asserted
by ``parallel_scaling_checks`` only on hosts that actually have >= 4
CPUs — elsewhere the row is still recorded so the table shows what the
hardware allowed.

``test_x10_vectorized_speedup`` adds the scalar-vs-vectorized
dimension: the forced-scalar serial run is the baseline, the vectorized
batch hot path at ``workers=1`` isolates the kernel win, and the
multi-worker rows stack the shared-memory shard win on top.

``test_x10_parallel_smoke`` is the reduced-scale CI guard (bench-smoke
job, ``REPRO_BENCH_SMOKE=1``): on any 2+-core host the best parallel
worker count must at least match serial — the regression it catches is
shard overhead (pickling, index rebuilds) swallowing the parallel win.
"""

import os

import pytest

from repro.experiments import (
    format_table,
    parallel_scaling_checks,
    run_parallel_speedup,
    run_vectorize_speedup,
)
from repro.experiments.parallel_scaling import SMOKE_SPEEDUP_FLOOR


def test_x10_parallel_speedup(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: run_parallel_speedup(worker_counts=(1, 2, 4)),
        rounds=1,
        iterations=1,
    )
    record_table(
        format_table(rows, title="X10 — parallel speedup (citations)")
    )
    checks = parallel_scaling_checks(rows)
    assert all(checks.values()), (checks, rows)


def test_x10_vectorized_speedup(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: run_vectorize_speedup(worker_counts=(1, 2, 4)),
        rounds=1,
        iterations=1,
    )
    record_table(
        format_table(
            rows, title="X10 — scalar vs vectorized vs sharded (citations)"
        )
    )
    assert all(row["identical"] for row in rows), rows
    assert all(row["shards_degraded"] == 0 for row in rows), rows
    # The batch kernels must not lose to the scalar path at benchmark
    # scale on any hardware; the serial-vectorized row is CPU-count
    # independent, so this binds everywhere.
    serial_vectorized = next(
        row for row in rows if row["mode"] == "vectorized" and row["workers"] == 1
    )
    assert serial_vectorized["speedup"] >= 1.0, rows


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_SMOKE", "") != "1",
    reason="bench-smoke guard; enable with REPRO_BENCH_SMOKE=1",
)
def test_x10_parallel_smoke(record_table):
    rows = run_parallel_speedup(n_records=1500, worker_counts=(1, 2, 4))
    record_table(
        format_table(rows, title="X10 smoke — parallel parity @ 1500")
    )
    assert all(row["identical"] for row in rows), rows
    assert all(row["shards_degraded"] == 0 for row in rows), rows
    if (os.cpu_count() or 1) >= 2:
        best = max(
            row["speedup"] for row in rows if row["workers"] > 1
        )
        assert best >= SMOKE_SPEEDUP_FLOOR, rows
