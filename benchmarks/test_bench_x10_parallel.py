"""X10: sharded parallel pipeline speedup vs. worker count (docs/performance.md).

Runs the fig2-scale citations pruning query serially and at 2 and 4
workers, recording wall-clock seconds, speedup over serial, and whether
the group partition is bit-identical to the serial baseline (it must
always be).  The >= 1.5x speedup expectation at 4 workers is asserted
by ``parallel_scaling_checks`` only on hosts that actually have >= 4
CPUs — elsewhere the row is still recorded so the table shows what the
hardware allowed.
"""

from repro.experiments import (
    format_table,
    parallel_scaling_checks,
    run_parallel_speedup,
)


def test_x10_parallel_speedup(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: run_parallel_speedup(worker_counts=(1, 2, 4)),
        rounds=1,
        iterations=1,
    )
    record_table(
        format_table(rows, title="X10 — parallel speedup (citations)")
    )
    checks = parallel_scaling_checks(rows)
    assert all(checks.values()), (checks, rows)
