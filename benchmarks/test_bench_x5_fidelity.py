"""X5: segmentation answers vs the exact exponential-time algorithm.

The abstract's claim — "closely matches the accuracy of an exact
exponential time algorithm" — quantified over a sweep of small planted
instances: the DP's top answer equals the exhaustive optimum's on the
vast majority of instances and its supporting score stays within a few
percent of it.
"""

from repro.experiments import fidelity_checks, format_table, run_fidelity_sweep


def test_x5_exact_fidelity(benchmark, record_table):
    row = benchmark.pedantic(
        lambda: run_fidelity_sweep(n_instances=60, n_items=7, k=2, r=3),
        rounds=1,
        iterations=1,
    )
    record_table(
        format_table([row], title="X5 — segmentation vs exact algorithm")
    )
    checks = fidelity_checks(row)
    assert checks["mostly_exact_top1"], row
    assert checks["almost_always_exact_top3"], row
    assert checks["score_close"], row
