"""Shared benchmark fixtures.

Dataset sizes default to a laptop-friendly scale; set ``REPRO_SCALE``
(records per dataset) to run closer to the paper's 150k-250k rows.
Results tables are printed to stdout (run pytest with ``-s`` to watch
live) and always appended to ``benchmarks/results.txt``.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"


@pytest.fixture(scope="session")
def record_table():
    """Print a results table and append it to benchmarks/results.txt."""

    def _record(text: str) -> None:
        print()
        print(text)
        with RESULTS_PATH.open("a") as handle:
            handle.write(text + "\n\n")

    with RESULTS_PATH.open("w") as handle:
        handle.write("Benchmark outputs (regenerated per run)\n\n")
    return _record
