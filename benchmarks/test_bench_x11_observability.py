"""X11: observability overhead on the fig6 workload (docs/observability.md).

Times the citation count query under the default NullTracer, under a
full Tracer + MetricsRegistry, and traced-plus-export, best of three
runs each.  The tracing mode must stay within 5% of the null path and
answers must be bit-identical in every mode; the export row is recorded
for reference (serialization is a one-off cost at the end of a run).
"""

from repro.experiments import (
    format_table,
    observability_overhead_checks,
    run_observability_overhead,
)


def test_x11_observability_overhead(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: run_observability_overhead(),
        rounds=1,
        iterations=1,
    )
    record_table(
        format_table(rows, title="X11 — observability overhead (citations)")
    )
    checks = observability_overhead_checks(rows)
    assert all(checks.values()), (checks, rows)
