"""Figure 7 + Table 1: segmentation accuracy against the exact LP.

Shape targets (paper): Embedding+Segmentation reaches >= 99% pairwise F1
against the LP partition on all four datasets and never loses to the
TransitiveClosure baseline.  Table 1's record/group counts are printed
alongside.

The LP grows quickly; default scale is half the paper's dataset sizes.
Set ``REPRO_FIG7_SCALE`` (a float) to run the exact Table-1 sizes
(scale 1.0) or a quicker pass.
"""

import os

import pytest

from repro.experiments import (
    accuracy_shape_checks,
    format_table,
    run_figure7,
    table1,
)

SCALE = float(os.environ.get("REPRO_FIG7_SCALE", "0.5"))


@pytest.fixture(scope="module")
def rows():
    return run_figure7(scale=SCALE)


def test_fig7_accuracy(benchmark, rows, record_table):
    # Re-run one case inside the benchmark for a representative timing;
    # the full sweep is computed once in the fixture.
    from repro.experiments import figure7_cases, run_accuracy_case

    benchmark.pedantic(
        lambda: run_accuracy_case(figure7_cases(min(SCALE, 0.2))[2]),
        rounds=1,
        iterations=1,
    )
    record_table(
        format_table(rows, title=f"Figure 7 — accuracy vs exact LP (x{SCALE})")
    )
    record_table(format_table(table1(rows), title="Table 1"))
    checks = accuracy_shape_checks(rows)
    assert checks["segmentation_high_f1"], rows
    assert checks["segmentation_ge_transitive"], rows
    assert checks["segmentation_score_ge_lp"], rows


def test_table1_group_counts(benchmark, rows):
    # Each dataset must contain real duplicate structure: fewer LP groups
    # than records, but not trivially few.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for row in rows:
        assert 0 < int(row["lp_groups"]) < int(row["records"])
