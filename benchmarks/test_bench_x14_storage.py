"""X14: columnar-store cold start vs. in-memory (docs/storage.md).

Three tiers of the same measurement
(:func:`repro.experiments.run_storage_scale` — build both store kinds,
checkpoint, cold-start each in a fresh subprocess):

* **Smoke** (``REPRO_BENCH_SMOKE=1``, CI storage job): 2k records;
  asserts only the contract shape — zero WAL replay, clean audit,
  identical restored answers — since timing at this size is noise.
* **Default** (always runs): 10k records; same contract at a size
  where restore cost is measurable but timing still too noisy to rank.
* **Large** (``REPRO_BENCH_LARGE=1``): 100k and 1M records; asserts
  the headline claim — columnar cold-start wall time *and* peak RSS
  both strictly below the in-memory store's.
"""

import os

import pytest

from repro.experiments import (
    format_table,
    run_storage_scale,
    storage_report_rows,
)


def _assert_contract(report):
    for store, stats in report["results"].items():
        assert stats["entries_replayed"] == 0, (store, stats)
        assert stats["audit_problems"] == 0, (store, stats)
        assert stats["entries"] == report["n_records"]


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_SMOKE", "") != "1",
    reason="bench-smoke guard; enable with REPRO_BENCH_SMOKE=1",
)
@pytest.mark.timeout(600)
def test_x14_smoke_cold_start_contract(record_table, tmp_path):
    report = run_storage_scale(tmp_path, 2_000, seed=14)
    record_table(
        format_table(
            storage_report_rows(report),
            title="X14 — cold start, smoke tier (2k records)",
        )
    )
    _assert_contract(report)


@pytest.mark.timeout(1200)
def test_x14_cold_start_10k(benchmark, record_table, tmp_path):
    report = benchmark.pedantic(
        lambda: run_storage_scale(tmp_path, 10_000, seed=14),
        rounds=1,
        iterations=1,
    )
    record_table(
        format_table(
            storage_report_rows(report),
            title="X14 — cold start, 10k records",
        )
    )
    _assert_contract(report)
    # Both artifacts exist and hold the full corpus; no size assertion —
    # the columnar sidecar also persists the blocking-key index (which
    # the JSON checkpoint omits and rebuilds on restore), so relative
    # size is a design trade, not a contract.
    for stats in report["results"].values():
        assert stats["checkpoint_bytes"] > 0


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_LARGE", "") != "1",
    reason="100k/1M cold starts; enable with REPRO_BENCH_LARGE=1",
)
@pytest.mark.timeout(3600)
@pytest.mark.parametrize("n_records", [100_000, 1_000_000])
def test_x14_large_columnar_beats_memory(record_table, tmp_path, n_records):
    report = run_storage_scale(tmp_path, n_records, seed=14)
    record_table(
        format_table(
            storage_report_rows(report),
            title=f"X14 — cold start, {n_records:,} records "
            "(REPRO_BENCH_LARGE run)",
        )
    )
    _assert_contract(report)
    results = report["results"]
    assert (
        results["columnar"]["cold_start_s"] < results["memory"]["cold_start_s"]
    ), (
        "columnar cold start slower than in-memory: "
        f"{results['columnar']['cold_start_s']:.3f}s vs "
        f"{results['memory']['cold_start_s']:.3f}s"
    )
    assert results["columnar"]["maxrss_kb"] < results["memory"]["maxrss_kb"], (
        "columnar cold start peaked above in-memory: "
        f"{results['columnar']['maxrss_kb']}kB vs "
        f"{results['memory']['maxrss_kb']}kB"
    )
