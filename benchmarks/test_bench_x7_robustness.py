"""X7: robustness to mention-noise level (see DESIGN.md).

Sweeps the citation generator's noise knob and checks graceful
degradation: sufficiency holds at every level, necessity degrades
slowly, the true Top-K always survives at the paper's noise level, and
pruning stays useful even at 1.5x noise.
"""

from repro.experiments import format_table, robustness_checks, run_noise_sweep


def test_x7_noise_robustness(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: run_noise_sweep(levels=(0.5, 1.0, 1.5), n_records=3000),
        rounds=1,
        iterations=1,
    )
    record_table(format_table(rows, title="X7 — noise robustness (citations)"))
    checks = robustness_checks(rows)
    assert checks["sufficiency_always_holds"], rows
    assert checks["necessity_mostly_holds"], rows
    assert checks["topk_survives_at_paper_noise"], rows
    assert checks["pruning_still_useful_when_noisy"], rows
