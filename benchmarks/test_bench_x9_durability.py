"""X9: WAL insert overhead and crash-recovery cost (docs/robustness.md).

Measures what durability costs on insert (in-memory vs WAL vs
WAL+fsync, 10k inserts over 500 entities) and what recovery costs for a
10k-entry log with and without a checkpoint bounding the replayed WAL
tail.  Every durable/recovered state is checked structurally against
the uninterrupted in-memory engine.
"""

from repro.experiments import (
    durability_checks,
    format_table,
    run_durability_overhead,
    run_recovery_cost,
)


def test_x9_durability_overhead_and_recovery(benchmark, record_table, tmp_path):
    def sweep():
        overhead = run_durability_overhead(
            n_inserts=10_000, state_root=tmp_path / "overhead"
        )
        recovery = run_recovery_cost(
            n_inserts=10_000, state_root=tmp_path / "recovery"
        )
        return overhead, recovery

    overhead_rows, recovery_rows = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    record_table(
        format_table(
            overhead_rows, title="X9 — WAL insert overhead (10k inserts)"
        )
        + "\n\n"
        + format_table(
            recovery_rows, title="X9 — recovery cost (10k-entry stream)"
        )
    )
    checks = durability_checks(overhead_rows, recovery_rows)
    assert all(checks.values()), (checks, overhead_rows, recovery_rows)
