"""Figure 2: citation-dataset pruning statistics (n, m, M, n' per K).

Regenerates the paper's Figure 2 table on the synthetic citation corpus.
Shape targets: small K retains a few percent of the records, the
retained fraction grows with K, and M is heavily skewed toward large
values at small K.
"""

import pytest

from repro.experiments import (
    benchmark_scale,
    citation_pipeline,
    format_table,
    run_pruning_table,
    shape_checks,
)

K_VALUES = (1, 5, 10, 50, 100, 500)


@pytest.fixture(scope="module")
def pipeline():
    return citation_pipeline(n_records=benchmark_scale(), with_scorer=False)


def test_fig2_citation_pruning(benchmark, pipeline, record_table):
    rows = benchmark.pedantic(
        lambda: run_pruning_table(pipeline, k_values=K_VALUES),
        rounds=1,
        iterations=1,
    )
    record_table(
        format_table(
            rows,
            title=(
                f"Figure 2 — citation pruning "
                f"({len(pipeline.store)} records)"
            ),
        )
    )
    checks = shape_checks(rows)
    assert checks["small_k_prunes_hard"], checks
    assert checks["bound_shrinks_with_k"], checks
    assert checks["m_tight_at_small_k"], checks
