"""X12: fault-plane clean-path overhead (docs/robustness.md).

Times the durable-stream workload (journal every citation record, then
answer the top-K count query) with no fault hook, with a zero-rate
FaultPlane armed, and with the plane armed plus metrics attached, best
of three runs each.  The zero-rate armed mode must stay within 5% of
the unhooked path, the plane must inject nothing, and answers must be
bit-identical in every mode — the robustness machinery is free until a
fault actually fires.
"""

from repro.experiments import (
    fault_plane_overhead_checks,
    format_table,
    run_fault_plane_overhead,
)


def test_x12_fault_plane_overhead(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: run_fault_plane_overhead(),
        rounds=1,
        iterations=1,
    )
    record_table(
        format_table(rows, title="X12 — fault-plane overhead (citations)")
    )
    checks = fault_plane_overhead_checks(rows)
    assert all(checks.values()), (checks, rows)
