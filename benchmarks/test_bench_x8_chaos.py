"""X8: answer safety under injected predicate faults (see docs/robustness.md).

Sweeps the chaos harness's predicate-exception rate on the citation
pipeline under a containment policy and checks the role-safety claims:
every injected fault is contained (the run never crashes or degrades),
the surviving groups never over-merge relative to the fault-free run,
and the true Top-K entities survive at every fault rate.
"""

from repro.experiments import chaos_checks, format_table, run_chaos_sweep


def test_x8_chaos_fault_containment(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: run_chaos_sweep(
            error_rates=(0.0, 0.1, 0.2, 0.4), n_records=800, k=5
        ),
        rounds=1,
        iterations=1,
    )
    record_table(
        format_table(rows, title="X8 — chaos fault containment (citations)")
    )
    checks = chaos_checks(rows)
    assert checks["faults_actually_fired"], rows
    assert checks["never_over_merges"], rows
    assert checks["topk_survives_all_rates"], rows
    assert checks["containment_never_degrades_run"], rows
