"""X13: always-on query service under overload and soak (docs/serving.md).

Two scenarios over :func:`repro.experiments.run_serving_load`:

* **Overload** (always runs, CI-sized): seeded mixed traffic fired in
  bursts offering 4x the admission controller's total capacity, with a
  transient-fault :class:`~repro.testing.faultplane.FaultPlane` armed
  for the middle of the run.  Asserts the full SLO contract — every
  request resolves (success / explicitly degraded / 429 / 503), sheds
  are counted not silent, queues stay bounded, and a post-drain restart
  is bit-identical to a clean sequential replay of every acknowledged
  insert.
* **Soak** (``REPRO_BENCH_LARGE=1``): a ~10k-insert streaming run with
  periodic checkpoints and interleaved queries, asserting the admission
  queue and the dead-letter FIFO stay bounded for the duration.
"""

import os

import pytest

from repro.experiments import (
    format_table,
    run_serving_load,
    serving_report_rows,
    serving_slo_checks,
)
from repro.testing.faultplane import FaultPlane


@pytest.mark.timeout(600)
def test_x13_overload_with_faults(benchmark, record_table, tmp_path):
    plane = FaultPlane(seed=11, wal_append_rate=0.05, wal_fsync_rate=0.02)
    report = benchmark.pedantic(
        lambda: run_serving_load(
            tmp_path / "overload",
            n_seed_records=80,
            n_requests=160,
            overload_factor=4,
            seed=3,
            fault_plane=plane,
        ),
        rounds=1,
        iterations=1,
    )
    record_table(
        format_table(
            serving_report_rows(report),
            title="X13 — serving under 4x overload (faults armed)",
        )
    )
    checks = serving_slo_checks(report)
    assert all(checks.values()), (checks, report["by_status"])
    assert report["faults_injected"] > 0, "fault plane never fired"


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_LARGE", "") != "1",
    reason="10k-insert soak; enable with REPRO_BENCH_LARGE=1",
)
@pytest.mark.timeout(3600)
def test_x13_soak_bounded_queues(benchmark, record_table, tmp_path):
    report = benchmark.pedantic(
        lambda: run_serving_load(
            tmp_path / "soak",
            n_seed_records=500,
            n_requests=12_500,
            insert_fraction=0.8,
            overload_factor=1,
            seed=5,
            max_pending_queries=8,
            max_pending_inserts=256,
            checkpoint_every=1_000,
        ),
        rounds=1,
        iterations=1,
    )
    record_table(
        format_table(
            serving_report_rows(report),
            title="X13 — 10k-insert soak (periodic checkpoints)",
        )
    )
    # The soak's contract is boundedness and durability, not shedding
    # (offered load is deliberately near capacity, not a 4x storm).
    assert report["n_resolved"] == report["n_requests"]
    assert set(report["by_status"]) <= {200, 429, 503}
    assert report["acked_inserts"] >= 9_000
    assert report["peak_pending"]["insert"] <= 256
    assert report["peak_pending"]["query"] <= 8
    assert report["dead_letters"] <= 1000, "dead-letter FIFO unbounded"
    assert report["service_stats"]["checkpoints_written"] >= 5
    assert report["fingerprint_restored"] == report["fingerprint_replay"]
