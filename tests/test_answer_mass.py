"""Tests for the Gibbs log-mass of Top-K answers (sum over segmentations)."""

import itertools
import math

import numpy as np
import pytest

from repro.clustering.correlation import ScoreMatrix, group_score
from repro.embedding.greedy import LinearEmbedding
from repro.embedding.segmentation import (
    Segmentation,
    answer_log_mass,
    top_r_segmentations,
)


def random_matrix(n: int, seed: int, scale: float = 1.0) -> ScoreMatrix:
    rng = np.random.default_rng(seed)
    m = ScoreMatrix(n)
    for i in range(n):
        for j in range(i + 1, n):
            m.set(i, j, float(rng.normal()) * scale)
    return m


def identity_embedding(n: int) -> LinearEmbedding:
    return LinearEmbedding(order=list(range(n)), breaks={0})


def brute_force_log_mass(
    scores: ScoreMatrix,
    weights: list[float],
    segmentation: Segmentation,
    n: int,
) -> float:
    """Enumerate all segmentations sharing the given big segments with
    every other part's weight <= threshold; logsumexp their scores."""
    big = [
        seg
        for seg, flag in zip(segmentation.segments, segmentation.big_flags)
        if flag
    ]
    threshold = segmentation.threshold
    masses = []
    for r in range(n):
        for cuts in itertools.combinations(range(1, n), r):
            bounds = [0, *cuts, n]
            segments = [
                (bounds[i], bounds[i + 1] - 1) for i in range(len(bounds) - 1)
            ]
            these_big = [
                seg
                for seg in segments
                if sum(weights[p] for p in range(seg[0], seg[1] + 1))
                > threshold
            ]
            if these_big != big:
                continue
            score = sum(
                group_score(list(range(s, e + 1)), scores)
                for s, e in segments
            )
            masses.append(score)
    if not masses:
        return float("-inf")
    shift = max(masses)
    return shift + math.log(sum(math.exp(s - shift) for s in masses))


class TestAnswerLogMass:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_brute_force(self, seed):
        n = 6
        scores = random_matrix(n, seed, scale=0.5)
        weights = [1.0] * n
        embedding = identity_embedding(n)
        segmentations = top_r_segmentations(
            scores, embedding, weights, k=1, r=3, max_span=n,
            max_thresholds=100,
        )
        for segmentation in segmentations:
            got = answer_log_mass(
                scores, embedding, weights, segmentation, max_span=n
            )
            expected = brute_force_log_mass(scores, weights, segmentation, n)
            assert got == pytest.approx(expected, rel=1e-9), (
                seed,
                segmentation,
            )

    def test_mass_at_least_best_score(self):
        # Summing over supporters can only add mass on top of the best.
        n = 5
        scores = random_matrix(n, 11, scale=0.5)
        weights = [1.0] * n
        embedding = identity_embedding(n)
        segmentation = top_r_segmentations(
            scores, embedding, weights, k=1, r=1, max_span=n
        )[0]
        mass = answer_log_mass(scores, embedding, weights, segmentation, n)
        assert mass >= segmentation.score - 1e-9

    def test_temperature_scales(self):
        n = 5
        scores = random_matrix(n, 3)
        weights = [1.0] * n
        embedding = identity_embedding(n)
        segmentation = top_r_segmentations(
            scores, embedding, weights, k=1, r=1, max_span=n
        )[0]
        hot = answer_log_mass(
            scores, embedding, weights, segmentation, n, temperature=10.0
        )
        cold = answer_log_mass(
            scores, embedding, weights, segmentation, n, temperature=1.0
        )
        assert abs(hot) < abs(cold) or hot == pytest.approx(cold)

    def test_invalid_temperature(self):
        n = 3
        scores = random_matrix(n, 0)
        embedding = identity_embedding(n)
        segmentation = top_r_segmentations(
            scores, embedding, [1.0] * n, k=1, r=1, max_span=n
        )[0]
        with pytest.raises(ValueError):
            answer_log_mass(
                scores, embedding, [1.0] * n, segmentation, n, temperature=0.0
            )

    def test_mass_ranking_prefers_well_supported_answer(self):
        # Two clusters; the {0,1,2} answer has many consistent small
        # arrangements of {3,4}, giving it more mass than exotic splits.
        m = ScoreMatrix(5)
        for i, j in [(0, 1), (0, 2), (1, 2)]:
            m.set(i, j, 2.0)
        m.set(3, 4, 0.1)  # genuinely uncertain pair
        for i in (0, 1, 2):
            for j in (3, 4):
                m.set(i, j, -1.0)
        embedding = identity_embedding(5)
        weights = [1.0] * 5
        segmentations = top_r_segmentations(
            m, embedding, weights, k=1, r=5, max_span=5
        )
        masses = {
            seg.segments: answer_log_mass(m, embedding, weights, seg, 5)
            for seg in segmentations
        }
        best_by_mass = max(masses.items(), key=lambda kv: kv[1])
        assert (0, 2) in best_by_mass[0]


class TestMassRanking:
    def test_rank_by_mass_option(self):
        from repro.embedding.segmentation import top_k_answers

        m = random_matrix(6, 5, scale=0.7)
        embedding = identity_embedding(6)
        weights = [1.0] * 6
        by_score = top_k_answers(
            m, embedding, weights, k=1, r=3, max_span=6, rank_by="score"
        )
        by_mass = top_k_answers(
            m, embedding, weights, k=1, r=3, max_span=6, rank_by="mass"
        )
        assert all(a.log_mass is None for a in by_score)
        assert all(a.log_mass is not None for a in by_mass)
        masses = [a.log_mass for a in by_mass]
        assert masses == sorted(masses, reverse=True)
        # Mass always covers at least the best supporting score.
        for answer in by_mass:
            assert answer.log_mass >= answer.score - 1e-9

    def test_invalid_rank_by(self):
        from repro.embedding.segmentation import top_k_answers

        m = random_matrix(3, 0)
        with pytest.raises(ValueError):
            top_k_answers(
                m, identity_embedding(3), [1.0] * 3, k=1, r=1, rank_by="bogus"
            )


class TestAnswerMassWithBreaks:
    def test_breaks_respected_in_gap_mass(self):
        # Two components with a break: the gap DP must not fuse across it.
        m = ScoreMatrix(4)
        m.set(0, 1, 2.0)
        m.set(2, 3, 2.0)
        embedding = LinearEmbedding(order=[0, 1, 2, 3], breaks={0, 2})
        segmentations = top_r_segmentations(
            m, embedding, [1.0] * 4, k=1, r=2, max_span=4
        )
        for segmentation in segmentations:
            mass = answer_log_mass(m, embedding, [1.0] * 4, segmentation, 4)
            assert mass >= segmentation.score - 1e-9
