"""End-to-end integration tests across all three dataset families.

These exercise the full stack — generation, predicates, pruning, final
scoring, answering — and check the answers against gold labels.
"""

import pytest

from repro.core.pruned_dedup import pruned_dedup
from repro.core.topk import topk_count_query
from repro.experiments.harness import (
    address_pipeline,
    citation_pipeline,
    student_pipeline,
)


@pytest.fixture(scope="module")
def citation():
    return citation_pipeline(n_records=2500, seed=13, with_scorer=True)


@pytest.fixture(scope="module")
def students():
    return student_pipeline(n_records=2500, seed=13)


@pytest.fixture(scope="module")
def addresses():
    return address_pipeline(n_records=2500, seed=13)


def gold_entity_of_answer(dataset, entity_group):
    """Dominant gold entity among an answer group's records."""
    from collections import Counter

    counts = Counter(dataset.labels[i] for i in entity_group.record_ids)
    return counts.most_common(1)[0][0]


class TestCitationEndToEnd:
    def test_top3_matches_gold(self, citation):
        result = topk_count_query(
            citation.store,
            3,
            citation.levels,
            citation.scorer,
            label_field="author",
        )
        got_entities = [
            gold_entity_of_answer(citation.dataset, e)
            for e in result.best.entities
        ]
        gold = [entity for entity, _ in citation.dataset.true_topk(3)]
        assert got_entities == gold

    def test_answer_weights_close_to_gold(self, citation):
        result = topk_count_query(
            citation.store,
            3,
            citation.levels,
            citation.scorer,
            label_field="author",
        )
        gold = dict(citation.dataset.true_topk(3))
        for entity_group in result.best.entities:
            gold_entity = gold_entity_of_answer(citation.dataset, entity_group)
            true_weight = gold[gold_entity]
            # The pipeline may miss a few hard variants, never invent mass
            # beyond cross-entity merges (which purity tests exclude).
            assert entity_group.weight <= true_weight + 1e-9
            assert entity_group.weight >= 0.85 * true_weight

    def test_answer_groups_pure(self, citation):
        from collections import Counter

        result = topk_count_query(
            citation.store,
            5,
            citation.levels,
            citation.scorer,
            label_field="author",
        )
        for entity_group in result.best.entities:
            counts = Counter(
                citation.dataset.labels[i] for i in entity_group.record_ids
            )
            dominant = counts.most_common(1)[0][1]
            assert dominant / len(entity_group.record_ids) >= 0.95


class TestPruningSafetyAcrossFamilies:
    """The retained set must always contain every true Top-K entity."""

    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_students_gold_topk_survives(self, students, k):
        result = pruned_dedup(students.store, k, students.levels)
        retained_entities = {
            students.dataset.labels[record_id]
            for group in result.groups
            for record_id in group.member_ids
        }
        for entity, _ in students.dataset.true_topk(k):
            assert entity in retained_entities, f"K={k} lost entity {entity}"

    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_addresses_gold_topk_survives(self, addresses, k):
        result = pruned_dedup(addresses.store, k, addresses.levels)
        retained_entities = {
            addresses.dataset.labels[record_id]
            for group in result.groups
            for record_id in group.member_ids
        }
        for entity, _ in addresses.dataset.true_topk(k):
            assert entity in retained_entities, f"K={k} lost entity {entity}"

    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_citations_gold_topk_survives(self, citation, k):
        result = pruned_dedup(citation.store, k, citation.levels)
        retained_entities = {
            citation.dataset.labels[record_id]
            for group in result.groups
            for record_id in group.member_ids
        }
        for entity, _ in citation.dataset.true_topk(k):
            assert entity in retained_entities, f"K={k} lost entity {entity}"


class TestDeterminism:
    def test_pruning_deterministic(self, students):
        a = pruned_dedup(students.store, 10, students.levels)
        b = pruned_dedup(students.store, 10, students.levels)
        assert a.groups.weights() == b.groups.weights()

        def comparable(stats):
            # Everything except wall-clock noise must be bit-identical;
            # the work counters are deterministic, stage timings are not.
            rows = []
            for s in stats:
                row = {k: v for k, v in s.__dict__.items() if k != "counters"}
                counts = s.counters.as_dict()
                counts.pop("stage_seconds")
                row["work"] = counts
                rows.append(row)
            return rows

        assert comparable(a.stats) == comparable(b.stats)

    def test_query_deterministic(self, citation):
        first = topk_count_query(
            citation.store, 3, citation.levels, citation.scorer, r=2
        )
        second = topk_count_query(
            citation.store, 3, citation.levels, citation.scorer, r=2
        )
        assert [a.score for a in first.answers] == [
            a.score for a in second.answers
        ]
        assert [
            [e.record_ids for e in a.entities] for a in first.answers
        ] == [[e.record_ids for e in a.entities] for a in second.answers]
