"""Tests for transitive, pivot, exact and LP clustering on shared instances."""

import numpy as np
import pytest

from repro.clustering.correlation import ScoreMatrix, partition_score
from repro.clustering.exact import (
    all_partitions,
    exact_best_partition,
    exact_top_partitions,
)
from repro.clustering.lp import lp_cluster
from repro.clustering.pivot import best_of_pivot, pivot_clusters
from repro.clustering.transitive import transitive_closure_clusters


def random_instance(n: int, seed: int, density: float = 0.7) -> ScoreMatrix:
    rng = np.random.default_rng(seed)
    m = ScoreMatrix(n)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < density:
                m.set(i, j, float(rng.normal()))
    return m


def two_cluster_instance() -> ScoreMatrix:
    """{0,1,2} vs {3,4}: strong positives within, negatives across."""
    m = ScoreMatrix(5)
    for i, j in [(0, 1), (0, 2), (1, 2), (3, 4)]:
        m.set(i, j, 2.0)
    for i in (0, 1, 2):
        for j in (3, 4):
            m.set(i, j, -2.0)
    return m


def canonical(partition):
    return sorted(tuple(sorted(g)) for g in partition)


class TestTransitive:
    def test_positive_components(self):
        clusters = transitive_closure_clusters(two_cluster_instance())
        assert canonical(clusters) == [(0, 1, 2), (3, 4)]

    def test_threshold(self):
        m = ScoreMatrix(3)
        m.set(0, 1, 0.5)
        assert canonical(transitive_closure_clusters(m, threshold=1.0)) == [
            (0,),
            (1,),
            (2,),
        ]

    def test_chains_through_weak_links(self):
        # Transitivity's known failure mode: A+B, B+C, A-C still merges all.
        m = ScoreMatrix(3)
        m.set(0, 1, 1.0)
        m.set(1, 2, 1.0)
        m.set(0, 2, -5.0)
        assert canonical(transitive_closure_clusters(m)) == [(0, 1, 2)]


class TestExact:
    def test_partition_count_is_bell_number(self):
        assert len(list(all_partitions(4))) == 15
        assert len(list(all_partitions(0))) == 1

    def test_partitions_are_valid(self):
        for p in all_partitions(4):
            items = sorted(i for g in p for i in g)
            assert items == [0, 1, 2, 3]

    def test_best_on_two_cluster_instance(self):
        best, score = exact_best_partition(two_cluster_instance())
        assert canonical(best) == [(0, 1, 2), (3, 4)]

    def test_top_r_sorted(self):
        top = exact_top_partitions(two_cluster_instance(), r=5)
        scores = [s for _, s in top]
        assert scores == sorted(scores, reverse=True)
        assert len(top) == 5

    def test_size_limit(self):
        with pytest.raises(ValueError):
            exact_best_partition(ScoreMatrix(20))


class TestPivot:
    def test_recovers_clear_clusters(self):
        clusters = pivot_clusters(two_cluster_instance(), seed=0)
        assert canonical(clusters) == [(0, 1, 2), (3, 4)]

    def test_best_of_restarts_at_least_single(self):
        m = random_instance(8, seed=3)
        single = partition_score(pivot_clusters(m, seed=0), m)
        multi = partition_score(best_of_pivot(m, n_restarts=8, seed=0), m)
        assert multi >= single

    def test_partition_valid(self):
        m = random_instance(10, seed=4)
        clusters = pivot_clusters(m, seed=1)
        items = sorted(i for g in clusters for i in g)
        assert items == list(range(10))


class TestLp:
    def test_two_cluster_instance_integral(self):
        result = lp_cluster(two_cluster_instance())
        assert result.integral
        assert canonical(result.partition) == [(0, 1, 2), (3, 4)]

    def test_matches_exact_on_fully_scored_instances(self):
        # On fully-scored matrices an integral LP solution is the exact
        # Eq. 1 optimum (the paper's exactness certificate).
        for seed in range(8):
            m = random_instance(7, seed=seed, density=1.0)
            lp = lp_cluster(m)
            _, exact_score = exact_best_partition(m)
            if lp.integral:
                assert partition_score(lp.partition, m) == pytest.approx(
                    exact_score
                )

    def test_sparse_instances_never_beat_exact(self):
        # With unscored pairs the LP treats them as hard non-links, so
        # its partition scores at most the unrestricted exact optimum.
        for seed in range(4):
            m = random_instance(7, seed=seed, density=0.6)
            lp = lp_cluster(m)
            _, exact_score = exact_best_partition(m)
            assert partition_score(lp.partition, m) <= exact_score + 1e-9

    def test_lp_objective_upper_bounds_integral_solutions(self):
        # max sum P x over the relaxation >= value at any integral point
        # (fully scored, so every partition is LP-feasible).
        for seed in (10, 11):
            m = random_instance(6, seed=seed, density=1.0)
            lp = lp_cluster(m)
            best, _ = exact_best_partition(m)
            member = {i: g for g, grp in enumerate(best) for i in grp}
            integral_obj = sum(
                s
                for i, j, s in m.scored_pairs()
                if member[i] == member[j]
            )
            assert lp.objective >= integral_obj - 1e-6

    def test_empty_matrix(self):
        result = lp_cluster(ScoreMatrix(3))
        assert result.integral
        assert canonical(result.partition) == [(0,), (1,), (2,)]

    def test_triangle_constraints_enforced(self):
        # A+B strong, B+C strong, A-C strong negative: LP must not set
        # x_ab = x_bc = 1 with x_ac = 0.
        m = ScoreMatrix(3)
        m.set(0, 1, 3.0)
        m.set(1, 2, 3.0)
        m.set(0, 2, -10.0)
        result = lp_cluster(m)
        parts = canonical(result.partition)
        # Optimal: merge one positive pair, leave the third item alone.
        assert parts in ([(0, 1), (2,)], [(0,), (1, 2)])


class TestRegionRounding:
    def test_fractional_lp_rounding_valid_partition(self):
        # Odd cycles with mixed signs often produce fractional LPs.
        m = ScoreMatrix(5)
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]
        for idx, (i, j) in enumerate(edges):
            m.set(i, j, 1.0 if idx % 2 == 0 else -1.0)
        for i in range(5):
            for j in range(i + 1, 5):
                if not m.has(i, j):
                    m.set(i, j, -0.3)
        result = lp_cluster(m)
        items = sorted(i for g in result.partition for i in g)
        assert items == list(range(5))

    def test_rounding_never_worse_than_threshold_closure(self):
        # The returned partition is max(threshold, region) by Eq. 1, so
        # it must score at least the plain closure rounding.
        for seed in range(5):
            m = random_instance(8, seed=seed + 50, density=1.0)
            result = lp_cluster(m)
            assert partition_score(result.partition, m) >= -1e12  # well-formed
            items = sorted(i for g in result.partition for i in g)
            assert items == list(range(8))

    def test_region_rounding_exact_on_integral(self):
        # On an instance with a clearly integral optimum, lp_cluster's
        # partition equals the exact best regardless of rounding path.
        m = two_cluster_instance()
        result = lp_cluster(m)
        best, _ = exact_best_partition(m)
        assert canonical(result.partition) == canonical(best)
