"""Unit tests for repro.observability: tracer, metrics, exporters."""

import io
import json

import pytest

from repro.observability import (
    LATENCY_BUCKETS,
    NULL_METRICS,
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    NullTracer,
    Tracer,
    prometheus_text,
    render_explain,
    replay_counters,
    trace_lines,
    trace_to_jsonl,
)


class FakeCounters:
    """Duck-typed counter object: snapshot()/delta() over one integer."""

    def __init__(self):
        self.total = 0

    def snapshot(self):
        return self.total

    def delta(self, before):
        return FakeDelta(self.total - before)


class FakeDelta:
    def __init__(self, work):
        self.work = work

    def as_dict(self):
        return {"work": self.work, "stage_seconds": {}}


class FakeClock:
    """Deterministic clock advancing 1.0 per read."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


class TestTracer:
    def test_nested_spans_build_a_tree(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("query", kind="topk") as query:
            with tracer.span("level", level="l1"):
                with tracer.span("prune"):
                    pass
            with tracer.span("score"):
                pass
        assert [root.name for root in tracer.roots] == ["query"]
        assert [child.name for child in query.children] == ["level", "score"]
        assert query.children[0].children[0].name == "prune"
        assert query.attributes == {"kind": "topk"}
        assert tracer.current() is None

    def test_span_counters_delta(self):
        counters = FakeCounters()
        tracer = Tracer(clock=FakeClock())
        with tracer.span("work", counters=counters):
            counters.total += 7
        assert tracer.roots[0].counters_delta.work == 7

    def test_wall_seconds_from_injected_clock(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.roots[0]
        # clock reads: outer start, inner start, inner end, outer end
        assert outer.children[0].wall_seconds == 1.0
        assert outer.wall_seconds == 3.0

    def test_span_closed_on_exception(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("query"):
                raise RuntimeError("boom")
        assert tracer.current() is None
        assert tracer.roots[0].wall_seconds > 0

    def test_record_span_attaches_finished_child(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("stage") as stage:
            shard = tracer.record_span(
                "shard", counters_delta=FakeDelta(3), transient=True, shard=0
            )
        assert stage.children == [shard]
        assert shard.wall_seconds == 0.0
        assert shard.transient
        assert shard.counters_delta.work == 3

    def test_events_attach_to_current_span_or_orphan(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("query"):
            tracer.event("degraded", reason="deadline")
        tracer.event("stray", x=1)
        assert tracer.roots[0].events[0].name == "degraded"
        assert tracer.roots[0].events[0].attributes == {"reason": "deadline"}
        assert [e.name for e in tracer.orphan_events] == ["stray"]

    def test_clear_raises_mid_trace(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("query"):
            with pytest.raises(RuntimeError, match="cannot clear"):
                tracer.clear()
        tracer.clear()
        assert tracer.roots == []


class TestNullTracer:
    def test_null_tracer_is_inert_and_allocation_free(self):
        tracer = NullTracer()
        first = tracer.span("query", k=3)
        second = tracer.span("level")
        assert first is second  # shared prebuilt context manager
        with first as span:
            span.set_attribute("k", 3)
            span.set_attributes(a=1)
            span.add_event("x")
        assert tracer.roots == []
        assert tracer.orphan_events == []
        assert tracer.record_span("shard") is span
        tracer.event("anything")
        assert tracer.current() is None
        assert NULL_TRACER.enabled is False


class TestMetricsInstruments:
    def test_counter_monotone(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_inc(self):
        gauge = Gauge()
        gauge.set(4.0)
        gauge.inc(0.5)
        assert gauge.value == 4.5

    def test_histogram_buckets(self):
        hist = Histogram(buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        # inclusive upper bounds: 0.5 and 1.0 land in the first bucket
        assert hist.bucket_counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(106.5)
        assert hist.mean == pytest.approx(106.5 / 4)
        as_dict = hist.as_dict()
        assert as_dict["buckets"]["+Inf"] == 1

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))


class TestMetricsRegistry:
    def test_same_key_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_queries_total", kind="topk")
        b = registry.counter("repro_queries_total", kind="topk")
        c = registry.counter("repro_queries_total", kind="rank")
        assert a is b
        assert a is not c

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")

    def test_series_sorted_and_value_accessor(self):
        registry = MetricsRegistry()
        registry.counter("b_total").inc(2)
        registry.counter("a_total", stage="prune").inc(5)
        names = [name for name, _, _ in registry.series()]
        assert names == ["a_total", "b_total"]
        assert registry.value("a_total", stage="prune") == 5
        assert registry.value("a_total") == 0.0  # unlabelled series absent
        assert registry.value("missing") == 0.0

    def test_as_dict_carries_labels_and_kind(self):
        registry = MetricsRegistry()
        registry.describe("a_total", "things counted")
        registry.counter("a_total", stage="prune").inc()
        snapshot = registry.as_dict()
        (entry,) = snapshot["a_total"]
        assert entry["kind"] == "counter"
        assert entry["labels"] == {"stage": "prune"}
        assert entry["value"] == 1.0
        assert registry.help_text("a_total") == "things counted"

    def test_null_metrics_inert(self):
        null = NullMetrics()
        null.counter("x", a="b").inc(5)
        null.gauge("y").set(3)
        null.histogram("z", buckets=LATENCY_BUCKETS).observe(1.0)
        null.describe("x", "help")
        assert null.series() == []
        assert null.as_dict() == {}
        assert null.value("x", a="b") == 0.0
        assert NULL_METRICS.enabled is False


def sample_tracer() -> Tracer:
    counters = FakeCounters()
    tracer = Tracer(clock=FakeClock())
    with tracer.span("query", counters=counters, kind="topk", k=3):
        with tracer.span("level", counters=counters, level="l1"):
            counters.total += 4
            tracer.record_span(
                "shard",
                counters_delta=FakeDelta(2),
                transient=True,
                shard=0,
            )
        tracer.event("degraded", reason="deadline")
    return tracer


class TestTraceExport:
    def test_full_export_roundtrip(self):
        tracer = sample_tracer()
        out = io.StringIO()
        n = trace_to_jsonl(tracer, out, mode="full")
        lines = out.getvalue().splitlines()
        assert n == len(lines) == 3
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["query", "level", "shard"]
        assert records[0]["parent"] is None
        assert records[1]["parent"] == records[0]["id"]
        assert records[2]["parent"] == records[1]["id"]
        assert records[0]["counters"] == {"work": 4, "stage_seconds": {}}
        assert records[0]["events"] == [
            {"name": "degraded", "attributes": {"reason": "deadline"}}
        ]
        assert records[2]["transient"] is True

    def test_deterministic_export_drops_transients_and_timings(self):
        tracer = sample_tracer()
        records = [
            json.loads(line)
            for line in trace_lines(tracer, mode="deterministic")
        ]
        assert [r["name"] for r in records] == ["query", "level"]
        for record in records:
            assert set(record) == {"id", "parent", "name", "attributes"}

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown trace export mode"):
            list(trace_lines(sample_tracer(), mode="pretty"))

    def test_exports_are_stable_strings(self):
        tracer = sample_tracer()
        assert list(trace_lines(tracer, mode="full")) == list(
            trace_lines(tracer, mode="full")
        )

    def test_attribute_serialization_fallbacks(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span(
            "query", tags={"b", "a"}, pair=(1, 2), obj=FakeDelta(1)
        ):
            pass
        (line,) = trace_lines(tracer, mode="full")
        attributes = json.loads(line)["attributes"]
        assert attributes["tags"] == ["a", "b"]
        assert attributes["pair"] == [1, 2]
        assert attributes["obj"] == {"work": 1, "stage_seconds": {}}

    def test_replay_counters_sums_roots_only(self):
        tracer = sample_tracer()
        lines = list(trace_lines(tracer, mode="full"))
        # Root delta is 4; the level child (4) and shard (2) are
        # sub-intervals and must not be double counted.
        assert replay_counters(lines) == {"work": 4, "stage_seconds": {}}

    def test_replay_counters_merges_stage_seconds(self):
        lines = [
            json.dumps(
                {
                    "parent": None,
                    "counters": {
                        "work": 1,
                        "stage_seconds": {"prune": 0.5},
                    },
                }
            ),
            json.dumps(
                {
                    "parent": None,
                    "counters": {
                        "work": 2,
                        "stage_seconds": {"prune": 0.25, "collapse": 1.0},
                    },
                }
            ),
        ]
        assert replay_counters(lines) == {
            "work": 3,
            "stage_seconds": {"prune": 0.75, "collapse": 1.0},
        }


class TestPrometheusExport:
    def test_counter_gauge_rendering(self):
        registry = MetricsRegistry()
        registry.describe("repro_queries_total", "Queries answered")
        registry.counter("repro_queries_total", kind="topk").inc(3)
        registry.gauge("repro_live_shards").set(2)
        text = prometheus_text(registry)
        assert "# HELP repro_queries_total Queries answered" in text
        assert "# TYPE repro_queries_total counter" in text
        assert 'repro_queries_total{kind="topk"} 3' in text
        assert "repro_live_shards 2" in text
        assert text.endswith("\n")

    def test_histogram_rendering_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_latency_seconds", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 5.0):
            hist.observe(value)
        text = prometheus_text(registry)
        assert 'repro_latency_seconds_bucket{le="1"} 1' in text
        assert 'repro_latency_seconds_bucket{le="2"} 2' in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_latency_seconds_sum 7" in text
        assert "repro_latency_seconds_count 3" in text

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", reason='say "hi"\nplease\\now').inc()
        text = prometheus_text(registry)
        assert r'reason="say \"hi\"\nplease\\now"' in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestRenderExplain:
    def test_tree_shape_and_annotations(self):
        tracer = sample_tracer()
        text = render_explain(tracer, counter_keys=("work",))
        lines = text.splitlines()
        assert lines[0].startswith("query")
        assert "kind=topk" in lines[0]
        assert "[work=4]" in lines[0]
        assert any(line.lstrip().startswith("└─ level") for line in lines)
        assert any("! degraded reason=deadline" in line for line in lines)

    def test_orphan_events_rendered(self):
        tracer = Tracer(clock=FakeClock())
        tracer.event("stray", x=1)
        assert render_explain(tracer) == "! stray x=1\n"

    def test_empty_tracer_renders_empty(self):
        assert render_explain(Tracer(clock=FakeClock())) == ""
