"""Seeded fault-injection sweep: the fault plane's acceptance contract.

Under **any** injected fault schedule — WAL appends failing with EIO or
ENOSPC, fsyncs failing, checkpoint writes dying mid-tmp, shared-memory
attaches vanishing, worker processes crashing or hanging — the engine
must return answers bit-identical to the clean run, or an explicitly
flagged degraded one (``durability_degraded``, ``shards_degraded``,
breaker open).  Never a silently wrong answer, never a corrupted store:
every recovery here must reproduce the exact fingerprint of replaying
the journaled prefix, and every restore must pass ``audit()``.

The sweep is >= 200 parameterized cases across the five fault families
× seeds, with the clean references cached per seed.
"""

import functools

import pytest

from repro.core import DurabilityPolicy, IncrementalTopK
from repro.core.parallel import (
    fork_available,
    group_fingerprint,
    set_shard_timeout,
)
from repro.baselines import full_dedup_pipeline
from repro.core.persistence import CheckpointWriteError
from repro.core.pruned_dedup import pruned_dedup
from repro.experiments import citation_pipeline
from repro.testing import FaultPlane
from repro.testing.crashpoints import reference_fingerprints, stream_fingerprint
from tests.test_crashpoints import make_levels, seeded_events

N_EVENTS = 40
SEGMENT_BYTES = 2048
STORAGE_SEEDS = range(20)
PARALLEL_SEEDS = range(10)
N_RECORDS = 200
K = 10


@functools.lru_cache(maxsize=None)
def _events(seed):
    return tuple(seeded_events(N_EVENTS, seed=seed))


@functools.lru_cache(maxsize=None)
def _references(seed):
    return reference_fingerprints(make_levels, _events(seed))


def _run_faulted_stream(plane, seed, state_dir, *, fsync=False, checkpoint_every=0):
    """Stream the seeded events with *plane* armed; return the engine.

    Checkpoint failures are caught (the degraded path under test) and
    counted on the store; everything else must not raise.
    """
    policy = DurabilityPolicy(
        state_dir=state_dir, segment_bytes=SEGMENT_BYTES, fsync=fsync
    )
    engine = IncrementalTopK(make_levels(), durability=policy)
    with plane.active():
        for position, (fields, weight) in enumerate(_events(seed), start=1):
            engine.add(fields, weight)
            if checkpoint_every and position % checkpoint_every == 0:
                try:
                    engine.checkpoint()
                except CheckpointWriteError:
                    pass
    engine.close()
    return engine


def _assert_consistent(engine, seed, state_dir):
    """The safety property, checked end to end for one faulted stream.

    * Live answers are bit-identical to the clean run — faults never
      change what the engine computes, only what it journals.
    * Degradation is explicit: a shortened journal is only ever paired
      with ``durability_degraded`` set.
    * Recovery replays exactly the journaled prefix, reproduces its
      clean-run fingerprint, and passes the state audit.
    """
    references = _references(seed)
    assert stream_fingerprint(engine) == references[N_EVENTS], (
        f"seed {seed}: live answers diverged under faults"
    )
    store = engine._durable
    journaled = store.next_index
    if store.durability_degraded:
        assert store.degraded_reason
        assert journaled + store.appends_suspended == N_EVENTS
    else:
        assert journaled == N_EVENTS
    recovered = IncrementalTopK.restore(state_dir, make_levels())
    try:
        assert recovered.entries_applied == journaled
        assert stream_fingerprint(recovered) == references[journaled], (
            f"seed {seed}: recovery diverged from the journaled prefix"
        )
        assert recovered.audit(strict=False) == []
    finally:
        recovered.close()
    return store


# -- WAL append faults ------------------------------------------------------


@pytest.mark.parametrize("rate", [0.25, 0.6])
@pytest.mark.parametrize("seed", STORAGE_SEEDS)
def test_wal_append_eio(tmp_path, seed, rate):
    plane = FaultPlane(seed=seed, wal_append_rate=rate)
    engine = _run_faulted_stream(plane, seed, tmp_path / "state")
    _assert_consistent(engine, seed, tmp_path / "state")


@pytest.mark.parametrize("seed", PARALLEL_SEEDS)
def test_wal_append_persistent_eio(tmp_path, seed):
    # persistent=True: the retry layer cannot clear the fault, so any
    # faulted append must end in explicit suspension, never corruption.
    plane = FaultPlane(seed=seed, wal_append_rate=0.3, persistent=True)
    engine = _run_faulted_stream(plane, seed, tmp_path / "state")
    store = _assert_consistent(engine, seed, tmp_path / "state")
    assert store.durability_degraded == (plane.total_injected > 0)


@pytest.mark.parametrize("seed", STORAGE_SEEDS)
def test_wal_append_enospc(tmp_path, seed):
    plane = FaultPlane(seed=seed, wal_enospc_rate=0.1)
    engine = _run_faulted_stream(plane, seed, tmp_path / "state")
    store = _assert_consistent(engine, seed, tmp_path / "state")
    # ENOSPC is never retried: the first hit suspends journaling.
    assert store.durability_degraded == (plane.total_injected > 0)


@pytest.mark.parametrize("seed", STORAGE_SEEDS)
def test_wal_fsync_eio(tmp_path, seed):
    plane = FaultPlane(seed=seed, wal_fsync_rate=0.4)
    engine = _run_faulted_stream(plane, seed, tmp_path / "state", fsync=True)
    _assert_consistent(engine, seed, tmp_path / "state")


# -- checkpoint faults ------------------------------------------------------


@pytest.mark.parametrize("seed", STORAGE_SEEDS)
def test_checkpoint_write_eio(tmp_path, seed):
    plane = FaultPlane(seed=seed, checkpoint_rate=0.5)
    engine = _run_faulted_stream(
        plane, seed, tmp_path / "state", checkpoint_every=10
    )
    store = _assert_consistent(engine, seed, tmp_path / "state")
    assert store.checkpoints_failed >= 0  # counted, never raised through


@pytest.mark.parametrize("seed", PARALLEL_SEEDS)
def test_checkpoint_write_always_fails(tmp_path, seed):
    # Every checkpoint write fails on every attempt: the WAL must be
    # fully retained and recovery must replay it from scratch.
    plane = FaultPlane(seed=seed, checkpoint_rate=1.0, persistent=True)
    engine = _run_faulted_stream(
        plane, seed, tmp_path / "state", checkpoint_every=10
    )
    store = _assert_consistent(engine, seed, tmp_path / "state")
    assert store.checkpoints_failed == N_EVENTS // 10
    assert not list((tmp_path / "state").glob("checkpoint-*.ckpt"))
    recovered = IncrementalTopK.restore(tmp_path / "state", make_levels())
    try:
        assert recovered.last_recovery.checkpoint_path is None
        assert recovered.entries_applied == N_EVENTS
    finally:
        recovered.close()


# -- restores with the plane still armed ------------------------------------


@pytest.mark.parametrize(
    "rates",
    [
        {"wal_append_rate": 0.4, "checkpoint_rate": 0.5},
        {"wal_enospc_rate": 0.1, "wal_fsync_rate": 0.3},
    ],
    ids=["eio-mix", "enospc-mix"],
)
@pytest.mark.parametrize("seed", STORAGE_SEEDS)
def test_restore_under_armed_plane(tmp_path, seed, rates):
    # Write under faults, then restore with the plane STILL armed: the
    # restore must pass its audit (or raise) before serving — recovery
    # reads are not a fault site, so it must come back clean.
    plane = FaultPlane(seed=seed, **rates)
    engine = _run_faulted_stream(
        plane, seed, tmp_path / "state", checkpoint_every=15
    )
    journaled = engine._durable.next_index
    with plane.active():
        recovered = IncrementalTopK.restore(tmp_path / "state", make_levels())
        try:
            assert recovered.audit(strict=False) == []
            # A checkpoint taken after journaling suspended snapshots the
            # full in-memory state, so recovery may land *beyond* the
            # journaled WAL prefix — but always on an exact clean-run
            # prefix, never between entries and never diverging from it.
            assert recovered.entries_applied >= journaled
            assert (
                stream_fingerprint(recovered)
                == _references(seed)[recovered.entries_applied]
            )
        finally:
            recovered.close()


# -- parallel-layer faults --------------------------------------------------

fork_only = pytest.mark.skipif(
    not fork_available(), reason="platform has no fork start method"
)


@functools.lru_cache(maxsize=None)
def _parallel_case(seed):
    """(pipeline, serial fingerprint, serial weights) for one seed.

    The serial baseline is itself anchored against the exhaustive
    ``full_dedup_pipeline`` oracle: every closure group heavy enough
    for the Top-K must survive pruning bit-for-bit.  Faulted runs then
    compare against the serial fingerprint, so any divergence from the
    oracle — silent or otherwise — fails the sweep transitively.
    """
    pipeline = citation_pipeline(
        n_records=N_RECORDS, seed=seed, with_scorer=False
    )
    serial = pruned_dedup(pipeline.store, K, pipeline.levels, workers=1)
    oracle = full_dedup_pipeline(pipeline.store, K, pipeline.levels)
    closure = {
        frozenset(g.member_ids): g.weight for g in oracle.groups.groups
    }
    weights = sorted(closure.values(), reverse=True)
    bar = weights[min(K, len(weights)) - 1]
    retained = {frozenset(g.member_ids) for g in serial.groups.groups}
    for members, weight in closure.items():
        if weight >= bar:
            assert members in retained, (
                f"seed {seed}: serial baseline dropped an oracle "
                f"Top-K closure group of weight {weight}"
            )
    return pipeline, group_fingerprint(serial.groups), serial.groups.weights()


def _assert_parallel_identical(plane, seed):
    pipeline, baseline, weights = _parallel_case(seed)
    with plane.active():
        result = pruned_dedup(pipeline.store, K, pipeline.levels, workers=2)
    assert group_fingerprint(result.groups) == baseline, (
        f"seed {seed}: sharded answer diverged under {plane!r}"
    )
    assert result.groups.weights() == weights
    return result


@fork_only
@pytest.mark.timeout(300)
@pytest.mark.parametrize("mode", ["transient", "persistent"])
@pytest.mark.parametrize("seed", PARALLEL_SEEDS)
def test_shm_attach_faults(seed, mode):
    plane = FaultPlane(
        seed=seed,
        shm_attach_rate=0.5 if mode == "transient" else 1.0,
        persistent=mode == "persistent",
    )
    _assert_parallel_identical(plane, seed)


@fork_only
@pytest.mark.timeout(300)
@pytest.mark.parametrize("mode", ["transient", "persistent"])
@pytest.mark.parametrize("seed", PARALLEL_SEEDS)
def test_worker_crash_faults(seed, mode):
    plane = FaultPlane(
        seed=seed,
        worker_crash_rate=0.3 if mode == "transient" else 1.0,
        persistent=mode == "persistent",
    )
    result = _assert_parallel_identical(plane, seed)
    if mode == "persistent":
        # Every worker died twice: every shard was recomputed serially.
        assert result.counters.shards_degraded > 0


@fork_only
@pytest.mark.timeout(300)
@pytest.mark.parametrize("seed", range(6))
def test_worker_hang_faults(seed):
    plane = FaultPlane(
        seed=seed, worker_hang_rate=0.4, hang_seconds=3.0
    )
    previous = set_shard_timeout(0.75)
    try:
        _assert_parallel_identical(plane, seed)
    finally:
        set_shard_timeout(previous)
