"""Tests for greedy and spectral linear embeddings."""

import pytest

from repro.clustering.correlation import ScoreMatrix
from repro.embedding.greedy import (
    LinearEmbedding,
    greedy_embedding,
    random_embedding,
)
from repro.embedding.spectral import spectral_embedding


def clustered_instance() -> ScoreMatrix:
    """Two clear clusters {0,1,2} and {3,4,5} plus cross negatives."""
    m = ScoreMatrix(6)
    for i, j in [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)]:
        m.set(i, j, 2.0)
    for i in (0, 1, 2):
        for j in (3, 4, 5):
            m.set(i, j, -1.0)
    return m


def positions_of(embedding: LinearEmbedding) -> dict[int, int]:
    return embedding.position_of()


class TestGreedyEmbedding:
    def test_order_is_permutation(self):
        emb = greedy_embedding(clustered_instance())
        assert sorted(emb.order) == list(range(6))

    def test_clusters_contiguous(self):
        emb = greedy_embedding(clustered_instance())
        pos = positions_of(emb)
        cluster_a = sorted(pos[i] for i in (0, 1, 2))
        cluster_b = sorted(pos[i] for i in (3, 4, 5))
        assert cluster_a == list(range(cluster_a[0], cluster_a[0] + 3))
        assert cluster_b == list(range(cluster_b[0], cluster_b[0] + 3))

    def test_break_between_unrelated_components(self):
        m = ScoreMatrix(4)
        m.set(0, 1, 1.0)
        m.set(2, 3, 1.0)
        emb = greedy_embedding(m)
        assert len(emb.breaks) >= 2  # initial break + component switch

    def test_better_cost_than_random(self):
        m = clustered_instance()
        greedy_cost = greedy_embedding(m).cost(m)
        random_costs = [random_embedding(6, seed=s).cost(m) for s in range(10)]
        assert greedy_cost <= min(random_costs) + 1e-9

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            greedy_embedding(clustered_instance(), alpha=1.0)

    def test_empty(self):
        assert greedy_embedding(ScoreMatrix(0)).order == []

    def test_deterministic(self):
        m = clustered_instance()
        assert greedy_embedding(m).order == greedy_embedding(m).order

    def test_seed_by_first(self):
        emb = greedy_embedding(clustered_instance(), seed_by="first")
        assert emb.order[0] == 0


class TestSpectralEmbedding:
    def test_order_is_permutation(self):
        emb = spectral_embedding(clustered_instance())
        assert sorted(emb.order) == list(range(6))

    def test_components_kept_apart(self):
        m = ScoreMatrix(4)
        m.set(0, 1, 1.0)
        m.set(2, 3, 1.0)
        emb = spectral_embedding(m)
        pos = positions_of(emb)
        # Each component occupies a contiguous range.
        assert abs(pos[0] - pos[1]) == 1
        assert abs(pos[2] - pos[3]) == 1

    def test_path_graph_recovers_path_order(self):
        # A path 0-1-2-3-4 with strong adjacent similarities: the Fiedler
        # vector orders the path monotonically.
        m = ScoreMatrix(5)
        for i in range(4):
            m.set(i, i + 1, 1.0)
        emb = spectral_embedding(m)
        order = emb.order
        assert order == sorted(order, key=lambda x: order.index(x))
        assert order in ([0, 1, 2, 3, 4], [4, 3, 2, 1, 0])

    def test_empty(self):
        assert spectral_embedding(ScoreMatrix(0)).order == []

    def test_singletons_are_fine(self):
        m = ScoreMatrix(3)
        emb = spectral_embedding(m)
        assert sorted(emb.order) == [0, 1, 2]


class TestEmbeddingCost:
    def test_cost_counts_positive_pairs_by_distance(self):
        m = ScoreMatrix(3)
        m.set(0, 2, 1.0)
        adjacent = LinearEmbedding(order=[0, 2, 1])
        separated = LinearEmbedding(order=[0, 1, 2])
        assert adjacent.cost(m) == 1.0
        assert separated.cost(m) == 2.0

    def test_negative_scores_ignored(self):
        m = ScoreMatrix(2)
        m.set(0, 1, -5.0)
        assert LinearEmbedding(order=[0, 1]).cost(m) == 0.0
