"""Tests for the filtered Jaccard set-similarity self-join."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity.setjoin import (
    brute_force_jaccard_join,
    canonical_token_order,
    jaccard_self_join,
)


def sets_of(*token_lists):
    return [frozenset(tokens) for tokens in token_lists]


class TestJaccardSelfJoin:
    def test_identical_sets(self):
        sets = sets_of(["a", "b", "c"], ["a", "b", "c"], ["x", "y"])
        results = jaccard_self_join(sets, 0.9)
        assert results == [(0, 1, 1.0)]

    def test_threshold_filtering(self):
        sets = sets_of(["a", "b", "c", "d"], ["a", "b", "c", "e"])
        # Jaccard = 3/5 = 0.6
        assert jaccard_self_join(sets, 0.6) == [(0, 1, pytest.approx(0.6))]
        assert jaccard_self_join(sets, 0.61) == []

    def test_empty_sets_join_nothing(self):
        sets = sets_of([], ["a"], [])
        assert jaccard_self_join(sets, 0.5) == []

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            jaccard_self_join([frozenset({"a"})], 0.0)

    def test_matches_brute_force_random(self):
        rng = np.random.default_rng(7)
        vocabulary = [f"t{i}" for i in range(30)]
        sets = []
        for _ in range(120):
            size = int(rng.integers(1, 8))
            picks = rng.choice(len(vocabulary), size=size, replace=False)
            sets.append(frozenset(vocabulary[int(p)] for p in picks))
        for threshold in (0.3, 0.5, 0.7, 0.9):
            fast = jaccard_self_join(sets, threshold)
            slow = sorted(brute_force_jaccard_join(sets, threshold))
            assert fast == slow, threshold

    def test_skewed_token_frequencies(self):
        # A stop-token shared by everyone must not break correctness.
        sets = [frozenset({"common", f"u{i}", f"v{i}"}) for i in range(40)]
        sets.append(frozenset({"common", "u0", "v0"}))
        fast = jaccard_self_join(sets, 0.6)
        slow = sorted(brute_force_jaccard_join(sets, 0.6))
        assert fast == slow
        assert (0, 40, 1.0) in fast

    def test_canonical_order_rarest_first(self):
        sets = sets_of(["common", "rare"], ["common"], ["common", "other"])
        order = canonical_token_order(sets)
        assert order["rare"] < order["common"]
        assert order["other"] < order["common"]


class TestJoinProperties:
    token_sets = st.lists(
        st.frozensets(st.sampled_from("abcdefghij"), min_size=0, max_size=6),
        min_size=0,
        max_size=25,
    )

    @given(token_sets, st.sampled_from([0.25, 0.5, 0.75, 1.0]))
    @settings(max_examples=60, deadline=None)
    def test_always_matches_brute_force(self, sets, threshold):
        fast = jaccard_self_join(sets, threshold)
        slow = sorted(brute_force_jaccard_join(sets, threshold))
        assert fast == slow

    @given(token_sets)
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_threshold(self, sets):
        loose = {(i, j) for i, j, _ in jaccard_self_join(sets, 0.4)}
        tight = {(i, j) for i, j, _ in jaccard_self_join(sets, 0.8)}
        assert tight <= loose


class TestThresholdBoundaryRegression:
    """Pairs sitting exactly on the threshold must survive float drift.

    ``0.28 * 25`` evaluates to ``7.000000000000001``: a raw ``ceil``
    used to lengthen the required prefix overlap and tighten the length
    filter past their exact values, silently dropping pairs with Jaccard
    exactly equal to the threshold.
    """

    def test_pair_exactly_on_drifting_threshold_survives(self):
        assert 0.28 * 25 != 7.0  # the drift this regression guards
        shared = {f"s{i}" for i in range(7)}
        big = frozenset({f"x{i:02d}" for i in range(18)} | shared)
        small = frozenset(shared)
        sets = [big, small]  # Jaccard = 7/25 = 0.28 exactly
        fast = jaccard_self_join(sets, 0.28)
        slow = sorted(brute_force_jaccard_join(sets, 0.28))
        assert fast == slow
        assert fast == [(0, 1, pytest.approx(0.28))]

    @pytest.mark.parametrize("threshold", [0.07, 0.14, 0.28, 0.55, 0.56])
    def test_drifting_thresholds_match_brute_force(self, threshold):
        rng = np.random.RandomState(17)
        pool = [f"t{i}" for i in range(30)]
        sets = [
            frozenset(
                rng.choice(pool, size=rng.randint(1, 12), replace=False)
            )
            for _ in range(40)
        ]
        fast = jaccard_self_join(sets, threshold)
        slow = sorted(brute_force_jaccard_join(sets, threshold))
        assert fast == slow
