"""Unit tests for the concrete Section 6.1 predicate suites."""

import pytest

from repro.core.records import RecordStore
from repro.predicates.base import ConjunctionPredicate, PredicateLevel
from repro.predicates.library import (
    AddressS1,
    CitationS1,
    CitationS2,
    CommonWordsPredicate,
    ExactFieldsPredicate,
    InitialsWordOverlapPredicate,
    JaccardPredicate,
    NgramOverlapPredicate,
    address_levels,
    citation_levels,
    citation_n1,
    citation_n2,
    student_levels,
    student_n1,
    student_s1,
    student_s2,
)
from repro.similarity.tfidf import IdfTable


def record(**fields):
    return RecordStore.from_rows([fields])[0]


def records(*rows):
    return list(RecordStore.from_rows(list(rows)))


class TestExactFields:
    def test_match_is_normalized(self):
        a, b = records({"name": "Ann  Smith"}, {"name": "ann smith"})
        p = ExactFieldsPredicate(["name"])
        assert p.evaluate(a, b)
        assert list(p.blocking_keys(a)) == list(p.blocking_keys(b))

    def test_mismatch(self):
        a, b = records({"name": "ann"}, {"name": "bob"})
        assert not ExactFieldsPredicate(["name"]).evaluate(a, b)

    def test_multi_field(self):
        a, b = records(
            {"name": "ann", "dob": "2000"}, {"name": "ann", "dob": "2001"}
        )
        assert not ExactFieldsPredicate(["name", "dob"]).evaluate(a, b)

    def test_requires_fields(self):
        with pytest.raises(ValueError):
            ExactFieldsPredicate([])


class TestNgramOverlap:
    def test_identical_names(self):
        a, b = records({"name": "sarawagi"}, {"name": "sarawagi"})
        assert NgramOverlapPredicate("name", 0.9).evaluate(a, b)

    def test_typo_passes_moderate_threshold(self):
        a, b = records({"name": "sarawagi"}, {"name": "sarawagl"})
        assert NgramOverlapPredicate("name", 0.6).evaluate(a, b)

    def test_different_names_fail(self):
        a, b = records({"name": "sarawagi"}, {"name": "kasliwal"})
        assert not NgramOverlapPredicate("name", 0.6).evaluate(a, b)

    def test_exact_fields_gate(self):
        a, b = records(
            {"name": "ann", "school": "s1"}, {"name": "ann", "school": "s2"}
        )
        p = NgramOverlapPredicate("name", 0.5, exact_fields=("school",))
        assert not p.evaluate(a, b)
        keys_a = set(p.blocking_keys(a))
        keys_b = set(p.blocking_keys(b))
        assert not keys_a & keys_b

    def test_common_initial_gate(self):
        # High gram overlap but different initials ('a...' vs 'b...').
        a, b = records({"name": "asarawagi"}, {"name": "bsarawagi"})
        relaxed = NgramOverlapPredicate("name", 0.5)
        gated = NgramOverlapPredicate("name", 0.5, require_common_initial=True)
        assert relaxed.evaluate(a, b)
        assert not gated.evaluate(a, b)

    def test_blocking_guarantee(self):
        # Any matching pair must share a key.
        p = NgramOverlapPredicate("name", 0.6)
        a, b = records({"name": "sarawagi"}, {"name": "sarawagl"})
        assert p.evaluate(a, b)
        assert set(p.blocking_keys(a)) & set(p.blocking_keys(b))

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            NgramOverlapPredicate("name", 0.0)


class TestCommonWords:
    def test_threshold(self):
        a, b = records(
            {"name": "a b", "address": "c d e"},
            {"name": "a b", "address": "c d x"},
        )
        assert CommonWordsPredicate(("name", "address"), 4).evaluate(a, b)
        assert not CommonWordsPredicate(("name", "address"), 5).evaluate(a, b)

    def test_stop_words_ignored(self):
        a, b = records(
            {"name": "ann", "address": "road street lane x"},
            {"name": "ann", "address": "road street lane y"},
        )
        stops = frozenset({"road", "street", "lane"})
        p = CommonWordsPredicate(("name", "address"), 2, stop_words=stops)
        assert not p.evaluate(a, b)

    def test_short_records_emit_no_keys(self):
        a = record(name="ann", address="x")
        p = CommonWordsPredicate(("name", "address"), 4)
        assert list(p.blocking_keys(a)) == []

    def test_prefix_filter_guarantee(self):
        # Matching pairs must share at least one emitted key.
        p = CommonWordsPredicate(("name", "address"), 3)
        a, b = records(
            {"name": "ann lee", "address": "gandhi road pune"},
            {"name": "ann lee", "address": "gandhi street pune"},
        )
        assert p.evaluate(a, b)
        assert set(p.blocking_keys(a)) & set(p.blocking_keys(b))

    def test_frequency_ordering_changes_keys_not_semantics(self):
        freq = {"common": 100, "rare": 1, "ann": 50, "lee": 2}
        p_freq = CommonWordsPredicate(
            ("name",), 2, word_frequency=freq
        )
        a = record(name="common rare ann lee")
        keys = list(p_freq.blocking_keys(a))
        assert "rare" in keys
        assert "common" not in keys  # most frequent dropped by prefix filter


class TestJaccardPredicate:
    def test_high_overlap(self):
        a, b = records({"title": "a b c d e"}, {"title": "a b c d x"})
        assert JaccardPredicate("title", 0.6).evaluate(a, b)
        assert not JaccardPredicate("title", 0.9).evaluate(a, b)

    def test_empty_fields_match(self):
        a, b = records({"title": ""}, {"title": ""})
        assert JaccardPredicate("title", 0.5).evaluate(a, b)


def citation_idf_fixture() -> IdfTable:
    # Names corpus: "anqi"/"sarawagi"/"arvo"/"subano" rare (1 doc each);
    # "john" and the initial "a" common (4+ docs of 10).
    docs = [
        {"anqi", "sarawagi"},
        {"arvo", "subano"},
        {"john", "smith"},
        {"john", "jones"},
        {"john", "miller"},
        {"john", "brown"},
        {"a", "wilson"},
        {"a", "taylor"},
        {"a", "moore"},
        {"a", "clark"},
    ]
    return IdfTable(docs)


class TestCitationS1:
    def setup_method(self):
        self.idf = citation_idf_fixture()
        self.p = CitationS1(self.idf, min_idf=1.0)

    def test_rare_full_names_merge(self):
        a, b = records({"author": "anqi sarawagi"}, {"author": "sarawagi anqi"})
        assert self.p.evaluate(a, b)

    def test_common_first_name_blocks(self):
        a, b = records({"author": "john smith"}, {"author": "john smith"})
        assert not self.p.evaluate(a, b)
        assert list(self.p.blocking_keys(a)) == []

    def test_initialized_mention_fails_rarity(self):
        # The single-letter token is common corpus-wide.
        a = record(author="a sarawagi")
        b = record(author="anqi sarawagi")
        assert not self.p.evaluate(a, b)

    def test_different_rare_names_same_initials_blocked(self):
        # Rarest tokens differ, so no merge despite matching initials.
        a, b = records({"author": "anqi sarawagi"}, {"author": "arvo subano"})
        assert not self.p.evaluate(a, b)

    def test_key_implies_match(self):
        assert self.p.key_implies_match
        a, b = records({"author": "anqi sarawagi"}, {"author": "anqi sarawagi"})
        keys_a = set(self.p.blocking_keys(a))
        keys_b = set(self.p.blocking_keys(b))
        assert keys_a and keys_a == keys_b


class TestCitationS2:
    def setup_method(self):
        self.p = CitationS2()

    def test_merges_with_shared_coauthors(self):
        a, b = records(
            {"author": "s sarawagi", "coauthors": "vinay deshpande sourabh kasliwal"},
            {"author": "s sarawagi", "coauthors": "vinay deshpande sourabh mehta"},
        )
        assert self.p.evaluate(a, b)

    def test_too_few_common_coauthors(self):
        a, b = records(
            {"author": "s sarawagi", "coauthors": "vinay deshpande"},
            {"author": "s sarawagi", "coauthors": "vinay mehta"},
        )
        assert not self.p.evaluate(a, b)

    def test_last_name_must_match(self):
        a, b = records(
            {"author": "s sarawagi", "coauthors": "a b c"},
            {"author": "s iyengar", "coauthors": "a b c"},
        )
        assert not self.p.evaluate(a, b)

    def test_initials_must_match(self):
        a, b = records(
            {"author": "sunita k sarawagi", "coauthors": "a b c"},
            {"author": "sunita sarawagi", "coauthors": "a b c"},
        )
        assert not self.p.evaluate(a, b)


class TestCitationNecessary:
    def test_n1_initials_form_matches_full(self):
        a, b = records({"author": "s sarawagi"}, {"author": "sunita sarawagi"})
        assert citation_n1().evaluate(a, b)

    def test_n1_rejects_unrelated(self):
        a, b = records({"author": "s sarawagi"}, {"author": "bob jones"})
        assert not citation_n1().evaluate(a, b)

    def test_n2_tighter_than_n1(self):
        # High author-gram overlap, but no initials in common.
        a, b = records({"author": "asarawagi"}, {"author": "bsarawagi"})
        assert citation_n1().evaluate(a, b)
        assert not citation_n2().evaluate(a, b)

    def test_levels_factory(self):
        levels = citation_levels(citation_idf_fixture(), 1.0)
        assert len(levels) == 2
        assert all(isinstance(lv, PredicateLevel) for lv in levels)


class TestStudentPredicates:
    def test_s1_exact(self):
        a, b = records(
            {"name": "ann lee", "class": "3", "school": "S1", "dob": "d"},
            {"name": "ann lee", "class": "3", "school": "S1", "dob": "d"},
        )
        assert student_s1().evaluate(a, b)

    def test_s2_tolerates_small_name_noise(self):
        a, b = records(
            {"name": "annabella lee", "class": "3", "school": "S1", "dob": "d"},
            {"name": "annabela lee", "class": "3", "school": "S1", "dob": "d"},
        )
        assert student_s2().evaluate(a, b)

    def test_s2_requires_same_dob(self):
        a, b = records(
            {"name": "ann lee", "class": "3", "school": "S1", "dob": "d1"},
            {"name": "ann lee", "class": "3", "school": "S1", "dob": "d2"},
        )
        assert not student_s2().evaluate(a, b)

    def test_n1_missing_space_still_matches(self):
        a, b = records(
            {"name": "sunita sharma", "class": "3", "school": "S1"},
            {"name": "sunitasharma", "class": "3", "school": "S1"},
        )
        assert student_n1().evaluate(a, b)

    def test_n1_school_gate(self):
        a, b = records(
            {"name": "sunita sharma", "class": "3", "school": "S1"},
            {"name": "sunita sharma", "class": "3", "school": "S2"},
        )
        assert not student_n1().evaluate(a, b)

    def test_levels_factory(self):
        assert len(student_levels()) == 2


class TestAddressPredicates:
    def test_s1_same_person_same_address(self):
        a, b = records(
            {"name": "sunita sharma", "address": "12 gandhi nagar pune karve"},
            {"name": "sunita sharma", "address": "12 gandhi ngr pune karve"},
        )
        assert AddressS1().evaluate(a, b)

    def test_s1_different_initials_rejected(self):
        a, b = records(
            {"name": "sunita sharma", "address": "12 gandhi karve"},
            {"name": "ravi sharma", "address": "12 gandhi karve"},
        )
        assert not AddressS1().evaluate(a, b)

    def test_s1_different_address_rejected(self):
        a, b = records(
            {"name": "sunita sharma", "address": "12 gandhi karve baner"},
            {"name": "sunita sharma", "address": "99 tilak lake aundh"},
        )
        assert not AddressS1().evaluate(a, b)

    def test_levels_factory_with_store(self):
        store = RecordStore.from_rows(
            [{"name": "a b", "address": "c d e f"}] * 3
        )
        levels = address_levels(store)
        assert len(levels) == 1


class TestConjunction:
    def test_and_semantics(self):
        p = ConjunctionPredicate(
            [ExactFieldsPredicate(["name"]), ExactFieldsPredicate(["dob"])]
        )
        a, b = records(
            {"name": "ann", "dob": "1"}, {"name": "ann", "dob": "2"}
        )
        assert not p.evaluate(a, b)

    def test_keys_from_first_conjunct(self):
        first = ExactFieldsPredicate(["name"])
        p = ConjunctionPredicate([first, ExactFieldsPredicate(["dob"])])
        a = record(name="ann", dob="1")
        assert list(p.blocking_keys(a)) == list(first.blocking_keys(a))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ConjunctionPredicate([])


class TestInitialsWordOverlap:
    def test_blocking_guarantee(self):
        p = InitialsWordOverlapPredicate("name", exact_fields=("school",))
        a, b = records(
            {"name": "sunita sharma", "school": "S"},
            {"name": "s k verma", "school": "S"},
        )
        assert p.evaluate(a, b)
        assert set(p.blocking_keys(a)) & set(p.blocking_keys(b))
