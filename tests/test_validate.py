"""Tests for predicate validation against gold labels."""

from repro.predicates.base import FunctionPredicate
from repro.predicates.validate import validate_necessary, validate_sufficient
from tests.conftest import exact_name_predicate, make_store, shared_word_predicate


class TestValidateNecessary:
    def test_holds_on_clean_data(self):
        store = make_store(["ann smith", "a smith", "bob jones"])
        labels = [0, 0, 1]
        report = validate_necessary(shared_word_predicate(), list(store), labels)
        assert report.ok
        assert report.n_pairs_checked == 1

    def test_detects_violation(self):
        store = make_store(["ann smith", "completely different"])
        labels = [0, 0]  # same entity but predicate false
        report = validate_necessary(shared_word_predicate(), list(store), labels)
        assert not report.ok
        assert report.n_violations == 1
        assert report.violations == [(0, 1)]
        assert report.violation_rate == 1.0

    def test_role_recorded(self):
        store = make_store(["a"])
        report = validate_necessary(shared_word_predicate(), list(store), [0])
        assert report.role == "necessary"

    def test_length_mismatch(self):
        store = make_store(["a"])
        import pytest

        with pytest.raises(ValueError):
            validate_necessary(shared_word_predicate(), list(store), [0, 1])


class TestValidateSufficient:
    def test_holds_on_clean_data(self):
        store = make_store(["ann smith", "ann smith", "bob jones"])
        labels = [0, 0, 1]
        report = validate_sufficient(exact_name_predicate(), list(store), labels)
        assert report.ok

    def test_detects_cross_entity_firing(self):
        store = make_store(["ann smith", "ann smith"])
        labels = [0, 1]  # identical strings, different entities
        report = validate_sufficient(exact_name_predicate(), list(store), labels)
        assert not report.ok
        assert report.n_violations == 1

    def test_example_cap(self):
        store = make_store(["x"] * 6)
        labels = list(range(6))  # every pair is a violation
        report = validate_sufficient(
            exact_name_predicate(), list(store), labels, max_examples=3
        )
        assert len(report.violations) == 3
        assert report.n_violations == 15

    def test_empty_checked_rate(self):
        predicate = FunctionPredicate(
            evaluate_fn=lambda a, b: False,
            keys_fn=lambda r: [],
            name="never",
        )
        store = make_store(["a", "b"])
        report = validate_sufficient(predicate, list(store), [0, 1])
        assert report.violation_rate == 0.0


class TestGeneratedDataPredicateContracts:
    """The synthetic generators must satisfy the paper's predicate roles."""

    def test_citation_sufficient_predicates_hold(self):
        from repro.datasets import author_idf, generate_citations, suggest_min_idf
        from repro.predicates import citation_levels

        ds = generate_citations(n_records=1500, seed=5)
        idf = author_idf(ds.store)
        levels = citation_levels(idf, suggest_min_idf(idf))
        for level in levels:
            report = validate_sufficient(
                level.sufficient, list(ds.store), ds.labels
            )
            assert report.ok, f"{level.sufficient.name}: {report.n_violations}"

    def test_citation_necessary_predicates_mostly_hold(self):
        from repro.datasets import author_idf, generate_citations, suggest_min_idf
        from repro.predicates import citation_levels

        ds = generate_citations(n_records=1500, seed=5)
        idf = author_idf(ds.store)
        levels = citation_levels(idf, suggest_min_idf(idf))
        for level in levels:
            report = validate_necessary(
                level.necessary, list(ds.store), ds.labels
            )
            assert report.violation_rate < 0.02, level.necessary.name

    def test_student_predicates_hold(self):
        from repro.datasets import generate_students
        from repro.predicates import student_levels

        ds = generate_students(n_records=1500, seed=5)
        for level in student_levels():
            sufficient = validate_sufficient(
                level.sufficient, list(ds.store), ds.labels
            )
            assert sufficient.ok, level.sufficient.name
            necessary = validate_necessary(
                level.necessary, list(ds.store), ds.labels
            )
            assert necessary.violation_rate < 0.02, level.necessary.name

    def test_address_predicates_hold(self):
        from repro.datasets import generate_addresses
        from repro.predicates import address_levels

        ds = generate_addresses(n_records=1500, seed=5)
        for level in address_levels(ds.store):
            sufficient = validate_sufficient(
                level.sufficient, list(ds.store), ds.labels
            )
            assert sufficient.ok, level.sufficient.name
            necessary = validate_necessary(
                level.necessary, list(ds.store), ds.labels
            )
            assert necessary.violation_rate < 0.02, level.necessary.name
