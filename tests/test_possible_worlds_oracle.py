"""Differential suite: interval semantics vs the brute-force oracle.

:func:`repro.baselines.possible_worlds_answer` exhaustively enumerates
every valid Top-K segmentation of the embedded record line (2^(n-1) cut
patterns) and scores each world through :func:`partition_score` — an
independent code path from the segmentation DP's prefix-sum score table.
That makes it exact ground truth for the uncertainty layer's possible-
worlds semantics.

For every seed x dataset family (tiny corpora, n = 12, so exhaustive
enumeration stays cheap) this suite checks:

* the engine's world enumeration at full R is *identical* (as a set of
  canonical worlds) to the oracle's;
* every reported ``[count_lo, count_hi]`` interval contains every count
  the oracle says the entity can achieve — including the MAP world's;
* membership probabilities match the oracle's exact mass to float
  tolerance, and positions the engine does not report carry (certifiably)
  zero oracle membership;
* intervals converge monotonically as R grows: the envelope at a smaller
  R is nested inside the envelope at a larger R, and at full R equals
  the oracle's exactly.
"""

import pytest

from repro.baselines import possible_worlds_answer
from repro.cli import generic_levels, generic_scorer
from repro.core.records import GroupSet
from repro.uncertainty import (
    enumerate_worlds,
    interval_over_groups,
    topk_interval_query,
    world_model,
)

K = 2
N_RECORDS = 12
SEEDS = tuple(range(20))
DATASETS = ("citations", "students")
#: Large enough to exhaust every world of an n=12 corpus.
FULL_R = 4096
TOL = 1e-9


def _generate(family: str, seed: int):
    if family == "citations":
        from repro.datasets import generate_citations

        return generate_citations(n_records=N_RECORDS, seed=seed), "author"
    from repro.datasets import generate_students

    return generate_students(n_records=N_RECORDS, seed=seed), "name"


# One world model + full-R answer + oracle per seed x family, shared by
# every check (the enumeration dominates the suite's cost).
_cases: dict = {}


def _case(family: str, seed: int):
    key = (family, seed)
    if key not in _cases:
        dataset, field = _generate(family, seed)
        scorer = generic_scorer(field, -3.0)
        necessary = generic_levels(field, 0.3)[-1].necessary
        groups = GroupSet.singletons(dataset.store)
        scores, embedding, max_span = world_model(groups, scorer, necessary)
        result = interval_over_groups(
            groups,
            K,
            scorer,
            necessary,
            r=FULL_R,
            max_span=max_span,
            max_thresholds=FULL_R,
        )
        oracle = possible_worlds_answer(
            scores,
            embedding,
            groups.weights(),
            K,
            max_span=max_span,
            temperature=result.temperature,
        )
        _cases[key] = {
            "field": field,
            "scorer": scorer,
            "necessary": necessary,
            "groups": groups,
            "scores": scores,
            "embedding": embedding,
            "max_span": max_span,
            "result": result,
            "oracle": oracle,
        }
    return _cases[key]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("family", DATASETS)
class TestAgainstOracle:
    def test_world_enumeration_is_exhaustive(self, family, seed):
        """At full R the engine's world set equals the oracle's exactly."""
        case = _case(family, seed)
        worlds = enumerate_worlds(
            case["scores"],
            case["embedding"],
            case["groups"].weights(),
            K,
            FULL_R,
            max_span=case["max_span"],
            max_thresholds=FULL_R,
        )
        engine_keys = {(world.clusters, world.n_top) for world in worlds}
        assert engine_keys == case["oracle"].world_keys()
        assert case["result"].worlds_enumerated == case["oracle"].n_worlds
        # Same worlds, same temperature => the scores must agree too
        # (partition_score vs the DP's prefix-sum table).
        oracle_scores = sorted(w.score for w in case["oracle"].worlds)
        engine_scores = sorted(w.score for w in worlds)
        for ours, theirs in zip(engine_scores, oracle_scores):
            assert ours == pytest.approx(theirs, abs=1e-7)

    def test_intervals_contain_every_exact_count(self, family, seed):
        """lo <= exact <= hi for every count achievable in any world."""
        case = _case(family, seed)
        for entity in case["result"].entities:
            for position in entity.positions:
                exact = case["oracle"].entity(position)
                assert entity.count_lo - TOL <= exact.count_lo
                assert exact.count_hi <= entity.count_hi + TOL
                for weight, mass in exact.distribution:
                    assert (
                        entity.count_lo - TOL
                        <= weight
                        <= entity.count_hi + TOL
                    )
                # The MAP world's count is one of the possible worlds'.
                assert (
                    entity.count_lo - TOL
                    <= case["oracle"].map_counts[position]
                    <= entity.count_hi + TOL
                )

    def test_membership_matches_exact_mass(self, family, seed):
        """Membership probabilities equal the oracle's exact mass, and
        everything unreported is certifiably out of the top K."""
        case = _case(family, seed)
        reported = set()
        for entity in case["result"].entities:
            for position in entity.positions:
                reported.add(position)
                exact = case["oracle"].entity(position)
                assert entity.membership_probability == pytest.approx(
                    exact.membership_probability, abs=1e-9
                )
                assert entity.expected_count == pytest.approx(
                    exact.expected_count, abs=1e-9
                )
        for position in range(len(case["groups"])):
            if position not in reported:
                exact = case["oracle"].entity(position)
                assert exact.membership_probability == pytest.approx(
                    0.0, abs=1e-9
                )

    def test_convergence_in_r(self, family, seed):
        """Envelopes nest as R grows and equal the oracle's at full R."""
        case = _case(family, seed)
        full = {
            position: entity
            for entity in case["result"].entities
            for position in entity.positions
        }
        for r in (1, 2, 4, FULL_R):
            partial = interval_over_groups(
                case["groups"],
                K,
                case["scorer"],
                case["necessary"],
                r=r,
                max_span=case["max_span"],
                max_thresholds=FULL_R,
                temperature=case["result"].temperature,
            )
            assert partial.worlds_enumerated <= case["oracle"].n_worlds
            for entity in partial.entities:
                for position in entity.positions:
                    if position not in full:
                        continue
                    envelope = full[position]
                    # Fewer worlds => a nested (narrower or equal) range.
                    assert entity.count_lo >= envelope.count_lo - TOL
                    assert entity.count_hi <= envelope.count_hi + TOL
        # At full R the envelope coincides with the oracle's.
        for position, entity in full.items():
            exact = case["oracle"].entity(position)
            assert entity.count_lo == pytest.approx(exact.count_lo, abs=TOL)
            assert entity.count_hi == pytest.approx(exact.count_hi, abs=TOL)


@pytest.mark.parametrize("family", DATASETS)
def test_end_to_end_invariants(family):
    """The full pipeline query (pruning included) keeps every structural
    invariant of the answer contract."""
    dataset, field = _generate(family, 1)
    result = topk_interval_query(
        dataset.store,
        K,
        generic_levels(field, 0.3),
        generic_scorer(field, -3.0),
        r=16,
        label_field=field,
    )
    assert result.worlds_enumerated >= 1
    assert not result.degraded
    slot_totals = [0.0] * K
    for entity in result.entities:
        assert 0.0 <= entity.membership_probability <= 1.0 + TOL
        assert entity.count_lo <= entity.expected_count + TOL
        assert entity.expected_count <= entity.count_hi + TOL
        assert len(entity.slot_probabilities) == K
        assert sum(entity.slot_probabilities) <= (
            entity.membership_probability + TOL
        )
        for slot, mass in enumerate(entity.slot_probabilities):
            assert mass >= -TOL
            slot_totals[slot] += mass
    for total in slot_totals:
        assert total <= 1.0 + TOL
