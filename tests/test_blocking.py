"""Unit tests for repro.predicates.blocking."""

import pytest

from repro.core.records import RecordStore
from repro.core.verification import PipelineCounters
from repro.predicates.base import FunctionPredicate
from repro.predicates.blocking import (
    NeighborIndex,
    build_key_index,
    candidate_pairs,
    closure,
)
from tests.conftest import exact_name_predicate, make_store, shared_word_predicate


class TestBuildKeyIndex:
    def test_groups_by_key(self):
        store = make_store(["ann smith", "bob smith", "cara lee"])
        index = build_key_index(shared_word_predicate(), list(store))
        assert sorted(index["smith"]) == [0, 1]
        assert index["lee"] == [2]

    def test_duplicate_keys_counted_once(self):
        store = make_store(["ann ann"])
        index = build_key_index(shared_word_predicate(), list(store))
        assert index["ann"] == [0]


class TestClosure:
    def test_exact_match_closure(self):
        store = make_store(["x", "y", "x", "x"])
        uf = closure(exact_name_predicate(), list(store))
        assert uf.connected(0, 2)
        assert uf.connected(0, 3)
        assert not uf.connected(0, 1)

    def test_transitivity_through_chain(self):
        # a-b share 'x'; b-c share 'y': closure must connect a and c.
        chain = FunctionPredicate(
            evaluate_fn=lambda a, b: bool(
                set(a["name"].split()) & set(b["name"].split())
            ),
            keys_fn=lambda r: r["name"].split(),
            name="chain",
        )
        store = make_store(["x", "x y", "y"])
        uf = closure(chain, list(store))
        assert uf.connected(0, 2)

    def test_no_false_merges(self):
        store = make_store(["ann smith", "bob jones"])
        uf = closure(exact_name_predicate(), list(store))
        assert uf.n_components == 2

    def test_verification_applied_when_keys_overlap(self):
        # Keys collide on shared words, but evaluate demands full equality.
        predicate = FunctionPredicate(
            evaluate_fn=lambda a, b: a["name"] == b["name"],
            keys_fn=lambda r: r["name"].split(),
            name="exact-with-word-keys",
        )
        store = make_store(["ann smith", "ann jones"])
        uf = closure(predicate, list(store))
        assert not uf.connected(0, 1)

    def test_oversized_block_fallback_still_merges_identicals(self):
        predicate = FunctionPredicate(
            evaluate_fn=lambda a, b: a["name"] == b["name"],
            keys_fn=lambda r: ["shared-key"],
            name="one-big-block",
        )
        store = make_store(["dup"] * 6 + ["other"])
        uf = closure(predicate, list(store), max_block_pairs=3)
        assert uf.component_size(0) == 6


class TestCandidatePairs:
    def test_yields_each_pair_once(self):
        store = make_store(["a b", "b c", "c a"])
        pairs = list(candidate_pairs(shared_word_predicate(), list(store)))
        assert sorted(pairs) == [(0, 1), (0, 2), (1, 2)]
        assert len(pairs) == len(set(pairs))

    def test_verification_filters(self):
        predicate = FunctionPredicate(
            evaluate_fn=lambda a, b: a["name"] == b["name"],
            keys_fn=lambda r: r["name"].split(),
            name="exact",
        )
        store = make_store(["ann smith", "ann jones"])
        assert list(candidate_pairs(predicate, list(store))) == []
        unverified = list(candidate_pairs(predicate, list(store), verify=False))
        assert unverified == [(0, 1)]


class TestNeighborIndex:
    def test_neighbors_verified(self):
        store = make_store(["ann smith", "ann jones", "bob jones", "cara lee"])
        index = NeighborIndex(shared_word_predicate(), list(store))
        assert index.neighbors(store[0], exclude_position=0) == [1]
        assert index.neighbors(store[1], exclude_position=1) == [0, 2]

    def test_exclude_position(self):
        store = make_store(["ann smith", "ann smith"])
        index = NeighborIndex(shared_word_predicate(), list(store))
        assert index.neighbors(store[0], exclude_position=0) == [1]

    def test_probe_outside_indexed_set(self):
        store = make_store(["ann smith", "bob jones"])
        probe_store = make_store(["cara smith"])
        index = NeighborIndex(shared_word_predicate(), list(store))
        assert index.neighbors(probe_store[0]) == [0]

    def test_no_candidates(self):
        store = make_store(["ann smith"])
        probe_store = make_store(["zed zed"])
        index = NeighborIndex(shared_word_predicate(), list(store))
        assert index.candidate_positions(probe_store[0]) == set()


class TestNeighborIndexMemo:
    def test_distinct_probes_sharing_record_id_do_not_collide(self):
        # Regression: the memo used to key on (record_id, exclude_position)
        # alone, so a probe built outside the store — record_id 0, like
        # the first indexed record, but different content — was answered
        # with the first probe's cached list.
        store = make_store(["ann smith", "ann jones", "bob lee"])
        index = NeighborIndex(
            shared_word_predicate(), list(store), memoize=True
        )
        assert index.neighbors(store[0], exclude_position=0) == [1]
        impostor = make_store(["bob smith"])[0]
        assert impostor.record_id == store[0].record_id
        assert index.neighbors(impostor, exclude_position=0) == [2]
        # Both lists stay memoized under their own probe.
        assert index.neighbors(store[0], exclude_position=0) == [1]

    def test_memo_still_hits_for_the_same_probe(self):
        store = make_store(["ann smith", "ann jones"])
        counters = PipelineCounters()
        index = NeighborIndex(
            shared_word_predicate(),
            list(store),
            memoize=True,
            counters=counters,
        )
        index.neighbors(store[0], exclude_position=0)
        index.neighbors(store[0], exclude_position=0)
        assert counters.neighbor_memo_hits == 1

    def test_prime_injects_list(self):
        store = make_store(["ann smith", "ann jones"])
        counters = PipelineCounters()
        index = NeighborIndex(
            shared_word_predicate(),
            list(store),
            memoize=True,
            counters=counters,
        )
        index.prime(0, [1])
        assert index.neighbors(store[0], exclude_position=0) == [1]
        assert counters.neighbor_memo_hits == 1
        assert counters.predicate_evaluations == 0

    def test_prime_requires_memoize(self):
        store = make_store(["ann smith"])
        index = NeighborIndex(shared_word_predicate(), list(store))
        with pytest.raises(ValueError, match="memoizing"):
            index.prime(0, [])


class TestCountFiltering:
    """The count-filtering fast path must agree pairwise with evaluate."""

    def test_ngram_predicate_count_mode_equivalence(self):
        from repro.datasets import generate_citations
        from repro.predicates import citation_n1, citation_n2

        ds = generate_citations(n_records=300, seed=9)
        records = list(ds.store)
        for predicate in (citation_n1(), citation_n2()):
            assert predicate.count_verifiable
            index = NeighborIndex(predicate, records)
            assert index._count_mode  # noqa: SLF001 - asserting the fast path engaged
            for position in range(0, len(records), 17):
                probe = records[position]
                fast = index.neighbors(probe, exclude_position=position)
                slow = sorted(
                    other
                    for other in index.candidate_positions(probe)
                    if other != position
                    and predicate.evaluate(probe, records[other])
                )
                assert fast == slow, (predicate.name, position)

    def test_signature_path_equivalence(self):
        from repro.datasets import generate_students
        from repro.predicates import student_n2

        ds = generate_students(n_records=300, seed=9)
        records = list(ds.store)
        predicate = student_n2()
        for position in (0, 50, 123):
            probe = records[position]
            for other in range(len(records)):
                if other == position:
                    continue
                sig = predicate.evaluate_signatures(
                    predicate.signature(probe), predicate.signature(records[other])
                )
                assert sig == predicate.evaluate(probe, records[other])


class TestSortedNeighborhoodFallback:
    def test_oversized_block_with_mixed_type_field_values(self):
        # Mixed int/str field values used to crash the huge-block
        # sorted-neighborhood fallback (sorting raw values raises
        # TypeError: '<' not supported between 'int' and 'str').
        rows = [
            {"name": "ann smith", "code": 7},
            {"name": "ann smith", "code": "a7"},
            {"name": "bob jones", "code": 3},
            {"name": "bob jones", "code": "b3"},
            {"name": "ann smith", "code": 9},
        ]
        store = RecordStore.from_rows(rows)
        one_block = FunctionPredicate(
            evaluate_fn=lambda a, b: a["name"] == b["name"],
            keys_fn=lambda r: ["block"],
            name="one-block",
        )
        # 10 pairs > max_block_pairs forces the fallback path.
        uf = closure(one_block, list(store), max_block_pairs=1)
        assert uf.connected(0, 1)
        assert uf.connected(0, 4)
        assert uf.connected(2, 3)
        assert not uf.connected(0, 2)


class TestDiscardCountersParity:
    """Regression: the bare-index null counter sink must mirror
    PipelineCounters field-for-field, or a guarded predicate's first
    contained fault raises AttributeError mid-query."""

    def test_field_set_matches_pipeline_counters(self):
        from repro.predicates.blocking import _DiscardCounters

        sink = _DiscardCounters()
        assert set(vars(sink)) == set(PipelineCounters._INT_FIELDS)
        for field in PipelineCounters._INT_FIELDS:
            # Every field must be bump-able the way pipeline code does it.
            setattr(sink, field, getattr(sink, field) + 1)
            assert getattr(sink, field) == 1

    def test_bare_index_tolerates_contained_keying_fault(self):
        from repro.core.resilience import ExecutionPolicy, GuardedPredicate

        calls = {"n": 0}

        def flaky_keys(record):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("injected keying fault")
            return record["name"].split()

        inner = FunctionPredicate(
            evaluate_fn=lambda a, b: bool(
                set(a["name"].split()) & set(b["name"].split())
            ),
            keys_fn=flaky_keys,
            name="flaky-keys",
        )
        counters = PipelineCounters()
        state = ExecutionPolicy(on_error="degrade").start(counters)
        guarded = GuardedPredicate(inner, "necessary", state)
        store = make_store(
            ["ann smith", "ann jones", "bob smith", "ann brown"]
        )
        # No counters passed: the index falls back to _DiscardCounters.
        # Building it keys record 0 first — the injected fault fires and
        # is contained (record 0 simply drops out of every block).
        index = NeighborIndex(guarded, list(store))
        assert index.neighbors(store[1], exclude_position=1) == [3]
        assert counters.keying_errors_contained == 1


class TestCandidatePairsDedupe:
    """Regression: candidate_pairs deduped via a global seen-set of
    emitted pairs — O(pairs) memory and no signature fast path.  The
    rewrite owns each pair at its smallest shared key ordinal and
    verifies via signatures when the predicate supports them."""

    def _verified_reference(self, predicate, records):
        pairs = set()
        for a in range(len(records)):
            for b in range(a + 1, len(records)):
                shared = set(predicate.blocking_keys(records[a])) & set(
                    predicate.blocking_keys(records[b])
                )
                if shared and predicate.evaluate(records[a], records[b]):
                    pairs.add((a, b))
        return pairs

    def test_multi_shared_key_pairs_emitted_exactly_once(self):
        # "ann smith" pairs share BOTH words: two blocks propose the
        # same pair; exactly one may emit it.
        store = make_store(
            ["ann smith", "ann smith", "ann jones", "bob smith", "ann smith"]
        )
        predicate = shared_word_predicate()
        records = list(store)
        emitted = list(candidate_pairs(predicate, records))
        assert len(emitted) == len(set(emitted))
        assert set(emitted) == self._verified_reference(predicate, records)

    def test_signature_fast_path_matches_evaluate(self):
        from repro.datasets import generate_students
        from repro.predicates import student_n2

        ds = generate_students(n_records=150, seed=4)
        records = list(ds.store)
        predicate = student_n2()
        assert predicate.supports_signatures
        emitted = list(candidate_pairs(predicate, records))
        assert len(emitted) == len(set(emitted))
        assert set(emitted) == self._verified_reference(predicate, records)

    def test_unverified_pairs_also_unique(self):
        store = make_store(["ann smith", "ann smith", "smith ann"])
        emitted = list(
            candidate_pairs(shared_word_predicate(), list(store), verify=False)
        )
        assert sorted(emitted) == [(0, 1), (0, 2), (1, 2)]
        assert len(emitted) == len(set(emitted))
