"""Unit tests for the graph substrate (union-find, Graph, triangulation)."""

import pytest

from repro.graphs.adjacency import Graph
from repro.graphs.triangulation import (
    is_perfect_elimination_ordering,
    min_fill_ordering,
)
from repro.graphs.union_find import UnionFind


class TestUnionFind:
    def test_initial_components(self):
        uf = UnionFind(5)
        assert uf.n_components == 5
        assert not uf.connected(0, 1)

    def test_union_reduces_components(self):
        uf = UnionFind(5)
        assert uf.union(0, 1)
        assert uf.n_components == 4
        assert uf.connected(0, 1)

    def test_union_same_component_returns_false(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        uf.union(1, 2)
        assert not uf.union(0, 2)

    def test_transitive(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(1, 2)
        assert uf.connected(0, 3)

    def test_component_size(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(0, 2)
        assert uf.component_size(2) == 3
        assert uf.component_size(3) == 1

    def test_components_largest_first(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(3, 4)
        comps = uf.components()
        assert sorted(comps[0]) == [0, 1, 2]
        assert sorted(comps[1]) == [3, 4]

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_empty(self):
        assert UnionFind(0).components() == []


class TestGraph:
    def test_add_edge_and_neighbors(self):
        g = Graph(3)
        g.add_edge(0, 1)
        assert g.has_edge(1, 0)
        assert g.neighbors(0) == {1}
        assert g.degree(1) == 1

    def test_self_loop_rejected(self):
        g = Graph(2)
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_out_of_range_rejected(self):
        g = Graph(2)
        with pytest.raises(IndexError):
            g.add_edge(0, 5)

    def test_edges_iterates_once(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert sorted(g.edges()) == [(0, 1), (1, 2)]
        assert g.n_edges == 2

    def test_add_vertex(self):
        g = Graph(1)
        v = g.add_vertex()
        assert v == 1
        g.add_edge(0, 1)
        assert g.has_edge(0, 1)

    def test_subgraph_renumbers(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        sub = g.subgraph([1, 2, 3])
        assert sub.n_vertices == 3
        assert sub.has_edge(0, 1)  # old (1, 2)
        assert sub.has_edge(1, 2)  # old (2, 3)
        assert not sub.has_edge(0, 2)

    def test_copy_independent(self):
        g = Graph.from_edges(3, [(0, 1)])
        clone = g.copy()
        clone.add_edge(1, 2)
        assert not g.has_edge(1, 2)

    def test_remove_incident_edges(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        g.remove_incident_edges(1)
        assert g.n_edges == 0
        assert g.neighbors(0) == set()


class TestMinFill:
    def test_ordering_is_permutation(self):
        g = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        ordering, filled = min_fill_ordering(g)
        assert sorted(ordering) == list(range(5))

    def test_filled_graph_is_chordal(self):
        # A 5-cycle needs fill edges; the result must admit a PEO.
        g = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        ordering, filled = min_fill_ordering(g)
        assert is_perfect_elimination_ordering(filled, ordering)

    def test_filled_contains_original_edges(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        _, filled = min_fill_ordering(g)
        for u, v in g.edges():
            assert filled.has_edge(u, v)

    def test_tree_needs_no_fill(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        _, filled = min_fill_ordering(g)
        assert filled.n_edges == g.n_edges

    def test_chordal_input_unchanged(self):
        # A triangle with a pendant: already chordal.
        g = Graph.from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
        ordering, filled = min_fill_ordering(g)
        assert filled.n_edges == g.n_edges
        assert is_perfect_elimination_ordering(filled, ordering)

    def test_empty_graph(self):
        ordering, filled = min_fill_ordering(Graph(0))
        assert ordering == []
        assert filled.n_vertices == 0

    def test_peo_checker_rejects_bad_order(self):
        # On a path 0-1-2, eliminating the middle vertex first requires
        # its two neighbors to be adjacent (they are not).
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert not is_perfect_elimination_ordering(g, [1, 0, 2])
        assert is_perfect_elimination_ordering(g, [0, 1, 2])
