"""Brute-force verification of the Ans_R segmentation DP.

Enumerates every segmentation of small orderings directly and checks the
DP returns exactly the R best valid (threshold-consistent) ones.
"""

import itertools

import numpy as np
import pytest

from repro.clustering.correlation import ScoreMatrix, group_score
from repro.embedding.greedy import LinearEmbedding
from repro.embedding.segmentation import top_r_segmentations


def random_matrix(n: int, seed: int) -> ScoreMatrix:
    rng = np.random.default_rng(seed)
    m = ScoreMatrix(n)
    for i in range(n):
        for j in range(i + 1, n):
            m.set(i, j, float(rng.normal()))
    return m


def enumerate_segmentations(n: int):
    """Yield every segmentation of positions 0..n-1 as (start, end) lists."""
    for r in range(n):
        for cuts in itertools.combinations(range(1, n), r):
            bounds = [0, *cuts, n]
            yield [
                (bounds[i], bounds[i + 1] - 1) for i in range(len(bounds) - 1)
            ]


def brute_force_topk_segmentations(
    scores: ScoreMatrix, weights: list[float], k: int
):
    """All (segments, big_flags, score) with exactly k strictly-largest
    segments under some threshold, ranked by score."""
    n = scores.n
    results = {}
    for segments in enumerate_segmentations(n):
        seg_weights = [
            sum(weights[i] for i in range(start, end + 1))
            for start, end in segments
        ]
        score = sum(
            group_score(list(range(start, end + 1)), scores)
            for start, end in segments
        )
        ordered = sorted(seg_weights, reverse=True)
        if len(ordered) < k:
            continue
        # A threshold l with exactly k segments > l exists iff the k-th
        # largest weight strictly exceeds the (k+1)-th.
        if len(ordered) > k and ordered[k - 1] == ordered[k]:
            continue
        threshold = ordered[k] if len(ordered) > k else 0.0
        flags = tuple(w > threshold for w in seg_weights)
        results[(tuple(segments), flags)] = score
    return sorted(results.items(), key=lambda kv: -kv[1])


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("k", [1, 2])
def test_dp_matches_brute_force(seed, k):
    n = 6
    scores = random_matrix(n, seed)
    weights = [1.0 + (i % 3) for i in range(n)]
    embedding = LinearEmbedding(order=list(range(n)), breaks={0})

    brute = brute_force_topk_segmentations(scores, weights, k)
    if not brute:
        return
    dp = top_r_segmentations(
        scores, embedding, weights, k=k, r=4, max_span=n, max_thresholds=200
    )
    assert dp, f"seed={seed} k={k}: DP empty but brute force found answers"
    # Top score must match exactly.
    assert dp[0].score == pytest.approx(brute[0][1]), (seed, k)
    # Every DP answer must appear in the brute-force ranking with the
    # same score.
    brute_scores = {key: score for key, score in brute}
    for segmentation in dp:
        key = (segmentation.segments, segmentation.big_flags)
        assert key in brute_scores, (seed, k, key)
        assert segmentation.score == pytest.approx(brute_scores[key])
    # The i-th DP score matches the i-th brute-force score (the DP may
    # order ties differently, scores must agree rank-wise).
    for i, segmentation in enumerate(dp):
        assert segmentation.score == pytest.approx(brute[i][1]), (seed, k, i)


@pytest.mark.parametrize("seed", range(3))
def test_fast_r1_path_matches_full_dp_weights(seed):
    """topk_count_query's r=1 fast path must return the same K largest
    weights as running the full machinery (scores permitting)."""
    from repro.core.pruned_dedup import pruned_dedup
    from repro.core.topk import topk_count_query
    from repro.predicates.base import PredicateLevel
    from repro.scoring.pairwise import WeightedScorer
    from repro.similarity.vectorize import name_only_featurizer
    from tests.conftest import exact_name_predicate, make_store, shared_word_predicate

    rng = np.random.default_rng(seed)
    names = []
    for entity in range(6):
        count = int(rng.integers(1, 7))
        names.extend([f"entity{entity} tag{entity}"] * count)
    store = make_store(names)
    levels = [PredicateLevel(exact_name_predicate(), shared_word_predicate())]
    featurizer = name_only_featurizer()
    scorer = WeightedScorer(
        featurizer, [2.0, 2.0, 1.0, 1.0, 2.0], bias=-3.5
    )
    fast = topk_count_query(store, 2, levels, scorer, r=1, label_field="name")
    full = topk_count_query(store, 2, levels, scorer, r=2, label_field="name")
    fast_weights = [e.weight for e in fast.best.entities]
    full_weights = [e.weight for e in full.best.entities]
    if not fast.exact and not full.exact:
        assert fast_weights == full_weights
