"""Tests for labeled-CSV round-tripping."""

import pytest

from repro.datasets import generate_citations, load_dataset, save_dataset


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = str(tmp_path / "ds.csv")
        original = generate_citations(n_records=80, seed=3)
        save_dataset(original, path)
        loaded = load_dataset(path)
        assert loaded.n_records == original.n_records
        assert loaded.store.field_values("author") == original.store.field_values(
            "author"
        )
        assert [r.weight for r in loaded.store] == [
            r.weight for r in original.store
        ]
        # Labels re-encode densely but preserve the partition.
        assert loaded.gold_partition() == original.gold_partition()

    def test_missing_label_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("name,weight\nann,1.0\n")
        with pytest.raises(ValueError):
            load_dataset(str(path))

    def test_weight_optional(self, tmp_path):
        path = tmp_path / "nw.csv"
        path.write_text("name,gold_entity\nann,e1\nbob,e2\nann,e1\n")
        loaded = load_dataset(str(path))
        assert loaded.store.total_weight() == 3.0
        assert loaded.n_entities == 2

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("name,gold_entity\n")
        with pytest.raises(ValueError):
            load_dataset(str(path))

    def test_malformed_weight_names_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "name,weight,gold_entity\nann,1.0,e1\nbob,oops,e2\n"
        )
        with pytest.raises(ValueError, match=r"malformed weight 'oops' \(row 2"):
            load_dataset(str(path))

    @pytest.mark.parametrize("bad", ["nan", "inf", "-inf", "NaN", "Infinity"])
    def test_non_finite_weight_rejected(self, tmp_path, bad):
        # float() happily parses these, but a nan/inf weight silently
        # poisons every weight sum and bound downstream.
        path = tmp_path / "nonfinite.csv"
        path.write_text(f"name,weight,gold_entity\nann,{bad},e1\n")
        with pytest.raises(ValueError, match=r"non-finite weight .* \(row 1"):
            load_dataset(str(path))

    def test_empty_weight_cell_rejected(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("name,weight,gold_entity\nann,,e1\n")
        with pytest.raises(ValueError, match="row 1"):
            load_dataset(str(path))

    def test_cli_generate_output_loadable(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "gen.csv"
        main(["generate", "--kind", "students", "--n", "50", "--output", str(out)])
        loaded = load_dataset(str(out))
        assert loaded.n_records == 50
        assert loaded.n_entities >= 1
