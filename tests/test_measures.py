"""Unit tests for repro.similarity.measures."""

import pytest

from repro.similarity.measures import (
    common_fraction_of_smaller,
    containment,
    cosine_set,
    dice,
    jaccard,
    overlap_coefficient,
    overlap_count,
)

A = frozenset({"a", "b", "c"})
B = frozenset({"b", "c", "d", "e"})
EMPTY = frozenset()


class TestJaccard:
    def test_known_value(self):
        assert jaccard(A, B) == pytest.approx(2 / 5)

    def test_identical(self):
        assert jaccard(A, A) == 1.0

    def test_disjoint(self):
        assert jaccard(A, frozenset({"x"})) == 0.0

    def test_both_empty(self):
        assert jaccard(EMPTY, EMPTY) == 1.0

    def test_one_empty(self):
        assert jaccard(A, EMPTY) == 0.0

    def test_symmetric(self):
        assert jaccard(A, B) == jaccard(B, A)


class TestOverlap:
    def test_count(self):
        assert overlap_count(A, B) == 2

    def test_coefficient_uses_smaller(self):
        assert overlap_coefficient(A, B) == pytest.approx(2 / 3)

    def test_coefficient_subset_is_one(self):
        assert overlap_coefficient(frozenset({"b", "c"}), B) == 1.0

    def test_coefficient_empty(self):
        assert overlap_coefficient(EMPTY, EMPTY) == 1.0
        assert overlap_coefficient(A, EMPTY) == 0.0

    def test_common_fraction_accepts_lists(self):
        assert common_fraction_of_smaller(["a", "b"], ["b", "c"]) == 0.5


class TestDiceCosineContainment:
    def test_dice(self):
        assert dice(A, B) == pytest.approx(4 / 7)

    def test_cosine(self):
        assert cosine_set(A, B) == pytest.approx(2 / (12 ** 0.5))

    def test_containment_directional(self):
        assert containment(A, B) == pytest.approx(2 / 3)
        assert containment(B, A) == pytest.approx(2 / 4)

    def test_containment_empty_base(self):
        assert containment(EMPTY, A) == 1.0
