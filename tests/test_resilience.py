"""Tests for the resilient execution layer (repro.core.resilience).

Covers the guard wrappers' role-safe fallbacks and counters, policy
validation, anytime degradation of every query engine, keying-compromise
handling, the stream quarantine, and — critically — that a policy with
no faults changes nothing about the pipeline's answers.
"""

import time

import pytest

from repro.core.incremental import IncrementalTopK
from repro.core.pruned_dedup import pruned_dedup
from repro.core.rank_query import thresholded_rank_query, topk_rank_query
from repro.core.records import GroupSet
from repro.core.resilience import (
    REASON_DEADLINE,
    REASON_STAGE_BUDGET,
    ExecutionPolicy,
    GuardedPredicate,
    GuardedScorer,
    ResilienceExhausted,
    StageRunner,
    guard_levels,
    necessary_compromised,
)
from repro.core.topk import topk_count_query
from repro.core.verification import PipelineCounters, VerificationContext
from repro.predicates.base import FunctionPredicate, PredicateLevel
from repro.scoring.pairwise import PairwiseScorer
from tests.conftest import exact_name_predicate, make_store, shared_word_predicate


def raising_predicate(name="boom", keys_fn=None):
    def explode(a, b):
        raise RuntimeError("predicate exploded")

    return FunctionPredicate(
        evaluate_fn=explode,
        keys_fn=keys_fn or (lambda r: r["name"].split()),
        name=name,
    )


def keying_raiser(trigger="poison"):
    def keys(record):
        if trigger in record["name"]:
            raise ValueError("keying exploded")
        return record["name"].split()

    return FunctionPredicate(
        evaluate_fn=lambda a, b: bool(
            set(a["name"].split()) & set(b["name"].split())
        ),
        keys_fn=keys,
        name="keying-raiser",
    )


class ConstantScorer(PairwiseScorer):
    def __init__(self, value=1.0):
        self.value = value
        self.calls = 0

    def score(self, a, b):
        self.calls += 1
        return self.value


class RaisingScorer(PairwiseScorer):
    def score(self, a, b):
        raise RuntimeError("scorer exploded")


def armed_state(counters=None, **policy_kwargs):
    counters = counters if counters is not None else PipelineCounters()
    return ExecutionPolicy(**policy_kwargs).start(counters)


def records_ab():
    store = make_store(["ann smith", "ann smyth"])
    return store[0], store[1]


class TestExecutionPolicy:
    def test_rejects_bad_on_error(self):
        with pytest.raises(ValueError, match="on_error"):
            ExecutionPolicy(on_error="explode")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_seconds": -1.0},
            {"max_stage_evaluations": -1},
            {"call_timeout_seconds": -0.5},
        ],
    )
    def test_rejects_negative_budgets(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionPolicy(**kwargs)

    def test_policy_is_hashable(self):
        # The incremental engine keys its query cache on (k, policy).
        assert hash(ExecutionPolicy()) == hash(ExecutionPolicy())
        assert ExecutionPolicy(deadline_seconds=1.0) != ExecutionPolicy()

    def test_deadline_exhausts_state(self):
        state = armed_state(deadline_seconds=0.0)
        time.sleep(0.002)
        with pytest.raises(ResilienceExhausted) as err:
            state.tick()
        assert err.value.reason == REASON_DEADLINE
        # Once exhausted, check() keeps raising.
        with pytest.raises(ResilienceExhausted):
            state.check()

    def test_stage_budget_resets_per_stage(self):
        state = armed_state(max_stage_evaluations=2)
        state.tick()
        state.tick()
        with pytest.raises(ResilienceExhausted) as err:
            state.tick()
        assert err.value.reason == REASON_STAGE_BUDGET
        state.begin_stage()
        state.tick()  # fresh budget


class TestGuardedPredicate:
    def test_sufficient_fallback_is_false(self):
        a, b = records_ab()
        counters = PipelineCounters()
        guard = GuardedPredicate(
            raising_predicate(), "sufficient", armed_state(counters)
        )
        assert guard.evaluate(a, b) is False
        assert counters.predicate_errors_contained == 1

    def test_necessary_fallback_is_true(self):
        a, b = records_ab()
        counters = PipelineCounters()
        guard = GuardedPredicate(
            raising_predicate(), "necessary", armed_state(counters)
        )
        assert guard.evaluate(a, b) is True
        assert counters.predicate_errors_contained == 1

    def test_on_error_raise_propagates(self):
        a, b = records_ab()
        guard = GuardedPredicate(
            raising_predicate(), "sufficient", armed_state(on_error="raise")
        )
        with pytest.raises(RuntimeError, match="predicate exploded"):
            guard.evaluate(a, b)

    def test_healthy_verdicts_pass_through(self):
        a, b = records_ab()
        guard = GuardedPredicate(
            shared_word_predicate(), "necessary", armed_state()
        )
        assert guard.evaluate(a, b) is True  # share "ann"
        assert guard.keying_failures == 0

    def test_keying_failure_yields_no_keys_and_marks_guard(self):
        store = make_store(["poison pill", "fine record"])
        counters = PipelineCounters()
        guard = GuardedPredicate(keying_raiser(), "necessary", armed_state(counters))
        assert guard.blocking_keys(store[0]) == []
        assert list(guard.blocking_keys(store[1])) == ["fine", "record"]
        assert guard.keying_failures == 1
        assert counters.keying_errors_contained == 1

    def test_call_timeout_replaces_slow_verdict(self):
        a, b = records_ab()
        counters = PipelineCounters()
        slow = FunctionPredicate(
            evaluate_fn=lambda x, y: time.sleep(0.02) or True,
            keys_fn=lambda r: [r["name"]],
            name="slow",
        )
        guard = GuardedPredicate(
            slow, "sufficient", armed_state(counters, call_timeout_seconds=0.001)
        )
        # The slow call really returned True; the guard deems it
        # unreliable and substitutes the role-safe False.
        assert guard.evaluate(a, b) is False
        assert counters.predicate_timeouts_contained == 1

    def test_never_enters_verdict_cache(self):
        guard = GuardedPredicate(
            shared_word_predicate(), "necessary", armed_state()
        )
        assert guard.symmetric is False

    def test_rejects_unknown_role(self):
        with pytest.raises(ValueError, match="role"):
            GuardedPredicate(shared_word_predicate(), "optional", armed_state())


class TestGuardedScorer:
    def test_error_contained_as_neutral_score(self):
        a, b = records_ab()
        counters = PipelineCounters()
        guard = GuardedScorer(RaisingScorer(), armed_state(counters))
        assert guard.score(a, b) == 0.0
        assert counters.scorer_errors_contained == 1

    def test_on_error_raise_propagates(self):
        a, b = records_ab()
        guard = GuardedScorer(RaisingScorer(), armed_state(on_error="raise"))
        with pytest.raises(RuntimeError, match="scorer exploded"):
            guard.score(a, b)

    def test_healthy_scores_pass_through(self):
        a, b = records_ab()
        guard = GuardedScorer(ConstantScorer(2.5), armed_state())
        assert guard.score(a, b) == 2.5


class TestStageRunner:
    def test_records_completed_stages(self):
        runner = StageRunner(VerificationContext(), armed_state())
        assert runner.run("level-1", "collapse", lambda: 41) == 41
        assert not runner.aborted
        [record] = runner.records
        assert (record.level_name, record.stage, record.completed) == (
            "level-1",
            "collapse",
            True,
        )

    def test_abort_keeps_reason_and_incomplete_record(self):
        state = armed_state(max_stage_evaluations=0)
        runner = StageRunner(VerificationContext(), state)
        value = runner.run("level-1", "prune", lambda: state.tick())
        assert value is None
        assert runner.aborted
        assert runner.reason == REASON_STAGE_BUDGET
        assert runner.records[-1].completed is False
        assert runner.records[-1].reason == REASON_STAGE_BUDGET

    def test_without_state_only_records(self):
        runner = StageRunner(VerificationContext())
        assert runner.run("level-1", "collapse", lambda: "ok") == "ok"
        assert runner.records[0].completed


def default_levels():
    return [PredicateLevel(exact_name_predicate(), shared_word_predicate())]


class TestNoFaultEquivalence:
    """A policy with no faults must not change any pipeline answer."""

    def test_pruned_dedup_identical_under_policy(self, tiny_store):
        plain = pruned_dedup(tiny_store, 2, default_levels())
        policed = pruned_dedup(
            tiny_store, 2, default_levels(), policy=ExecutionPolicy()
        )
        assert not policed.degraded
        assert policed.groups.weights() == plain.groups.weights()
        assert [
            (s.level_name, s.m, s.bound, s.certified) for s in policed.stats
        ] == [(s.level_name, s.m, s.bound, s.certified) for s in plain.stats]
        # Guards disable the verdict cache, so the policed run may
        # evaluate more — but it must never contain anything.
        assert policed.counters.total_contained == 0

    def test_topk_rank_query_identical_under_policy(self, tiny_store):
        plain = topk_rank_query(tiny_store, 2, default_levels())
        policed = topk_rank_query(
            tiny_store, 2, default_levels(), policy=ExecutionPolicy()
        )
        assert not policed.degraded
        assert policed.ranking == plain.ranking

    def test_thresholded_rank_query_identical_under_policy(self, tiny_store):
        plain = thresholded_rank_query(tiny_store, 2.0, default_levels())
        policed = thresholded_rank_query(
            tiny_store, 2.0, default_levels(), policy=ExecutionPolicy()
        )
        assert not policed.degraded
        assert policed.ranking == plain.ranking
        assert policed.certain == plain.certain

    def test_topk_count_query_identical_under_policy(self, tiny_store):
        scorer = ConstantScorer(1.0)
        plain = topk_count_query(
            tiny_store, 2, default_levels(), scorer, label_field="name"
        )
        policed = topk_count_query(
            tiny_store,
            2,
            default_levels(),
            ConstantScorer(1.0),
            label_field="name",
            policy=ExecutionPolicy(),
        )
        assert not policed.degraded
        assert policed.best.entities == plain.best.entities


class TestAnytimeDegradation:
    def test_expired_deadline_degrades_pruned_dedup(self, tiny_store):
        result = pruned_dedup(
            tiny_store,
            2,
            default_levels(),
            policy=ExecutionPolicy(deadline_seconds=0.0),
        )
        assert result.degraded
        assert result.degraded_reason == REASON_DEADLINE
        # Last consistent state: nothing collapsed yet.
        assert len(result.groups) == len(tiny_store)
        assert result.stage_records[-1].completed is False

    def test_stage_budget_degrades_with_partial_progress(self, tiny_store):
        result = pruned_dedup(
            tiny_store,
            2,
            default_levels(),
            policy=ExecutionPolicy(max_stage_evaluations=1),
        )
        assert result.degraded
        assert result.degraded_reason == REASON_STAGE_BUDGET
        # The collapse stage needs no guarded evaluate calls (keys imply
        # match), so the level-1 closure completed before exhaustion.
        completed = [r for r in result.stage_records if r.completed]
        assert [(r.level_name, r.stage) for r in completed][0][1] == "collapse"
        assert len(result.groups) < len(tiny_store)

    def test_degraded_groups_never_over_merge(self, tiny_store):
        # Against the clean run's *collapse* partition (pruning only
        # drops groups, never splits them): every degraded group must
        # sit inside one clean group.
        from repro.core.collapse import collapse

        clean = collapse(
            GroupSet.singletons(tiny_store), exact_name_predicate()
        )
        degraded = pruned_dedup(
            tiny_store,
            2,
            default_levels(),
            policy=ExecutionPolicy(max_stage_evaluations=1),
        )
        clean_members = [set(g.member_ids) for g in clean]
        for group in degraded.groups:
            members = set(group.member_ids)
            assert any(members <= other for other in clean_members)

    def test_topk_count_query_degrades_to_heaviest_groups(self, tiny_store):
        result = topk_count_query(
            tiny_store,
            2,
            default_levels(),
            ConstantScorer(),
            label_field="name",
            policy=ExecutionPolicy(deadline_seconds=0.0),
        )
        assert result.degraded
        assert result.degraded_reason == REASON_DEADLINE
        assert len(result.answers) == 1
        assert len(result.best.entities) <= 2
        weights = [e.weight for e in result.best.entities]
        assert weights == sorted(weights, reverse=True)

    def test_scoring_stage_shares_the_deadline(self):
        # Pruning is cheap here (collapse needs no evaluate calls and
        # the necessary graph is small); the scorer stalls past the
        # query deadline, so exhaustion must surface during scoring.
        store = make_store(["a x", "b x", "c x", "d x", "e x", "f x"])

        class StallingScorer(PairwiseScorer):
            def score(self, a, b):
                time.sleep(0.4)
                return 1.0

        result = topk_count_query(
            store,
            2,
            default_levels(),
            StallingScorer(),
            label_field="name",
            policy=ExecutionPolicy(deadline_seconds=0.3),
        )
        assert result.degraded
        assert result.degraded_reason == REASON_DEADLINE
        scoring = [
            r for r in result.pruning.stage_records if r.level_name == "scoring"
        ]
        assert scoring and scoring[-1].completed is False

    def test_rank_query_degrades(self, tiny_store):
        result = topk_rank_query(
            tiny_store,
            2,
            default_levels(),
            policy=ExecutionPolicy(deadline_seconds=0.0),
        )
        assert result.degraded
        assert result.degraded_reason == REASON_DEADLINE
        assert not result.certain
        assert all(not entry.resolved for entry in result.ranking)

    def test_threshold_query_degrades(self, tiny_store):
        result = thresholded_rank_query(
            tiny_store,
            2.0,
            default_levels(),
            policy=ExecutionPolicy(deadline_seconds=0.0),
        )
        assert result.degraded
        assert not result.certain


class TestKeyingCompromise:
    def test_necessary_keying_failure_stands_pruning_down(self):
        # "poison" records raise inside the necessary predicate's
        # blocking_keys: the N-graph may be missing edges, so the level
        # must not prune anything (bound forced to 0).
        store = make_store(
            ["ann smith", "ann smith", "poison pill", "bob jones"]
        )
        levels = [PredicateLevel(exact_name_predicate(), keying_raiser())]
        clean_groups = len(
            pruned_dedup(store, 1, levels_without_faults(store)).groups
        )
        result = pruned_dedup(
            store, 1, levels, policy=ExecutionPolicy()
        )
        assert not result.degraded
        assert result.counters.keying_errors_contained > 0
        assert result.stats[-1].bound == 0.0
        assert result.stats[-1].certified is False
        # Nothing pruned: every collapsed group survives.
        assert len(result.groups) == 3 >= clean_groups

    def test_rank_query_skips_rank_pruning_when_compromised(self):
        store = make_store(
            ["ann smith", "ann smith", "poison pill", "bob jones"]
        )
        levels = [PredicateLevel(exact_name_predicate(), keying_raiser())]
        result = topk_rank_query(store, 1, levels, policy=ExecutionPolicy())
        assert not result.degraded
        assert result.n_extra_pruned == 0
        assert all(not entry.resolved for entry in result.ranking)

    def test_threshold_query_forfeits_certainty_when_compromised(self):
        store = make_store(
            ["ann smith", "ann smith", "poison pill", "bob jones"]
        )
        levels = [PredicateLevel(exact_name_predicate(), keying_raiser())]
        result = thresholded_rank_query(
            store, 2.0, levels, policy=ExecutionPolicy()
        )
        assert not result.degraded
        assert result.certain is False
        assert result.n_extra_pruned == 0

    def test_guard_levels_and_detection(self):
        state = armed_state()
        [level] = guard_levels(default_levels(), state)
        assert isinstance(level.sufficient, GuardedPredicate)
        assert isinstance(level.necessary, GuardedPredicate)
        assert not necessary_compromised(level)
        store = make_store(["poison"])
        guarded = PredicateLevel(
            exact_name_predicate(),
            GuardedPredicate(keying_raiser(), "necessary", state),
        )
        guarded.necessary.blocking_keys(store[0])
        assert necessary_compromised(guarded)


def levels_without_faults(store):
    return [PredicateLevel(exact_name_predicate(), shared_word_predicate())]


class TestIncrementalResilience:
    def test_query_accepts_policy_and_degrades(self):
        stream = IncrementalTopK(default_levels())
        for name in ["ann smith", "ann smith", "bob jones"]:
            stream.add({"name": name})
        result = stream.query(1, policy=ExecutionPolicy(deadline_seconds=0.0))
        assert result.degraded
        assert result.degraded_reason == REASON_DEADLINE

    def test_query_cache_is_per_policy(self):
        stream = IncrementalTopK(default_levels())
        stream.add({"name": "ann smith"})
        degraded = stream.query(1, policy=ExecutionPolicy(deadline_seconds=0.0))
        clean = stream.query(1)
        assert degraded.degraded and not clean.degraded
        # Both results stay cached independently.
        assert stream.query(1) is clean
        assert (
            stream.query(1, policy=ExecutionPolicy(deadline_seconds=0.0))
            is degraded
        )

    def test_policy_without_faults_matches_plain_query(self):
        plain = IncrementalTopK(default_levels())
        policed = IncrementalTopK(default_levels())
        names = ["ann smith", "ann smith", "a smith", "bob jones", "bob jones"]
        for name in names:
            plain.add({"name": name})
            policed.add({"name": name})
        a = plain.query(2)
        b = policed.query(2, policy=ExecutionPolicy())
        assert not b.degraded
        assert a.groups.weights() == b.groups.weights()


class TestQuarantine:
    def test_keying_poison_goes_to_dead_letters(self):
        stream = IncrementalTopK(
            [PredicateLevel(keying_raiser(), shared_word_predicate())]
        )
        assert stream.add({"name": "fine record"}) == 0
        assert stream.add({"name": "poison pill"}) == -1
        assert stream.add({"name": "fine record"}) == 1
        assert len(stream) == 2
        [letter] = stream.dead_letters
        assert letter.stage == "keying"
        assert letter.fields == {"name": "poison pill"}
        assert "keying exploded" in letter.error
        assert stream.verification.counters.records_quarantined == 1

    def test_evaluate_poison_goes_to_dead_letters(self):
        def explode_on_poison(a, b):
            if "poison" in a["name"] or "poison" in b["name"]:
                raise RuntimeError("evaluate exploded")
            return a["name"] == b["name"]

        sufficient = FunctionPredicate(
            evaluate_fn=explode_on_poison,
            keys_fn=lambda r: r["name"].split(),
            name="eval-raiser",
        )
        stream = IncrementalTopK(
            [PredicateLevel(sufficient, shared_word_predicate())]
        )
        stream.add({"name": "ann smith"})
        assert stream.add({"name": "poison smith"}) == -1
        [letter] = stream.dead_letters
        assert letter.stage == "evaluate"
        # The stream keeps answering queries.
        result = stream.query(1)
        assert len(result.groups) == 1

    def test_quarantined_record_leaves_no_state_behind(self):
        stream = IncrementalTopK(
            [PredicateLevel(keying_raiser(), shared_word_predicate())]
        )
        stream.add({"name": "fine record"})
        version_before = stream.version
        stream.add({"name": "poison pill"})
        assert stream.version == version_before
        assert len(stream.current_store()) == 1
        groups = stream.collapsed_groups()
        assert {r for g in groups for r in g.member_ids} == {0}

    def test_quarantine_disabled_propagates(self):
        stream = IncrementalTopK(
            [PredicateLevel(keying_raiser(), shared_word_predicate())],
            quarantine=False,
        )
        with pytest.raises(ValueError, match="keying exploded"):
            stream.add({"name": "poison pill"})


class TestContainmentInsidePipelines:
    def test_raising_necessary_never_prunes_answers(self, tiny_store):
        # A necessary predicate that raises on every pair falls back to
        # True everywhere: the N-graph becomes complete, bounds deflate,
        # and nothing true can be pruned away.
        levels = [PredicateLevel(exact_name_predicate(), raising_predicate())]
        result = pruned_dedup(
            tiny_store, 2, levels, policy=ExecutionPolicy()
        )
        assert not result.degraded
        assert result.counters.predicate_errors_contained > 0
        clean = pruned_dedup(tiny_store, 2, levels_without_faults(tiny_store))
        surviving = {
            r for g in result.groups for r in g.member_ids
        }
        clean_surviving = {r for g in clean.groups for r in g.member_ids}
        assert clean_surviving <= surviving

    def test_raising_sufficient_never_merges(self, tiny_store):
        # A sufficient predicate that raises on every pair falls back to
        # False everywhere: no record can be merged with any other.
        levels = [PredicateLevel(raising_predicate(), shared_word_predicate())]
        result = pruned_dedup(
            tiny_store, len(tiny_store), levels, policy=ExecutionPolicy()
        )
        assert not result.degraded
        assert all(group.size == 1 for group in result.groups)

    def test_on_error_raise_policy_propagates_from_pipeline(self, tiny_store):
        levels = [PredicateLevel(raising_predicate(), shared_word_predicate())]
        with pytest.raises(RuntimeError, match="predicate exploded"):
            pruned_dedup(
                tiny_store,
                2,
                levels,
                policy=ExecutionPolicy(on_error="raise"),
            )


class TestVerdictCacheFifo:
    def test_stream_past_limit_matches_batch(self):
        names = [f"entity {i % 7} common" for i in range(40)]
        limited = IncrementalTopK(default_levels(), verdict_cache_limit=5)
        for name in names:
            limited.add({"name": name})
        batch = pruned_dedup(make_store(names), 3, default_levels())
        streamed = limited.query(3)
        assert sorted(g.weight for g in streamed.groups) == sorted(
            g.weight for g in batch.groups
        )

    def test_singleton_groupset_helper(self, tiny_store):
        # Guard the invariant the degraded paths rely on: singleton
        # group sets cover every record exactly once.
        groups = GroupSet.singletons(tiny_store)
        assert sorted(r for g in groups for r in g.member_ids) == list(
            range(len(tiny_store))
        )
