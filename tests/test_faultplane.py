"""Unit tests for the unified fault plane (repro.testing.faultplane)."""

import errno
import multiprocessing
import time

import pytest

from repro.core.parallel import fork_available
from repro.core.retry import (
    BREAKERS,
    SITE_CHECKPOINT_WRITE,
    SITE_SHM_ATTACH,
    SITE_SHM_CREATE,
    SITE_WAL_APPEND,
    SITE_WAL_FSYNC,
    SITE_WORKER_CRASH,
    SITE_WORKER_HANG,
    fault_hook_installed,
    fire_fault,
    install_fault_hook,
)
from repro.observability import MetricsRegistry
from repro.testing import WORKER_CRASH_EXIT, FaultPlan, FaultPlane


def test_rate_validation():
    with pytest.raises(ValueError):
        FaultPlane(wal_append_rate=1.5)
    with pytest.raises(ValueError):
        FaultPlane(worker_crash_rate=-0.1)
    with pytest.raises(ValueError):
        FaultPlane(hang_seconds=-1)


def test_draw_is_deterministic_and_order_independent():
    plane = FaultPlane(seed=11)
    a = plane.draw("wal.append", {"index": 5, "attempt": 0})
    b = plane.draw("wal.append", {"attempt": 0, "index": 5})
    assert a == b == FaultPlane(seed=11).draw(
        "wal.append", {"index": 5, "attempt": 0}
    )
    assert 0.0 <= a < 1.0
    assert plane.draw("wal.append", {"index": 6, "attempt": 0}) != a
    assert FaultPlane(seed=12).draw(
        "wal.append", {"index": 5, "attempt": 0}
    ) != a


def test_persistent_plane_ignores_attempt():
    transient = FaultPlane(seed=3)
    assert transient.draw("s", {"index": 1, "attempt": 0}) != transient.draw(
        "s", {"index": 1, "attempt": 1}
    )
    persistent = FaultPlane(seed=3, persistent=True)
    assert persistent.draw("s", {"index": 1, "attempt": 0}) == persistent.draw(
        "s", {"index": 1, "attempt": 1}
    )


def _first_faulting_ids(plane, site, salt=None, rate=0.5):
    """First ids dict whose draw falls under *rate* for *site*."""
    for index in range(1000):
        ids = {"index": index, "attempt": 0}
        if plane.draw(salt or site, ids) < rate:
            return ids
    raise AssertionError("no faulting draw in 1000 tries")


def test_wal_append_eio_and_enospc_injection():
    plane = FaultPlane(seed=5, wal_append_rate=0.5)
    ids = _first_faulting_ids(plane, SITE_WAL_APPEND)
    with pytest.raises(OSError) as exc_info:
        plane.hook(SITE_WAL_APPEND, ids)
    assert exc_info.value.errno == errno.EIO
    assert plane.injected[SITE_WAL_APPEND] == 1

    enospc = FaultPlane(seed=5, wal_enospc_rate=0.5)
    ids = _first_faulting_ids(enospc, SITE_WAL_APPEND, salt="wal.enospc")
    with pytest.raises(OSError) as exc_info:
        enospc.hook(SITE_WAL_APPEND, ids)
    assert exc_info.value.errno == errno.ENOSPC


def test_enospc_wins_over_eio_on_same_append():
    plane = FaultPlane(seed=5, wal_append_rate=1.0, wal_enospc_rate=1.0)
    with pytest.raises(OSError) as exc_info:
        plane.hook(SITE_WAL_APPEND, {"index": 0, "attempt": 0})
    assert exc_info.value.errno == errno.ENOSPC


@pytest.mark.parametrize(
    ("site", "rate_name", "expected_errno"),
    [
        (SITE_WAL_FSYNC, "wal_fsync_rate", errno.EIO),
        (SITE_CHECKPOINT_WRITE, "checkpoint_rate", errno.EIO),
        (SITE_SHM_CREATE, "shm_create_rate", errno.ENOMEM),
        (SITE_SHM_ATTACH, "shm_attach_rate", errno.ENOENT),
    ],
)
def test_site_injection_errno(site, rate_name, expected_errno):
    plane = FaultPlane(seed=1, **{rate_name: 1.0})
    with pytest.raises(OSError) as exc_info:
        plane.hook(site, {"index": 0, "attempt": 0})
    assert exc_info.value.errno == expected_errno
    assert plane.injected[site] == 1
    # Zero rate: same ids, nothing fires.
    clean = FaultPlane(seed=1)
    clean.hook(site, {"index": 0, "attempt": 0})
    assert clean.total_injected == 0


def test_worker_hang_sleeps_bounded():
    plane = FaultPlane(seed=1, worker_hang_rate=1.0, hang_seconds=0.05)
    started = time.perf_counter()
    plane.hook(SITE_WORKER_HANG, {"shard": 0, "attempt": 0})
    assert 0.04 <= time.perf_counter() - started < 1.0
    assert plane.injected[SITE_WORKER_HANG] == 1


@pytest.mark.skipif(
    not fork_available(), reason="platform has no fork start method"
)
def test_worker_crash_exits_with_marker_status():
    plane = FaultPlane(seed=1, worker_crash_rate=1.0)
    ctx = multiprocessing.get_context("fork")
    child = ctx.Process(
        target=plane.hook, args=(SITE_WORKER_CRASH, {"shard": 0, "attempt": 0})
    )
    child.start()
    child.join(30)
    assert child.exitcode == WORKER_CRASH_EXIT


def test_active_installs_and_restores_hook():
    plane = FaultPlane(seed=2, wal_append_rate=1.0)
    sentinel_calls = []
    previous = install_fault_hook(lambda s, i: sentinel_calls.append(s))
    try:
        with plane.active():
            assert fault_hook_installed()
            with pytest.raises(OSError):
                fire_fault(SITE_WAL_APPEND, index=0, attempt=0)
        # The sentinel hook is back after the block.
        fire_fault(SITE_WAL_APPEND, index=0, attempt=0)
        assert sentinel_calls == [SITE_WAL_APPEND]
    finally:
        install_fault_hook(previous)


def test_active_resets_breakers_both_ways():
    breaker = BREAKERS.breaker("faultplane-test", failure_threshold=1)
    breaker.record_failure()
    assert not breaker.allow()
    with FaultPlane(seed=0).active():
        assert breaker.allow()
        breaker.record_failure()
    assert breaker.allow()


def test_active_attaches_metrics_to_injections():
    metrics = MetricsRegistry()
    plane = FaultPlane(seed=4, wal_fsync_rate=1.0)
    with plane.active(metrics=metrics):
        with pytest.raises(OSError):
            fire_fault(SITE_WAL_FSYNC, index=0, attempt=0)
    assert (
        metrics.value(
            "repro_faults_injected_total", site=SITE_WAL_FSYNC, kind="eio"
        )
        == 1.0
    )
    assert plane.total_injected == 1


def test_chaos_bridges_share_the_seed():
    plane = FaultPlane(seed=9)
    plan = plane.chaos_plan(error_rate=0.1)
    assert isinstance(plan, FaultPlan)
    assert plan.seed == 9
    assert plan.error_rate == 0.1
