"""Assorted coverage tests for smaller public surfaces."""


from repro.core.records import RecordStore
from tests.conftest import make_store, shared_word_predicate


class TestReportRendering:
    def test_bool_and_string_cells(self):
        from repro.experiments import format_table

        rows = [{"ok": True, "name": "x"}, {"ok": False, "name": "longer"}]
        text = format_table(rows)
        assert "True" in text and "False" in text
        assert "longer" in text

    def test_missing_keys_render_empty(self):
        from repro.experiments import format_table

        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        lines = text.splitlines()
        assert len(lines) == 4


class TestSpectralRobustness:
    def test_weighted_component(self):
        from repro.clustering.correlation import ScoreMatrix
        from repro.embedding.spectral import spectral_embedding

        m = ScoreMatrix(6)
        weights = [5.0, 0.1, 3.0, 0.2, 4.0]
        for i, w in enumerate(weights):
            m.set(i, i + 1, w)
        emb = spectral_embedding(m)
        assert sorted(emb.order) == list(range(6))

    def test_mixed_components_and_singletons(self):
        from repro.clustering.correlation import ScoreMatrix
        from repro.embedding.spectral import spectral_embedding

        m = ScoreMatrix(7)
        m.set(0, 1, 1.0)
        m.set(1, 2, 1.0)
        m.set(4, 5, 2.0)
        emb = spectral_embedding(m)
        assert sorted(emb.order) == list(range(7))
        assert len(emb.breaks) >= 3


class TestIncrementalCapBehavior:
    def test_verification_cap_bounds_insert_cost(self):
        from repro.core.incremental import IncrementalTopK
        from repro.predicates.base import FunctionPredicate, PredicateLevel

        calls = {"n": 0}

        def expensive_eval(a, b):
            calls["n"] += 1
            return a["name"] == b["name"]

        level = PredicateLevel(
            FunctionPredicate(
                evaluate_fn=expensive_eval,
                keys_fn=lambda r: ["shared"],
                name="one-block",
            ),
            FunctionPredicate(
                evaluate_fn=lambda a, b: True,
                keys_fn=lambda r: ["all"],
                name="always",
            ),
        )
        engine = IncrementalTopK([level], max_block_verifications=5)
        for i in range(50):
            engine.add({"name": f"n{i}"})
        # Each insert verifies at most 5 same-key records.
        assert calls["n"] <= 50 * 5

    def test_key_implies_match_skips_verification(self):
        from repro.core.incremental import IncrementalTopK
        from repro.predicates.base import PredicateLevel
        from repro.predicates.library import ExactFieldsPredicate
        from tests.conftest import shared_word_predicate

        level = PredicateLevel(
            ExactFieldsPredicate(["name"]), shared_word_predicate()
        )
        engine = IncrementalTopK([level])
        for _ in range(20):
            engine.add({"name": "same"})
        groups = engine.collapsed_groups()
        assert len(groups) == 1
        assert groups[0].weight == 20.0


class TestRecordStoreIterationContract:
    def test_records_are_reusable_across_predicates(self):
        # The per-record-id caches inside predicates key on record_id;
        # two predicates over the same store must not interfere.
        from repro.predicates.library import CommonWordsPredicate

        store = make_store(["a b c d", "a b c e"])
        p1 = CommonWordsPredicate(("name",), 3)
        p2 = CommonWordsPredicate(("name",), 4)
        assert p1.evaluate(store[0], store[1])
        assert not p2.evaluate(store[0], store[1])


class TestGroupScoreMatrixDefaults:
    def test_default_propagates(self):
        from repro.clustering.correlation import ScoreMatrix

        m = ScoreMatrix(3, default=-2.0)
        assert m.get(0, 1) == -2.0
        assert m.default == -2.0


class TestCliEntryPoint:
    def test_module_help(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0
        assert "topk" in result.stdout
