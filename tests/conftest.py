"""Shared fixtures: tiny hand-built datasets and predicates."""

from __future__ import annotations

import contextlib
import os

import pytest

from repro.core.records import Record, RecordStore
from repro.predicates.base import FunctionPredicate, PredicateLevel
from repro.predicates.batch import VECTORIZE_ENV_VAR


@contextlib.contextmanager
def vectorize_mode(enabled: bool):
    """Force the vectorized hot path on or off for the enclosed block.

    Sets ``REPRO_VECTORIZE`` in the environment (inherited by forked
    shard workers too) and restores the previous value on exit.
    """
    old = os.environ.get(VECTORIZE_ENV_VAR)
    os.environ[VECTORIZE_ENV_VAR] = "1" if enabled else "0"
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(VECTORIZE_ENV_VAR, None)
        else:
            os.environ[VECTORIZE_ENV_VAR] = old


def make_store(names: list[str], weights: list[float] | None = None) -> RecordStore:
    """RecordStore with a single 'name' field per record."""
    return RecordStore.from_rows([{"name": n} for n in names], weights=weights)


def exact_name_predicate() -> FunctionPredicate:
    """Sufficient-style predicate: names equal."""
    return FunctionPredicate(
        evaluate_fn=lambda a, b: a["name"] == b["name"],
        keys_fn=lambda r: [r["name"]],
        name="exact-name",
        key_implies_match=True,
    )


def shared_word_predicate() -> FunctionPredicate:
    """Necessary-style predicate: names share a word."""
    return FunctionPredicate(
        evaluate_fn=lambda a, b: bool(
            set(a["name"].split()) & set(b["name"].split())
        ),
        keys_fn=lambda r: r["name"].split(),
        name="shared-word",
    )


@pytest.fixture
def name_level() -> PredicateLevel:
    """A (sufficient=exact name, necessary=shared word) level."""
    return PredicateLevel(exact_name_predicate(), shared_word_predicate())


@pytest.fixture
def tiny_store() -> RecordStore:
    """Nine records over three entities: ann smith, bob jones, cara lee."""
    return make_store(
        [
            "ann smith",
            "ann smith",
            "a smith",
            "bob jones",
            "bob jones",
            "bob jones",
            "cara lee",
            "c lee",
            "ann smith",
        ]
    )
