"""Tests for the paper's custom similarities and the pair featurizers."""

import numpy as np
import pytest

from repro.core.records import RecordStore
from repro.similarity.custom import (
    custom_author_similarity,
    custom_coauthor_similarity,
)
from repro.similarity.tfidf import IdfTable
from repro.similarity.vectorize import (
    PairFeaturizer,
    address_featurizer,
    citation_featurizer,
    name_only_featurizer,
    restaurant_featurizer,
)


@pytest.fixture
def idf() -> IdfTable:
    docs = [
        ["sunita", "sarawagi"],
        ["vinay", "deshpande"],
        ["sunita", "kumar"],
        ["amit", "kumar"],
        ["amit", "shah"],
        ["raj", "mehta"],
    ]
    return IdfTable(docs)


class TestCustomAuthorSimilarity:
    def test_exact_full_names(self, idf):
        assert custom_author_similarity("sunita sarawagi", "sunita sarawagi", idf) == 1.0

    def test_initials_are_not_full_names(self, idf):
        # Identical but containing an initial: not a "full name" match.
        score = custom_author_similarity("s sarawagi", "s sarawagi", idf)
        assert score < 1.0

    def test_rare_shared_word_beats_common(self, idf):
        rare = custom_author_similarity("x sarawagi", "y sarawagi", idf)
        common = custom_author_similarity("sunita x", "sunita y", idf)
        assert rare > common > 0.0

    def test_no_common_words(self, idf):
        assert custom_author_similarity("a b", "c d", idf) == 0.0

    def test_bounded_below_exact(self, idf):
        score = custom_author_similarity("zzz unique", "zzz other", idf)
        assert 0.0 < score < 1.0


class TestCustomCoauthorSimilarity:
    def test_extremes_pass_through(self, idf):
        assert custom_coauthor_similarity("a b", "c d", idf) == 0.0
        assert (
            custom_coauthor_similarity(
                "sunita sarawagi", "sunita sarawagi", idf
            )
            == 1.0
        )

    def test_intermediate_uses_word_fraction(self, idf):
        score = custom_coauthor_similarity(
            "sunita kumar mehta", "sunita kumar shah", idf
        )
        assert score == pytest.approx(2 / 3)


def record_pair(fields_a, fields_b):
    store = RecordStore.from_rows([fields_a, fields_b])
    return store[0], store[1]


class TestFeaturizers:
    def test_vector_shape_and_names(self):
        f = name_only_featurizer()
        a, b = record_pair({"name": "ann smith"}, {"name": "a smith"})
        vector = f.vector(a, b)
        assert vector.shape == (f.n_features,)
        assert len(f.names) == f.n_features

    def test_matrix(self):
        f = name_only_featurizer()
        a, b = record_pair({"name": "x"}, {"name": "y"})
        matrix = f.matrix([(a, b), (b, a)])
        assert matrix.shape == (2, f.n_features)

    def test_identical_records_score_high(self):
        f = name_only_featurizer()
        a, b = record_pair({"name": "ann smith"}, {"name": "ann smith"})
        assert np.all(f.vector(a, b) >= 0.99)

    def test_disjoint_records_score_low(self):
        f = name_only_featurizer()
        a, b = record_pair({"name": "qqq"}, {"name": "zzz"})
        assert np.all(f.vector(a, b) <= 0.5)

    def test_citation_featurizer_fields(self, idf):
        f = citation_featurizer(idf)
        a, b = record_pair(
            {"author": "sunita sarawagi", "coauthors": "vinay deshpande"},
            {"author": "s sarawagi", "coauthors": "v deshpande"},
        )
        vector = f.vector(a, b)
        assert vector.shape == (f.n_features,)
        assert "custom_author" in f.names

    def test_address_featurizer_with_and_without_idf(self, idf):
        with_idf = address_featurizer(idf)
        without = address_featurizer()
        assert with_idf.n_features == without.n_features + 1
        a, b = record_pair(
            {"name": "ann smith", "address": "12 gandhi road", "pin": "411001"},
            {"name": "ann smith", "address": "12 gandhi rd", "pin": "411001"},
        )
        assert with_idf.vector(a, b).shape == (with_idf.n_features,)

    def test_restaurant_decoration_stripping(self):
        f = restaurant_featurizer()
        a, b = record_pair(
            {"name": "spice garden", "address": "1 x st", "city": "c"},
            {"name": "the spice garden restaurant", "address": "1 x st", "city": "c"},
        )
        values = dict(zip(f.names, f.vector(a, b)))
        assert values["name_stripped_overlap"] == 1.0
        assert values["name_word_jaccard"] < 1.0

    def test_empty_featurizer_rejected(self):
        with pytest.raises(ValueError):
            PairFeaturizer([])
