"""Tests for pairwise partition metrics."""

import pytest

from repro.clustering.metrics import (
    groups_from_labels,
    pairwise_f1,
    pairwise_scores,
)


class TestPairwiseScores:
    def test_identical_partitions(self):
        p = [[0, 1, 2], [3, 4]]
        s = pairwise_scores(p, p)
        assert s.precision == 1.0
        assert s.recall == 1.0
        assert s.f1 == 1.0

    def test_all_singletons_vs_grouped(self):
        predicted = [[0], [1], [2]]
        reference = [[0, 1, 2]]
        s = pairwise_scores(predicted, reference)
        assert s.precision == 1.0  # no predicted pairs -> vacuous
        assert s.recall == 0.0
        assert s.f1 == 0.0

    def test_known_counts(self):
        predicted = [[0, 1], [2, 3]]
        reference = [[0, 1, 2], [3]]
        s = pairwise_scores(predicted, reference)
        assert s.true_positives == 1  # only (0,1)
        assert s.predicted_pairs == 2
        assert s.reference_pairs == 3
        assert s.precision == pytest.approx(0.5)
        assert s.recall == pytest.approx(1 / 3)

    def test_oversplit_vs_overmerge(self):
        reference = [[0, 1, 2, 3]]
        oversplit = [[0, 1], [2, 3]]
        overmerged = [[0, 1, 2, 3, 4]]
        s_split = pairwise_scores(oversplit, reference)
        s_merge = pairwise_scores(overmerged, reference + [[4]])
        assert s_split.precision == 1.0 and s_split.recall < 1.0
        assert s_merge.recall == 1.0 and s_merge.precision < 1.0

    def test_duplicate_item_rejected(self):
        with pytest.raises(ValueError):
            pairwise_scores([[0, 1], [1]], [[0], [1]])

    def test_items_missing_from_reference_ignored(self):
        predicted = [[0, 1], [5, 6]]
        reference = [[0, 1]]
        s = pairwise_scores(predicted, reference)
        assert s.true_positives == 1
        assert s.recall == 1.0

    def test_f1_shorthand(self):
        assert pairwise_f1([[0, 1]], [[0, 1]]) == 1.0


class TestGroupsFromLabels:
    def test_basic(self):
        groups = groups_from_labels([0, 1, 0, 1, 1])
        assert sorted(tuple(sorted(g)) for g in groups) == [(0, 2), (1, 3, 4)]

    def test_largest_first(self):
        groups = groups_from_labels([0, 1, 1, 1])
        assert len(groups[0]) == 3


class TestBCubed:
    def test_identical_partitions(self):
        from repro.clustering.metrics import bcubed_scores

        p = [[0, 1, 2], [3, 4]]
        s = bcubed_scores(p, p)
        assert s.precision == 1.0
        assert s.recall == 1.0
        assert s.f1 == 1.0

    def test_known_value(self):
        from repro.clustering.metrics import bcubed_scores

        predicted = [[0, 1], [2, 3]]
        reference = [[0, 1, 2], [3]]
        s = bcubed_scores(predicted, reference)
        # precision per item: 0,1 -> 1; 2 -> 1/2; 3 -> 1/2 => 3/4
        assert s.precision == pytest.approx(0.75)
        # recall per item: 0 -> 2/3; 1 -> 2/3; 2 -> 1/3; 3 -> 1 => 2/3
        assert s.recall == pytest.approx((2 / 3 + 2 / 3 + 1 / 3 + 1) / 4)

    def test_oversplit_perfect_precision(self):
        from repro.clustering.metrics import bcubed_scores

        s = bcubed_scores([[0], [1], [2]], [[0, 1, 2]])
        assert s.precision == 1.0
        assert s.recall == pytest.approx(1 / 3)

    def test_overmerge_perfect_recall(self):
        from repro.clustering.metrics import bcubed_scores

        s = bcubed_scores([[0, 1, 2]], [[0], [1], [2]])
        assert s.recall == 1.0
        assert s.precision == pytest.approx(1 / 3)

    def test_disjoint_item_sets(self):
        from repro.clustering.metrics import bcubed_scores

        s = bcubed_scores([[0, 1]], [[5, 6]])
        assert s.f1 == 1.0  # vacuous

    def test_less_sensitive_to_large_cluster_than_pairwise(self):
        from repro.clustering.metrics import bcubed_scores, pairwise_scores

        # One big correct cluster plus several split small ones: the big
        # cluster dominates pairwise counts; B3 weights items equally.
        reference = [list(range(20)), [20, 21], [22, 23]]
        predicted = [list(range(20)), [20], [21], [22], [23]]
        pw = pairwise_scores(predicted, reference)
        b3 = bcubed_scores(predicted, reference)
        assert b3.recall < pw.recall  # B3 punishes the lost small pairs more
