"""Unit tests for the retry/backoff/breaker layer (repro.core.retry)."""

import pytest

from repro.core.retry import (
    BREAKER_STATE_CODES,
    FAULT_SITES,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    AttemptTimeout,
    BreakerOpen,
    BreakerRegistry,
    CircuitBreaker,
    RetryExhausted,
    RetryPolicy,
    fault_hook_installed,
    fire_fault,
    install_fault_hook,
)
from repro.observability import MetricsRegistry


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# -- fault hook -------------------------------------------------------------


def test_fire_fault_without_hook_is_noop():
    assert not fault_hook_installed()
    fire_fault("wal.append", index=3, attempt=0)  # must not raise


def test_install_fault_hook_returns_previous_and_fires():
    calls = []
    previous = install_fault_hook(lambda site, ids: calls.append((site, ids)))
    try:
        assert previous is None
        assert fault_hook_installed()
        fire_fault("wal.append", index=7, attempt=1)
        assert calls == [("wal.append", {"index": 7, "attempt": 1})]
    finally:
        install_fault_hook(None)
    assert not fault_hook_installed()


def test_fault_sites_are_distinct():
    assert len(set(FAULT_SITES)) == len(FAULT_SITES) == 7


# -- RetryPolicy ------------------------------------------------------------


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay_seconds=-1)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError):
        RetryPolicy(attempt_timeout_seconds=-0.1)


def test_backoff_is_bounded_and_deterministic():
    policy = RetryPolicy(
        base_delay_seconds=0.01, max_delay_seconds=0.05, jitter=0.5, seed=3
    )
    delays = [policy.backoff_seconds(a, key="wal.append") for a in (1, 2, 3, 4)]
    assert delays == [
        policy.backoff_seconds(a, key="wal.append") for a in (1, 2, 3, 4)
    ]
    for attempt, delay in enumerate(delays, start=1):
        raw = min(0.05, 0.01 * 2 ** (attempt - 1))
        assert raw * 0.5 <= delay <= raw
    # A different seed reshuffles the jitter but not the bounds.
    other = RetryPolicy(
        base_delay_seconds=0.01, max_delay_seconds=0.05, jitter=0.5, seed=4
    )
    assert [
        other.backoff_seconds(a, key="wal.append") for a in (1, 2, 3, 4)
    ] != delays


def test_backoff_without_jitter_is_pure_exponential():
    policy = RetryPolicy(
        base_delay_seconds=0.01, max_delay_seconds=0.04, jitter=0.0
    )
    assert [policy.backoff_seconds(a) for a in (1, 2, 3, 4)] == [
        0.01,
        0.02,
        0.04,
        0.04,
    ]


def test_call_passes_attempt_number_and_succeeds_after_retries():
    policy = RetryPolicy(max_attempts=3, base_delay_seconds=0.0)
    seen = []

    def flaky(attempt):
        seen.append(attempt)
        if attempt < 2:
            raise OSError("transient")
        return "ok"

    assert policy.call(flaky, key="op", sleep=lambda s: None) == "ok"
    assert seen == [0, 1, 2]


def test_call_exhaustion_raises_with_last_cause():
    policy = RetryPolicy(max_attempts=2, base_delay_seconds=0.0)
    boom = OSError("still down")

    def always(attempt):
        raise boom

    with pytest.raises(RetryExhausted) as exc_info:
        policy.call(always, key="op", sleep=lambda s: None)
    assert exc_info.value.attempts == 2
    assert exc_info.value.last is boom
    assert exc_info.value.__cause__ is boom


def test_call_non_retryable_propagates_unchanged():
    policy = RetryPolicy(max_attempts=3)
    with pytest.raises(KeyError):
        policy.call(lambda attempt: (_ for _ in ()).throw(KeyError("x")))


def test_call_retry_on_predicate_stops_retrying():
    policy = RetryPolicy(max_attempts=3, base_delay_seconds=0.0)
    calls = []

    def fatal(attempt):
        calls.append(attempt)
        raise OSError(28, "no space")

    with pytest.raises(OSError):
        policy.call(
            fatal,
            retry_on=lambda exc: exc.errno != 28,
            sleep=lambda s: None,
        )
    assert calls == [0]  # not retried


def test_call_attempt_timeout_discards_late_result():
    policy = RetryPolicy(
        max_attempts=2, base_delay_seconds=0.0, attempt_timeout_seconds=0.0
    )
    with pytest.raises(RetryExhausted) as exc_info:
        policy.call(lambda attempt: "late", sleep=lambda s: None)
    assert isinstance(exc_info.value.last, AttemptTimeout)


def test_call_counts_retries_in_metrics():
    policy = RetryPolicy(max_attempts=3, base_delay_seconds=0.0)
    metrics = MetricsRegistry()

    def flaky(attempt):
        if attempt < 2:
            raise OSError("transient")
        return attempt

    policy.call(
        flaky, metrics=metrics, subsystem="wal", sleep=lambda s: None
    )
    assert metrics.value("repro_retries_total", subsystem="wal") == 2.0


def test_call_open_breaker_fails_fast():
    breaker = CircuitBreaker(name="dep", failure_threshold=1)
    breaker.record_failure()
    assert breaker.state == STATE_OPEN
    policy = RetryPolicy(max_attempts=3)
    calls = []
    with pytest.raises(RetryExhausted) as exc_info:
        policy.call(lambda attempt: calls.append(attempt), breaker=breaker)
    assert calls == []
    assert isinstance(exc_info.value.last, BreakerOpen)


def test_call_records_outcome_on_breaker():
    breaker = CircuitBreaker(name="dep", failure_threshold=2)
    policy = RetryPolicy(max_attempts=1)
    policy.call(lambda attempt: "ok", breaker=breaker)
    assert breaker.state == STATE_CLOSED

    def boom(attempt):
        raise OSError("down")

    for _ in range(2):
        with pytest.raises(RetryExhausted):
            policy.call(boom, breaker=breaker, sleep=lambda s: None)
    assert breaker.state == STATE_OPEN


# -- CircuitBreaker ---------------------------------------------------------


def test_breaker_trips_after_consecutive_failures_only():
    breaker = CircuitBreaker(failure_threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()  # resets the streak
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == STATE_CLOSED
    breaker.record_failure()
    assert breaker.state == STATE_OPEN
    assert breaker.trips_total == 1
    assert breaker.failures_total == 5


def test_breaker_recovery_clock_half_open_then_close():
    clock = FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=1, recovery_seconds=10.0, clock=clock
    )
    breaker.record_failure()
    assert not breaker.allow()
    clock.advance(9.9)
    assert breaker.state == STATE_OPEN
    clock.advance(0.2)
    assert breaker.state == STATE_HALF_OPEN
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == STATE_CLOSED


def test_breaker_half_open_failure_retrips():
    clock = FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=1, recovery_seconds=5.0, clock=clock
    )
    breaker.record_failure()
    clock.advance(5.0)
    assert breaker.state == STATE_HALF_OPEN
    breaker.record_failure()
    assert breaker.state == STATE_OPEN
    assert breaker.trips_total == 2
    # The recovery clock restarted at the re-trip.
    clock.advance(4.9)
    assert breaker.state == STATE_OPEN


def test_breaker_infinite_recovery_stays_open():
    clock = FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=1, recovery_seconds=float("inf"), clock=clock
    )
    breaker.record_failure()
    clock.advance(1e9)
    assert breaker.state == STATE_OPEN
    breaker.reset()
    assert breaker.state == STATE_CLOSED


def test_breaker_state_codes():
    breaker = CircuitBreaker(failure_threshold=1)
    assert breaker.state_code == BREAKER_STATE_CODES[STATE_CLOSED] == 0.0
    breaker.record_failure()
    assert breaker.state_code == BREAKER_STATE_CODES[STATE_OPEN] == 2.0


def test_breaker_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(recovery_seconds=-1)
    with pytest.raises(ValueError):
        CircuitBreaker(half_open_successes=0)


# -- BreakerRegistry --------------------------------------------------------


def test_registry_get_or_create_and_states():
    registry = BreakerRegistry()
    a = registry.breaker("storage.wal", failure_threshold=2)
    again = registry.breaker("storage.wal", failure_threshold=99)
    assert a is again
    assert a.failure_threshold == 2  # kwargs only apply on first creation
    registry.breaker("parallel.shards")
    assert registry.states() == {
        "parallel.shards": STATE_CLOSED,
        "storage.wal": STATE_CLOSED,
    }
    a.record_failure()
    a.record_failure()
    assert registry.states()["storage.wal"] == STATE_OPEN
    registry.reset()
    assert registry.states()["storage.wal"] == STATE_CLOSED
    registry.clear()
    assert registry.states() == {}


def test_registry_iterates_sorted():
    registry = BreakerRegistry()
    registry.breaker("b")
    registry.breaker("a")
    assert [name for name, _ in registry] == ["a", "b"]
