"""Unit tests for repro.similarity.strings."""

import pytest

from repro.similarity.strings import (
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
)


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein("sarawagi", "sarawagi") == 0

    def test_empty_vs_word(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_substitution(self):
        assert levenshtein("kitten", "sitten") == 1

    def test_classic_example(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_symmetric(self):
        assert levenshtein("abcdef", "azced") == levenshtein("azced", "abcdef")

    def test_similarity_normalized(self):
        assert levenshtein_similarity("abc", "abc") == 1.0
        assert levenshtein_similarity("", "") == 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0


class TestJaro:
    def test_identical(self):
        assert jaro("martha", "martha") == 1.0

    def test_empty(self):
        assert jaro("", "abc") == 0.0

    def test_known_value_martha_marhta(self):
        assert jaro("martha", "marhta") == pytest.approx(0.944444, abs=1e-5)

    def test_known_value_dixon_dicksonx(self):
        assert jaro("dixon", "dicksonx") == pytest.approx(0.766667, abs=1e-5)

    def test_no_match(self):
        assert jaro("abc", "xyz") == 0.0

    def test_symmetric(self):
        assert jaro("dwayne", "duane") == jaro("duane", "dwayne")


class TestJaroWinkler:
    def test_known_value(self):
        assert jaro_winkler("martha", "marhta") == pytest.approx(0.961111, abs=1e-5)

    def test_prefix_boost(self):
        assert jaro_winkler("sarawagi", "sarawagy") > jaro("sarawagi", "sarawagy")

    def test_no_boost_without_common_prefix(self):
        assert jaro_winkler("abcd", "xbcd") == jaro("abcd", "xbcd")

    def test_bounded_by_one(self):
        assert jaro_winkler("aaaa", "aaaa") == 1.0

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            jaro_winkler("a", "b", prefix_scale=0.5)

    def test_names_similarity_ordering(self):
        # JaroWinkler is "tailored for names": a one-letter surname typo
        # stays closer than a different surname.
        same = jaro_winkler("deshpande", "deshpende")
        different = jaro_winkler("deshpande", "kasliwal")
        assert same > 0.9 > different


class TestSoundex:
    def test_classic_examples(self):
        from repro.similarity.strings import soundex

        assert soundex("Robert") == "R163"
        assert soundex("Rupert") == "R163"
        assert soundex("Ashcraft") == "A261"
        assert soundex("Ashcroft") == "A261"
        assert soundex("Tymczak") == "T522"
        assert soundex("Pfister") == "P236"
        assert soundex("Honeyman") == "H555"

    def test_padding(self):
        from repro.similarity.strings import soundex

        assert soundex("lee") == "L000"
        assert soundex("a") == "A000"

    def test_empty_and_non_alpha(self):
        from repro.similarity.strings import soundex

        assert soundex("") == ""
        assert soundex("123") == ""
        assert soundex("o'brien") == soundex("obrien")

    def test_equality_helper(self):
        from repro.similarity.strings import soundex_equal

        assert soundex_equal("smith", "smyth")
        assert not soundex_equal("smith", "jones")
        assert not soundex_equal("", "")

    def test_typo_variants_often_share_code(self):
        from repro.similarity.strings import soundex_equal

        assert soundex_equal("sarawagi", "sarawagy")
        assert soundex_equal("deshpande", "deshpandey")
