"""Unit tests for repro.similarity.tfidf."""

import math

import pytest

from repro.similarity.tfidf import IdfTable, TfIdfIndex, tfidf_cosine

DOCS = [
    ["sunita", "sarawagi"],
    ["vinay", "deshpande"],
    ["sunita", "deshpande"],
    ["sourabh", "kasliwal"],
]


@pytest.fixture
def table() -> IdfTable:
    return IdfTable(DOCS)


class TestIdfTable:
    def test_document_count(self, table):
        assert table.n_documents == 4

    def test_document_frequency(self, table):
        assert table.document_frequency("sunita") == 2
        assert table.document_frequency("kasliwal") == 1
        assert table.document_frequency("unknown") == 0

    def test_idf_values(self, table):
        assert table.idf("sunita") == pytest.approx(math.log(2))
        assert table.idf("kasliwal") == pytest.approx(math.log(4))

    def test_unseen_gets_max_idf(self, table):
        assert table.idf("zzz") == pytest.approx(math.log(4))
        assert table.max_idf_bound() == pytest.approx(math.log(4))

    def test_min_max_idf(self, table):
        tokens = ["sunita", "kasliwal"]
        assert table.min_idf(tokens) == pytest.approx(math.log(2))
        assert table.max_idf(tokens) == pytest.approx(math.log(4))

    def test_min_idf_empty_is_inf(self, table):
        assert table.min_idf([]) == math.inf

    def test_duplicate_tokens_count_once_per_doc(self):
        t = IdfTable([["a", "a"], ["b"]])
        assert t.document_frequency("a") == 1

    def test_weight_vector_normalized(self, table):
        vec = table.weight_vector(["sunita", "sarawagi"])
        norm = math.sqrt(sum(w * w for w in vec.values()))
        assert norm == pytest.approx(1.0)

    def test_empty_corpus(self):
        t = IdfTable([])
        assert t.n_documents == 0
        assert t.idf("x") == 0.0


class TestTfIdfCosine:
    def test_identical_vectors(self, table):
        vec = table.weight_vector(["sunita", "sarawagi"])
        assert tfidf_cosine(vec, vec) == pytest.approx(1.0)

    def test_disjoint_vectors(self, table):
        a = table.weight_vector(["sunita"])
        b = table.weight_vector(["kasliwal"])
        assert tfidf_cosine(a, b) == 0.0

    def test_rare_overlap_scores_higher(self, table):
        base = table.weight_vector(["sunita", "kasliwal"])
        rare = table.weight_vector(["vinay", "kasliwal"])  # shares rare word
        common = table.weight_vector(["sunita", "vinay"])  # shares common word
        assert tfidf_cosine(base, rare) > tfidf_cosine(base, common)


class TestTfIdfIndex:
    def test_candidates_above_threshold(self, table):
        index = TfIdfIndex(table)
        for doc_id, doc in enumerate(DOCS):
            index.add(doc_id, doc)
        hits = index.candidates_above(["sunita", "sarawagi"], threshold=0.9)
        assert hits[0][0] == 0
        assert hits[0][1] == pytest.approx(1.0)

    def test_candidates_sorted_descending(self, table):
        index = TfIdfIndex(table)
        for doc_id, doc in enumerate(DOCS):
            index.add(doc_id, doc)
        hits = index.candidates_above(["sunita", "deshpande"], threshold=0.0)
        scores = [s for _, s in hits]
        assert scores == sorted(scores, reverse=True)

    def test_no_shared_token_no_candidate(self, table):
        index = TfIdfIndex(table)
        index.add(0, ["sunita", "sarawagi"])
        assert index.candidates_above(["kasliwal"], threshold=0.0) == []

    def test_duplicate_id_rejected(self, table):
        index = TfIdfIndex(table)
        index.add(0, ["a"])
        with pytest.raises(ValueError):
            index.add(0, ["b"])

    def test_pairwise_cosine(self, table):
        index = TfIdfIndex(table)
        index.add(0, ["sunita", "sarawagi"])
        index.add(1, ["sunita", "deshpande"])
        assert 0.0 < index.cosine(0, 1) < 1.0


class TestZeroWeightPostings:
    """Tokens with IDF 0 (present in every document) must not be posted:
    their weight is 0, so they can never contribute to a cosine, yet
    they used to produce the longest posting lists in the index."""

    def _index(self):
        docs = [["common", "alpha"], ["common", "beta"], ["common", "gamma"]]
        table = IdfTable(docs)
        index = TfIdfIndex(table)
        for doc_id, doc in enumerate(docs):
            index.add(doc_id, doc)
        return index

    def test_ubiquitous_token_not_posted(self):
        index = self._index()
        # One entry per distinctive token; "common" (3 more entries
        # before the fix) is absent.
        assert index.n_posting_entries == 3

    def test_retrieval_unchanged_for_real_matches(self):
        index = self._index()
        results = index.candidates_above(["common", "alpha"], 0.5)
        assert results == [(0, pytest.approx(1.0))]

    def test_stop_token_only_probe_surfaces_nothing(self):
        index = self._index()
        # Cosine with everything is exactly 0; even threshold 0.0 must
        # not surface the whole corpus as zero-score candidates.
        assert index.candidates_above(["common"], 0.0) == []

    def test_vectors_still_complete(self):
        index = self._index()
        assert "common" in index.vector(0)
        assert index.vector(0)["common"] == 0.0


class TestDeterministicTieOrder:
    """Regression: candidates_above sorted by score only, so equal-score
    candidates surfaced in dict-insertion order — canopy assignment then
    depended on index build order.  Ties now break by ascending doc id."""

    def _index(self):
        docs = [["alpha", "x"], ["alpha", "y"], ["alpha", "z"], ["alpha", "w"]]
        table = IdfTable(docs + [["filler"]])
        index = TfIdfIndex(table)
        # Deliberately add out of id order.
        for doc_id in (2, 0, 3, 1):
            index.add(doc_id, docs[doc_id])
        return index

    def test_equal_scores_ordered_by_doc_id(self):
        index = self._index()
        results = index.candidates_above(["alpha"], 0.0)
        scores = [score for _, score in results]
        assert len(set(scores)) == 1  # all ties by construction
        assert [doc_id for doc_id, _ in results] == [0, 1, 2, 3]

    def test_descending_score_before_id(self):
        docs = [["alpha", "beta"], ["alpha", "x"], ["alpha", "y"]]
        table = IdfTable(docs + [["filler"]])
        index = TfIdfIndex(table)
        for doc_id in (2, 1, 0):
            index.add(doc_id, docs[doc_id])
        results = index.candidates_above(["alpha", "beta"], 0.0)
        assert [doc_id for doc_id, _ in results][0] == 0  # best score first
        assert results[1][0] < results[2][0]  # tied tail by id
