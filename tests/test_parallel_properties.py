"""Seeded bit-identity sweep: parallel execution vs. the serial baseline.

The contract of :mod:`repro.core.parallel` is that the worker knob is
invisible in the answer — groups, weights, rankings, and certainty flags
must match the serial run bit-for-bit at every worker count, on clean
runs and on degraded chaos-armed runs alike.  This module checks that
contract across >= 10 seeds on both the citations and students
generators.

Chaos runs deliberately use error faults only (no stalls, no deadline):
wall-clock-dependent degradation is legitimately nondeterministic and
would make the bit-identity assertion meaningless.
"""

import functools

import pytest

from repro.core.parallel import fork_available, group_fingerprint
from repro.core.pruned_dedup import pruned_dedup
from repro.core.rank_query import thresholded_rank_query, topk_rank_query
from repro.core.resilience import ExecutionPolicy
from repro.experiments import citation_pipeline, student_pipeline
from repro.testing import FaultPlan, chaos_levels
from tests.conftest import vectorize_mode

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="platform has no fork start method"
)

N_RECORDS = 200
K = 10
SEEDS = range(10)
WORKER_COUNTS = (2, 4)


@functools.lru_cache(maxsize=8)
def _pipeline(dataset: str, seed: int):
    if dataset == "citations":
        return citation_pipeline(
            n_records=N_RECORDS, seed=seed, with_scorer=False
        )
    return student_pipeline(n_records=N_RECORDS, seed=seed)


@pytest.mark.parametrize("dataset", ["citations", "students"])
@pytest.mark.parametrize("seed", SEEDS)
def test_pruned_dedup_bit_identical(dataset, seed):
    pipeline = _pipeline(dataset, seed)
    serial = pruned_dedup(pipeline.store, K, pipeline.levels, workers=1)
    baseline = group_fingerprint(serial.groups)
    for workers in WORKER_COUNTS:
        result = pruned_dedup(
            pipeline.store, K, pipeline.levels, workers=workers
        )
        assert group_fingerprint(result.groups) == baseline, (
            dataset,
            seed,
            workers,
        )
        assert result.groups.weights() == serial.groups.weights()
        assert result.counters.shards_degraded == 0


@pytest.mark.parametrize("dataset", ["citations", "students"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_rank_queries_bit_identical(dataset, seed):
    pipeline = _pipeline(dataset, seed)
    serial_rank = topk_rank_query(pipeline.store, K, pipeline.levels, workers=1)
    serial_threshold = thresholded_rank_query(
        pipeline.store, 5.0, pipeline.levels, workers=1
    )
    for workers in WORKER_COUNTS:
        rank = topk_rank_query(
            pipeline.store, K, pipeline.levels, workers=workers
        )
        assert rank.ranking == serial_rank.ranking, (dataset, seed, workers)
        assert rank.certain == serial_rank.certain
        assert group_fingerprint(rank.groups) == group_fingerprint(
            serial_rank.groups
        )
        threshold = thresholded_rank_query(
            pipeline.store, 5.0, pipeline.levels, workers=workers
        )
        assert threshold.ranking == serial_threshold.ranking
        assert threshold.certain == serial_threshold.certain


@pytest.mark.parametrize("dataset", ["citations", "students"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_degraded_chaos_runs_bit_identical(dataset, seed):
    # Error and keying faults are pure functions of (plan seed, record
    # ids), so they fire identically inside workers and in the serial
    # pipeline; the degraded answers must therefore match exactly too.
    pipeline = _pipeline(dataset, seed)
    plan = FaultPlan(seed=seed, error_rate=0.05, keying_error_rate=0.02)
    levels = chaos_levels(pipeline.levels, plan)
    policy = ExecutionPolicy(on_error="degrade")
    serial = pruned_dedup(
        pipeline.store, K, levels, policy=policy, workers=1
    )
    baseline = group_fingerprint(serial.groups)
    for workers in WORKER_COUNTS:
        result = pruned_dedup(
            pipeline.store, K, levels, policy=policy, workers=workers
        )
        assert group_fingerprint(result.groups) == baseline, (
            dataset,
            seed,
            workers,
        )
        assert result.degraded == serial.degraded


@pytest.mark.parametrize("dataset", ["citations", "students"])
@pytest.mark.parametrize("seed", SEEDS)
def test_scalar_vectorized_sharded_bit_identical(dataset, seed):
    # Three execution strategies for the same query: the scalar
    # reference path, the vectorized batch hot path, and the vectorized
    # path fanned out over shared-memory shards.  The answer must be
    # invisible to the choice at every worker count.
    pipeline = _pipeline(dataset, seed)
    with vectorize_mode(False):
        scalar = pruned_dedup(pipeline.store, K, pipeline.levels, workers=1)
    baseline = group_fingerprint(scalar.groups)
    with vectorize_mode(True):
        for workers in (1, *WORKER_COUNTS):
            result = pruned_dedup(
                pipeline.store, K, pipeline.levels, workers=workers
            )
            assert group_fingerprint(result.groups) == baseline, (
                dataset,
                seed,
                workers,
            )
            assert result.groups.weights() == scalar.groups.weights()
            assert result.counters.shards_degraded == 0


@pytest.mark.parametrize("dataset", ["citations", "students"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_rank_queries_scalar_vs_vectorized_sharded(dataset, seed):
    pipeline = _pipeline(dataset, seed)
    with vectorize_mode(False):
        scalar_rank = topk_rank_query(
            pipeline.store, K, pipeline.levels, workers=1
        )
        scalar_threshold = thresholded_rank_query(
            pipeline.store, 5.0, pipeline.levels, workers=1
        )
    with vectorize_mode(True):
        for workers in (1, *WORKER_COUNTS):
            rank = topk_rank_query(
                pipeline.store, K, pipeline.levels, workers=workers
            )
            assert rank.ranking == scalar_rank.ranking, (
                dataset, seed, workers,
            )
            assert rank.certain == scalar_rank.certain
            assert group_fingerprint(rank.groups) == group_fingerprint(
                scalar_rank.groups
            )
            threshold = thresholded_rank_query(
                pipeline.store, 5.0, pipeline.levels, workers=workers
            )
            assert threshold.ranking == scalar_threshold.ranking
            assert threshold.certain == scalar_threshold.certain
