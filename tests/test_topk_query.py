"""End-to-end tests for the Top-K count query engine."""

import pytest

from repro.core.topk import group_score_matrix, topk_count_query
from repro.predicates.base import PredicateLevel
from repro.scoring.pairwise import WeightedScorer
from repro.similarity.vectorize import name_only_featurizer
from tests.conftest import exact_name_predicate, make_store, shared_word_predicate


def one_level() -> list[PredicateLevel]:
    return [PredicateLevel(exact_name_predicate(), shared_word_predicate())]


def simple_scorer() -> WeightedScorer:
    featurizer = name_only_featurizer()
    # Jaccard-heavy combination shifted negative: similar names positive.
    return WeightedScorer(
        featurizer, weights=[2.0, 2.0, 1.0, 1.0, 2.0], bias=-3.5
    )


class TestTopKCountQuery:
    def test_exact_when_pruning_settles_it(self):
        store = make_store(["ann smith"] * 4 + ["bob jones"] * 2)
        result = topk_count_query(
            store, 2, one_level(), simple_scorer(), label_field="name"
        )
        assert result.exact
        assert [e.weight for e in result.best.entities] == [4.0, 2.0]

    def test_merges_variants_through_final_scoring(self):
        store = make_store(
            ["ann smith"] * 3
            + ["ann smlth"] * 2  # typo variants of the same entity
            + ["bob jones"] * 4
            + ["cara lee"]
        )
        result = topk_count_query(
            store, 2, one_level(), simple_scorer(), label_field="name"
        )
        best = result.best
        weights = sorted((e.weight for e in best.entities), reverse=True)
        assert weights == [5.0, 4.0]  # ann group merged to 5, bob 4

    def test_r_alternative_answers(self):
        store = make_store(
            ["ann smith"] * 3 + ["ann smlth"] * 2 + ["bob jones"] * 4
        )
        result = topk_count_query(
            store, 1, one_level(), simple_scorer(), r=3, label_field="name"
        )
        assert 1 <= len(result.answers) <= 3
        scores = [a.score for a in result.answers]
        assert scores == sorted(scores, reverse=True)
        probs = [a.probability for a in result.answers]
        assert sum(probs) == pytest.approx(1.0)

    def test_answer_entities_sorted_by_weight(self):
        store = make_store(
            ["a x"] * 5 + ["b y"] * 3 + ["c z"] * 2 + ["d w"]
        )
        result = topk_count_query(
            store, 3, one_level(), simple_scorer(), label_field="name"
        )
        weights = [e.weight for e in result.best.entities]
        assert weights == sorted(weights, reverse=True)

    def test_label_field(self):
        store = make_store(["ann smith"] * 2 + ["bob jones"])
        result = topk_count_query(
            store, 1, one_level(), simple_scorer(), label_field="name"
        )
        assert result.best.entities[0].label == "ann smith"

    def test_record_ids_partition(self):
        store = make_store(["a x"] * 3 + ["b y"] * 2)
        result = topk_count_query(
            store, 2, one_level(), simple_scorer(), label_field="name"
        )
        ids = [i for e in result.best.entities for i in e.record_ids]
        assert len(ids) == len(set(ids))

    def test_empty_answers_raise_on_best(self):
        from repro.core.topk import TopKQueryResult

        with pytest.raises(ValueError):
            TopKQueryResult().best


class TestGroupScoreMatrix:
    def test_aggregate_scales_by_sizes(self):
        from repro.core.collapse import collapse_records

        store = make_store(["ann smith"] * 3 + ["ann smlth"] * 2)
        groups = collapse_records(store, exact_name_predicate())
        scorer = simple_scorer()
        plain = group_score_matrix(
            groups, scorer, shared_word_predicate(), aggregate=False
        )
        scaled = group_score_matrix(
            groups, scorer, shared_word_predicate(), aggregate=True
        )
        assert scaled.get(0, 1) == pytest.approx(plain.get(0, 1) * 3 * 2)


class TestMassRankedQuery:
    def test_rank_answers_by_mass(self):
        store = make_store(
            ["ann smith"] * 3 + ["ann smlth"] * 2 + ["bob jones"] * 4
        )
        result = topk_count_query(
            store,
            1,
            one_level(),
            simple_scorer(),
            r=3,
            label_field="name",
            rank_answers_by="mass",
        )
        assert result.answers
        probs = [a.probability for a in result.answers]
        assert abs(sum(probs) - 1.0) < 1e-9
        assert probs == sorted(probs, reverse=True)


class TestFewEntitiesEdgeCases:
    def test_k_exceeds_distinct_groups_in_partition(self):
        # Only 2 real entities but k=4 requested with scoring needed:
        # the answer may contain fewer than k entities, never junk.
        store = make_store(
            ["ann smith"] * 3
            + ["ann smlth"] * 2
            + ["bob jones"] * 3
            + ["bob jomes"] * 2
        )
        result = topk_count_query(
            store, 4, one_level(), simple_scorer(), label_field="name"
        )
        assert 1 <= len(result.best.entities) <= 4
        ids = [i for e in result.best.entities for i in e.record_ids]
        assert len(ids) == len(set(ids))
