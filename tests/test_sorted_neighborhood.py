"""Tests for multi-pass sorted-neighborhood blocking."""

import pytest

from repro.predicates.sorted_neighborhood import (
    field_key,
    reversed_tokens_key,
    sorted_neighborhood_pairs,
    sorted_neighborhood_recall,
    soundex_key,
)
from tests.conftest import make_store


class TestSortedNeighborhood:
    def test_window_pairs_adjacent_sorted_records(self):
        store = make_store(["carol", "alice", "bob"])
        pairs = set(
            sorted_neighborhood_pairs(list(store), [field_key("name")], window=2)
        )
        # Sorted: alice(1), bob(2), carol(0) -> adjacent pairs only.
        assert pairs == {(1, 2), (0, 2)}

    def test_window_three_reaches_two_ahead(self):
        store = make_store(["a", "b", "c", "d"])
        pairs = set(
            sorted_neighborhood_pairs(list(store), [field_key("name")], window=3)
        )
        assert (0, 2) in pairs
        assert (0, 3) not in pairs

    def test_multi_pass_union(self):
        # 'sunita sarawagi' vs 'sarawagi sunita' sort far apart by raw
        # value but adjacent under the reversed-tokens pass.
        store = make_store(
            ["sunita sarawagi", "sb one", "sc two", "sd three", "sarawagi sunita"]
        )
        single = set(
            sorted_neighborhood_pairs(list(store), [field_key("name")], window=2)
        )
        multi = set(
            sorted_neighborhood_pairs(
                list(store),
                [field_key("name"), reversed_tokens_key("name")],
                window=2,
            )
        )
        assert (0, 4) not in single
        assert (0, 4) in multi

    def test_soundex_pass_groups_phonetic_variants(self):
        store = make_store(["smith john", "aaaa", "bbbb", "cccc", "smyth john"])
        pairs = set(
            sorted_neighborhood_pairs(list(store), [soundex_key("name")], window=2)
        )
        assert (0, 4) in pairs

    def test_each_pair_once(self):
        store = make_store(["a", "a", "a"])
        pairs = list(
            sorted_neighborhood_pairs(
                list(store), [field_key("name"), field_key("name")], window=3
            )
        )
        assert len(pairs) == len(set(pairs)) == 3

    def test_validation(self):
        store = make_store(["a"])
        with pytest.raises(ValueError):
            list(sorted_neighborhood_pairs(list(store), [field_key("name")], 1))
        with pytest.raises(ValueError):
            list(sorted_neighborhood_pairs(list(store), [], 3))

    def test_recall_metric(self):
        store = make_store(["ann", "ann", "zed", "bob"])
        labels = [0, 0, 1, 2]
        recall = sorted_neighborhood_recall(
            list(store), labels, [field_key("name")], window=2
        )
        assert recall == 1.0

    def test_recall_on_citations(self):
        from repro.datasets import generate_citations

        ds = generate_citations(n_records=400, seed=6)
        recall = sorted_neighborhood_recall(
            list(ds.store),
            ds.labels,
            [field_key("author"), reversed_tokens_key("author")],
            window=16,
        )
        # Raw pair recall is bounded by entity multiplicity (pairs more
        # than `window` apart inside one sorted block are missed — the
        # classic SNM limitation that transitive closure repairs); two
        # passes with a wide window still catch the majority.
        assert recall > 0.5
        narrow = sorted_neighborhood_recall(
            list(ds.store),
            ds.labels,
            [field_key("author")],
            window=4,
        )
        assert recall > narrow
