"""System-level properties of the observability layer.

These run real queries under a live :class:`Tracer` / registry and check
the structural contracts the exporters and the acceptance criteria rely
on:

* span trees are well-nested (every span closed, appears exactly once);
* children's wall times sum to at most their parent's;
* the root ``query`` span's counter delta equals the run's reported
  :class:`PipelineCounters`, and a full JSONL export replays back to the
  same totals (:func:`replay_counters`);
* deterministic-mode traces are byte-identical across ``workers`` in
  {1, 2, 4} — parallel execution changes shard spans (transient, thus
  excluded) but never the logical span skeleton;
* running under the default :class:`NullTracer` / :class:`NullMetrics`
  yields bit-identical answers and counters to running fully traced —
  observability never perturbs the computation.
"""

import pytest

from repro.core.incremental import IncrementalTopK
from repro.core.parallel import fork_available
from repro.core.rank_query import thresholded_rank_query, topk_rank_query
from repro.core.topk import topk_count_query
from repro.core.verification import VerificationContext
from repro.observability import (
    MetricsRegistry,
    Tracer,
    replay_counters,
    trace_lines,
)
from repro.experiments.harness import citation_pipeline

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform has no fork start method"
)

_PIPELINE = {}


def pipeline():
    if not _PIPELINE:
        _PIPELINE["p"] = citation_pipeline(
            n_records=400, seed=7, with_scorer=True
        )
    return _PIPELINE["p"]


def traced_count_query(workers: int = 1):
    p = pipeline()
    context = VerificationContext(tracer=Tracer(), metrics=MetricsRegistry())
    result = topk_count_query(
        p.store, 5, p.levels, p.scorer, context=context, workers=workers
    )
    return result, context


def all_spans(tracer: Tracer):
    return [span for root in tracer.roots for span in root.walk()]


class TestSpanTreeStructure:
    def test_single_query_root(self):
        _, context = traced_count_query()
        roots = context.tracer.roots
        assert [root.name for root in roots] == ["query"]
        assert context.tracer.current() is None  # everything closed

    def test_spans_well_nested(self):
        _, context = traced_count_query()
        seen_ids = set()
        for span in all_spans(context.tracer):
            assert id(span) not in seen_ids, "span appears twice in the tree"
            seen_ids.add(id(span))
        names = {span.name for span in all_spans(context.tracer)}
        assert {"query", "pruned_dedup", "level", "collapse"} <= names

    def test_child_wall_times_sum_to_at_most_parent(self):
        _, context = traced_count_query()
        for span in all_spans(context.tracer):
            child_sum = sum(child.wall_seconds for child in span.children)
            assert child_sum <= span.wall_seconds + 1e-6, (
                f"{span.name}: children {child_sum}s > parent "
                f"{span.wall_seconds}s"
            )

    @needs_fork
    def test_parallel_shard_spans_preserve_nesting(self):
        _, context = traced_count_query(workers=2)
        spans = all_spans(context.tracer)
        shard_spans = [s for s in spans for c in [0] if s.name == "shard"]
        assert shard_spans, "parallel run recorded no shard spans"
        for span in shard_spans:
            assert span.transient
            assert span.wall_seconds == 0.0  # overlapped; see attribute
            assert span.attributes.get("worker_wall_seconds") is not None
        # Shard spans carrying zero wall time keeps the nesting invariant.
        for span in spans:
            child_sum = sum(child.wall_seconds for child in span.children)
            assert child_sum <= span.wall_seconds + 1e-6


class TestCounterDeltas:
    def test_root_delta_equals_run_counters(self):
        _, context = traced_count_query()
        root = context.tracer.roots[0]
        assert root.counters_delta is not None
        assert root.counters_delta.as_dict() == context.counters.as_dict()

    def test_level_deltas_nest_inside_pipeline_delta(self):
        _, context = traced_count_query()
        root = context.tracer.roots[0]
        dedup = next(s for s in root.walk() if s.name == "pruned_dedup")
        dedup_evals = dedup.counters_delta.as_dict()["predicate_evaluations"]
        level_evals = sum(
            child.counters_delta.as_dict()["predicate_evaluations"]
            for child in dedup.children
            if child.name == "level"
        )
        assert level_evals <= dedup_evals

    def test_full_trace_replays_to_run_totals(self):
        _, context = traced_count_query()
        lines = list(trace_lines(context.tracer, mode="full"))
        assert replay_counters(lines) == context.counters.as_dict()

    @needs_fork
    def test_parallel_trace_replays_to_run_totals(self):
        _, context = traced_count_query(workers=2)
        lines = list(trace_lines(context.tracer, mode="full"))
        assert replay_counters(lines) == context.counters.as_dict()

    def test_stream_trace_replays_to_query_counters(self):
        p = pipeline()
        tracer = Tracer()
        engine = IncrementalTopK(p.levels, tracer=tracer)
        for record in p.store:
            engine.add(record.fields, record.weight)
        first = engine.query(5)
        second = engine.query(3)
        lines = list(trace_lines(tracer, mode="full"))
        replayed = replay_counters(lines)
        combined = first.counters.as_dict()
        for key, value in second.counters.as_dict().items():
            if key == "stage_seconds":
                for stage, seconds in value.items():
                    combined["stage_seconds"][stage] = (
                        combined["stage_seconds"].get(stage, 0.0) + seconds
                    )
            else:
                combined[key] = combined.get(key, 0) + value
        assert replayed == combined


class TestDeterministicTraces:
    @needs_fork
    @pytest.mark.parametrize("workers", [2, 4])
    def test_trace_byte_identical_across_worker_counts(self, workers):
        _, serial = traced_count_query(workers=1)
        _, parallel = traced_count_query(workers=workers)
        serial_bytes = "\n".join(
            trace_lines(serial.tracer, mode="deterministic")
        )
        parallel_bytes = "\n".join(
            trace_lines(parallel.tracer, mode="deterministic")
        )
        assert serial_bytes == parallel_bytes

    def test_deterministic_mode_repeatable(self):
        _, first = traced_count_query()
        _, second = traced_count_query()
        assert list(trace_lines(first.tracer, mode="deterministic")) == list(
            trace_lines(second.tracer, mode="deterministic")
        )

    def test_deterministic_mode_carries_no_timings(self):
        import json

        _, context = traced_count_query()
        for line in trace_lines(context.tracer, mode="deterministic"):
            record = json.loads(line)
            assert set(record) == {"id", "parent", "name", "attributes"}


class TestNullObservabilityBitIdentity:
    """The default Null path must not perturb answers or counters."""

    def comparable(self, result):
        return (
            [
                [(e.record_ids, e.weight) for e in answer.entities]
                for answer in result.answers
            ],
            [a.score for a in result.answers],
        )

    def counters_comparable(self, context):
        counts = context.counters.as_dict()
        counts["stage_seconds"] = sorted(counts["stage_seconds"])
        return counts

    def test_count_query_identical_with_and_without_tracing(self):
        p = pipeline()
        null_context = VerificationContext()
        plain = topk_count_query(
            p.store, 5, p.levels, p.scorer, context=null_context
        )
        traced, traced_context = traced_count_query()
        assert self.comparable(plain) == self.comparable(traced)
        assert self.counters_comparable(null_context) == (
            self.counters_comparable(traced_context)
        )

    def test_rank_and_threshold_identical_with_and_without_tracing(self):
        p = pipeline()
        traced_context = VerificationContext(
            tracer=Tracer(), metrics=MetricsRegistry()
        )
        plain_rank = topk_rank_query(p.store, 5, p.levels)
        traced_rank = topk_rank_query(
            p.store, 5, p.levels, context=traced_context
        )
        assert plain_rank.ranking == traced_rank.ranking

        plain_threshold = thresholded_rank_query(p.store, 8.0, p.levels)
        traced_threshold = thresholded_rank_query(
            p.store,
            8.0,
            p.levels,
            context=VerificationContext(
                tracer=Tracer(), metrics=MetricsRegistry()
            ),
        )
        assert plain_threshold.ranking == traced_threshold.ranking
        assert plain_threshold.certain == traced_threshold.certain

    def test_null_tracer_records_nothing(self):
        context = VerificationContext()
        p = pipeline()
        topk_count_query(p.store, 5, p.levels, p.scorer, context=context)
        assert context.tracer.roots == []
        assert context.tracer.enabled is False
        assert context.metrics.enabled is False
