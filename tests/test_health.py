"""Unit tests for the health monitor (repro.core.health)."""

from types import SimpleNamespace

import pytest

from repro.core import DurabilityPolicy, IncrementalTopK
from repro.core.health import (
    DEAD_LETTER_PRESSURE_THRESHOLD,
    HealthMonitor,
    HealthSnapshot,
)
from repro.core.retry import STATE_CLOSED, STATE_OPEN, BreakerRegistry
from repro.observability import MetricsRegistry
from repro.predicates.base import FunctionPredicate, PredicateLevel


class FakeEngine:
    """Duck-typed engine exposing exactly what HealthMonitor reads."""

    def __init__(
        self,
        durable=True,
        degraded=False,
        degraded_reason=None,
        appends_suspended=0,
        checkpoints_failed=0,
        breaker_state=STATE_CLOSED,
        letters=0,
        limit=10,
        dropped=0,
        shards_degraded=0,
        audit_problems=(),
    ):
        self._status = {
            "durable": durable,
            "degraded": degraded,
            "degraded_reason": degraded_reason,
            "appends_suspended": appends_suspended,
            "checkpoints_failed": checkpoints_failed,
            "breaker_state": breaker_state,
            "entries_journaled": 42,
        }
        self.dead_letters = [object()] * letters
        self._dead_letter_limit = limit
        self.dead_letters_dropped = dropped
        self.verification = SimpleNamespace(
            counters=SimpleNamespace(shards_degraded=shards_degraded)
        )
        self._audit_problems = list(audit_problems)

    def durability_status(self):
        return dict(self._status)

    def audit(self, strict=True):
        return list(self._audit_problems)


def check(snapshot: HealthSnapshot, name: str):
    found = [c for c in snapshot.checks if c.name == name]
    assert found, f"no check named {name}: {[c.name for c in snapshot.checks]}"
    return found[0]


def test_empty_monitor_is_live_and_ready():
    snapshot = HealthMonitor(breakers=BreakerRegistry()).snapshot()
    assert snapshot.live and snapshot.ready and not snapshot.degraded
    assert snapshot.checks == ()
    assert snapshot.problems() == []


def test_open_breaker_degrades_but_stays_ready():
    registry = BreakerRegistry()
    registry.breaker("parallel.shards", failure_threshold=1).record_failure()
    snapshot = HealthMonitor(breakers=registry).snapshot()
    assert snapshot.live and snapshot.ready and snapshot.degraded
    assert not check(snapshot, "breaker.parallel.shards").ok


def test_clean_durable_engine_all_ok():
    snapshot = HealthMonitor(
        FakeEngine(), breakers=BreakerRegistry()
    ).snapshot()
    assert snapshot.ready and not snapshot.degraded
    for name in (
        "durability.journaling",
        "durability.checkpoints",
        "breaker.storage.wal",
        "stream.dead_letters",
        "parallel.shards_degraded",
    ):
        assert check(snapshot, name).ok, name


def test_suspended_journaling_flags_degraded():
    engine = FakeEngine(
        degraded=True, degraded_reason="ENOSPC", appends_suspended=7
    )
    snapshot = HealthMonitor(engine, breakers=BreakerRegistry()).snapshot()
    assert snapshot.degraded and snapshot.ready
    journaling = check(snapshot, "durability.journaling")
    assert not journaling.ok
    assert "ENOSPC" in journaling.detail
    assert "7" in journaling.detail


def test_failed_checkpoints_and_wal_breaker_flagged():
    engine = FakeEngine(checkpoints_failed=2, breaker_state=STATE_OPEN)
    snapshot = HealthMonitor(engine, breakers=BreakerRegistry()).snapshot()
    assert not check(snapshot, "durability.checkpoints").ok
    assert not check(snapshot, "breaker.storage.wal").ok
    assert snapshot.degraded


@pytest.mark.parametrize(
    ("letters", "dropped", "ok"),
    [
        (0, 0, True),
        (4, 0, True),  # below the pressure threshold
        (5, 0, False),  # at the threshold with limit=10
        (0, 1, False),  # any drop is a flag
    ],
)
def test_dead_letter_pressure(letters, dropped, ok):
    engine = FakeEngine(letters=letters, dropped=dropped, limit=10)
    snapshot = HealthMonitor(engine, breakers=BreakerRegistry()).snapshot()
    assert check(snapshot, "stream.dead_letters").ok is ok
    assert 0 < DEAD_LETTER_PRESSURE_THRESHOLD <= 1


def test_degraded_shards_flagged():
    engine = FakeEngine(shards_degraded=3)
    snapshot = HealthMonitor(engine, breakers=BreakerRegistry()).snapshot()
    assert not check(snapshot, "parallel.shards_degraded").ok


def test_audit_problems_clear_readiness():
    bad = FakeEngine(audit_problems=["group 3 weight mismatch"])
    monitor = HealthMonitor(bad, breakers=BreakerRegistry(), audit=True)
    snapshot = monitor.snapshot()
    assert snapshot.live
    assert not snapshot.ready
    assert not check(snapshot, "state.audit").ok
    # Without audit=True the same engine reports ready.
    assert HealthMonitor(bad, breakers=BreakerRegistry()).snapshot().ready


def test_as_dict_round_trip():
    snapshot = HealthMonitor(
        FakeEngine(degraded=True), breakers=BreakerRegistry()
    ).snapshot()
    payload = snapshot.as_dict()
    assert payload["live"] is True
    assert payload["degraded"] is True
    names = {c["name"] for c in payload["checks"]}
    assert "durability.journaling" in names


def test_publish_exports_gauges():
    registry = BreakerRegistry()
    registry.breaker("parallel.shards", failure_threshold=1).record_failure()
    engine = FakeEngine(degraded=True, letters=3, limit=10)
    metrics = MetricsRegistry()
    snapshot = HealthMonitor(engine, breakers=registry).publish(metrics)
    assert snapshot.degraded
    assert (
        metrics.value("repro_breaker_state", subsystem="parallel.shards")
        == 2.0
    )
    assert metrics.value("repro_breaker_state", subsystem="storage.wal") == 0.0
    assert metrics.value("repro_durability_degraded") == 1.0
    assert metrics.value("repro_dead_letter_pressure") == pytest.approx(0.3)
    assert metrics.value("repro_health_ready") == 1.0
    assert metrics.value("repro_health_degraded") == 1.0


def test_publish_with_disabled_metrics_is_noop():
    snapshot = HealthMonitor(breakers=BreakerRegistry()).publish(None)
    assert snapshot.ready


def _levels():
    exact = FunctionPredicate(
        evaluate_fn=lambda a, b: a["name"] == b["name"],
        keys_fn=lambda r: [r["name"]],
        name="exact-name",
        key_implies_match=True,
    )
    return [PredicateLevel(exact, exact)]


def test_real_durable_engine_snapshot(tmp_path):
    policy = DurabilityPolicy(state_dir=tmp_path / "state")
    engine = IncrementalTopK(_levels(), durability=policy)
    try:
        engine.add({"name": "a"}, 1.0)
        engine.add({"name": "b"}, 2.0)
        monitor = HealthMonitor(engine, breakers=BreakerRegistry(), audit=True)
        snapshot = monitor.snapshot()
        assert snapshot.ready and not snapshot.degraded
        assert check(snapshot, "state.audit").ok
        # Suspend journaling the way an exhausted retry does.
        engine._durable._suspend("injected ENOSPC")
        snapshot = monitor.snapshot()
        assert snapshot.degraded
        assert not check(snapshot, "durability.journaling").ok
    finally:
        engine.close()
