"""Tests for the TF-IDF canopy predicate and Monge-Elkan similarity."""

import pytest

from repro.core.records import RecordStore
from repro.predicates.blocking import candidate_pairs
from repro.predicates.canopy import TfIdfCanopy, canopy_pairs
from repro.similarity.strings import jaro_winkler, monge_elkan


def store_of(*names):
    return RecordStore.from_rows([{"name": n} for n in names])


class TestTfIdfCanopy:
    def test_similar_names_pass(self):
        store = store_of(
            "sunita sarawagi",
            "s sarawagi sunita",
            "vinay deshpande",
            "sourabh kasliwal",
        )
        canopy = TfIdfCanopy.from_records(list(store), "name", threshold=0.3)
        assert canopy.evaluate(store[0], store[1])
        assert not canopy.evaluate(store[0], store[3])

    def test_canopy_pairs_complete(self):
        # Blocking must surface every pair the predicate accepts
        # (soundness of the IDF-pruned keys).
        names = [
            "sunita sarawagi",
            "sarawagi sunita",
            "vinay s deshpande",
            "deshpande vinay",
            "sourabh kasliwal",
            "common common word",
            "common word thing",
        ]
        store = store_of(*names)
        records = list(store)
        canopy = TfIdfCanopy.from_records(records, "name", threshold=0.3)
        via_blocking = set(candidate_pairs(canopy, records, verify=True))
        brute = {
            (i, j)
            for i in range(len(records))
            for j in range(i + 1, len(records))
            if canopy.evaluate(records[i], records[j])
        }
        assert via_blocking == brute

    def test_common_tokens_pruned_from_index(self):
        # A token appearing everywhere carries near-zero weight and is
        # dropped from the blocking keys at a high threshold.
        names = [f"shared unique{i}" for i in range(30)]
        store = store_of(*names)
        records = list(store)
        canopy = TfIdfCanopy.from_records(records, "name", threshold=0.9)
        keys = set(canopy.blocking_keys(records[0]))
        assert "unique0" in keys
        assert "shared" not in keys

    def test_threshold_validation(self):
        store = store_of("a")
        with pytest.raises(ValueError):
            TfIdfCanopy.from_records(list(store), "name", threshold=0.0)

    def test_canopy_pairs_helper(self):
        pairs = canopy_pairs(
            list(store_of("ann smith", "smith ann", "bob jones")),
            "name",
            threshold=0.5,
        )
        assert pairs == [(0, 1)]

    def test_empty_field(self):
        store = store_of("", "ann")
        canopy = TfIdfCanopy.from_records(list(store), "name", threshold=0.5)
        assert list(canopy.blocking_keys(store[0])) == []
        assert not canopy.evaluate(store[0], store[1])


class TestMongeElkan:
    def test_identical_token_lists(self):
        assert monge_elkan(["ann", "smith"], ["ann", "smith"]) == pytest.approx(1.0)

    def test_reordered_tokens_still_high(self):
        assert monge_elkan(["smith", "ann"], ["ann", "smith"]) == pytest.approx(1.0)

    def test_partial_match(self):
        score = monge_elkan(["ann", "smith"], ["ann", "jones"])
        assert 0.4 <= score < 1.0

    def test_asymmetry(self):
        a = monge_elkan(["ann"], ["ann", "zzz"])
        b = monge_elkan(["ann", "zzz"], ["ann"])
        assert a == pytest.approx(1.0)
        assert b < 1.0

    def test_empty_lists(self):
        assert monge_elkan([], []) == 1.0
        assert monge_elkan([], ["x"]) == 0.0
        assert monge_elkan(["x"], []) == 0.0

    def test_custom_base(self):
        exact = lambda x, y: 1.0 if x == y else 0.0
        assert monge_elkan(["a", "b"], ["b", "c"], base=exact) == 0.5

    def test_typo_tolerance_via_jaro_winkler(self):
        score = monge_elkan(
            ["sunita", "sarawagi"], ["sunita", "sarawagl"], base=jaro_winkler
        )
        assert score > 0.9
