"""Failure-injection tests: misbehaving predicates and hostile inputs.

The pruning guarantees assume predicates honour their roles; these tests
document what happens when they do not (degraded answers, never crashes)
and that odd-but-legal inputs flow through every stage.
"""


from repro.core.pruned_dedup import pruned_dedup
from repro.core.topk import topk_count_query
from repro.predicates.base import FunctionPredicate, PredicateLevel
from repro.predicates.validate import validate_necessary, validate_sufficient
from repro.scoring.pairwise import WeightedScorer
from repro.similarity.vectorize import name_only_featurizer
from tests.conftest import exact_name_predicate, make_store, shared_word_predicate


def lying_sufficient() -> FunctionPredicate:
    """Fires on records sharing any word — NOT actually sufficient."""
    return FunctionPredicate(
        evaluate_fn=lambda a, b: bool(
            set(a["name"].split()) & set(b["name"].split())
        ),
        keys_fn=lambda r: r["name"].split(),
        name="lying-sufficient",
    )


def lying_necessary() -> FunctionPredicate:
    """Requires exact equality — NOT necessary for real duplicates."""
    return FunctionPredicate(
        evaluate_fn=lambda a, b: a["name"] == b["name"],
        keys_fn=lambda r: [r["name"]],
        name="lying-necessary",
    )


class TestLyingPredicates:
    def test_over_merging_sufficient_runs_but_pollutes(self):
        # 'ann smith' and 'bob smith' are different entities but share a
        # word: the pipeline completes, with an over-merged top group.
        store = make_store(["ann smith"] * 3 + ["bob smith"] * 2 + ["cara lee"])
        levels = [PredicateLevel(lying_sufficient(), shared_word_predicate())]
        result = pruned_dedup(store, 1, levels)
        assert len(result.groups) >= 1
        assert result.groups.weights()[0] == 5.0  # wrong but well-formed

    def test_validator_catches_the_lie(self):
        store = make_store(["ann smith", "bob smith"])
        labels = [0, 1]
        report = validate_sufficient(lying_sufficient(), list(store), labels)
        assert not report.ok

    def test_too_tight_necessary_loses_duplicates_quietly(self):
        # Real duplicates 'ann smith'/'a smith' fail the lying N, so the
        # bound is computed over split groups — still no crash, and the
        # retained set is well-formed.
        store = make_store(["ann smith"] * 3 + ["a smith"] * 2 + ["bob j"])
        levels = [PredicateLevel(exact_name_predicate(), lying_necessary())]
        result = pruned_dedup(store, 1, levels)
        covered = result.groups.covered_record_ids()
        assert len(covered) == len(set(covered))

    def test_validator_catches_too_tight_necessary(self):
        store = make_store(["ann smith", "a smith"])
        labels = [0, 0]
        report = validate_necessary(lying_necessary(), list(store), labels)
        assert not report.ok


class TestHostileInputs:
    def scorer(self):
        featurizer = name_only_featurizer()
        return WeightedScorer(
            featurizer, [2.0, 2.0, 1.0, 1.0, 2.0], bias=-3.5
        )

    def levels(self):
        return [PredicateLevel(exact_name_predicate(), shared_word_predicate())]

    def test_empty_field_values(self):
        store = make_store(["", "", "ann smith", "ann smith", "x"])
        result = pruned_dedup(store, 2, self.levels())
        assert len(result.groups) >= 1

    def test_unicode_and_punctuation(self):
        from repro.predicates.library import ExactFieldsPredicate

        store = make_store(
            ["josé garcía-márquez"] * 3 + ["José García-Márquez"] * 2 + ["李雷"]
        )
        levels = [
            PredicateLevel(
                ExactFieldsPredicate(["name"]), shared_word_predicate()
            )
        ]
        result = pruned_dedup(store, 1, levels)
        # The normalized exact match collapses the case variants.
        assert result.groups.weights()[0] == 5.0

    def test_single_record(self):
        store = make_store(["only one"])
        result = topk_count_query(
            store, 1, self.levels(), self.scorer(), label_field="name"
        )
        assert result.exact
        assert result.best.entities[0].weight == 1.0

    def test_all_identical_records(self):
        store = make_store(["same"] * 50)
        result = topk_count_query(
            store, 1, self.levels(), self.scorer(), label_field="name"
        )
        assert result.best.entities[0].weight == 50.0

    def test_all_distinct_records_all_tied(self):
        # Every record is a distinct entity of weight 1: the K-th group
        # bound ties every group's weight, so nothing can be pruned —
        # the safe (and correct) outcome.
        store = make_store([f"n{i} x{i}" for i in range(30)])
        result = pruned_dedup(store, 3, self.levels())
        assert len(result.groups) == 30

    def test_all_records_share_a_token(self):
        # A token shared by everyone makes the N-graph one clique: fewer
        # than K distinct groups can be certified, so pruning must stand
        # down rather than guess.
        store = make_store([f"name {i} x{i}" for i in range(30)])
        result = pruned_dedup(store, 3, self.levels())
        assert not result.stats[0].certified
        assert len(result.groups) == 30

    def test_zero_weight_records(self):
        store = make_store(["a", "a", "b"], weights=[0.0, 0.0, 1.0])
        result = pruned_dedup(store, 1, self.levels())
        assert result.groups.weights()[0] == 1.0

    def test_very_long_field(self):
        long_name = " ".join(f"tok{i}" for i in range(500))
        store = make_store([long_name] * 2 + ["short"])
        result = pruned_dedup(store, 1, self.levels())
        assert result.groups.weights()[0] == 2.0
