"""Unit tests for the correlation-clustering score machinery."""

import pytest

from repro.clustering.correlation import (
    ScoreMatrix,
    correlation_score,
    group_score,
    partition_score,
)
from repro.scoring.pairwise import WeightedScorer
from repro.similarity.vectorize import name_only_featurizer
from tests.conftest import make_store, shared_word_predicate


def matrix_from(pairs: dict[tuple[int, int], float], n: int) -> ScoreMatrix:
    m = ScoreMatrix(n)
    for (i, j), s in pairs.items():
        m.set(i, j, s)
    return m


class TestScoreMatrix:
    def test_symmetric_access(self):
        m = matrix_from({(0, 1): 2.5}, 3)
        assert m.get(0, 1) == 2.5
        assert m.get(1, 0) == 2.5

    def test_default_for_missing(self):
        m = ScoreMatrix(3, default=-1.0)
        assert m.get(0, 2) == -1.0
        assert not m.has(0, 2)

    def test_self_pair_rejected(self):
        m = ScoreMatrix(2)
        with pytest.raises(ValueError):
            m.set(1, 1, 0.5)
        with pytest.raises(ValueError):
            m.get(0, 0)

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            ScoreMatrix(2).set(0, 5, 1.0)

    def test_scored_neighbors(self):
        m = matrix_from({(0, 1): 1.0, (0, 2): -1.0}, 4)
        assert m.scored_neighbors(0) == {1, 2}
        assert m.scored_neighbors(3) == set()

    def test_from_scorer_with_necessary_predicate(self):
        store = make_store(["ann smith", "a smith", "bob jones"])
        featurizer = name_only_featurizer()
        scorer = WeightedScorer(
            featurizer, [1.0] * featurizer.n_features, -1.0
        )
        m = ScoreMatrix.from_scorer(
            list(store), scorer, shared_word_predicate()
        )
        assert m.has(0, 1)  # share 'smith'
        assert not m.has(0, 2)

    def test_from_scorer_all_pairs(self):
        store = make_store(["a", "b", "c"])
        featurizer = name_only_featurizer()
        scorer = WeightedScorer(featurizer, [0.0] * featurizer.n_features, 1.0)
        m = ScoreMatrix.from_scorer(list(store), scorer, None)
        assert m.n_scored_pairs == 3


class TestCorrelationScore:
    def test_rewards_positive_within(self):
        m = matrix_from({(0, 1): 3.0}, 2)
        together = correlation_score([[0, 1]], m)
        apart = correlation_score([[0], [1]], m)
        assert together == 6.0  # ordered-pair convention: counted twice
        assert apart == 0.0

    def test_rewards_negative_across(self):
        m = matrix_from({(0, 1): -2.0}, 2)
        together = correlation_score([[0, 1]], m)
        apart = correlation_score([[0], [1]], m)
        assert apart == 4.0
        assert together == 0.0

    def test_mixed_example(self):
        # 0-1 positive (+1), 1-2 negative (-1): best is {0,1},{2}.
        m = matrix_from({(0, 1): 1.0, (1, 2): -1.0}, 3)
        best = correlation_score([[0, 1], [2]], m)
        alt1 = correlation_score([[0, 1, 2]], m)
        alt2 = correlation_score([[0], [1], [2]], m)
        assert best == 4.0
        assert alt1 == 2.0
        assert alt2 == 2.0

    def test_duplicate_membership_rejected(self):
        m = ScoreMatrix(2)
        with pytest.raises(ValueError):
            correlation_score([[0, 1], [1]], m)


class TestGroupScoreDecomposition:
    def test_sums_to_correlation_score(self):
        m = matrix_from(
            {(0, 1): 2.0, (1, 2): -1.5, (2, 3): 0.5, (0, 3): -0.5}, 4
        )
        for partition in ([[0, 1], [2, 3]], [[0, 1, 2, 3]], [[0], [1], [2], [3]]):
            assert partition_score(partition, m) == pytest.approx(
                correlation_score(partition, m)
            )

    def test_group_score_singleton(self):
        m = matrix_from({(0, 1): -3.0, (0, 2): 4.0}, 3)
        # Singleton {0}: no within pairs; one negative edge out.
        assert group_score([0], m) == 3.0

    def test_group_score_pair(self):
        m = matrix_from({(0, 1): 2.0, (1, 2): -1.0}, 3)
        # Within pair counted twice; the negative edge 1-2 leaves once.
        assert group_score([0, 1], m) == 2 * 2.0 + 1.0
