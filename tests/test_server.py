"""Tests for the always-on query service (repro.server).

Covers the admission controller's shed/release accounting, the
transport-agnostic :class:`QueryService` request path (outcomes,
deadline degradation, writer-crash supervision, graceful drain), the
hand-rolled HTTP layer end to end on an ephemeral port, the ``serve``
CLI verb as a real subprocess under SIGTERM (with the fault plane armed
through ``$REPRO_FAULT_PLANE``), ``health --json``, and the idempotent
close regression for both the engine and the durable store.
"""

from __future__ import annotations

import asyncio
import json
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.core import DurabilityPolicy, IncrementalTopK
from repro.core.parallel import group_fingerprint
from repro.core.persistence import DurableStateStore
from repro.core.retry import RetryPolicy
from repro.observability import MetricsRegistry
from repro.predicates.base import FunctionPredicate, PredicateLevel
from repro.server import (
    CLASS_INSERT,
    CLASS_QUERY,
    AdmissionConfig,
    AdmissionController,
    HttpServer,
    QueryService,
    ServerConfig,
    ServiceClient,
    SHED_COST,
    SHED_QUEUE_FULL,
    STATE_READY,
    STATE_STOPPED,
    estimate_query_cost,
)

from .conftest import exact_name_predicate, shared_word_predicate


def name_levels(verify_delay: float = 0.0) -> list[PredicateLevel]:
    """(exact name, shared word) level; *verify_delay* slows each
    necessary-predicate evaluation to make deadlines bite on demand."""
    necessary = shared_word_predicate()
    if verify_delay:

        def slow(a, b):
            time.sleep(verify_delay)
            return bool(set(a["name"].split()) & set(b["name"].split()))

        necessary = FunctionPredicate(
            evaluate_fn=slow,
            keys_fn=lambda r: r["name"].split(),
            name="slow-shared-word",
        )
    return [PredicateLevel(exact_name_predicate(), necessary)]


def seeded_engine(names_weights, levels=None) -> IncrementalTopK:
    engine = IncrementalTopK(levels if levels is not None else name_levels())
    for name, weight in names_weights:
        engine.add({"name": name}, weight)
    return engine


SEED_ROWS = [
    ("ann smith", 1.0),
    ("ann smith", 2.0),
    ("bob jones", 5.0),
    ("cara lee", 3.0),
]


def make_service(**overrides) -> QueryService:
    engine = overrides.pop("engine", None) or seeded_engine(SEED_ROWS)
    config = overrides.pop("config", None) or ServerConfig(
        label_field="name", **overrides
    )
    return QueryService(engine, config=config)


def run_async(coroutine):
    return asyncio.run(coroutine)


# -- admission controller ---------------------------------------------


def test_admission_admit_release_accounting():
    controller = AdmissionController(AdmissionConfig(max_pending_queries=2))
    assert controller.try_admit(CLASS_QUERY).admitted
    assert controller.try_admit(CLASS_QUERY).admitted
    decision = controller.try_admit(CLASS_QUERY)
    assert not decision.admitted
    assert decision.reason == SHED_QUEUE_FULL
    assert decision.retry_after_seconds > 0
    controller.release(CLASS_QUERY)
    assert controller.try_admit(CLASS_QUERY).admitted
    assert controller.stats.admitted[CLASS_QUERY] == 3
    assert controller.stats.shed == {f"{CLASS_QUERY}.{SHED_QUEUE_FULL}": 1}
    assert controller.stats.peak_pending[CLASS_QUERY] == 2


def test_admission_classes_are_independent():
    controller = AdmissionController(
        AdmissionConfig(max_pending_queries=1, max_pending_inserts=2)
    )
    assert controller.try_admit(CLASS_QUERY).admitted
    assert not controller.try_admit(CLASS_QUERY).admitted
    # A saturated query queue must not shed inserts, and vice versa.
    assert controller.try_admit(CLASS_INSERT).admitted
    assert controller.try_admit(CLASS_INSERT).admitted
    assert not controller.try_admit(CLASS_INSERT).admitted


def test_admission_cost_shedding():
    config = AdmissionConfig(max_query_cost=5.0, cost_unit_records=100)
    controller = AdmissionController(config)
    cheap = estimate_query_cost("topk", 100, config)
    expensive = estimate_query_cost("rank", 2_000, config)
    assert cheap <= 5.0 < expensive
    assert controller.try_admit(CLASS_QUERY, cheap).admitted
    decision = controller.try_admit(CLASS_QUERY, expensive)
    assert not decision.admitted and decision.reason == SHED_COST
    # Cost never applies to inserts.
    assert controller.try_admit(CLASS_INSERT, expensive).admitted


def test_admission_release_without_admit_raises():
    controller = AdmissionController(AdmissionConfig())
    with pytest.raises(RuntimeError):
        controller.release(CLASS_QUERY)


def test_admission_depth_gauge_and_shed_counter():
    metrics = MetricsRegistry()
    controller = AdmissionController(
        AdmissionConfig(max_pending_queries=1), metrics
    )
    controller.try_admit(CLASS_QUERY)
    assert (
        metrics.value("repro_admission_queue_depth", queue=CLASS_QUERY) == 1.0
    )
    controller.try_admit(CLASS_QUERY)
    assert (
        metrics.value(
            "repro_requests_shed_total",
            queue=CLASS_QUERY,
            reason=SHED_QUEUE_FULL,
        )
        == 1.0
    )
    controller.release(CLASS_QUERY)
    assert (
        metrics.value("repro_admission_queue_depth", queue=CLASS_QUERY) == 0.0
    )


def test_clamp_deadline():
    config = AdmissionConfig(
        default_deadline_seconds=7.0, max_deadline_seconds=20.0
    )
    assert config.clamp_deadline(None) == 7.0
    assert config.clamp_deadline(3.0) == 3.0
    assert config.clamp_deadline(500.0) == 20.0
    assert config.clamp_deadline(0.0) == 0.001


def test_admission_config_validation():
    with pytest.raises(ValueError):
        AdmissionConfig(max_pending_queries=0)
    with pytest.raises(ValueError):
        AdmissionConfig(max_query_cost=0.0)
    with pytest.raises(ValueError):
        AdmissionConfig(default_deadline_seconds=-1.0)


# -- service request path ---------------------------------------------


def test_query_verbs_and_outcomes():
    async def scenario():
        service = make_service()
        await service.start()
        try:
            status, body = await service.handle_query({"kind": "topk", "k": 2})
            assert status == 200 and body["outcome"] == "ok"
            assert [g["label"] for g in body["groups"]] == [
                "bob jones",
                "ann smith",
            ]
            status, body = await service.handle_query({"kind": "rank", "k": 2})
            assert status == 200 and len(body["ranking"]) == 2
            status, body = await service.handle_query(
                {"kind": "threshold", "min_weight": 3.0}
            )
            assert status == 200 and body["certain"] is True
            assert service.stats.requests == {
                "topk.ok": 1,
                "rank.ok": 1,
                "threshold.ok": 1,
            }
        finally:
            await service.drain()

    run_async(scenario())


def test_invalid_requests_are_400():
    async def scenario():
        service = make_service()
        await service.start()
        try:
            for payload in (
                {"kind": "nope"},
                {"kind": "topk", "k": 0},
                {"kind": "topk", "k": "five"},
                {"kind": "threshold"},
                {"kind": "topk", "deadline_seconds": -2},
            ):
                status, body = await service.handle_query(payload)
                assert status == 400, payload
                assert body["outcome"] == "invalid"
            status, body = await service.handle_insert({"fields": "nope"})
            assert status == 400
            status, body = await service.handle_insert(
                {"fields": {"name": "x"}, "weight": "inf"}
            )
            assert status == 400
        finally:
            await service.drain()

    run_async(scenario())


def test_insert_advances_reader_generation():
    async def scenario():
        service = make_service()
        await service.start()
        try:
            before = service.publisher.current.generation
            status, body = await service.handle_insert(
                {"fields": {"name": "ann smith"}, "weight": 10.0}
            )
            assert status == 200 and body["outcome"] == "ok"
            assert body["record_id"] == len(SEED_ROWS)
            assert service.publisher.current.generation > before
            status, body = await service.handle_query({"kind": "topk", "k": 1})
            assert body["groups"][0]["label"] == "ann smith"
            assert body["groups"][0]["weight"] == pytest.approx(13.0)
        finally:
            await service.drain()

    run_async(scenario())


def test_quarantined_insert_resolves_explicitly():
    def poison_keys(record):
        if record["name"] == "POISON":
            raise ValueError("poisoned record")
        return record["name"].split()

    predicate = FunctionPredicate(
        evaluate_fn=lambda a, b: a["name"] == b["name"],
        keys_fn=poison_keys,
        name="poisonable",
        key_implies_match=True,
    )
    engine = IncrementalTopK([PredicateLevel(predicate, predicate)])
    engine.add({"name": "fine"}, 1.0)

    async def scenario():
        service = QueryService(
            engine, config=ServerConfig(label_field="name")
        )
        await service.start()
        try:
            # Keying raises on the marker: the engine quarantines the
            # record, and the insert resolves explicitly — not silently.
            status, body = await service.handle_insert(
                {"fields": {"name": "POISON"}}
            )
            assert status == 200
            assert body["quarantined"] is True
            assert body["outcome"] == "quarantined"
        finally:
            await service.drain()

    run_async(scenario())


def test_query_shed_when_queue_full():
    async def scenario():
        service = make_service(
            config=ServerConfig(
                label_field="name",
                admission=AdmissionConfig(max_pending_queries=1),
            )
        )
        await service.start()
        try:
            # Occupy the only query slot from the outside, then ask.
            assert service.admission.try_admit(CLASS_QUERY).admitted
            status, body = await service.handle_query({"kind": "topk"})
            assert status == 429
            assert body["reason"] == SHED_QUEUE_FULL
            assert body["retry_after_seconds"] > 0
            assert service.stats.requests == {"topk.shed": 1}
            service.admission.release(CLASS_QUERY)
            status, _ = await service.handle_query({"kind": "topk"})
            assert status == 200
        finally:
            await service.drain()

    run_async(scenario())


def test_deadline_expiry_returns_explicit_degraded_answer():
    async def scenario():
        # ~40 cross-pair verifications at 25ms each >> the 1ms budget.
        engine = seeded_engine(
            [(f"dup name{i}", 1.0) for i in range(10)],
            levels=name_levels(verify_delay=0.025),
        )
        service = QueryService(
            engine, config=ServerConfig(label_field="name")
        )
        await service.start()
        try:
            status, body = await service.handle_query(
                {"kind": "rank", "k": 3, "deadline_seconds": 0.001}
            )
            assert status == 200
            assert body["outcome"] == "degraded"
            assert body["degraded"] is True
            assert body["degraded_reason"]
            assert service.stats.requests == {"rank.degraded": 1}
        finally:
            await service.drain()

    run_async(scenario())


def test_writer_crash_is_supervised_and_recovers():
    async def scenario():
        service = make_service(
            config=ServerConfig(
                label_field="name",
                writer_retry=RetryPolicy(
                    max_attempts=3,
                    base_delay_seconds=0.01,
                    max_delay_seconds=0.02,
                ),
            )
        )
        await service.start()
        try:
            real_add = service.engine.add

            def broken_add(fields, weight=1.0):
                raise RuntimeError("injected writer fault")

            service.engine.add = broken_add
            status, body = await service.handle_insert(
                {"fields": {"name": "x y"}}
            )
            assert status == 500
            assert "injected writer fault" in body["error"]
            # Readers keep serving from the last good snapshot.
            status, _ = await service.handle_query({"kind": "topk"})
            assert status == 200
            # Heal the writer; the supervisor's restarted task applies.
            service.engine.add = real_add
            await asyncio.sleep(0.05)
            status, body = await service.handle_insert(
                {"fields": {"name": "ann smith"}}
            )
            assert status == 200 and body["outcome"] == "ok"
            assert service.stats.writer_restarts >= 1
            assert service.writer_available
        finally:
            await service.drain()

    run_async(scenario())


def test_writer_down_after_consecutive_failures():
    async def scenario():
        service = make_service(
            config=ServerConfig(
                label_field="name",
                writer_retry=RetryPolicy(
                    max_attempts=2,
                    base_delay_seconds=0.005,
                    max_delay_seconds=0.01,
                ),
            )
        )
        await service.start()
        try:
            service.engine.add = lambda *a, **k: (_ for _ in ()).throw(
                RuntimeError("still down")
            )
            failures = 0
            for _ in range(2):
                status, _ = await service.handle_insert(
                    {"fields": {"name": "x"}}
                )
                assert status == 500
                failures += 1
                await asyncio.sleep(0.03)
            assert not service.writer_available
            status, body = await service.handle_insert(
                {"fields": {"name": "x"}}
            )
            assert status == 503
            assert body["outcome"] == "unavailable"
            # Queries are unaffected by a dead writer.
            status, _ = await service.handle_query({"kind": "topk"})
            assert status == 200
            health = {c.name: c for c in service.health_checks()}
            assert not health["server.writer"].ok
        finally:
            await service.drain()

    run_async(scenario())


def test_drain_applies_accepted_inserts_then_stops():
    async def scenario():
        service = make_service()
        await service.start()
        inserts = [
            asyncio.create_task(
                service.handle_insert({"fields": {"name": f"n{i}"}})
            )
            for i in range(8)
        ]
        report = await service.drain()
        assert service.state == STATE_STOPPED
        assert report["abandoned_inserts"] == 0
        statuses = [status for status, _ in await asyncio.gather(*inserts)]
        # Every accepted insert resolved (200) or was refused up front
        # (503 once draining) — none hang, none vanish.
        assert set(statuses) <= {200, 503}
        assert service.stats.inserts_applied == statuses.count(200)
        # After drain everything is refused explicitly.
        status, body = await service.handle_query({"kind": "topk"})
        assert status == 503 and body["outcome"] == "unavailable"
        status, _ = await service.handle_insert({"fields": {"name": "z"}})
        assert status == 503
        # Idempotent: a second drain returns the same report.
        assert await service.drain() == report

    run_async(scenario())


def test_readiness_gates_on_state_and_durability(tmp_path):
    async def scenario():
        levels = name_levels()
        engine = IncrementalTopK(
            levels, durability=DurabilityPolicy(state_dir=tmp_path / "state")
        )
        engine.add({"name": "a b"}, 1.0)
        service = QueryService(engine, config=ServerConfig(label_field="name"))
        ready, body = service.readiness()
        assert not ready and "state=starting" in body["problems"]
        await service.start()
        try:
            ready, body = service.readiness()
            assert ready and body["problems"] == []
            # Journaling suspended (the ENOSPC latch) clears readiness:
            # accepting writes that cannot be made durable is a silent-
            # loss risk, exactly what the probe must surface.
            engine._durable._suspend("injected ENOSPC")
            ready, body = service.readiness()
            assert not ready
            assert any("durability" in p for p in body["problems"])
        finally:
            await service.drain()

    run_async(scenario())


# -- HTTP layer -------------------------------------------------------


def test_http_end_to_end():
    async def scenario():
        metrics = MetricsRegistry()
        engine = seeded_engine(SEED_ROWS)
        service = QueryService(
            engine,
            config=ServerConfig(label_field="name"),
            metrics=metrics,
        )
        server = HttpServer(service, metrics=metrics)
        await server.start()
        await service.start()
        async with ServiceClient("127.0.0.1", server.port) as client:
            status, body = await client.get("/healthz")
            assert status == 200 and body["live"] is True
            status, body = await client.get("/readyz")
            assert status == 200 and body["ready"] is True
            status, body = await client.get("/health")
            assert status == 200
            assert {c["name"] for c in body["checks"]} >= {
                "server.state",
                "server.writer",
            }
            status, body = await client.query(kind="topk", k=2)
            assert status == 200 and len(body["groups"]) == 2
            status, body = await client.insert({"name": "new guy"}, 2.5)
            assert status == 200 and body["record_id"] == len(SEED_ROWS)
            status, body = await client.get("/stats")
            assert status == 200
            assert body["requests"]["insert.ok"] == 1
            assert body["state"] == STATE_READY
            status, _, raw = await client.request("GET", "/metrics")
            assert status == 200
            assert "repro_requests_total" in raw["text"]
            assert "repro_health_ready" in raw["text"]
            status, body = await client.get("/nope")
            assert status == 404
            status, _, body = await client.request("PUT", "/query")
            assert status == 405
            status, body = await client.drain()
            assert status == 200 and body["drained"] is True
            status, body = await client.get("/readyz")
            assert status == 503
        await server.close()

    run_async(scenario())


def test_http_bad_json_and_oversized_body():
    async def scenario():
        service = make_service()
        server = HttpServer(service)
        await server.start()
        await service.start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(
                b"POST /query HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot json!"
            )
            await writer.drain()
            line = await reader.readline()
            assert b"400" in line
            writer.close()

            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(
                b"POST /insert HTTP/1.1\r\nContent-Length: 2097152\r\n\r\n"
            )
            await writer.drain()
            line = await reader.readline()
            assert b"413" in line
            writer.close()
        finally:
            await service.drain()
            await server.close()

    run_async(scenario())


def test_http_shed_carries_retry_after_header():
    async def scenario():
        service = make_service(
            config=ServerConfig(
                label_field="name",
                admission=AdmissionConfig(
                    max_pending_queries=1, retry_after_seconds=0.25
                ),
            )
        )
        server = HttpServer(service)
        await server.start()
        await service.start()
        try:
            service.admission.try_admit(CLASS_QUERY)
            async with ServiceClient("127.0.0.1", server.port) as client:
                status, headers, body = await client.request(
                    "POST", "/query", {"kind": "topk"}
                )
            assert status == 429
            assert float(headers["retry-after"]) == pytest.approx(0.25)
            assert body["reason"] == SHED_QUEUE_FULL
            service.admission.release(CLASS_QUERY)
        finally:
            await service.drain()
            await server.close()

    run_async(scenario())


# -- subprocess lifecycle (the serve verb) ----------------------------


def _http_json(url: str, payload: dict | None = None, timeout: float = 10.0):
    if payload is None:
        request = urllib.request.Request(url)
    else:
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read() or b"{}")
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read() or b"{}")


@pytest.mark.timeout(120)
def test_serve_subprocess_sigterm_drain_and_audit_clean_restart(tmp_path):
    csv_path = tmp_path / "seed.csv"
    csv_path.write_text(
        "name\n" + "\n".join(["ann smith", "ann smith", "bob jones"]) + "\n"
    )
    state_dir = tmp_path / "state"
    env = dict(
        __import__("os").environ,
        # The testing hook: seeded transient WAL faults inside the
        # subprocess — retried by the storage layer, invisible to
        # clients, and the drain must still checkpoint cleanly.
        REPRO_FAULT_PLANE=json.dumps(
            {"seed": 11, "wal_append_rate": 0.05}
        ),
    )
    env.setdefault("PYTHONPATH", "src")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--field",
            "name",
            "--input",
            str(csv_path),
            "--state-dir",
            str(state_dir),
            "--port",
            "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        announce = process.stdout.readline().strip()
        assert announce.startswith("serving on ")
        port = int(announce.rsplit(":", 1)[1])
        base = f"http://127.0.0.1:{port}"
        deadline = time.time() + 60
        status = None
        while time.time() < deadline:
            try:
                status, _ = _http_json(base + "/readyz")
            except OSError:
                status = None
            if status == 200:
                break
            time.sleep(0.1)
        assert status == 200, "server never became ready"
        status, body = _http_json(
            base + "/query", {"kind": "topk", "k": 2}
        )
        assert status == 200 and body["outcome"] in ("ok", "degraded")
        status, body = _http_json(
            base + "/insert", {"fields": {"name": "cara lee"}, "weight": 2.0}
        )
        assert status == 200 and body["quarantined"] is False
        process.send_signal(signal.SIGTERM)
        _, stderr = process.communicate(timeout=60)
        assert process.returncode == 0, stderr
        assert "drained" in stderr
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate(timeout=30)
    # The drained directory restores bit-identically and audit-clean.
    engine = IncrementalTopK.restore(state_dir, name_levels())
    try:
        assert engine.entries_applied == 4
        assert engine.audit(strict=False) == []
        replay = seeded_engine(
            [("ann smith", 1.0), ("ann smith", 1.0), ("bob jones", 1.0),
             ("cara lee", 2.0)]
        )
        assert group_fingerprint(engine.query(3).groups) == group_fingerprint(
            replay.query(3).groups
        )
    finally:
        engine.close()


# -- CLI health --json ------------------------------------------------


def test_cli_health_json(tmp_path, capsys):
    state_dir = tmp_path / "state"
    engine = IncrementalTopK(
        [
            PredicateLevel(
                exact_name_predicate(), shared_word_predicate()
            )
        ],
        durability=DurabilityPolicy(state_dir=state_dir),
    )
    engine.add({"name": "a b"}, 1.0)
    engine.close()
    code = cli_main(
        [
            "health",
            "--state-dir",
            str(state_dir),
            "--field",
            "name",
            "--audit",
            "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["live"] is True and payload["ready"] is True
    names = {check["name"] for check in payload["checks"]}
    assert "durability.journaling" in names
    assert "state.audit" in names


# -- idempotent close regressions -------------------------------------


def test_engine_close_is_idempotent(tmp_path):
    engine = IncrementalTopK(
        name_levels(), durability=DurabilityPolicy(state_dir=tmp_path / "s")
    )
    engine.add({"name": "a"}, 1.0)
    engine.close()
    engine.close()  # second close must be a no-op, not an error
    # And a non-durable engine tolerates close() too.
    plain = IncrementalTopK(name_levels())
    plain.close()
    plain.close()


def test_durable_store_close_is_idempotent(tmp_path):
    store = DurableStateStore(DurabilityPolicy(state_dir=tmp_path / "s"))
    store.open_fresh()
    store.append({"fields": {"name": "a"}, "weight": 1.0})
    store.close()
    store.close()
    # Close after the handle was externally wedged is still safe.
    other = DurableStateStore(DurabilityPolicy(state_dir=tmp_path / "t"))
    other.open_fresh()
    other.append({"fields": {"name": "b"}, "weight": 1.0})
    other._segment_handle.close()
    other.close()
    other.close()


# -- interval answer semantics ----------------------------------------


def interval_engine(verify_delay: float = 0.0) -> IncrementalTopK:
    """A scorer-equipped engine over noisy duplicate names."""
    from repro.cli import generic_scorer

    engine = IncrementalTopK(
        name_levels(verify_delay=verify_delay),
        scorer=generic_scorer("name", -3.0),
    )
    for name, weight in [
        ("ann smith", 1.0),
        ("ann  smith", 2.0),
        ("ann smyth", 1.0),
        ("bob jones", 5.0),
        ("bob jonez", 1.0),
        ("cara lee", 3.0),
    ]:
        engine.add({"name": name}, weight)
    return engine


def test_interval_query_round_trip():
    async def scenario():
        service = QueryService(
            interval_engine(), config=ServerConfig(label_field="name")
        )
        await service.start()
        try:
            status, body = await service.handle_query(
                {"kind": "interval", "k": 2, "worlds": 8}
            )
            assert status == 200 and body["outcome"] == "ok"
            assert body["kind"] == "interval"
            assert body["worlds_enumerated"] >= 1
            assert body["entities"]
            for entity in body["entities"]:
                assert entity["count_lo"] <= entity["count_hi"]
                assert (
                    entity["count_lo"]
                    <= entity["expected_count"] + 1e-9
                )
                assert entity["expected_count"] <= entity["count_hi"] + 1e-9
                assert 0.0 <= entity["membership_probability"] <= 1.0 + 1e-9
                assert entity["label"]
            assert service.stats.requests == {"interval.ok": 1}
        finally:
            await service.drain()

    run_async(scenario())


def test_interval_query_without_scorer_is_400():
    async def scenario():
        service = make_service()  # seeded_engine carries no scorer
        await service.start()
        try:
            status, body = await service.handle_query(
                {"kind": "interval", "k": 2}
            )
            assert status == 400
            assert body["outcome"] == "invalid"
            assert "scorer" in body["error"]
        finally:
            await service.drain()

    run_async(scenario())


def test_interval_invalid_params_are_400():
    async def scenario():
        service = QueryService(
            interval_engine(), config=ServerConfig(label_field="name")
        )
        await service.start()
        try:
            for payload in (
                {"kind": "interval", "k": 2, "worlds": 0},
                {"kind": "interval", "k": 2, "worlds": True},
                {"kind": "interval", "k": 2, "worlds": "many"},
                {"kind": "interval", "k": 2, "min_probability": 1.5},
                {"kind": "interval", "k": 2, "min_probability": "nan"},
            ):
                status, body = await service.handle_query(payload)
                assert status == 400, payload
                assert body["outcome"] == "invalid"
        finally:
            await service.drain()

    run_async(scenario())


def test_interval_cost_scales_with_worlds_and_sheds():
    config = AdmissionConfig()
    base = estimate_query_cost("interval", 1_000, config, worlds=1)
    # Heavier than a plain count (the world-scoring stage), and monotone
    # in the requested world count.
    assert base > estimate_query_cost("topk", 1_000, config)
    assert estimate_query_cost("interval", 1_000, config, worlds=64) > base

    async def scenario():
        service = QueryService(
            interval_engine(), config=ServerConfig(label_field="name")
        )
        await service.start()
        try:
            status, body = await service.handle_query(
                {"kind": "interval", "k": 2, "worlds": 10**6}
            )
            assert status == 429
            assert body["reason"] == SHED_COST
            assert service.stats.requests == {"interval.shed": 1}
            # A sane world count on the same service is still served.
            status, _ = await service.handle_query(
                {"kind": "interval", "k": 2, "worlds": 8}
            )
            assert status == 200
        finally:
            await service.drain()

    run_async(scenario())


def test_interval_deadline_expiry_returns_widest_known_interval():
    async def scenario():
        # Slow verifications blow the 1ms budget during pruning: the
        # answer must still arrive — flagged degraded, intervals spanning
        # from each group's certified weight up to the retained total.
        service = QueryService(
            interval_engine(verify_delay=0.025),
            config=ServerConfig(label_field="name"),
        )
        await service.start()
        try:
            status, body = await service.handle_query(
                {"kind": "interval", "k": 2, "deadline_seconds": 0.001}
            )
            assert status == 200
            assert body["outcome"] == "degraded"
            assert body["degraded"] is True
            assert body["degraded_reason"]
            assert body["worlds_enumerated"] == 0
            assert body["entities"]
            highest = max(e["count_hi"] for e in body["entities"])
            for entity in body["entities"]:
                assert entity["count_lo"] <= entity["count_hi"]
                # Every interval is capped by the same retained total.
                assert entity["count_hi"] == pytest.approx(highest)
                assert entity["membership_probability"] == 0.0
            assert service.stats.requests == {"interval.degraded": 1}
        finally:
            await service.drain()

    run_async(scenario())


def test_interval_over_http():
    async def scenario():
        service = QueryService(
            interval_engine(), config=ServerConfig(label_field="name")
        )
        server = HttpServer(service)
        await server.start()
        await service.start()
        try:
            async with ServiceClient("127.0.0.1", server.port) as client:
                status, _, body = await client.request(
                    "POST", "/query",
                    {"kind": "interval", "k": 2, "worlds": 8},
                )
            assert status == 200
            assert body["kind"] == "interval"
            assert body["entities"]
        finally:
            await service.drain()
            await server.close()

    run_async(scenario())
