"""Tests for the shared verification layer (context, counters, caches).

The workload below has two heavy disjoint clusters (alpha/beta), two
lighter groups N-connected to them (gamma/delta), and two isolated
singletons — small enough to reason about every probe by hand:

* lower-bound estimation (K=2) certifies at m=2 with M=4 after probing
  the alpha and beta representatives;
* pruning probes the four at-risk groups; gamma and delta survive on
  their neighbor mass, the singletons are pruned.

Every candidate pair the prune stage needs was already decided by the
lower-bound walk (from the other endpoint), so a shared context answers
the whole prune stage from the verdict cache.
"""

import pytest

from repro.core.collapse import collapse
from repro.core.incremental import IncrementalTopK
from repro.core.lower_bound import estimate_lower_bound
from repro.core.prune import prune
from repro.core.pruned_dedup import pruned_dedup
from repro.core.records import GroupSet
from repro.core.verification import PipelineCounters, VerificationContext
from repro.predicates.base import FunctionPredicate, PredicateLevel
from repro.predicates.blocking import NeighborIndex
from repro.predicates.library import NgramOverlapPredicate
from tests.conftest import exact_name_predicate, make_store, shared_word_predicate


def two_cluster_store():
    return make_store(
        ["alpha one"] * 5
        + ["beta two"] * 4
        + ["gamma one"] * 3
        + ["delta two"] * 2
        + ["eps three", "zeta four"]
    )


def collapsed_groups(store):
    return collapse(GroupSet.singletons(store), exact_name_predicate())


def run_level(context, groups, necessary, k=2):
    estimate = estimate_lower_bound(groups, necessary, k, context=context)
    pruned = prune(groups, necessary, estimate.bound, context=context)
    return estimate, pruned


class TestSharedContextSavesWork:
    def test_strictly_fewer_evaluations_than_independent_stages(self):
        store = two_cluster_store()
        groups = collapsed_groups(store)
        necessary = shared_word_predicate()

        legacy = VerificationContext(caching=False)
        legacy_estimate, legacy_pruned = run_level(legacy, groups, necessary)

        shared = VerificationContext()
        estimate, pruned = run_level(shared, groups, necessary)

        # Identical pipeline outcome...
        assert (estimate.m, estimate.bound) == (
            legacy_estimate.m,
            legacy_estimate.bound,
        )
        assert pruned.kept_group_ids == legacy_pruned.kept_group_ids
        assert pruned.retained.weights() == legacy_pruned.retained.weights()

        # ...for strictly less verification work.
        assert (
            shared.counters.total_evaluations
            < legacy.counters.total_evaluations
        )
        assert shared.counters.index_builds == 1
        assert legacy.counters.index_builds == 2
        assert shared.counters.index_reuses == 1
        assert shared.counters.cache_hits > 0
        assert legacy.counters.cache_hits == 0

    def test_prune_answered_entirely_from_cache(self):
        # Every pair the prune stage probes was decided (from the other
        # endpoint) during the lower-bound walk: zero fresh evaluations.
        store = two_cluster_store()
        groups = collapsed_groups(store)
        necessary = shared_word_predicate()
        context = VerificationContext()
        estimate_lower_bound(groups, necessary, 2, context=context)
        after_lower_bound = context.counters.snapshot()
        prune(groups, necessary, 4.0, context=context)
        prune_work = context.counters.delta(after_lower_bound)
        assert prune_work.total_evaluations == 0
        assert prune_work.cache_hits > 0

    def test_verdict_cache_is_inspectable(self):
        store = two_cluster_store()
        groups = collapsed_groups(store)
        necessary = shared_word_predicate()
        context = VerificationContext()
        run_level(context, groups, necessary)
        assert context.cached_verdicts(necessary) == (
            context.counters.cache_misses
        )
        assert context.cached_verdicts(necessary) > 0


class TestCountModeSharing:
    """Count-verifiable predicates share verdicts by neighbor-set
    membership (not the per-pair dict — see NeighborIndex docs)."""

    def test_membership_sharing_matches_uncached_index(self):
        store = make_store(
            ["ann smithson"] * 3
            + ["anne smithson"] * 2
            + ["bob jonesey"] * 2
            + ["bobby jonesey", "cara leeworth"]
        )
        groups = collapsed_groups(store)
        necessary = NgramOverlapPredicate("name", 0.4)
        assert necessary.count_verifiable
        context = VerificationContext()
        cached = context.neighbor_index(necessary, groups)
        bare = NeighborIndex(necessary, groups.representatives())
        representatives = groups.representatives()
        for position, representative in enumerate(representatives):
            assert cached.neighbors(
                representative, exclude_position=position
            ) == bare.neighbors(representative, exclude_position=position)
        # Later probes answered earlier probes' pairs from their sets.
        assert context.counters.cache_hits > 0
        # ...and the per-pair dict stayed empty (count mode bypasses it).
        assert context.cached_verdicts(necessary) == 0

    def test_shared_and_full_probes_agree_pairwise(self):
        # Every (i, j) verdict must be identical whichever endpoint is
        # probed first — the symmetry the membership shortcut relies on.
        store = make_store(
            ["ann smithson", "anne smithson", "bob jonesey", "bobby jonesey"]
        )
        groups = collapsed_groups(store)
        necessary = NgramOverlapPredicate("name", 0.4)
        context = VerificationContext()
        index = context.neighbor_index(necessary, groups)
        representatives = groups.representatives()
        lists = {
            i: set(index.neighbors(representatives[i], exclude_position=i))
            for i in range(len(representatives))
        }
        for i in lists:
            for j in lists:
                if i != j:
                    assert (j in lists[i]) == (i in lists[j])


class TestContextCorrectnessGuards:
    def test_asymmetric_predicate_bypasses_verdict_cache(self):
        store = two_cluster_store()
        groups = collapsed_groups(store)
        asym = FunctionPredicate(
            evaluate_fn=lambda a, b: bool(
                set(a["name"].split()) & set(b["name"].split())
            ),
            keys_fn=lambda r: r["name"].split(),
            name="asym",
            symmetric=False,
        )
        context = VerificationContext()
        index = context.neighbor_index(asym, groups)
        index.neighbors(groups.representatives()[2], exclude_position=2)
        assert context.counters.predicate_evaluations > 0
        assert context.counters.cache_misses == 0
        assert context.cached_verdicts(asym) == 0

    def test_index_rebuilt_when_group_set_changes(self):
        store = two_cluster_store()
        groups = collapsed_groups(store)
        necessary = shared_word_predicate()
        context = VerificationContext()
        first = context.neighbor_index(necessary, groups)
        again = context.neighbor_index(necessary, groups)
        assert again is first
        shrunk = context.neighbor_index(necessary, groups.subset([0, 1, 2]))
        assert shrunk is not first
        assert context.counters.index_builds == 2
        assert context.counters.index_reuses == 1

    def test_verdict_cache_limit_evicts_oldest_down_to_limit(self):
        store = two_cluster_store()
        groups = collapsed_groups(store)
        necessary = shared_word_predicate()
        context = VerificationContext(verdict_cache_limit=1)
        run_level(context, groups, necessary)
        assert context.cached_verdicts(necessary) > 1
        # The limit is enforced at the next index build for the predicate:
        # bounded FIFO eviction trims the *oldest* verdicts down to the
        # limit instead of flushing the whole cache mid-stream.
        context.neighbor_index(necessary, groups.subset([0, 1]))
        assert context.cached_verdicts(necessary) == 1


class TestCounters:
    def test_snapshot_and_delta(self):
        counters = PipelineCounters()
        counters.predicate_evaluations = 5
        counters.add_stage_time("prune", 1.0)
        snapshot = counters.snapshot()
        counters.predicate_evaluations += 3
        counters.signature_evaluations += 2
        counters.add_stage_time("prune", 0.5)
        delta = counters.delta(snapshot)
        assert delta.predicate_evaluations == 3
        assert delta.signature_evaluations == 2
        assert delta.total_evaluations == 5
        assert delta.stage_seconds == pytest.approx({"prune": 0.5})
        # The snapshot is an independent copy.
        assert snapshot.predicate_evaluations == 5
        assert snapshot.stage_seconds == {"prune": 1.0}

    def test_as_dict_shape(self):
        counters = PipelineCounters()
        counters.cache_hits = 7
        counters.add_stage_time("collapse", 0.25)
        flat = counters.as_dict()
        assert flat["cache_hits"] == 7
        assert flat["stage_seconds"] == {"collapse": 0.25}
        assert set(PipelineCounters._INT_FIELDS) <= set(flat)


class TestPipelineIntegration:
    def test_pruned_dedup_exposes_per_level_counters(self):
        store = two_cluster_store()
        levels = [
            PredicateLevel(exact_name_predicate(), shared_word_predicate())
        ]
        # Pinned serial: the exact build/reuse split below is the serial
        # schedule's (a REPRO_WORKERS fan-out adds a priming stage that
        # legitimately reuses the index once more).
        result = pruned_dedup(store, 2, levels, workers=1)
        assert result.counters is not None
        level_counters = result.stats[0].counters
        assert level_counters is not None
        assert level_counters.index_builds == 1
        assert level_counters.index_reuses == 1
        assert level_counters.cache_hits > 0
        assert {"collapse", "lower_bound", "prune"} <= set(
            result.counters.stage_seconds
        )

    def test_external_context_accumulates_across_runs(self):
        store = two_cluster_store()
        levels = [
            PredicateLevel(exact_name_predicate(), shared_word_predicate())
        ]
        context = VerificationContext()
        first = pruned_dedup(store, 2, levels, context=context)
        evaluations_after_first = context.counters.total_evaluations
        assert evaluations_after_first > 0
        second = pruned_dedup(store, 2, levels, context=context)
        assert first.groups.weights() == second.groups.weights()
        # Same store, same predicate objects: the second run is answered
        # from the persistent verdict cache and neighbor memo.
        assert (
            context.counters.total_evaluations == evaluations_after_first
        )
        assert context.counters.index_builds == 1

    def test_incremental_stream_keeps_cache_across_queries(self):
        levels = [
            PredicateLevel(exact_name_predicate(), shared_word_predicate())
        ]
        stream = IncrementalTopK(levels)
        stream.add_store(two_cluster_store())
        first = stream.query(2)
        assert first.counters is not None
        builds_after_first = stream.verification.counters.index_builds
        second = stream.query(1)
        # A different K re-runs the pipeline but reuses the index and
        # every neighbor list computed by the first query.
        assert (
            stream.verification.counters.index_builds == builds_after_first
        )
        assert stream.verification.counters.neighbor_memo_hits > 0
        batch = pruned_dedup(stream.current_store(), 1, levels)
        assert second.groups.weights() == batch.groups.weights()


class TestStageTimingReentrancy:
    """Regression: re-entrant same-name stage() frames must count once.

    Nesting ``context.stage("x")`` inside another ``stage("x")`` frame
    (as the thresholded rank query's priming sweep does under "prune")
    used to add both frames' elapsed time — the inner interval was
    counted twice.  Only the outermost frame of a name may record.
    """

    def test_nested_same_name_counts_outer_frame_once(self):
        import time as time_module

        context = VerificationContext()
        with context.stage("prune"):
            with context.stage("prune"):
                time_module.sleep(0.02)
        recorded = context.counters.stage_seconds["prune"]
        # Double counting would record >= 2x the inner sleep.
        assert 0.02 <= recorded < 0.036

    def test_distinct_names_still_count_independently(self):
        context = VerificationContext()
        with context.stage("collapse"):
            with context.stage("prune"):
                pass
        assert set(context.counters.stage_seconds) == {"collapse", "prune"}

    def test_sequential_same_name_frames_accumulate(self):
        import time as time_module

        context = VerificationContext()
        for _ in range(2):
            with context.stage("prune"):
                time_module.sleep(0.01)
        assert context.counters.stage_seconds["prune"] >= 0.02

    def test_depth_bookkeeping_resets_after_exception(self):
        context = VerificationContext()
        with pytest.raises(RuntimeError):
            with context.stage("prune"):
                raise RuntimeError("boom")
        assert context._stage_depth == {}
        with context.stage("prune"):
            pass
        assert context.counters.stage_seconds["prune"] > 0


class TestContextObservabilityHelpers:
    def test_default_context_uses_null_observability(self):
        context = VerificationContext()
        assert context.tracer.enabled is False
        assert context.metrics.enabled is False
        with context.span("query") as span:
            span.set_attribute("k", 1)
        assert context.tracer.roots == []

    def test_span_measures_pipeline_counters_by_default(self):
        from repro.observability import Tracer

        store = two_cluster_store()
        context = VerificationContext(tracer=Tracer())
        groups = collapsed_groups(store)
        with context.span("lower_bound"):
            estimate_lower_bound(groups, shared_word_predicate(), 2,
                                 context=context)
        (root,) = context.tracer.roots
        delta = root.counters_delta
        assert delta is not None
        assert delta.predicate_evaluations > 0
        assert delta.as_dict()["predicate_evaluations"] == (
            context.counters.predicate_evaluations
        )

    def test_event_routes_to_tracer(self):
        from repro.observability import Tracer

        context = VerificationContext(tracer=Tracer())
        with context.span("query"):
            context.event("degraded", reason="deadline")
        (root,) = context.tracer.roots
        assert root.events[0].name == "degraded"

    def test_publish_pipeline_metrics_exports_totals(self):
        from repro.observability import MetricsRegistry

        context = VerificationContext(metrics=MetricsRegistry())
        before = context.counters.snapshot()
        context.counters.predicate_evaluations += 3
        context.counters.add_stage_time("prune", 0.5)
        context.publish_pipeline_metrics(context.counters.delta(before))
        assert context.metrics.value(
            "repro_pipeline_predicate_evaluations_total"
        ) == 3
        assert context.metrics.value(
            "repro_stage_seconds_total", stage="prune"
        ) == 0.5
