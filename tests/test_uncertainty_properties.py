"""Property-based tests (hypothesis) for the uncertainty layer.

The invariants proved here are the ones the answer contract in
``docs/uncertainty.md`` promises unconditionally:

* world enumeration is canonically ordered, and for distinct world
  scores the R-best list is a prefix of any larger enumeration — so
  intervals *nest* as R grows;
* membership probabilities live in [0, 1], per-rank slot mass sums to
  at most 1 across entities, and an entity's slot mass never exceeds
  its membership mass;
* the Bernecker-style membership bound is answer-preserving: pruned and
  unpruned aggregation report bit-identical entities;
* a single enumerated world collapses every interval to a point;
* the query is bit-identical across worker counts and record-store
  backends, like every other query in the engine.
"""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.clustering.correlation import ScoreMatrix
from repro.clustering.exact import exact_topk_answers
from repro.cli import generic_levels, generic_scorer
from repro.core.incremental import IncrementalTopK
from repro.core.parallel import fork_available
from repro.core.records import GroupSet, RecordStore
from repro.core.verification import VerificationContext
from repro.datasets import generate_citations
from repro.embedding.greedy import LinearEmbedding
from repro.embedding.segmentation import top_r_segmentations
from repro.observability import MetricsRegistry
from repro.uncertainty import (
    World,
    aggregate_worlds,
    enumerate_worlds,
    interval_over_groups,
    membership_probabilities,
    topk_interval_query,
    world_masses,
)

TOL = 1e-9

finite_scores = st.floats(
    min_value=-5.0, max_value=5.0, allow_nan=False, width=32
)


@st.composite
def world_models(draw, max_n=6):
    """A dense random (scores, embedding, weights, k) world model."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    scores = ScoreMatrix(n)
    for i in range(n):
        for j in range(i + 1, n):
            scores.set(i, j, draw(finite_scores))
    weights = [
        draw(st.floats(min_value=0.5, max_value=4.0, width=32))
        for _ in range(n)
    ]
    k = draw(st.integers(min_value=1, max_value=min(2, n)))
    embedding = LinearEmbedding(order=list(range(n)), breaks=set())
    return scores, embedding, weights, k


def _envelopes(worlds, weights, k):
    """position -> (count_lo, count_hi) under uniform-temperature mass."""
    masses, _ = world_masses(worlds, temperature=1.0)
    entities, _ = aggregate_worlds(worlds, masses, weights, k)
    return {
        position: (entity.count_lo, entity.count_hi)
        for entity in entities
        for position in entity.positions
    }


class TestWorldEnumeration:
    @given(world_models())
    @settings(max_examples=60, deadline=None)
    def test_prefix_nesting_and_interval_monotonicity(self, model):
        scores, embedding, weights, k = model
        full = enumerate_worlds(
            scores, embedding, weights, k, 64, max_thresholds=256
        )
        assume(full)
        # Exact score ties at the DP's per-cell r-boundary can legally
        # reshuffle which tied world survives a smaller enumeration; the
        # prefix property is only promised for distinct scores.
        world_scores = [world.score for world in full]
        assume(len(set(world_scores)) == len(world_scores))
        wide = _envelopes(full, weights, k)
        for r in (1, 2, 4):
            sub = enumerate_worlds(
                scores, embedding, weights, k, r, max_thresholds=256
            )
            assert sub == full[: len(sub)]
            for position, (lo, hi) in _envelopes(sub, weights, k).items():
                if position in wide:
                    assert lo >= wide[position][0] - TOL
                    assert hi <= wide[position][1] + TOL

    @given(world_models())
    @settings(max_examples=60, deadline=None)
    def test_canonical_order(self, model):
        scores, embedding, weights, k = model
        worlds = enumerate_worlds(
            scores, embedding, weights, k, 32, max_thresholds=64
        )
        assert worlds == sorted(worlds, key=World.sort_key)
        for world in worlds:
            assert world.clusters == tuple(
                sorted(
                    world.clusters,
                    key=lambda c: (
                        -sum(weights[m] for m in c),
                        c,
                    ),
                )
            )
            covered = sorted(m for c in world.clusters for m in c)
            assert covered == list(range(len(weights)))


class TestAggregation:
    @given(world_models())
    @settings(max_examples=60, deadline=None)
    def test_probability_bounds(self, model):
        scores, embedding, weights, k = model
        worlds = enumerate_worlds(
            scores, embedding, weights, k, 16, max_thresholds=64
        )
        assume(worlds)
        masses, temperature = world_masses(worlds)
        assert temperature >= 1.0
        assert math.fsum(masses) == pytest.approx(1.0, abs=1e-9)
        entities, pruned = aggregate_worlds(worlds, masses, weights, k)
        assert pruned == 0  # no threshold, nothing to cut
        slot_totals = [0.0] * k
        for entity in entities:
            assert -TOL <= entity.membership_probability <= 1.0 + TOL
            assert entity.count_lo <= entity.expected_count + TOL
            assert entity.expected_count <= entity.count_hi + TOL
            assert len(entity.slot_probabilities) == k
            assert (
                sum(entity.slot_probabilities)
                <= entity.membership_probability + TOL
            )
            for slot, mass in enumerate(entity.slot_probabilities):
                assert mass >= -TOL
                slot_totals[slot] += mass
        for total in slot_totals:
            assert total <= 1.0 + TOL

    @given(world_models(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_pruning_is_answer_preserving(self, model, min_probability):
        scores, embedding, weights, k = model
        worlds = enumerate_worlds(
            scores, embedding, weights, k, 16, max_thresholds=64
        )
        assume(worlds)
        masses, _ = world_masses(worlds)
        pruned_entities, _ = aggregate_worlds(
            worlds, masses, weights, k,
            min_probability=min_probability, prune=True,
        )
        plain_entities, zero = aggregate_worlds(
            worlds, masses, weights, k,
            min_probability=min_probability, prune=False,
        )
        assert zero == 0
        assert pruned_entities == plain_entities  # bit-identical

    @given(world_models())
    @settings(max_examples=60, deadline=None)
    def test_single_world_collapses_to_points(self, model):
        scores, embedding, weights, k = model
        worlds = enumerate_worlds(
            scores, embedding, weights, k, 1, max_thresholds=64
        )
        assume(worlds)
        entities, _ = aggregate_worlds(worlds, [1.0], weights, k)
        for entity in entities:
            assert entity.count_lo == entity.count_hi
            assert entity.expected_count == entity.count_lo
            assert entity.membership_probability == pytest.approx(1.0)


NAMES = [
    "ann lee", "ann  lee", "an lee",
    "bob roy", "bob roi", "bobb roy",
    "carol day", "carol  day",
    "dave kim", "dave kimm", "erin poe", "erin po",
]


def _name_store() -> RecordStore:
    return RecordStore.from_rows([{"name": name} for name in NAMES])


def _engine(store_kind: str) -> IncrementalTopK:
    engine = IncrementalTopK(
        generic_levels("name", 0.3),
        scorer=generic_scorer("name", -3.0),
        store=store_kind,
    )
    for name in NAMES:
        engine.add({"name": name}, 1.0)
    return engine


def _comparable(result):
    """Everything the answer contract covers (the pruning trace aside)."""
    return (
        result.entities,
        result.k,
        result.worlds_requested,
        result.worlds_enumerated,
        result.temperature,
        result.min_probability,
        result.pruned_candidates,
        result.exact,
        result.degraded,
    )


class TestEngineBitIdentity:
    def test_store_kinds_agree(self):
        results = []
        for kind in ("memory", "columnar"):
            engine = _engine(kind)
            try:
                results.append(engine.query(2, kind="interval", r=8))
            finally:
                engine.close()
        assert _comparable(results[0]) == _comparable(results[1])

    @pytest.mark.skipif(
        not fork_available(), reason="fork start method unavailable"
    )
    def test_worker_counts_agree(self):
        baseline = None
        for workers in (None, 2, 4):
            engine = _engine("memory")
            try:
                result = engine.query(2, kind="interval", r=8, workers=workers)
            finally:
                engine.close()
            if baseline is None:
                baseline = _comparable(result)
            else:
                assert _comparable(result) == baseline

    def test_batch_worker_counts_agree(self):
        if not fork_available():
            pytest.skip("fork start method unavailable")
        store = _name_store()
        levels = generic_levels("name", 0.3)
        scorer = generic_scorer("name", -3.0)
        baseline = None
        for workers in (None, 2):
            result = topk_interval_query(
                store, 2, levels, scorer, r=8, workers=workers
            )
            if baseline is None:
                baseline = _comparable(result)
            else:
                assert _comparable(result) == baseline

    def test_snapshot_cache_returns_identical_answer(self):
        engine = _engine("memory")
        try:
            first = engine.query(2, kind="interval", r=8)
            second = engine.query(2, kind="interval", r=8)
            assert second is first  # generation unchanged: cached
            engine.add({"name": "fred moon"}, 1.0)
            third = engine.query(2, kind="interval", r=8)
            assert third is not first
        finally:
            engine.close()


class TestCertifiedExact:
    def test_few_groups_collapse_exactly(self):
        store = RecordStore.from_rows(
            [{"name": name} for name in
             ["ann", "ann", "ann", "bob", "bob", "cara"]]
        )
        result = topk_interval_query(
            store, 3,
            generic_levels("name", 0.3),
            generic_scorer("name", -3.0),
            r=8,
            label_field="name",
        )
        assert result.exact
        assert result.collapsed
        assert result.worlds_enumerated == 1
        assert len(result.entities) == 3
        for entity in result.entities:
            assert entity.count_lo == entity.count_hi
            assert entity.membership_probability == pytest.approx(1.0)
            assert sorted(entity.slot_probabilities, reverse=True)[0] == (
                pytest.approx(1.0)
            )
            assert sum(entity.slot_probabilities) == pytest.approx(1.0)


class TestTieDeterminism:
    """Regression: deliberately tied scores must enumerate canonically."""

    def _flat_model(self, n=5):
        scores = ScoreMatrix(n)  # all pairs at the 0.0 default: all tied
        weights = [1.0] * n
        embedding = LinearEmbedding(order=list(range(n)), breaks=set())
        return scores, embedding, weights

    def test_top_r_segmentations_order_is_threshold_invariant(self):
        scores, embedding, weights = self._flat_model()
        thresholds = [0.0, 1.0, 2.0, 3.0]
        forward = top_r_segmentations(
            scores, embedding, weights, 1, 16, thresholds=thresholds
        )
        backward = top_r_segmentations(
            scores, embedding, weights, 1, 16,
            thresholds=list(reversed(thresholds)),
        )
        # The recorded provenance threshold may differ (any threshold
        # that surfaced the tied layout first); the enumerated worlds —
        # layout, flags, score, and order — must not.
        layout = lambda s: (s.segments, s.big_flags, s.score)  # noqa: E731
        assert [layout(s) for s in forward] == [layout(s) for s in backward]
        keys = [(-s.score, s.segments, s.big_flags) for s in forward]
        assert keys == sorted(keys)

    def test_tied_worlds_enumerate_canonically(self):
        scores, embedding, weights = self._flat_model()
        worlds = enumerate_worlds(
            scores, embedding, weights, 1, 16, max_thresholds=64
        )
        assert worlds == sorted(worlds, key=World.sort_key)
        assert len({world.sort_key() for world in worlds}) == len(worlds)

    def test_exact_topk_answers_canonical_under_ties(self):
        scores = ScoreMatrix(4)  # every partition scores 0.0
        answers = exact_topk_answers(scores, [1.0] * 4, 1, 8)
        keys = [(-best, groups) for groups, best, _ in answers]
        assert keys == sorted(keys)


class TestPruningAtScale:
    def test_bench_scale_prunes_and_publishes_metrics(self):
        dataset = generate_citations(n_records=200, seed=0)
        metrics = MetricsRegistry()
        context = VerificationContext(metrics=metrics)
        levels = generic_levels("author", 0.3)
        scorer = generic_scorer("author", -3.0)
        result = topk_interval_query(
            dataset.store, 3, levels, scorer,
            r=32, min_probability=0.3, context=context,
        )
        assert result.pruned_candidates > 0
        assert metrics.value("repro_probabilistic_prunes_total") == (
            result.pruned_candidates
        )
        assert metrics.value("repro_worlds_enumerated_total") == (
            result.worlds_enumerated
        )
        assert metrics.value("repro_queries_total", kind="interval") == 1.0

    def test_bench_scale_pruning_is_answer_preserving(self):
        dataset = generate_citations(n_records=200, seed=0)
        levels = generic_levels("author", 0.3)
        scorer = generic_scorer("author", -3.0)
        kwargs = dict(r=32, min_probability=0.3)
        pruned = topk_interval_query(dataset.store, 3, levels, scorer, **kwargs)
        plain = topk_interval_query(
            dataset.store, 3, levels, scorer, prune=False, **kwargs
        )
        assert pruned.entities == plain.entities
        assert pruned.pruned_candidates > 0
        assert plain.pruned_candidates == 0


class TestPolicyAndProjections:
    def test_membership_probabilities_projection(self):
        store = _name_store()
        levels = generic_levels("name", 0.3)
        scorer = generic_scorer("name", -3.0)
        result = topk_interval_query(store, 2, levels, scorer, r=8)
        projection = membership_probabilities(store, 2, levels, scorer, r=8)
        assert projection == {
            entity.representative_id: entity.membership_probability
            for entity in result.entities
        }

    def test_scoring_stage_deadline_degrades_explicitly(self):
        """A deadline that survives pruning but expires while the world
        model is scored still yields an answer: flagged degraded, every
        interval spanning certified weight up to the retained total."""
        import time

        from repro.core.resilience import ExecutionPolicy
        from repro.scoring.pairwise import PairwiseScorer

        class SlowScorer(PairwiseScorer):
            def score(self, a, b):
                time.sleep(0.2)
                return 2.0

        result = topk_interval_query(
            _name_store(), 2,
            generic_levels("name", 0.3),
            SlowScorer(),
            r=8,
            policy=ExecutionPolicy(deadline_seconds=0.1),
        )
        assert result.degraded
        assert result.degraded_reason
        assert result.worlds_enumerated == 0
        assert result.entities
        total = max(entity.count_hi for entity in result.entities)
        for entity in result.entities:
            assert entity.count_lo <= entity.count_hi
            assert entity.count_hi == pytest.approx(total)
            assert entity.membership_probability == 0.0
