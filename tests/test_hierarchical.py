"""Tests for agglomerative hierarchical grouping (Section 5.2)."""

import pytest

from repro.clustering.correlation import ScoreMatrix, partition_score
from repro.clustering.hierarchical import agglomerate
from repro.embedding.segmentation import best_partition


def two_cluster_matrix() -> ScoreMatrix:
    m = ScoreMatrix(5)
    for i, j in [(0, 1), (0, 2), (1, 2), (3, 4)]:
        m.set(i, j, 2.0)
    for i in (0, 1, 2):
        for j in (3, 4):
            m.set(i, j, -2.0)
    return m


def canonical(partition):
    return sorted(tuple(sorted(g)) for g in partition)


class TestAgglomerate:
    def test_two_clusters_average_link(self):
        h = agglomerate(two_cluster_matrix(), linkage="average")
        partition, _ = h.best_frontier(two_cluster_matrix())
        assert canonical(partition) == [(0, 1, 2), (3, 4)]

    def test_single_link(self):
        h = agglomerate(two_cluster_matrix(), linkage="single")
        partition, _ = h.best_frontier(two_cluster_matrix())
        assert canonical(partition) == [(0, 1, 2), (3, 4)]

    def test_leaf_order_covers_everything(self):
        h = agglomerate(two_cluster_matrix())
        assert sorted(h.leaf_order()) == list(range(5))

    def test_negative_links_never_merged(self):
        m = ScoreMatrix(2)
        m.set(0, 1, -1.0)
        h = agglomerate(m)
        assert len(h.roots) == 2

    def test_invalid_linkage(self):
        with pytest.raises(ValueError):
            agglomerate(ScoreMatrix(2), linkage="complete")

    def test_frontier_score_consistent(self):
        m = two_cluster_matrix()
        h = agglomerate(m)
        partition, score = h.best_frontier(m)
        assert score == pytest.approx(partition_score(partition, m))

    def test_chain_merges_in_similarity_order(self):
        m = ScoreMatrix(3)
        m.set(0, 1, 5.0)
        m.set(1, 2, 1.0)
        h = agglomerate(m)
        # First merge must be the strongest pair (0, 1).
        first_internal = next(n for n in h.nodes if n.children is not None)
        assert sorted(first_internal.members) == [0, 1]


class TestSegmentationSubsumesHierarchy:
    """Section 5.3: segmentations of the hierarchy's leaf order form a
    strict superset of frontier groupings, so the DP never scores worse.
    """

    def test_segmentation_at_least_frontier(self):
        for matrix in (two_cluster_matrix(),):
            h = agglomerate(matrix)
            _, frontier_score = h.best_frontier(matrix)
            from repro.embedding.greedy import LinearEmbedding

            embedding = LinearEmbedding(order=h.leaf_order(), breaks={0})
            partition = best_partition(matrix, embedding, max_span=5)
            seg_score = partition_score(partition, matrix)
            assert seg_score >= frontier_score - 1e-9

    def test_segmentation_beats_frontier_on_interleaved_case(self):
        # A case where the best grouping is not a frontier of the greedy
        # merge tree: chain a-b-c with a strong a-c link that average
        # linkage dilutes.
        m = ScoreMatrix(4)
        m.set(0, 1, 3.0)
        m.set(2, 3, 3.0)
        m.set(1, 2, 2.9)
        m.set(0, 3, -4.0)
        h = agglomerate(m)
        _, frontier_score = h.best_frontier(m)
        from repro.embedding.greedy import LinearEmbedding

        embedding = LinearEmbedding(order=h.leaf_order(), breaks={0})
        partition = best_partition(m, embedding, max_span=4)
        assert partition_score(partition, m) >= frontier_score


class TestTopRFrontiers:
    def test_best_matches_best_frontier(self):
        from repro.clustering.hierarchical import top_r_frontiers

        m = two_cluster_matrix()
        h = agglomerate(m)
        _, frontier_score = h.best_frontier(m)
        ranked = top_r_frontiers(h, m, r=3)
        assert ranked[0][1] == pytest.approx(frontier_score)

    def test_sorted_and_distinct(self):
        from repro.clustering.hierarchical import top_r_frontiers

        m = two_cluster_matrix()
        h = agglomerate(m)
        ranked = top_r_frontiers(h, m, r=5)
        scores = [s for _, s in ranked]
        assert scores == sorted(scores, reverse=True)
        keys = {
            tuple(sorted(tuple(sorted(g)) for g in p)) for p, _ in ranked
        }
        assert len(keys) == len(ranked)

    def test_partitions_valid(self):
        from repro.clustering.hierarchical import top_r_frontiers

        m = two_cluster_matrix()
        h = agglomerate(m)
        for partition, _ in top_r_frontiers(h, m, r=4):
            flat = sorted(i for g in partition for i in g)
            assert flat == list(range(5))

    def test_r_one(self):
        from repro.clustering.hierarchical import top_r_frontiers

        m = two_cluster_matrix()
        h = agglomerate(m)
        assert len(top_r_frontiers(h, m, r=1)) == 1

    def test_invalid_r(self):
        from repro.clustering.hierarchical import top_r_frontiers

        m = two_cluster_matrix()
        h = agglomerate(m)
        with pytest.raises(ValueError):
            top_r_frontiers(h, m, r=0)

    def test_every_frontier_is_a_segmentation(self):
        # Section 5.3's subsumption claim: every frontier partition is a
        # segmentation of the hierarchy's leaf order (contiguous groups).
        from repro.clustering.hierarchical import top_r_frontiers

        m = two_cluster_matrix()
        h = agglomerate(m)
        position = {item: idx for idx, item in enumerate(h.leaf_order())}
        for partition, _ in top_r_frontiers(h, m, r=5):
            for group in partition:
                positions = sorted(position[i] for i in group)
                assert positions == list(
                    range(positions[0], positions[0] + len(positions))
                ), "frontier group not contiguous in leaf order"

    def test_unconstrained_segmentation_dominates_frontier_best(self):
        from repro.clustering.hierarchical import top_r_frontiers
        from repro.embedding.greedy import LinearEmbedding
        from repro.embedding.segmentation import best_partition

        m = two_cluster_matrix()
        h = agglomerate(m)
        frontier = top_r_frontiers(h, m, r=1)
        embedding = LinearEmbedding(order=h.leaf_order(), breaks={0})
        partition = best_partition(m, embedding, max_span=5)
        assert partition_score(partition, m) >= frontier[0][1] - 1e-9


class TestDivideAndMerge:
    def test_recovers_two_clusters(self):
        from repro.clustering.hierarchical import divide_and_merge

        m = two_cluster_matrix()
        h = divide_and_merge(m)
        partition, _ = h.best_frontier(m)
        assert canonical(partition) == [(0, 1, 2), (3, 4)]

    def test_leaf_order_covers_everything(self):
        from repro.clustering.hierarchical import divide_and_merge

        m = two_cluster_matrix()
        h = divide_and_merge(m)
        assert sorted(h.leaf_order()) == list(range(5))

    def test_children_precede_parents(self):
        from repro.clustering.hierarchical import divide_and_merge

        m = two_cluster_matrix()
        h = divide_and_merge(m)
        for node in h.nodes:
            if node.children is not None:
                assert node.children[0] < node.node_id
                assert node.children[1] < node.node_id

    def test_singletons(self):
        from repro.clustering.correlation import ScoreMatrix
        from repro.clustering.hierarchical import divide_and_merge

        m = ScoreMatrix(3)
        h = divide_and_merge(m)
        partition, _ = h.best_frontier(m)
        assert canonical(partition) == [(0,), (1,), (2,)]

    def test_top_r_frontiers_compose(self):
        from repro.clustering.hierarchical import divide_and_merge, top_r_frontiers

        m = two_cluster_matrix()
        h = divide_and_merge(m)
        ranked = top_r_frontiers(h, m, r=3)
        scores = [s for _, s in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_comparable_to_agglomerative(self):
        import numpy as np

        from repro.clustering.correlation import ScoreMatrix, partition_score
        from repro.clustering.hierarchical import divide_and_merge

        rng = np.random.default_rng(3)
        m = ScoreMatrix(12)
        labels = [i // 4 for i in range(12)]
        for i in range(12):
            for j in range(i + 1, 12):
                mean = 2.0 if labels[i] == labels[j] else -2.0
                m.set(i, j, mean + float(rng.normal(0, 0.3)))
        dm = divide_and_merge(m)
        ag = agglomerate(m)
        dm_partition, dm_score = dm.best_frontier(m)
        ag_partition, ag_score = ag.best_frontier(m)
        # On clean planted data both hybrids find the planted clustering.
        assert canonical(dm_partition) == canonical(ag_partition)
