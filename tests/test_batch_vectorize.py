"""Unit coverage for the vectorized batch hot path.

Three layers, each checked against its scalar reference:

* the encoding kernels (:mod:`repro.similarity.encoding`) against
  plain Python set arithmetic and :mod:`repro.similarity.measures`,
  asserting *bit-identical* floats;
* the batch verifiers / count rule (:mod:`repro.predicates.batch`)
  against ``predicate.evaluate`` / ``count_accepts`` for every library
  predicate shape, on randomized records;
* the :class:`~repro.predicates.batch.BatchNeighborEngine` (direct,
  state-roundtripped, and via :class:`~repro.predicates.blocking.NeighborIndex`)
  against a forced-scalar index, member and external probes alike.

The end-to-end equality lives in the differential-oracle and parallel
property suites; this module pins down each layer in isolation so a
regression points at the culprit.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.parallel import SharedArrayPack
from repro.core.records import RecordStore
from repro.predicates.base import FunctionPredicate
from repro.predicates.batch import (
    VECTORIZE_ENV_VAR,
    BatchNeighborEngine,
    vectorize_enabled,
)
from repro.predicates.blocking import NeighborIndex, build_key_index
from repro.predicates.library import (
    AddressS1,
    CitationS2,
    CommonWordsPredicate,
    InitialsWordOverlapPredicate,
    JaccardPredicate,
    NgramOverlapPredicate,
)
from repro.similarity.encoding import (
    EncodedSetCorpus,
    TokenDictionary,
    bitmask_encode,
    bitmask_probe,
    gather_rows,
    intersection_counts,
    jaccard_block,
    overlap_block,
)
from repro.similarity.measures import jaccard, overlap_coefficient

# ---------------------------------------------------------------------------
# Encoding kernels


def test_token_dictionary_assigns_dense_first_seen_ids():
    dictionary = TokenDictionary()
    ids = dictionary.encode(["b", "a", "b", "c"])
    assert ids.tolist() == [0, 1, 0, 2]
    assert len(dictionary) == 3
    assert "a" in dictionary and "z" not in dictionary
    # lookup never assigns: unknown tokens are dropped.
    assert dictionary.lookup_ids(["c", "z", "a"]).tolist() == [2, 1]
    assert len(dictionary) == 3


def test_corpus_rows_and_sizes():
    sets = [frozenset("ab"), frozenset(), frozenset("bcd")]
    corpus = EncodedSetCorpus.from_sets(sets)
    assert corpus.sizes().tolist() == [2, 0, 3]
    for position, token_set in enumerate(sets):
        assert len(corpus.row(position)) == len(token_set)
    assert corpus.vocabulary_size == 4


def test_gather_rows_matches_manual_concatenation():
    rng = random.Random(0)
    sets = [
        frozenset(rng.sample(range(50), rng.randint(0, 10))) for _ in range(30)
    ]
    corpus = EncodedSetCorpus.from_sets(sets)
    rows = np.array([3, 0, 17, 3, 29], dtype=np.int64)
    flat, lengths = gather_rows(corpus.indptr, corpus.token_ids, rows)
    expected = np.concatenate([corpus.row(r) for r in rows])
    assert flat.tolist() == expected.tolist()
    assert lengths.tolist() == [len(corpus.row(r)) for r in rows]


def test_intersection_counts_matches_set_arithmetic():
    rng = random.Random(1)
    sets = [
        frozenset(rng.sample(range(40), rng.randint(0, 12)))
        for _ in range(60)
    ]
    corpus = EncodedSetCorpus.from_sets(sets)
    scratch = np.zeros(corpus.vocabulary_size, dtype=bool)
    for probe_position in (0, 7, 33):
        rows = np.arange(len(sets), dtype=np.int64)
        counts = intersection_counts(
            corpus.row(probe_position),
            corpus.indptr,
            corpus.token_ids,
            rows,
            scratch,
        )
        expected = [len(sets[probe_position] & sets[r]) for r in rows]
        assert counts.tolist() == expected
        assert not scratch.any(), "scratch must be restored to all-False"


def test_block_measures_bit_identical_to_scalar_measures():
    rng = random.Random(2)
    sets = [
        frozenset(rng.sample(range(30), rng.randint(0, 9))) for _ in range(40)
    ]
    sets += [frozenset(), frozenset()]  # empty-set conventions
    corpus = EncodedSetCorpus.from_sets(sets)
    scratch = np.zeros(corpus.vocabulary_size, dtype=bool)
    sizes = corpus.sizes()
    rows = np.arange(len(sets), dtype=np.int64)
    for probe_position in (5, len(sets) - 1):
        probe_set = sets[probe_position]
        inter = intersection_counts(
            corpus.row(probe_position),
            corpus.indptr,
            corpus.token_ids,
            rows,
            scratch,
        )
        overlap = overlap_block(inter, len(probe_set), sizes)
        jac = jaccard_block(inter, len(probe_set), sizes)
        for r in rows:
            assert overlap[r] == overlap_coefficient(probe_set, sets[r])
            assert jac[r] == jaccard(probe_set, sets[r])


def test_bitmask_encode_and_probe():
    sets = [frozenset("ab"), frozenset("bc"), frozenset()]
    masks, bit_of_token = bitmask_encode(sets)
    for i in range(len(sets)):
        for j in range(len(sets)):
            assert (int(masks[i]) & int(masks[j]) != 0) == bool(
                sets[i] & sets[j]
            )
    # Probe tokens outside the assignment are droppable: they intersect
    # no encoded set.
    probe = bitmask_probe(frozenset("bz"), bit_of_token)
    assert (probe & int(masks[0]) != 0) == bool(frozenset("bz") & sets[0])
    # Over 64 distinct tokens cannot be bitmask-encoded.
    assert bitmask_encode([frozenset([i]) for i in range(65)]) is None


# ---------------------------------------------------------------------------
# Batch verifiers vs scalar evaluate, per library predicate shape


def _citation_rows(rng, n):
    names = ["sunita sarawagi", "s sarawagi", "alok kirpal", "a kirpal",
             "rakesh agrawal", "r agrawal", "jeff ullman", "j d ullman"]
    coauthors = ["alok kirpal vgs anil", "anil kumar vgs alok",
                 "jeff ullman jennifer widom", "", "rakesh r srikant"]
    return [
        {
            "author": rng.choice(names),
            "coauthors": rng.choice(coauthors),
            "name": rng.choice(names),
            "address": rng.choice(
                ["12 mg road pune", "flat 3 sector 9", "mg road",
                 "9 hill lane", ""]
            ),
            "class": str(rng.randint(1, 3)),
            "school": str(rng.randint(100, 102)),
            "dob": f"199{rng.randint(0, 9)}",
        }
        for _ in range(n)
    ]


PREDICATES = [
    NgramOverlapPredicate(field="author", threshold=0.6),
    NgramOverlapPredicate(
        field="author", threshold=0.6, require_common_initial=True
    ),
    NgramOverlapPredicate(
        field="name", threshold=0.5, exact_fields=("class", "school")
    ),
    InitialsWordOverlapPredicate(field="name", exact_fields=("class", "school")),
    InitialsWordOverlapPredicate(field="name"),
    CommonWordsPredicate(fields=("name", "address"), min_common=2),
    JaccardPredicate(field="coauthors", threshold=0.4),
    CitationS2(min_coauthors=2),
    AddressS1(),
]


@pytest.mark.parametrize(
    "predicate", PREDICATES, ids=lambda p: p.name
)
def test_batch_verifier_matches_scalar_evaluate(predicate):
    rng = random.Random(7)
    store = RecordStore.from_rows(_citation_rows(rng, 60))
    records = list(store)
    verifier = predicate.batch_verifier(records)
    assert verifier is not None
    candidates = np.arange(len(records), dtype=np.int64)
    for position in range(0, len(records), 7):
        verdicts = verifier.verify_member_block(position, candidates)
        for other in range(len(records)):
            assert verdicts[other] == predicate.evaluate(
                records[position], records[other]
            ), (predicate.name, position, other)


def test_count_rule_matches_scalar_count_accepts():
    predicate = NgramOverlapPredicate(
        field="author", threshold=0.6, require_common_initial=True
    )
    rng = random.Random(9)
    store = RecordStore.from_rows(_citation_rows(rng, 50))
    records = list(store)
    rule = predicate.batch_count_rule(records)
    key_counts = np.array(
        [len(set(predicate.blocking_keys(r))) for r in records],
        dtype=np.int64,
    )
    for position in range(0, len(records), 5):
        probe = records[position]
        n_probe = int(key_counts[position])
        if n_probe == 0:
            continue
        others = np.array(
            [i for i in range(len(records)) if key_counts[i] > 0],
            dtype=np.int64,
        )
        shared = np.array(
            [
                len(
                    set(predicate.blocking_keys(probe))
                    & set(predicate.blocking_keys(records[i]))
                )
                for i in others
            ],
            dtype=np.int64,
        )
        verdicts = rule.accepts(
            shared, n_probe, key_counts[others], rule.probe_mask(probe), others
        )
        for verdict, other, shared_count in zip(
            verdicts, others.tolist(), shared.tolist()
        ):
            expected = predicate.count_accepts(
                shared_count, n_probe, int(key_counts[other])
            ) and predicate.count_post_check(
                predicate.count_post_signature(probe),
                predicate.count_post_signature(records[other]),
            )
            assert bool(verdict) == expected


# ---------------------------------------------------------------------------
# BatchNeighborEngine vs forced-scalar NeighborIndex


@pytest.mark.parametrize(
    "predicate",
    [
        NgramOverlapPredicate(field="author", threshold=0.6),
        NgramOverlapPredicate(
            field="author", threshold=0.6, require_common_initial=True
        ),
        CommonWordsPredicate(fields=("name", "address"), min_common=2),
        CitationS2(min_coauthors=2),
        AddressS1(),
    ],
    ids=lambda p: p.name,
)
def test_vectorized_index_matches_scalar_index(predicate):
    rng = random.Random(11)
    store = RecordStore.from_rows(_citation_rows(rng, 80))
    records = list(store)
    scalar = NeighborIndex(predicate, records, vectorize=False)
    vector = NeighborIndex(predicate, records, vectorize=True)
    assert scalar.batch_engine is None
    assert vector.batch_engine is not None
    # Member probes.
    for position in range(len(records)):
        assert vector.neighbors(
            records[position], exclude_position=position
        ) == scalar.neighbors(records[position], exclude_position=position)
    # External probes (not in the index), including tokens the encoding
    # dictionaries have never seen.
    probes = RecordStore.from_rows(_citation_rows(random.Random(99), 20))
    for probe in probes:
        assert vector.neighbors(probe) == scalar.neighbors(probe)


def test_engine_state_roundtrip_preserves_member_queries():
    predicate = CitationS2(min_coauthors=2)
    rng = random.Random(13)
    store = RecordStore.from_rows(_citation_rows(rng, 60))
    records = list(store)
    engine = BatchNeighborEngine.build(
        predicate, records, build_key_index(predicate, records)
    )
    arrays, params = engine.export_state()
    rebuilt = BatchNeighborEngine.from_state(arrays, params)

    class _Sink:
        predicate_evaluations = 0
        signature_evaluations = 0
        cache_hits = 0

    for position in range(len(records)):
        assert rebuilt.member_neighbors(position, _Sink()) == (
            engine.member_neighbors(position, _Sink())
        )
    # Worker rebuilds drop the probe-encoding state: external probes
    # must report "cannot encode" (None), never a wrong answer.
    assert (
        rebuilt.probe_neighbors(records[0], {"x"}, -1, _Sink()) is None
    )


def test_engine_csr_matches_per_member_lists():
    predicate = NgramOverlapPredicate(field="author", threshold=0.6)
    rng = random.Random(17)
    store = RecordStore.from_rows(_citation_rows(rng, 50))
    records = list(store)
    engine = BatchNeighborEngine.build(
        predicate, records, build_key_index(predicate, records)
    )

    class _Sink:
        predicate_evaluations = 0
        signature_evaluations = 0
        cache_hits = 0

    positions = list(range(0, len(records), 3))
    indptr, flat = engine.member_neighbors_csr(positions, _Sink())
    for row, position in enumerate(positions):
        assert flat[indptr[row] : indptr[row + 1]].tolist() == (
            engine.member_neighbors(position, _Sink())
        )


def test_custom_predicate_without_hooks_stays_scalar():
    predicate = FunctionPredicate(
        evaluate_fn=lambda a, b: a["name"] == b["name"],
        keys_fn=lambda r: [r["name"]],
        name="custom",
    )
    store = RecordStore.from_rows([{"name": "x"}, {"name": "x"}, {"name": "y"}])
    index = NeighborIndex(predicate, list(store), vectorize=True)
    assert not predicate.supports_batch
    assert index.batch_engine is None
    assert index.neighbors(store[0], exclude_position=0) == [1]


def test_vectorize_env_switch():
    assert vectorize_enabled(True) and not vectorize_enabled(False)
    import os

    old = os.environ.get(VECTORIZE_ENV_VAR)
    try:
        os.environ[VECTORIZE_ENV_VAR] = "0"
        assert not vectorize_enabled(None)
        os.environ[VECTORIZE_ENV_VAR] = "1"
        assert vectorize_enabled(None)
        os.environ.pop(VECTORIZE_ENV_VAR)
        assert vectorize_enabled(None)
    finally:
        if old is None:
            os.environ.pop(VECTORIZE_ENV_VAR, None)
        else:
            os.environ[VECTORIZE_ENV_VAR] = old


# ---------------------------------------------------------------------------
# Shared-memory transport


def test_shared_array_pack_roundtrip():
    arrays = {
        "a": np.arange(10, dtype=np.int64),
        "b": np.array([1, 2, 3], dtype=np.int32),
        "masks": np.array([5, 9], dtype=np.uint64),
        "empty": np.empty(0, dtype=np.int32),
    }
    pack = SharedArrayPack.create(arrays)
    try:
        attached = SharedArrayPack.attach(pack.name, pack.manifest)
        try:
            views = attached.arrays()
            for name, array in arrays.items():
                assert views[name].dtype == array.dtype
                assert views[name].tolist() == array.tolist()
        finally:
            attached.close()
    finally:
        pack.destroy()


def test_shared_pack_engine_rebuild_matches_original():
    predicate = NgramOverlapPredicate(
        field="author", threshold=0.6, require_common_initial=True
    )
    rng = random.Random(23)
    store = RecordStore.from_rows(_citation_rows(rng, 40))
    records = list(store)
    engine = BatchNeighborEngine.build(
        predicate, records, build_key_index(predicate, records)
    )
    arrays, params = engine.export_state()
    pack = SharedArrayPack.create(arrays)

    class _Sink:
        predicate_evaluations = 0
        signature_evaluations = 0
        cache_hits = 0

    try:
        attached = SharedArrayPack.attach(pack.name, pack.manifest)
        try:
            rebuilt = BatchNeighborEngine.from_state(attached.arrays(), params)
            for position in range(len(records)):
                assert rebuilt.member_neighbors(position, _Sink()) == (
                    engine.member_neighbors(position, _Sink())
                )
        finally:
            attached.close()
    finally:
        pack.destroy()
