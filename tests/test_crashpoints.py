"""Crash-point injection sweep: recovery must equal prefix replay.

The acceptance contract for the durability layer: for a seeded stream,
truncating the WAL at **every** entry boundary (and inside entries)
recovers to exactly the state of replaying the surviving inserts —
same groups, weights, version and dead letters — with ``audit()``
passing on every recovered state (``restore`` runs it before accepting).
"""

import random

import pytest

from repro.predicates.base import FunctionPredicate, PredicateLevel
from repro.testing.crashpoints import (
    CheckpointCrashPoint,
    enumerate_crash_points,
    run_checkpoint_crash_sweep,
    run_crash_sweep,
    simulate_checkpoint_crash,
    write_stream,
)
from tests.conftest import shared_word_predicate


def poison_keys(record):
    if record["name"] == "poison":
        raise ValueError("poisoned keying")
    return [record["name"]]


def make_levels():
    sufficient = FunctionPredicate(
        evaluate_fn=lambda a, b: a["name"] == b["name"],
        keys_fn=poison_keys,
        name="exact-name-poisonable",
        key_implies_match=True,
    )
    return [PredicateLevel(sufficient, shared_word_predicate())]


def seeded_events(n, seed, poison_rate=0.02):
    rng = random.Random(seed)
    events = []
    for _ in range(n):
        if rng.random() < poison_rate:
            name = "poison"
        else:
            name = f"entity-{rng.randrange(40)}"
        events.append(({"name": name}, float(rng.randrange(1, 5))))
    return events


def assert_all_ok(results):
    failures = [r for r in results if not r.ok]
    assert not failures, (
        f"{len(failures)}/{len(results)} crash points failed; first: "
        f"{failures[0]}"
    )


@pytest.mark.timeout(300)
def test_500_insert_sweep_every_boundary(tmp_path):
    events = seeded_events(500, seed=42)
    results = run_crash_sweep(
        make_levels,
        events,
        tmp_path / "state",
        tmp_path / "scratch",
        segment_bytes=4096,
    )
    assert_all_ok(results)
    boundaries = [r for r in results if not r.point.mid_entry]
    torn = [r for r in results if r.point.mid_entry]
    # Every one of the 500 entry boundaries is covered (plus the
    # segment-initial offsets), and every segment got torn-write cuts.
    assert len({r.point.surviving_entries for r in boundaries}) == 501
    segments = {r.point.segment for r in results}
    assert len(segments) > 1
    for segment in segments:
        assert (
            len([r for r in torn if r.point.segment == segment]) >= 3
        ), f"segment {segment} has fewer than 3 mid-entry crash points"


@pytest.mark.timeout(300)
def test_sweep_with_checkpoints_and_rotation(tmp_path):
    events = seeded_events(200, seed=7, poison_rate=0.05)
    results = run_crash_sweep(
        make_levels,
        events,
        tmp_path / "state",
        tmp_path / "scratch",
        segment_bytes=2048,
        checkpoint_every=60,
    )
    assert_all_ok(results)
    # Checkpoints prune subsumed segments, so the sweep only sees the
    # retained suffix of the log — but every surviving boundary works.
    assert results


def test_enumerate_covers_all_entries(tmp_path):
    events = seeded_events(50, seed=3, poison_rate=0.0)
    write_stream(make_levels, events, tmp_path / "state", segment_bytes=1024)
    points = enumerate_crash_points(tmp_path / "state")
    boundary_survivals = {
        p.surviving_entries for p in points if not p.mid_entry
    }
    assert boundary_survivals == set(range(51))


@pytest.mark.timeout(300)
def test_checkpoint_crash_sweep_all_recover(tmp_path):
    events = seeded_events(120, seed=5)
    results = run_checkpoint_crash_sweep(
        make_levels,
        events,
        tmp_path / "state",
        tmp_path / "scratch",
        checkpoint_every=25,
    )
    assert_all_ok(results)
    # Four checkpoints (25..100), each crashed at three tmp offsets:
    # empty, half-written, and fully-written-but-unrenamed.
    assert len(results) == 12
    assert {r.point.entries for r in results} == {25, 50, 75, 100}
    assert {r.point.complete for r in results} == {True, False}


def test_checkpoint_crash_recovery_prefers_last_complete(tmp_path):
    events = seeded_events(120, seed=9)
    results = run_checkpoint_crash_sweep(
        make_levels,
        events,
        tmp_path / "state",
        tmp_path / "scratch",
        checkpoint_every=30,
    )
    assert_all_ok(results)
    # Crashing the first checkpoint leaves no complete one: recovery
    # replays the WAL from scratch.  Crashing a later one must seed
    # from its predecessor — the sweep itself asserts both, so here we
    # just confirm both shapes were exercised.
    assert any(r.point.entries == 30 for r in results)
    assert any(r.point.entries > 30 for r in results)


def test_simulate_checkpoint_crash_leaves_only_the_tmp(tmp_path):
    events = seeded_events(60, seed=2, poison_rate=0.0)
    write_stream(
        make_levels,
        events,
        tmp_path / "state",
        segment_bytes=1024,
        checkpoint_every=20,
        keep_checkpoints=len(events),
        prune=False,
    )
    checkpoint = tmp_path / "state" / "checkpoint-000000000020.ckpt"
    size = checkpoint.stat().st_size
    point = CheckpointCrashPoint(
        checkpoint=checkpoint.name,
        entries=20,
        tmp_bytes=size // 2,
        complete=False,
    )
    clone = simulate_checkpoint_crash(
        tmp_path / "state", tmp_path / "scratch", point
    )
    assert not (clone / checkpoint.name).exists()
    tmp_file = clone / (checkpoint.name + ".tmp")
    assert tmp_file.stat().st_size == size // 2
    # The WAL rewound to exactly the crash moment's 20 entries.
    from repro.core.persistence import wal_entry_spans

    total = sum(len(spans) for _, _, spans in wal_entry_spans(clone))
    assert total == 20


@pytest.mark.timeout(300)
def test_columnar_store_sweep_with_checkpoints(tmp_path):
    # The columnar store compacts checkpoints into mapped sidecars; a
    # crash anywhere in the WAL (sidecars of vanished checkpoints
    # included — they are written first) must recover identically.
    events = seeded_events(200, seed=11, poison_rate=0.05)
    results = run_crash_sweep(
        make_levels,
        events,
        tmp_path / "state",
        tmp_path / "scratch",
        segment_bytes=2048,
        checkpoint_every=60,
        store="columnar",
    )
    assert_all_ok(results)
    assert any(
        p.name.startswith("columnar-")
        for p in (tmp_path / "state").iterdir()
    )


@pytest.mark.timeout(300)
def test_columnar_checkpoint_crash_sweep_all_recover(tmp_path):
    events = seeded_events(120, seed=13)
    results = run_checkpoint_crash_sweep(
        make_levels,
        events,
        tmp_path / "state",
        tmp_path / "scratch",
        checkpoint_every=30,
        store="columnar",
    )
    assert_all_ok(results)
    assert {r.point.entries for r in results} == {30, 60, 90, 120}
