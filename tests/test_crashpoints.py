"""Crash-point injection sweep: recovery must equal prefix replay.

The acceptance contract for the durability layer: for a seeded stream,
truncating the WAL at **every** entry boundary (and inside entries)
recovers to exactly the state of replaying the surviving inserts —
same groups, weights, version and dead letters — with ``audit()``
passing on every recovered state (``restore`` runs it before accepting).
"""

import random

import pytest

from repro.predicates.base import FunctionPredicate, PredicateLevel
from repro.testing.crashpoints import (
    enumerate_crash_points,
    run_crash_sweep,
    write_stream,
)
from tests.conftest import shared_word_predicate


def poison_keys(record):
    if record["name"] == "poison":
        raise ValueError("poisoned keying")
    return [record["name"]]


def make_levels():
    sufficient = FunctionPredicate(
        evaluate_fn=lambda a, b: a["name"] == b["name"],
        keys_fn=poison_keys,
        name="exact-name-poisonable",
        key_implies_match=True,
    )
    return [PredicateLevel(sufficient, shared_word_predicate())]


def seeded_events(n, seed, poison_rate=0.02):
    rng = random.Random(seed)
    events = []
    for _ in range(n):
        if rng.random() < poison_rate:
            name = "poison"
        else:
            name = f"entity-{rng.randrange(40)}"
        events.append(({"name": name}, float(rng.randrange(1, 5))))
    return events


def assert_all_ok(results):
    failures = [r for r in results if not r.ok]
    assert not failures, (
        f"{len(failures)}/{len(results)} crash points failed; first: "
        f"{failures[0]}"
    )


@pytest.mark.timeout(300)
def test_500_insert_sweep_every_boundary(tmp_path):
    events = seeded_events(500, seed=42)
    results = run_crash_sweep(
        make_levels,
        events,
        tmp_path / "state",
        tmp_path / "scratch",
        segment_bytes=4096,
    )
    assert_all_ok(results)
    boundaries = [r for r in results if not r.point.mid_entry]
    torn = [r for r in results if r.point.mid_entry]
    # Every one of the 500 entry boundaries is covered (plus the
    # segment-initial offsets), and every segment got torn-write cuts.
    assert len({r.point.surviving_entries for r in boundaries}) == 501
    segments = {r.point.segment for r in results}
    assert len(segments) > 1
    for segment in segments:
        assert (
            len([r for r in torn if r.point.segment == segment]) >= 3
        ), f"segment {segment} has fewer than 3 mid-entry crash points"


@pytest.mark.timeout(300)
def test_sweep_with_checkpoints_and_rotation(tmp_path):
    events = seeded_events(200, seed=7, poison_rate=0.05)
    results = run_crash_sweep(
        make_levels,
        events,
        tmp_path / "state",
        tmp_path / "scratch",
        segment_bytes=2048,
        checkpoint_every=60,
    )
    assert_all_ok(results)
    # Checkpoints prune subsumed segments, so the sweep only sees the
    # retained suffix of the log — but every surviving boundary works.
    assert results


def test_enumerate_covers_all_entries(tmp_path):
    events = seeded_events(50, seed=3, poison_rate=0.0)
    write_stream(make_levels, events, tmp_path / "state", segment_bytes=1024)
    points = enumerate_crash_points(tmp_path / "state")
    boundary_survivals = {
        p.surviving_entries for p in points if not p.mid_entry
    }
    assert boundary_survivals == set(range(51))
