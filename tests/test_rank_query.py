"""Tests for Top-K rank and thresholded rank queries (Section 7)."""

import pytest

from repro.core.pruned_dedup import pruned_dedup
from repro.core.rank_query import thresholded_rank_query, topk_rank_query
from repro.predicates.base import PredicateLevel
from tests.conftest import exact_name_predicate, make_store, shared_word_predicate


def one_level() -> list[PredicateLevel]:
    return [PredicateLevel(exact_name_predicate(), shared_word_predicate())]


class TestTopKRankQuery:
    def test_ranking_in_weight_order(self):
        store = make_store(["a x"] * 5 + ["b y"] * 3 + ["c z"])
        result = topk_rank_query(store, 2, one_level())
        weights = [r.weight for r in result.ranking]
        assert weights == sorted(weights, reverse=True)

    def test_retains_at_most_count_query(self):
        store = make_store(
            ["a x"] * 6 + ["b y"] * 4 + ["a q"] + ["b r"] + ["c z", "d w"]
        )
        count = pruned_dedup(store, 1, one_level())
        rank = topk_rank_query(store, 1, one_level())
        assert rank.n_retained <= len(count.groups)

    def test_upper_bounds_cover_weights(self):
        store = make_store(["a x"] * 4 + ["a y"] * 2 + ["b z"] * 3)
        result = topk_rank_query(store, 2, one_level())
        for entry in result.ranking:
            assert entry.upper_bound >= entry.weight

    def test_resolved_flag_for_clear_leader(self):
        store = make_store(["alpha beta"] * 10 + ["gamma delta"] * 2)
        result = topk_rank_query(store, 1, one_level())
        leader = result.ranking[0]
        assert leader.weight == 10.0
        assert leader.resolved

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            topk_rank_query(make_store(["a"]), 0, one_level())

    def test_no_levels(self):
        with pytest.raises(ValueError):
            topk_rank_query(make_store(["a"]), 1, [])


class TestThresholdedRankQuery:
    def test_returns_groups_above_threshold(self):
        store = make_store(["a x"] * 5 + ["b y"] * 3 + ["c z"])
        result = thresholded_rank_query(store, threshold=3.0, levels=one_level())
        assert result.certain
        weights = [r.weight for r in result.ranking]
        assert weights == [5.0, 3.0]

    def test_high_threshold_empty_answer(self):
        store = make_store(["a x"] * 2 + ["b y"])
        result = thresholded_rank_query(store, threshold=50.0, levels=one_level())
        assert result.certain
        assert result.ranking == []

    def test_ambiguity_defeats_certainty(self):
        # 'a x' (3) and ambiguous 'x q' (2) could merge to 5; with T=4
        # neither "big enough alone" nor prunable, so not certain.
        store = make_store(["a x"] * 3 + ["x q"] * 2 + ["b y"] * 4)
        result = thresholded_rank_query(store, threshold=4.0, levels=one_level())
        if result.certain:
            # If certain, only groups >= T may be reported.
            assert all(r.weight >= 4.0 for r in result.ranking)
        else:
            names = {
                result.groups.store[g.representative_id]["name"]
                for g in result.groups
            }
            assert "a x" in names and "x q" in names

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            thresholded_rank_query(make_store(["a"]), 0.0, one_level())

    def test_weighted_threshold(self):
        store = make_store(["a x", "a x", "b y"], weights=[4.0, 4.0, 5.0])
        result = thresholded_rank_query(store, threshold=6.0, levels=one_level())
        assert result.certain
        assert [r.weight for r in result.ranking] == [8.0]
