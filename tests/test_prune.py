"""Unit tests for the prune stage (Section 4.3)."""

import math

import pytest

from repro.core.prune import prune
from repro.core.records import GroupSet
from tests.conftest import make_store, shared_word_predicate


def weighted_groups(names_weights):
    names = [n for n, _ in names_weights]
    weights = [w for _, w in names_weights]
    return GroupSet.singletons(make_store(names, weights=weights))


class TestPrune:
    def test_isolated_small_groups_pruned(self):
        gs = weighted_groups([("big a", 100.0), ("tiny b", 1.0), ("tiny c", 1.0)])
        result = prune(gs, shared_word_predicate(), bound=50.0)
        assert len(result.retained) == 1
        assert result.retained[0].weight == 100.0

    def test_heavy_groups_never_pruned(self):
        gs = weighted_groups([("a", 60.0), ("b", 55.0)])
        result = prune(gs, shared_word_predicate(), bound=50.0)
        assert len(result.retained) == 2
        assert all(math.isinf(u) for u in result.upper_bounds)

    def test_neighbor_of_heavy_group_survives(self):
        # 'x small' joins 'x big' under N: u = 1 + 100 > 50.
        gs = weighted_groups([("x big", 100.0), ("x small", 1.0), ("z c", 1.0)])
        result = prune(gs, shared_word_predicate(), bound=50.0)
        names = {gs.store[g.representative_id]["name"] for g in result.retained}
        assert names == {"x big", "x small"}

    def test_chain_survives_when_combined_weight_exceeds_bound(self):
        # Three mutually-joinable groups of 20 can reach 60 > 50.
        gs = weighted_groups([("x a", 20.0), ("x b", 20.0), ("x c", 20.0)])
        result = prune(gs, shared_word_predicate(), bound=50.0)
        assert len(result.retained) == 3

    def test_second_iteration_tightens(self):
        # y-mid (10) has neighbors y-small (5): pass 1 gives mid u=15,
        # small u=15.  With bound 12 both survive pass 1; no, compute:
        # pass 1: u_small = 5 + 10 = 15 > 12, u_mid = 10 + 5 = 15 > 12.
        # They can only reach 15 together; with bound 16 both are pruned
        # in pass 1 already.  Build an asymmetric case instead: small
        # chains to mid, mid to big.
        gs = weighted_groups(
            [("a big", 100.0), ("a b mid", 10.0), ("b small", 5.0)]
        )
        # Pass 1: u_small = 5 + 10 = 15; u_mid = 10 + 105 = 115.
        # Bound 20: pass 1 prunes small (15 <= 20), keeps mid.
        one_pass = prune(gs, shared_word_predicate(), bound=20.0, iterations=1)
        assert len(one_pass.retained) == 2

        # Bound 16 with two passes: pass 1 keeps small (15 < 16? no --
        # 15 <= 16 prunes).  Use bound 14: pass 1 keeps small (15 > 14);
        # pass 2 cannot tighten small (mid's u stays above bound).
        # Verify instead that iterating never *adds* groups back.
        for bound in (5.0, 14.0, 20.0, 60.0):
            p1 = prune(gs, shared_word_predicate(), bound=bound, iterations=1)
            p2 = prune(gs, shared_word_predicate(), bound=bound, iterations=2)
            assert len(p2.retained) <= len(p1.retained)

    def test_recursive_tightening_prunes_dead_chain(self):
        # small(3) - mid(4) - small2(3), all tiny: pass 1 u_mid = 10,
        # u_small = 7.  Bound 8: pass 1 prunes smalls (7 <= 8), keeps mid
        # (10 > 8); pass 2 recomputes mid against only live neighbors:
        # u_mid = 4 <= 8 -> pruned.
        gs = weighted_groups([("x a", 3.0), ("x y b", 4.0), ("y c", 3.0)])
        one = prune(gs, shared_word_predicate(), bound=8.0, iterations=1)
        two = prune(gs, shared_word_predicate(), bound=8.0, iterations=2)
        assert len(one.retained) == 1
        assert len(two.retained) == 0

    def test_zero_bound_is_noop(self):
        gs = weighted_groups([("a", 1.0), ("b", 1.0)])
        result = prune(gs, shared_word_predicate(), bound=0.0)
        assert len(result.retained) == 2

    def test_invalid_iterations(self):
        gs = weighted_groups([("a", 1.0)])
        with pytest.raises(ValueError):
            prune(gs, shared_word_predicate(), bound=1.0, iterations=0)

    def test_kept_ids_consistent(self):
        gs = weighted_groups([("big a", 100.0), ("tiny b", 1.0)])
        result = prune(gs, shared_word_predicate(), bound=50.0)
        assert result.kept_group_ids == [0]
        assert result.upper_bounds[1] <= 50.0

    def test_weight_equal_to_bound_kept(self):
        # "any group with size(ci) >= M cannot be pruned" (Section 4.3).
        gs = weighted_groups([("big a", 100.0), ("tiny b", 10.0)])
        result = prune(gs, shared_word_predicate(), bound=10.0)
        assert len(result.retained) == 2

    def test_upper_bound_equal_to_bound_pruned(self):
        # u_i == M must be pruned (paper: prune when u_i <= M).
        # tiny(4) + its only neighbor mid(6) gives u = 10 == M.
        gs = weighted_groups([("big a", 100.0), ("x tiny", 4.0), ("x mid", 6.0)])
        result = prune(gs, shared_word_predicate(), bound=10.0)
        names = {gs.store[g.representative_id]["name"] for g in result.retained}
        assert names == {"big a"}
