"""Unit tests for repro.core.records."""

import pytest

from repro.core.records import Group, GroupSet, Record, RecordStore, merge_groups
from tests.conftest import make_store


class TestRecord:
    def test_field_access(self):
        r = Record(record_id=0, fields={"name": "ann"}, weight=2.0)
        assert r["name"] == "ann"
        assert r["missing"] == ""
        assert r.get("missing", "x") == "x"

    def test_default_weight(self):
        assert Record(record_id=0, fields={}).weight == 1.0


class TestRecordStore:
    def test_from_rows_assigns_ids(self):
        store = make_store(["a", "b"])
        assert len(store) == 2
        assert store[1].record_id == 1

    def test_weights(self):
        store = make_store(["a", "b"], weights=[2.0, 3.0])
        assert store.total_weight() == 5.0

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            RecordStore.from_rows([{"name": "a"}], weights=[1.0, 2.0])

    def test_id_position_invariant_enforced(self):
        with pytest.raises(ValueError):
            RecordStore([Record(record_id=5, fields={})])

    def test_field_values(self):
        store = make_store(["x", "y"])
        assert store.field_values("name") == ["x", "y"]

    def test_iteration(self):
        store = make_store(["x", "y"])
        assert [r["name"] for r in store] == ["x", "y"]


class TestGroup:
    def test_singleton(self):
        store = make_store(["a"], weights=[4.0])
        g = Group.singleton(0, store[0])
        assert g.size == 1
        assert g.weight == 4.0
        assert g.representative_id == 0


class TestGroupSet:
    def test_sorted_by_weight_desc(self):
        store = make_store(["a", "b", "c"], weights=[1.0, 5.0, 3.0])
        gs = GroupSet.singletons(store)
        assert gs.weights() == [5.0, 3.0, 1.0]
        assert [g.group_id for g in gs] == [0, 1, 2]

    def test_representatives(self):
        store = make_store(["a", "b"], weights=[1.0, 2.0])
        gs = GroupSet.singletons(store)
        assert gs.representative(0)["name"] == "b"

    def test_subset_renumbers(self):
        store = make_store(["a", "b", "c"], weights=[3.0, 2.0, 1.0])
        gs = GroupSet.singletons(store)
        sub = gs.subset([0, 2])
        assert len(sub) == 2
        assert sub.weights() == [3.0, 1.0]
        assert [g.group_id for g in sub] == [0, 1]

    def test_subset_deep_copies_members(self):
        store = make_store(["a", "b"])
        gs = GroupSet.singletons(store)
        sub = gs.subset([0])
        sub[0].member_ids.append(99)
        assert gs[0].member_ids != sub[0].member_ids

    def test_covered_record_ids(self):
        store = make_store(["a", "b", "c"])
        gs = GroupSet.singletons(store)
        assert sorted(gs.covered_record_ids()) == [0, 1, 2]


class TestMergeGroups:
    def test_merges_weight_and_members(self):
        store = make_store(["a", "b", "c"], weights=[1.0, 2.0, 3.0])
        gs = GroupSet.singletons(store)
        merged = merge_groups(store, [gs[0], gs[2]])
        assert merged.weight == 4.0
        assert sorted(merged.member_ids) == [0, 2]

    def test_representative_from_heaviest(self):
        store = make_store(["light", "heavy"], weights=[1.0, 9.0])
        gs = GroupSet.singletons(store)
        merged = merge_groups(store, [gs[1], gs[0]])
        assert store[merged.representative_id]["name"] == "heavy"

    def test_empty_merge_rejected(self):
        store = make_store(["a"])
        with pytest.raises(ValueError):
            merge_groups(store, [])
