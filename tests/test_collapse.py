"""Unit tests for the collapse stage (Section 4.1)."""

from repro.core.collapse import collapse, collapse_records
from repro.core.records import GroupSet
from tests.conftest import exact_name_predicate, make_store


class TestCollapseRecords:
    def test_merges_exact_duplicates(self):
        store = make_store(["a", "b", "a", "a"])
        gs = collapse_records(store, exact_name_predicate())
        assert len(gs) == 2
        assert gs.weights() == [3.0, 1.0]

    def test_weights_aggregate(self):
        store = make_store(["a", "a", "b"], weights=[2.0, 3.0, 7.0])
        gs = collapse_records(store, exact_name_predicate())
        assert gs.weights() == [7.0, 5.0]

    def test_representative_is_member(self):
        store = make_store(["a", "a"])
        gs = collapse_records(store, exact_name_predicate())
        assert gs[0].representative_id in gs[0].member_ids

    def test_no_duplicates_identity(self):
        store = make_store(["a", "b", "c"])
        gs = collapse_records(store, exact_name_predicate())
        assert len(gs) == 3

    def test_members_partition_the_store(self):
        store = make_store(["a", "b", "a", "c", "b"])
        gs = collapse_records(store, exact_name_predicate())
        covered = sorted(gs.covered_record_ids())
        assert covered == list(range(5))


class TestCollapseGroupSets:
    def test_second_collapse_reuses_representatives(self):
        store = make_store(["a", "a", "b", "b"], weights=[1, 2, 3, 4])
        first = collapse_records(store, exact_name_predicate())
        again = collapse(first, exact_name_predicate())
        assert len(again) == len(first)
        assert again.weights() == first.weights()

    def test_collapse_from_singletons(self):
        store = make_store(["x", "x", "y"])
        gs = collapse(GroupSet.singletons(store), exact_name_predicate())
        assert len(gs) == 2
