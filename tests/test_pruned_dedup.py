"""Unit and integration tests for PrunedDedup (Algorithm 2)."""

import pytest

from repro.core.pruned_dedup import pruned_dedup
from repro.predicates.base import PredicateLevel
from tests.conftest import exact_name_predicate, make_store, shared_word_predicate


def one_level() -> list[PredicateLevel]:
    return [PredicateLevel(exact_name_predicate(), shared_word_predicate())]


class TestPrunedDedup:
    def test_three_entities_k2(self):
        store = make_store(
            ["ann smith"] * 5 + ["bob jones"] * 3 + ["cara lee"] * 1
        )
        result = pruned_dedup(store, 2, one_level())
        assert len(result.groups) == 2
        assert result.terminated_early
        assert result.groups.weights() == [5.0, 3.0]

    def test_stats_shape(self):
        store = make_store(["a"] * 4 + ["b"] * 2 + ["c"])
        result = pruned_dedup(store, 1, one_level())
        assert len(result.stats) == 1
        stats = result.stats[0]
        assert stats.n_groups_after_collapse == 3
        assert stats.m == 1
        assert stats.bound == 4.0
        assert stats.n_pct == pytest.approx(100 * 3 / 7)

    def test_ambiguous_variants_retained(self):
        # 'a smith' may be a duplicate of 'ann smith' (shares 'smith'):
        # it must survive pruning when it could lift a top group.
        store = make_store(["ann smith"] * 3 + ["a smith"] + ["bob jones"] * 2)
        result = pruned_dedup(store, 1, one_level())
        names = {
            result.groups.store[g.representative_id]["name"]
            for g in result.groups
        }
        assert "ann smith" in names
        assert "a smith" in names
        assert "bob jones" not in names  # 2 + nothing < bound 3

    def test_k_larger_than_entities(self):
        store = make_store(["a", "b"])
        result = pruned_dedup(store, 5, one_level())
        assert len(result.groups) == 2
        assert not result.stats[0].certified

    def test_multi_level_runs_all(self):
        store = make_store(["a"] * 3 + ["b"] * 2 + ["c d", "d e"])
        levels = one_level() + one_level()
        result = pruned_dedup(store, 2, levels)
        assert len(result.stats) in (1, 2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            pruned_dedup(make_store(["a"]), 0, one_level())

    def test_no_levels(self):
        with pytest.raises(ValueError):
            pruned_dedup(make_store(["a"]), 1, [])

    def test_retained_fraction(self):
        store = make_store(["a"] * 9 + ["b"])
        result = pruned_dedup(store, 1, one_level())
        assert result.retained_fraction == pytest.approx(
            len(result.groups) / 10
        )

    def test_prune_iterations_parameter(self):
        store = make_store(["a"] * 5 + ["x b", "x c"])
        r1 = pruned_dedup(store, 1, one_level(), prune_iterations=1)
        r2 = pruned_dedup(store, 1, one_level(), prune_iterations=3)
        assert len(r2.groups) <= len(r1.groups)


class TestPrunedDedupCorrectness:
    """The retained set must always contain the true Top-K groups."""

    def test_true_topk_survives(self):
        names = (
            ["alpha one"] * 6
            + ["beta two"] * 5
            + ["gamma three"] * 4
            + ["delta four"] * 2
            + ["eps five", "zeta six", "eta seven"]
        )
        store = make_store(names)
        for k in (1, 2, 3):
            result = pruned_dedup(store, k, one_level())
            kept_names = {
                result.groups.store[g.representative_id]["name"]
                for g in result.groups
            }
            expected = ["alpha one", "beta two", "gamma three"][:k]
            for name in expected:
                assert name in kept_names, f"K={k} lost {name}"

    def test_weights_preserved_through_pipeline(self):
        store = make_store(["a"] * 3 + ["b"] * 2, weights=[2, 2, 2, 5, 5])
        result = pruned_dedup(store, 2, one_level())
        assert sorted(result.groups.weights(), reverse=True) == [10.0, 6.0]


class TestEarlyTerminationBelowK:
    def test_fewer_groups_than_k_terminates_and_is_flagged(self):
        # 2 distinct unrelated names can never produce 5 groups; the
        # pipeline must stop after the first level and say it fell short.
        store = make_store(["aa one", "bb two"])
        result = pruned_dedup(store, 5, one_level())
        assert result.terminated_early
        assert result.terminated_below_k
        assert len(result.groups) == 2
        assert len(result.stats) == 1

    def test_exactly_k_groups_is_not_below_k(self):
        store = make_store(["aa one"] * 2 + ["bb two"])
        result = pruned_dedup(store, 2, one_level())
        assert result.terminated_early
        assert not result.terminated_below_k
        assert len(result.groups) == 2
