"""Tests for labeled-pair sampling and the full-dedup baselines."""

import pytest

from repro.baselines.full_dedup import (
    canopy_collapse_pipeline,
    canopy_pipeline,
    none_pipeline,
)
from repro.datasets import generate_citations, sample_labeled_pairs, split_groups
from repro.scoring.pairwise import WeightedScorer
from repro.similarity.vectorize import name_only_featurizer
from tests.conftest import exact_name_predicate, make_store, shared_word_predicate


class TestSplitGroups:
    def test_partitions_records(self):
        ds = generate_citations(n_records=200, seed=0)
        train, test = split_groups(ds, train_fraction=0.5, seed=0)
        assert sorted(train + test) == list(range(200))

    def test_groups_not_split(self):
        ds = generate_citations(n_records=200, seed=0)
        train, test = split_groups(ds, train_fraction=0.5, seed=0)
        train_set = set(train)
        for group in ds.gold_partition():
            in_train = [i for i in group if i in train_set]
            assert len(in_train) in (0, len(group))

    def test_invalid_fraction(self):
        ds = generate_citations(n_records=50, seed=0)
        with pytest.raises(ValueError):
            split_groups(ds, train_fraction=1.0)


class TestSampleLabeledPairs:
    def test_labels_match_gold(self):
        ds = generate_citations(n_records=300, seed=0)
        pairs, labels = sample_labeled_pairs(ds, seed=0)
        for (a, b), label in zip(pairs, labels):
            same = ds.labels[a.record_id] == ds.labels[b.record_id]
            assert label == int(same)

    def test_positive_cap(self):
        ds = generate_citations(n_records=300, seed=0)
        pairs, labels = sample_labeled_pairs(ds, max_positives=10, seed=0)
        assert sum(labels) <= 10

    def test_negative_ratio(self):
        ds = generate_citations(n_records=300, seed=0)
        pairs, labels = sample_labeled_pairs(
            ds, max_positives=20, negatives_per_positive=3.0, seed=0
        )
        n_pos = sum(labels)
        n_neg = len(labels) - n_pos
        assert n_neg == round(3.0 * n_pos)

    def test_near_miss_negatives_from_predicate(self):
        from repro.predicates import citation_n1

        ds = generate_citations(n_records=300, seed=0)
        pairs, labels = sample_labeled_pairs(
            ds, candidate_predicate=citation_n1(), seed=0
        )
        assert 0 in labels and 1 in labels

    def test_restricted_to_subset(self):
        ds = generate_citations(n_records=300, seed=0)
        train, _ = split_groups(ds, seed=0)
        pairs, _ = sample_labeled_pairs(ds, record_ids=train, seed=0)
        train_set = set(train)
        for a, b in pairs:
            assert a.record_id in train_set and b.record_id in train_set


def simple_scorer() -> WeightedScorer:
    featurizer = name_only_featurizer()
    return WeightedScorer(
        featurizer, weights=[2.0, 2.0, 1.0, 1.0, 2.0], bias=-3.5
    )


class TestBaselinePipelines:
    def setup_method(self):
        self.store = make_store(
            ["ann smith"] * 4
            + ["ann smlth"]
            + ["bob jones"] * 3
            + ["cara lee"] * 2
            + ["dan brown"]
        )
        self.scorer = simple_scorer()

    def test_none_pipeline_finds_topk(self):
        outcome = none_pipeline(self.store, 2, self.scorer)
        assert outcome.topk.weights() == [5.0, 3.0]
        assert outcome.n_pairs_scored == 11 * 10 // 2

    def test_canopy_scores_fewer_pairs(self):
        full = none_pipeline(self.store, 2, self.scorer)
        canopy = canopy_pipeline(
            self.store, 2, self.scorer, shared_word_predicate()
        )
        assert canopy.n_pairs_scored < full.n_pairs_scored
        assert canopy.topk.weights() == full.topk.weights()

    def test_collapse_scores_fewer_still(self):
        canopy = canopy_pipeline(
            self.store, 2, self.scorer, shared_word_predicate()
        )
        collapsed = canopy_collapse_pipeline(
            self.store,
            2,
            self.scorer,
            shared_word_predicate(),
            exact_name_predicate(),
        )
        assert collapsed.n_pairs_scored < canopy.n_pairs_scored
        assert collapsed.topk.weights() == canopy.topk.weights()

    def test_group_count_consistent(self):
        outcome = canopy_pipeline(
            self.store, 2, self.scorer, shared_word_predicate()
        )
        assert outcome.n_groups >= 4
