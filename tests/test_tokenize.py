"""Unit tests for repro.similarity.tokenize."""

import pytest

from repro.similarity.tokenize import (
    cached_ngram_set,
    cached_word_set,
    content_word_set,
    content_words,
    initial_set,
    initials,
    ngram_set,
    ngrams,
    normalize,
    sorted_initials_key,
    word_set,
    words,
)


class TestNormalize:
    def test_lowercases(self):
        assert normalize("Sunita SARAWAGI") == "sunita sarawagi"

    def test_collapses_whitespace(self):
        assert normalize("  a \t b\n c ") == "a b c"

    def test_empty(self):
        assert normalize("") == ""


class TestWords:
    def test_splits_on_punctuation(self):
        assert words("Smith, J.") == ["smith", "j"]

    def test_keeps_digits(self):
        assert words("411 004 pune") == ["411", "004", "pune"]

    def test_empty(self):
        assert words("") == []

    def test_word_set(self):
        assert word_set("a b a") == frozenset({"a", "b"})


class TestContentWords:
    def test_removes_stop_words(self):
        stops = frozenset({"road", "street"})
        assert content_words("mg road pune street", stops) == ["mg", "pune"]

    def test_set_variant(self):
        stops = frozenset({"the"})
        assert content_word_set("the spice garden the", stops) == frozenset(
            {"spice", "garden"}
        )


class TestNgrams:
    def test_basic_trigrams(self):
        assert ngrams("abcd") == ["abc", "bcd"]

    def test_short_text_yields_whole(self):
        assert ngrams("ab") == ["ab"]
        assert ngrams("abc") == ["abc"]

    def test_normalized_before_gramming(self):
        assert ngram_set("A  B") == ngram_set("a b")

    def test_empty(self):
        assert ngrams("") == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams("abc", n=0)

    def test_spaces_inside_grams(self):
        assert " b " not in ngram_set("ab")
        assert "a b" in ngram_set("a bc")


class TestInitials:
    def test_in_order(self):
        assert initials("sunita k sarawagi") == ("s", "k", "s")

    def test_skips_numeric_tokens(self):
        assert initials("411 main road") == ("m", "r")

    def test_initial_set_dedupes(self):
        assert initial_set("sunita sarawagi") == frozenset({"s"})

    def test_sorted_key_order_invariant(self):
        assert sorted_initials_key("sunita sarawagi") == sorted_initials_key(
            "sarawagi sunita"
        )

    def test_sorted_key_distinguishes_multiplicity(self):
        assert sorted_initials_key("s s") != sorted_initials_key("s")


class TestCaches:
    def test_cached_matches_uncached(self):
        assert cached_ngram_set("hello world") == ngram_set("hello world")
        assert cached_word_set("hello world") == word_set("hello world")
