"""Snapshot-isolation properties of the serving read path.

The contract under test (docs/serving.md): a reader that dereferenced a
published :class:`EngineSnapshot` sees one engine generation, bit-
identically, for as long as it holds the snapshot — no matter how many
inserts the writer applies concurrently; and every published snapshot
is internally consistent (its closure partitions exactly its own record
set — never a mixed-generation index).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IncrementalTopK
from repro.core.parallel import group_fingerprint
from repro.core.resilience import ExecutionPolicy
from repro.predicates.base import PredicateLevel
from repro.server import EngineSnapshot, SnapshotPublisher

from .conftest import exact_name_predicate, shared_word_predicate


def levels():
    return [PredicateLevel(exact_name_predicate(), shared_word_predicate())]


NAMES = ["ann smith", "a smith", "bob jones", "bob j jones", "cara lee"]


def build_engine(rows):
    engine = IncrementalTopK(levels())
    for name, weight in rows:
        engine.add({"name": name}, weight)
    return engine


def topk_fingerprint(result):
    return group_fingerprint(result.groups)


# -- equivalence with the live engine ---------------------------------


def test_snapshot_answers_match_engine_at_freeze_time():
    rows = [(NAMES[i % len(NAMES)], float(i + 1)) for i in range(12)]
    engine = build_engine(rows)
    snapshot = EngineSnapshot.freeze(engine)
    assert snapshot.generation == engine._version
    assert snapshot.entries_applied == engine.entries_applied
    assert topk_fingerprint(snapshot.query_topk(3)) == topk_fingerprint(
        engine.query(3)
    )
    # Rank and threshold agree with the engine-independent pipelines on
    # the same records (weights and ids, order included).
    store = engine.current_store()
    from repro.core.rank_query import thresholded_rank_query, topk_rank_query

    expected_rank = topk_rank_query(store, 3, engine._levels)
    got_rank = snapshot.query_rank(3)
    assert [
        (entry.representative_id, entry.weight)
        for entry in got_rank.ranking
    ] == [
        (entry.representative_id, entry.weight)
        for entry in expected_rank.ranking
    ]
    expected_threshold = thresholded_rank_query(store, 4.0, engine._levels)
    got_threshold = snapshot.query_threshold(4.0)
    assert [
        entry.representative_id for entry in got_threshold.ranking
    ] == [entry.representative_id for entry in expected_threshold.ranking]


def test_snapshot_is_isolated_from_later_inserts():
    engine = build_engine([("ann smith", 1.0), ("bob jones", 2.0)])
    snapshot = EngineSnapshot.freeze(engine)
    before = topk_fingerprint(snapshot.query_topk(2))
    for index in range(20):
        engine.add({"name": f"ann smith {index}"}, 10.0)
    # The frozen generation still answers exactly as before.
    assert snapshot.n_records == 2
    assert topk_fingerprint(snapshot.query_topk(2)) == before
    assert snapshot.consistency_problems() == []


def test_reader_answers_bit_identical_during_concurrent_writes():
    engine = build_engine(
        [(NAMES[i % len(NAMES)], 1.0 + i) for i in range(10)]
    )
    snapshot = EngineSnapshot.freeze(engine)
    reference = topk_fingerprint(snapshot.query_topk(3))
    stop = threading.Event()

    def writer():
        index = 0
        while not stop.is_set():
            engine.add({"name": f"{NAMES[index % len(NAMES)]} v{index}"}, 2.0)
            index += 1

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        with ThreadPoolExecutor(max_workers=4) as pool:
            fingerprints = list(
                pool.map(
                    lambda _: topk_fingerprint(
                        snapshot.query_topk(3, policy=ExecutionPolicy())
                    ),
                    range(40),
                )
            )
    finally:
        stop.set()
        thread.join()
    assert all(fp == reference for fp in fingerprints)


# -- atomic publication ------------------------------------------------


def test_publisher_swaps_whole_generations_under_concurrent_writes():
    engine = build_engine([("ann smith", 1.0)])
    publisher = SnapshotPublisher()
    publisher.publish(EngineSnapshot.freeze(engine))
    done = threading.Event()
    problems: list[str] = []
    epochs: list[int] = []

    def writer():
        # Single-writer discipline: add then freeze+publish, 40 times.
        for index in range(40):
            engine.add({"name": f"name {index}"}, 1.0)
            publisher.publish(EngineSnapshot.freeze(engine))
        done.set()

    def reader():
        seen_epoch = 0
        while not done.is_set() or seen_epoch < publisher.epoch:
            snapshot = publisher.current
            epoch = publisher.epoch
            problems.extend(snapshot.consistency_problems())
            # A snapshot's closure must partition its own record set —
            # a torn publication would surface here as a mixed index.
            if epoch < seen_epoch:
                problems.append(f"epoch went backwards: {epoch}")
            seen_epoch = max(seen_epoch, epoch)
            if done.is_set() and seen_epoch >= publisher.epoch:
                break
        epochs.append(seen_epoch)

    readers = [threading.Thread(target=reader) for _ in range(3)]
    for thread in readers:
        thread.start()
    writer_thread = threading.Thread(target=writer)
    writer_thread.start()
    writer_thread.join()
    for thread in readers:
        thread.join()
    assert problems == []
    assert publisher.epoch == 41
    assert all(epoch == 41 for epoch in epochs)
    assert publisher.current.n_records == 41


def test_generation_snapshot_equals_clean_prefix_replay():
    inserts = [(NAMES[i % len(NAMES)], float(1 + i % 4)) for i in range(15)]
    engine = IncrementalTopK(levels())
    frozen: list[tuple[int, EngineSnapshot]] = []
    for count, (name, weight) in enumerate(inserts, start=1):
        engine.add({"name": name}, weight)
        frozen.append((count, EngineSnapshot.freeze(engine)))
    for count, snapshot in frozen:
        replay = build_engine(inserts[:count])
        assert snapshot.consistency_problems() == []
        assert topk_fingerprint(snapshot.query_topk(4)) == topk_fingerprint(
            replay.query(4)
        ), f"snapshot after {count} inserts diverges from clean replay"


# -- caching -----------------------------------------------------------


def test_policy_free_queries_are_cached_per_snapshot():
    engine = build_engine([("ann smith", 1.0), ("bob jones", 2.0)])
    snapshot = EngineSnapshot.freeze(engine)
    first = snapshot.query_topk(2)
    assert snapshot.query_topk(2) is first  # cache hit: identical object
    assert snapshot.query_topk(1) is not first  # different key
    # A policy-carrying query (deadlines are per request) bypasses it.
    assert snapshot.query_topk(2, policy=ExecutionPolicy()) is not first
    assert snapshot.query_rank(2) is snapshot.query_rank(2)
    assert snapshot.query_threshold(1.5) is snapshot.query_threshold(1.5)


def test_snapshot_rejects_bad_k():
    snapshot = EngineSnapshot.freeze(build_engine([("a b", 1.0)]))
    with pytest.raises(ValueError):
        snapshot.query_topk(0)
    with pytest.raises(ValueError):
        snapshot.query_rank(-1)


# -- property: random streams ------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(NAMES),
            st.floats(min_value=0.5, max_value=9.5),
        ),
        min_size=1,
        max_size=12,
    ),
    st.integers(min_value=1, max_value=4),
)
def test_snapshot_topk_equals_replay_for_random_streams(rows, k):
    engine = build_engine(rows)
    snapshot = EngineSnapshot.freeze(engine)
    replay = build_engine(rows)
    assert snapshot.consistency_problems() == []
    assert topk_fingerprint(snapshot.query_topk(k)) == topk_fingerprint(
        replay.query(k)
    )
