"""Tests for the predicate-selection optimizer (future-work feature)."""

import pytest

from repro.core.records import GroupSet
from repro.datasets import author_idf, generate_citations, suggest_min_idf
from repro.predicates import citation_levels
from repro.predicates.base import FunctionPredicate, PredicateLevel
from repro.predicates.optimizer import (
    order_levels,
    profile_level,
    sample_store,
)
from tests.conftest import exact_name_predicate, make_store, shared_word_predicate


def useless_level() -> PredicateLevel:
    """A level that never collapses and never prunes (N always true)."""
    never = FunctionPredicate(
        evaluate_fn=lambda a, b: False,
        keys_fn=lambda r: [],
        name="never-sufficient",
    )
    always = FunctionPredicate(
        evaluate_fn=lambda a, b: True,
        keys_fn=lambda r: ["all"],
        name="always-necessary",
    )
    return PredicateLevel(never, always, name="useless")


def good_level() -> PredicateLevel:
    return PredicateLevel(
        exact_name_predicate(), shared_word_predicate(), name="good"
    )


class TestSampleStore:
    def test_smaller_sample(self):
        store = make_store([f"name {i}" for i in range(100)])
        sample = sample_store(store, 10, seed=0)
        assert len(sample) == 10
        assert sample[0].record_id == 0  # renumbered

    def test_full_when_n_large(self):
        store = make_store(["a", "b"])
        assert sample_store(store, 10) is store

    def test_deterministic(self):
        store = make_store([f"name {i}" for i in range(100)])
        a = sample_store(store, 10, seed=3)
        b = sample_store(store, 10, seed=3)
        assert [r["name"] for r in a] == [r["name"] for r in b]


class TestProfileLevel:
    def test_profile_counts(self):
        store = make_store(["a"] * 5 + ["b"] * 3 + ["c"])
        profile, result = profile_level(
            GroupSet.singletons(store), good_level(), k=1
        )
        assert profile.groups_before == 9
        assert profile.groups_after_collapse == 3
        assert profile.groups_after_prune <= 3
        assert profile.seconds >= 0.0
        assert 0.0 <= profile.reduction <= 1.0
        assert len(result) == profile.groups_after_prune

    def test_useless_level_profile(self):
        store = make_store(["a", "b", "c"])
        profile, result = profile_level(
            GroupSet.singletons(store), useless_level(), k=1
        )
        assert profile.reduction <= 0.5  # nothing collapses


class TestOrderLevels:
    def test_good_level_chosen_over_useless(self):
        store = make_store(["a"] * 20 + ["b"] * 10 + [f"x{i}" for i in range(30)])
        chosen, profiles = order_levels(
            [useless_level(), good_level()], store, k=1, sample_size=60
        )
        assert chosen[0].name == "good"
        assert all(p.level_name for p in profiles)

    def test_useless_level_dropped(self):
        store = make_store(["a"] * 20 + ["b"] * 10 + [f"x{i}" for i in range(30)])
        chosen, _ = order_levels(
            [useless_level(), good_level()],
            store,
            k=1,
            sample_size=60,
            min_marginal_reduction=0.05,
        )
        assert all(level.name != "useless" for level in chosen)

    def test_never_empty_plan(self):
        store = make_store(["a", "b", "c"])
        chosen, profiles = order_levels(
            [useless_level()], store, k=1, sample_size=3
        )
        assert len(chosen) == 1
        assert len(profiles) == 1

    def test_validation(self):
        store = make_store(["a"])
        with pytest.raises(ValueError):
            order_levels([], store, k=1)
        with pytest.raises(ValueError):
            order_levels([good_level()], store, k=0)

    def test_on_citation_suite(self):
        ds = generate_citations(n_records=800, seed=2)
        idf = author_idf(ds.store)
        levels = citation_levels(idf, suggest_min_idf(idf))
        chosen, profiles = order_levels(
            levels, ds.store, k=5, sample_size=400
        )
        assert 1 <= len(chosen) <= 2
        # The plan must work end-to-end.
        from repro.core import pruned_dedup

        result = pruned_dedup(ds.store, 5, chosen)
        assert len(result.groups) >= 5
