"""Seeded bit-identity sweep: columnar record store vs. in-memory.

The contract of ``store="columnar"`` is that the storage backend is
invisible in every answer — stream fingerprints, top-k groups,
rankings, thresholded answers, and certainty flags must match the
in-memory engine bit-for-bit, on live streams, on frozen snapshots at
every worker count, and after restoring from a compacted columnar
checkpoint.  This module checks that contract across 10 seeds on both
the citations and students generators.
"""

import functools

import pytest

from repro.core.incremental import IncrementalTopK
from repro.core.parallel import fork_available, group_fingerprint
from repro.core.persistence import DurabilityPolicy
from repro.experiments import citation_pipeline, student_pipeline
from repro.server import EngineSnapshot
from repro.testing.crashpoints import stream_fingerprint

N_RECORDS = 200
K = 10
THRESHOLD = 5.0
SEEDS = range(10)
WORKER_COUNTS = (1, 2, 4)


@functools.lru_cache(maxsize=8)
def _pipeline(dataset: str, seed: int):
    if dataset == "citations":
        return citation_pipeline(
            n_records=N_RECORDS, seed=seed, with_scorer=False
        )
    return student_pipeline(n_records=N_RECORDS, seed=seed)


def _feed(engine, store, start=0, stop=None):
    for record in list(store)[start:stop]:
        engine.add(dict(record.fields), record.weight)


def _engine_pair(pipeline):
    memory = IncrementalTopK(pipeline.levels)
    columnar = IncrementalTopK(pipeline.levels, store="columnar")
    _feed(memory, pipeline.store)
    _feed(columnar, pipeline.store)
    return memory, columnar


@pytest.mark.parametrize("dataset", ["citations", "students"])
@pytest.mark.parametrize("seed", SEEDS)
def test_stream_state_bit_identical(dataset, seed):
    pipeline = _pipeline(dataset, seed)
    memory, columnar = _engine_pair(pipeline)
    assert columnar.store_kind == "columnar"
    assert stream_fingerprint(columnar) == stream_fingerprint(memory)
    assert columnar.audit() == []
    result = columnar.query(K)
    baseline = memory.query(K)
    assert group_fingerprint(result.groups) == group_fingerprint(
        baseline.groups
    )
    assert result.groups.weights() == baseline.groups.weights()


@pytest.mark.parametrize("dataset", ["citations", "students"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_snapshot_queries_bit_identical(dataset, seed):
    pipeline = _pipeline(dataset, seed)
    memory, columnar = _engine_pair(pipeline)
    snap_memory = EngineSnapshot.freeze(memory)
    snap_columnar = EngineSnapshot.freeze(columnar)
    assert snap_columnar.consistency_problems() == []
    topk = snap_columnar.query_topk(K)
    topk_base = snap_memory.query_topk(K)
    assert group_fingerprint(topk.groups) == group_fingerprint(
        topk_base.groups
    )
    rank = snap_columnar.query_rank(K)
    rank_base = snap_memory.query_rank(K)
    assert rank.ranking == rank_base.ranking
    assert rank.certain == rank_base.certain
    threshold = snap_columnar.query_threshold(THRESHOLD)
    threshold_base = snap_memory.query_threshold(THRESHOLD)
    assert threshold.ranking == threshold_base.ranking
    assert threshold.certain == threshold_base.certain


@pytest.mark.skipif(
    not fork_available(), reason="platform has no fork start method"
)
@pytest.mark.parametrize("dataset", ["citations", "students"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_worker_counts_bit_identical(dataset, seed):
    pipeline = _pipeline(dataset, seed)
    memory, columnar = _engine_pair(pipeline)
    snap_memory = EngineSnapshot.freeze(memory)
    snap_columnar = EngineSnapshot.freeze(columnar)
    rank_base = snap_memory.query_rank(K, workers=1)
    threshold_base = snap_memory.query_threshold(THRESHOLD, workers=1)
    topk_base = group_fingerprint(snap_memory.query_topk(K, workers=1).groups)
    for workers in WORKER_COUNTS:
        topk = snap_columnar.query_topk(K, workers=workers)
        assert group_fingerprint(topk.groups) == topk_base, (
            dataset,
            seed,
            workers,
        )
        rank = snap_columnar.query_rank(K, workers=workers)
        assert rank.ranking == rank_base.ranking
        assert rank.certain == rank_base.certain
        threshold = snap_columnar.query_threshold(THRESHOLD, workers=workers)
        assert threshold.ranking == threshold_base.ranking
        assert threshold.certain == threshold_base.certain


@pytest.mark.parametrize("dataset", ["citations", "students"])
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("restore_store", ["columnar", "memory"])
def test_restore_from_compacted_checkpoint(
    tmp_path, dataset, seed, restore_store
):
    # Feed half the corpus, compact to a columnar checkpoint, feed the
    # rest, compact again, then restore cold.  Restoring either store
    # kind from the columnar sidecar must reproduce the live engine's
    # state bit-for-bit with zero WAL entries replayed.
    pipeline = _pipeline(dataset, seed)
    memory = IncrementalTopK(pipeline.levels)
    _feed(memory, pipeline.store)
    policy = DurabilityPolicy(tmp_path / "state", fsync=False)
    columnar = IncrementalTopK(
        pipeline.levels, durability=policy, store="columnar"
    )
    half = N_RECORDS // 2
    _feed(columnar, pipeline.store, stop=half)
    columnar.checkpoint()
    _feed(columnar, pipeline.store, start=half)
    columnar.checkpoint()
    live = stream_fingerprint(columnar)
    columnar.close()
    assert live == stream_fingerprint(memory)

    restored = IncrementalTopK.restore(
        tmp_path / "state", pipeline.levels, store=restore_store
    )
    assert restored.store_kind == restore_store
    assert restored.last_recovery.entries_replayed == 0
    assert restored.last_recovery.checkpoint_path is not None
    assert stream_fingerprint(restored) == live
    assert restored.audit() == []
    result = restored.query(K)
    baseline = memory.query(K)
    assert group_fingerprint(result.groups) == group_fingerprint(
        baseline.groups
    )
    assert result.groups.weights() == baseline.groups.weights()
    restored.close()
