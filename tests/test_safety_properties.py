"""Property-based safety tests: the pruning pipeline never loses the
true Top-K when the predicates honour their roles.

Random instances are generated with honest predicates by construction:
each entity's mentions all share a stable token (so a shared-token
necessary predicate is genuinely necessary) and the exact-match
sufficient predicate can never fire across entities (mentions embed
their entity id).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import IncrementalTopK
from repro.core.pruned_dedup import pruned_dedup
from repro.core.rank_query import topk_rank_query
from repro.core.resilience import ExecutionPolicy
from repro.predicates.base import PredicateLevel
from repro.testing.chaos import FaultPlan, chaos_levels
from tests.conftest import exact_name_predicate, make_store, shared_word_predicate


@st.composite
def honest_instances(draw):
    """(names, labels): mentions of entities with honest predicate roles.

    Entity e's mentions are 'e<e> v<variant>' — they share the token
    'e<e>' (necessary predicate: shared word), and no two entities share
    any token (sufficient predicate: exact match is trivially safe).
    """
    n_entities = draw(st.integers(min_value=2, max_value=8))
    names = []
    labels = []
    for entity in range(n_entities):
        n_mentions = draw(st.integers(min_value=1, max_value=6))
        n_variants = draw(st.integers(min_value=1, max_value=3))
        for m in range(n_mentions):
            variant = draw(st.integers(min_value=0, max_value=n_variants - 1))
            names.append(f"e{entity} v{entity}x{variant}")
            labels.append(entity)
    return names, labels


def level():
    return [PredicateLevel(exact_name_predicate(), shared_word_predicate())]


def true_topk_entities(names, labels, k):
    from collections import Counter

    counts = Counter(labels)
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    if len(ranked) > k and ranked[k - 1][1] == ranked[k][1]:
        # Ties at the boundary make "the" Top-K ambiguous; only require
        # survival of entities strictly above the K-th count.
        cutoff = ranked[k][1]
        return [e for e, c in ranked if c > cutoff]
    return [e for e, _ in ranked[:k]]


class TestPruningSafety:
    @given(honest_instances(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_true_topk_survives(self, instance, k):
        names, labels = instance
        store = make_store(names)
        result = pruned_dedup(store, k, level())
        surviving_entities = {
            labels[record_id]
            for group in result.groups
            for record_id in group.member_ids
        }
        for entity in true_topk_entities(names, labels, k):
            assert entity in surviving_entities

    @given(honest_instances(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_rank_query_also_safe(self, instance, k):
        names, labels = instance
        store = make_store(names)
        result = topk_rank_query(store, k, level())
        surviving_entities = {
            labels[record_id]
            for group in result.groups
            for record_id in group.member_ids
        }
        for entity in true_topk_entities(names, labels, k):
            assert entity in surviving_entities

    @given(honest_instances())
    @settings(max_examples=40, deadline=None)
    def test_retained_groups_partition_subset(self, instance):
        names, _ = instance
        store = make_store(names)
        result = pruned_dedup(store, 2, level())
        covered = result.groups.covered_record_ids()
        assert len(covered) == len(set(covered))
        assert set(covered) <= set(range(len(store)))


class TestContainmentSafetyProperties:
    """Role-safe fallbacks stay safe under arbitrary injected faults.

    The chaos wrappers raise deterministically per (seed, pair); the
    guards substitute False for a failing sufficient predicate and True
    for a failing necessary one.  Whatever the fault schedule, that must
    never merge across entities nor prune the true Top-K away.
    """

    @given(
        honest_instances(),
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.05, max_value=0.9),
    )
    @settings(max_examples=40, deadline=None)
    def test_sufficient_faults_never_merge_across_entities(
        self, instance, seed, error_rate
    ):
        names, labels = instance
        plan = FaultPlan(seed=seed, error_rate=error_rate)
        faulty = chaos_levels(level(), plan, roles="sufficient")
        result = pruned_dedup(
            make_store(names), 2, faulty, policy=ExecutionPolicy()
        )
        for group in result.groups:
            entities = {labels[record_id] for record_id in group.member_ids}
            assert len(entities) == 1

    @given(
        honest_instances(),
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.05, max_value=0.9),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_necessary_faults_never_lose_true_topk(
        self, instance, seed, error_rate, k
    ):
        names, labels = instance
        plan = FaultPlan(seed=seed, error_rate=error_rate)
        faulty = chaos_levels(level(), plan, roles="necessary")
        result = pruned_dedup(
            make_store(names), k, faulty, policy=ExecutionPolicy()
        )
        surviving_entities = {
            labels[record_id]
            for group in result.groups
            for record_id in group.member_ids
        }
        for entity in true_topk_entities(names, labels, k):
            assert entity in surviving_entities

    @given(
        honest_instances(),
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.05, max_value=0.5),
    )
    @settings(max_examples=25, deadline=None)
    def test_keying_faults_never_lose_records_or_topk(
        self, instance, seed, rate
    ):
        # Keying failures on the necessary predicate compromise the
        # N-graph; the pipeline must stand pruning down rather than
        # over-prune (collapse keying failures just merge less).
        names, labels = instance
        plan = FaultPlan(seed=seed, keying_error_rate=rate)
        faulty = chaos_levels(level(), plan, roles="both")
        result = pruned_dedup(
            make_store(names), 2, faulty, policy=ExecutionPolicy()
        )
        surviving_entities = {
            labels[record_id]
            for group in result.groups
            for record_id in group.member_ids
        }
        for entity in true_topk_entities(names, labels, 2):
            assert entity in surviving_entities
        for group in result.groups:
            entities = {labels[record_id] for record_id in group.member_ids}
            assert len(entities) == 1


class TestIncrementalMatchesBatchProperty:
    @given(honest_instances(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_incremental_equals_batch(self, instance, k):
        names, _ = instance
        engine = IncrementalTopK(level())
        for name in names:
            engine.add({"name": name})
        incremental = engine.query(k)
        batch = pruned_dedup(make_store(names), k, level())
        assert sorted(incremental.groups.weights(), reverse=True) == sorted(
            batch.groups.weights(), reverse=True
        )
