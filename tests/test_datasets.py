"""Tests for the synthetic dataset generators."""

import pytest

from repro.datasets import (
    CURRENT_DATE,
    author_idf,
    generate_address_sample,
    generate_addresses,
    generate_author_sample,
    generate_citations,
    generate_getoor_sample,
    generate_restaurants,
    generate_students,
    suggest_min_idf,
)
from repro.datasets.base import SyntheticDataset


class TestCitations:
    def test_record_count_and_fields(self):
        ds = generate_citations(n_records=300, seed=0)
        assert ds.n_records == 300
        record = ds.store[0]
        for field in ("author", "coauthors", "title", "year", "pages"):
            assert field in record.fields

    def test_deterministic(self):
        a = generate_citations(n_records=200, seed=42)
        b = generate_citations(n_records=200, seed=42)
        assert a.store.field_values("author") == b.store.field_values("author")
        assert a.labels == b.labels

    def test_different_seeds_differ(self):
        a = generate_citations(n_records=200, seed=1)
        b = generate_citations(n_records=200, seed=2)
        assert a.store.field_values("author") != b.store.field_values("author")

    def test_skewed_popularity(self):
        ds = generate_citations(n_records=2000, seed=0)
        weights = sorted(ds.entity_weights().values(), reverse=True)
        # Head entity well above the median entity.
        assert weights[0] > 20 * weights[len(weights) // 2]

    def test_weights_are_citation_counts(self):
        ds = generate_citations(n_records=100, seed=0)
        assert all(r.weight >= 2.0 for r in ds.store)

    def test_gold_partition_covers_store(self):
        ds = generate_citations(n_records=150, seed=0)
        covered = sorted(i for g in ds.gold_partition() for i in g)
        assert covered == list(range(150))

    def test_true_topk(self):
        ds = generate_citations(n_records=500, seed=0)
        top = ds.true_topk(3)
        assert len(top) == 3
        assert top[0][1] >= top[1][1] >= top[2][1]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            generate_citations(n_records=0)


class TestAuthorIdf:
    def test_prolific_surname_passes_rarity_threshold(self):
        # S1 must be able to collapse the head entities: their (unique)
        # surnames have to clear the suggested rarity threshold.
        ds = generate_citations(n_records=2000, seed=0)
        idf = author_idf(ds.store)
        threshold = suggest_min_idf(idf)
        top_entity = ds.true_topk(1)[0][0]
        surname = ds.entity_names[top_entity].split()[-1]
        assert idf.idf(surname) >= threshold

    def test_first_names_more_frequent_than_surnames(self):
        ds = generate_citations(n_records=2000, seed=0)
        idf = author_idf(ds.store)
        top_entity = ds.true_topk(1)[0][0]
        first, *_, last = ds.entity_names[top_entity].split()
        common_first_df = max(
            idf.document_frequency(w) for w in ("john", "amit", "sunita")
        )
        assert common_first_df >= idf.document_frequency(last)

    def test_suggest_min_idf_monotone_in_cap(self):
        ds = generate_citations(n_records=500, seed=0)
        idf = author_idf(ds.store)
        assert suggest_min_idf(idf, df_cap=2) >= suggest_min_idf(idf, df_cap=10)

    def test_invalid_cap(self):
        ds = generate_citations(n_records=100, seed=0)
        with pytest.raises(ValueError):
            suggest_min_idf(author_idf(ds.store), df_cap=0)


class TestStudents:
    def test_fields(self):
        ds = generate_students(n_records=200, seed=0)
        record = ds.store[0]
        for field in ("name", "class", "school", "dob", "paper"):
            assert field in record.fields

    def test_marks_positive_bounded(self):
        ds = generate_students(n_records=300, seed=0)
        assert all(1.0 <= r.weight <= 100.0 for r in ds.store)

    def test_current_date_errors_present(self):
        ds = generate_students(
            n_records=2000, seed=0, current_date_error_rate=0.2
        )
        dobs = ds.store.field_values("dob")
        assert CURRENT_DATE in dobs

    def test_deterministic(self):
        a = generate_students(n_records=200, seed=9)
        b = generate_students(n_records=200, seed=9)
        assert a.store.field_values("name") == b.store.field_values("name")

    def test_entity_school_consistent(self):
        ds = generate_students(n_records=500, seed=1)
        by_entity: dict[int, set[str]] = {}
        for record, label in zip(ds.store, ds.labels):
            by_entity.setdefault(label, set()).add(record["school"])
        assert all(len(schools) == 1 for schools in by_entity.values())


class TestAddresses:
    def test_fields(self):
        ds = generate_addresses(n_records=200, seed=0)
        for field in ("name", "address", "pin"):
            assert field in ds.store[0].fields

    def test_positive_worth(self):
        ds = generate_addresses(n_records=200, seed=0)
        assert all(r.weight > 0 for r in ds.store)

    def test_address_content_words_sufficient(self):
        # The N1 predicate needs >= 4 common content words to survive.
        from repro.similarity.tokenize import ADDRESS_STOP_WORDS, content_word_set

        ds = generate_addresses(n_records=200, seed=0)
        for record in ds.store:
            text = f"{record['name']} {record['address']}"
            assert len(content_word_set(text, ADDRESS_STOP_WORDS)) >= 5

    def test_sample_size(self):
        ds = generate_address_sample(n_records=306)
        assert ds.n_records == 306


class TestRestaurants:
    def test_table1_shape(self):
        ds = generate_restaurants(n_records=860, duplicate_rate=0.17, seed=5)
        assert ds.n_records == 860
        # Table 1: 860 records over 734 groups -> roughly 120 duplicated.
        assert 650 <= ds.n_entities <= 820

    def test_duplicates_share_city(self):
        ds = generate_restaurants(n_records=400, seed=2)
        by_entity: dict[int, set[str]] = {}
        for record, label in zip(ds.store, ds.labels):
            by_entity.setdefault(label, set()).add(record["city"])
        assert all(len(cities) == 1 for cities in by_entity.values())

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            generate_restaurants(n_records=10, duplicate_rate=2.0)


class TestSamples:
    def test_author_sample(self):
        ds = generate_author_sample(n_records=500)
        assert ds.n_records == 500
        assert "name" in ds.store[0].fields

    def test_getoor_sample(self):
        ds = generate_getoor_sample(n_records=400)
        assert ds.n_records == 400


class TestSyntheticDatasetContainer:
    def test_label_length_checked(self):
        ds = generate_citations(n_records=50, seed=0)
        with pytest.raises(ValueError):
            SyntheticDataset(store=ds.store, labels=[0])

    def test_subset(self):
        ds = generate_citations(n_records=50, seed=0)
        sub = ds.subset([5, 10, 15])
        assert sub.n_records == 3
        assert sub.labels == [ds.labels[5], ds.labels[10], ds.labels[15]]
        assert sub.store[0]["author"] == ds.store[5]["author"]

    def test_entity_weights_sum(self):
        ds = generate_citations(n_records=80, seed=0)
        assert sum(ds.entity_weights().values()) == pytest.approx(
            ds.store.total_weight()
        )
