"""Tests for the CSV command-line interface."""

import csv

import pytest

from repro.cli import build_parser, generic_levels, generic_scorer, load_csv, main


@pytest.fixture
def mentions_csv(tmp_path):
    path = tmp_path / "mentions.csv"
    rows = [
        ("ann smith", "2"),
        ("ann smith", "3"),
        ("a smith", "1"),
        ("bob jones", "4"),
        ("bob jones", "1"),
        ("cara lee", "2"),
    ]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["name", "count"])
        writer.writerows(rows)
    return str(path)


class TestLoadCsv:
    def test_loads_fields_and_weights(self, mentions_csv):
        store = load_csv(mentions_csv, "name", "count")
        assert len(store) == 6
        assert store[0]["name"] == "ann smith"
        assert store[3].weight == 4.0

    def test_default_weights(self, mentions_csv):
        store = load_csv(mentions_csv, "name", None)
        assert store.total_weight() == 6.0

    def test_missing_column(self, mentions_csv):
        with pytest.raises(ValueError):
            load_csv(mentions_csv, "nope", None)

    def test_missing_weight_column(self, mentions_csv):
        with pytest.raises(ValueError):
            load_csv(mentions_csv, "name", "nope")

    def test_bad_weight_value(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("name,w\nann,notanumber\n")
        with pytest.raises(ValueError, match="row 1"):
            load_csv(str(path), "name", "w")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("name\n")
        with pytest.raises(ValueError):
            load_csv(str(path), "name", None)

    @pytest.mark.parametrize("bad", ["nan", "inf", "-inf", "NaN", "Infinity"])
    def test_non_finite_weight_rejected(self, tmp_path, bad):
        # float() happily parses these, but a nan/inf weight silently
        # poisons every weight sum and bound downstream.
        path = tmp_path / "nonfinite.csv"
        path.write_text(f"name,w\nann,{bad}\n")
        with pytest.raises(ValueError, match="non-finite"):
            load_csv(str(path), "name", "w")

    def test_finite_weights_still_accepted(self, tmp_path):
        path = tmp_path / "fine.csv"
        path.write_text("name,w\nann,2.5\nbob,1e3\n")
        store = load_csv(str(path), "name", "w")
        assert store.total_weight() == 1002.5


class TestCommands:
    def test_topk(self, mentions_csv, capsys):
        code = main(
            [
                "topk",
                "--input",
                mentions_csv,
                "--field",
                "name",
                "--weight-field",
                "count",
                "--k",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ann smith" in out
        assert "bob jones" in out
        assert "cara lee" not in out

    def test_topk_multiple_answers(self, mentions_csv, capsys):
        main(
            [
                "topk",
                "--input",
                mentions_csv,
                "--field",
                "name",
                "--weight-field",
                "count",
                "--k",
                "2",
                "--r",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert "answer #1" in out
        assert "answer #2" in out

    def test_rank(self, mentions_csv, capsys):
        code = main(
            [
                "rank",
                "--input",
                mentions_csv,
                "--field",
                "name",
                "--weight-field",
                "count",
                "--k",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "u<=" in out

    def test_threshold(self, mentions_csv, capsys):
        code = main(
            [
                "threshold",
                "--input",
                mentions_csv,
                "--field",
                "name",
                "--weight-field",
                "count",
                "--min-weight",
                "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bob jones" in out
        assert "cara lee" not in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestGenericComponents:
    def test_levels_shape(self):
        levels = generic_levels("name", 0.6)
        assert len(levels) == 1
        assert levels[0].sufficient.key_implies_match

    def test_scorer_signs(self):
        from repro.core.records import RecordStore

        scorer = generic_scorer("name", bias=-3.0)
        a, b, c = RecordStore.from_rows(
            [{"name": "ann smith"}, {"name": "ann smith"}, {"name": "zed qux"}]
        )
        assert scorer.score(a, b) > 0
        assert scorer.score(a, c) < 0


class TestGenerate:
    def test_generate_citations(self, tmp_path, capsys):
        out = tmp_path / "cite.csv"
        code = main(
            [
                "generate",
                "--kind",
                "citations",
                "--n",
                "100",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        lines = out.read_text().splitlines()
        assert len(lines) == 101
        header = lines[0].split(",")
        assert "author" in header
        assert "weight" in header
        assert "gold_entity" in header

    def test_generate_then_query_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "students.csv"
        main(
            [
                "generate",
                "--kind",
                "students",
                "--n",
                "150",
                "--seed",
                "2",
                "--output",
                str(out),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "topk",
                "--input",
                str(out),
                "--field",
                "name",
                "--weight-field",
                "weight",
                "--k",
                "3",
            ]
        )
        assert code == 0
        assert len(capsys.readouterr().out.splitlines()) >= 3

    def test_generate_all_kinds(self, tmp_path):
        for kind in ("citations", "students", "addresses", "restaurants"):
            out = tmp_path / f"{kind}.csv"
            assert (
                main(
                    [
                        "generate",
                        "--kind",
                        kind,
                        "--n",
                        "60",
                        "--output",
                        str(out),
                    ]
                )
                == 0
            )
            assert out.exists()


class TestStatsFlag:
    def _args(self, command, mentions_csv, *extra):
        return [
            command,
            "--input",
            mentions_csv,
            "--field",
            "name",
            "--weight-field",
            "count",
            "--stats",
            *extra,
        ]

    def test_topk_stats_to_stderr(self, mentions_csv, capsys):
        code = main(self._args("topk", mentions_csv, "--k", "2"))
        assert code == 0
        captured = capsys.readouterr()
        assert "verification stats" in captured.err
        assert "evals=" in captured.err
        assert "builds=" in captured.err
        assert "lower_bound" in captured.err
        # The report must not pollute the answer on stdout.
        assert "verification stats" not in captured.out

    def test_rank_stats(self, mentions_csv, capsys):
        code = main(self._args("rank", mentions_csv, "--k", "2"))
        assert code == 0
        assert "verification stats" in capsys.readouterr().err

    def test_threshold_stats(self, mentions_csv, capsys):
        code = main(self._args("threshold", mentions_csv, "--min-weight", "5"))
        assert code == 0
        assert "verification stats" in capsys.readouterr().err

    def test_no_stats_by_default(self, mentions_csv, capsys):
        code = main(
            [
                "topk",
                "--input",
                mentions_csv,
                "--field",
                "name",
                "--k",
                "2",
            ]
        )
        assert code == 0
        assert "verification stats" not in capsys.readouterr().err


class TestErrorExitCodes:
    """Operator mistakes exit 2 with one ``error:`` line, no traceback."""

    def test_missing_input_file(self, tmp_path, capsys):
        code = main(
            ["topk", "--input", str(tmp_path / "nope.csv"), "--field", "name"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert err.count("\n") == 1

    def test_missing_column(self, mentions_csv, capsys):
        code = main(["topk", "--input", mentions_csv, "--field", "nope"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "nope" in err

    def test_non_finite_weight(self, tmp_path, capsys):
        path = tmp_path / "bad.csv"
        path.write_text("name,w\nann,1\nbob,inf\n")
        code = main(
            [
                "topk",
                "--input",
                str(path),
                "--field",
                "name",
                "--weight-field",
                "w",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "row 2" in err

    def test_checkpoint_every_requires_state_dir(self, mentions_csv, capsys):
        code = main(
            [
                "stream",
                "--input",
                mentions_csv,
                "--field",
                "name",
                "--checkpoint-every",
                "5",
            ]
        )
        assert code == 2
        assert "--state-dir" in capsys.readouterr().err

    def test_restore_without_state(self, tmp_path, capsys):
        code = main(
            [
                "restore",
                "--state-dir",
                str(tmp_path / "void"),
                "--field",
                "name",
            ]
        )
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")


class TestInterrupt:
    """Ctrl-C exits with the conventional 128+SIGINT code, no traceback."""

    def test_keyboard_interrupt_exits_130(self, mentions_csv, capsys, monkeypatch):
        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.cli.run_topk", interrupted)
        code = main(["topk", "--input", mentions_csv, "--field", "name"])
        assert code == 130
        assert "interrupted" in capsys.readouterr().err


class TestWorkersFlag:
    def _answer(self, mentions_csv, capsys, *extra):
        code = main(
            [
                "topk",
                "--input",
                mentions_csv,
                "--field",
                "name",
                "--weight-field",
                "count",
                "--k",
                "2",
                *extra,
            ]
        )
        assert code == 0
        return capsys.readouterr().out

    def test_workers_flag_parsed(self, mentions_csv):
        args = build_parser().parse_args(
            ["topk", "--input", mentions_csv, "--field", "name", "--workers", "4"]
        )
        assert args.workers == 4

    def test_workers_default_unset(self, mentions_csv):
        args = build_parser().parse_args(
            ["topk", "--input", mentions_csv, "--field", "name"]
        )
        assert args.workers is None

    def test_workers_answer_identical(self, mentions_csv, capsys):
        serial = self._answer(mentions_csv, capsys)
        parallel = self._answer(mentions_csv, capsys, "--workers", "2")
        assert parallel == serial

    def test_every_query_command_accepts_workers(self, mentions_csv):
        parser = build_parser()
        required = {"threshold": ["--min-weight", "5"]}
        for command in ("topk", "rank", "threshold", "stream"):
            args = parser.parse_args(
                [
                    command,
                    "--input",
                    mentions_csv,
                    "--field",
                    "name",
                    "--workers",
                    "3",
                    *required.get(command, []),
                ]
            )
            assert args.workers == 3, command


class TestStream:
    def _stream_args(self, mentions_csv, *extra):
        return [
            "stream",
            "--input",
            mentions_csv,
            "--field",
            "name",
            "--weight-field",
            "count",
            "--k",
            "2",
            *extra,
        ]

    def test_in_memory_stream(self, mentions_csv, capsys):
        code = main(self._stream_args(mentions_csv))
        assert code == 0
        out = capsys.readouterr().out
        assert "ann smith" in out
        assert "bob jones" in out
        assert "cara lee" not in out

    def test_durable_stream_resumes_across_runs(
        self, mentions_csv, tmp_path, capsys
    ):
        state = str(tmp_path / "state")
        code = main(
            self._stream_args(
                mentions_csv, "--state-dir", state, "--checkpoint-every", "4"
            )
        )
        assert code == 0
        assert "5.00" in capsys.readouterr().out
        # A second run restores the first run's state and doubles the
        # group weights by feeding the same CSV again.
        code = main(self._stream_args(mentions_csv, "--state-dir", state))
        assert code == 0
        captured = capsys.readouterr()
        assert "10.00" in captured.out
        assert "restored from" in captured.err

    def test_durable_stream_without_checkpoint_recovers_from_wal(
        self, mentions_csv, tmp_path, capsys
    ):
        state = str(tmp_path / "state")
        assert main(self._stream_args(mentions_csv, "--state-dir", state)) == 0
        capsys.readouterr()
        code = main(["restore", "--state-dir", state, "--field", "name"])
        assert code == 0
        captured = capsys.readouterr()
        assert "state ok" in captured.out
        assert "6 entries" in captured.out
        assert "no checkpoint" in captured.err

    def test_checkpoint_verb_snapshots_state(
        self, mentions_csv, tmp_path, capsys
    ):
        state = str(tmp_path / "state")
        assert main(self._stream_args(mentions_csv, "--state-dir", state)) == 0
        capsys.readouterr()
        code = main(["checkpoint", "--state-dir", state, "--field", "name"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("checkpoint")
        assert "6 entries" in out
        code = main(["restore", "--state-dir", state, "--field", "name"])
        assert code == 0
        captured = capsys.readouterr()
        assert "state ok" in captured.out
        assert "restored from checkpoint" in captured.err

    def test_stream_stats_flag(self, mentions_csv, capsys):
        code = main(self._stream_args(mentions_csv, "--stats"))
        assert code == 0
        captured = capsys.readouterr()
        assert "verification stats" in captured.err
        assert "verification stats" not in captured.out


class TestResilienceFlags:
    def _base(self, command, mentions_csv, *extra):
        return [
            command,
            "--input",
            mentions_csv,
            "--field",
            "name",
            "--weight-field",
            "count",
            *extra,
        ]

    def test_policy_from_args(self, mentions_csv):
        from repro.cli import policy_from_args

        args = build_parser().parse_args(
            self._base("rank", mentions_csv, "--k", "2")
        )
        assert policy_from_args(args) is None
        args = build_parser().parse_args(
            self._base("rank", mentions_csv, "--k", "2", "--deadline", "5.0")
        )
        policy = policy_from_args(args)
        assert policy.deadline_seconds == 5.0
        assert policy.on_error == "degrade"
        args = build_parser().parse_args(
            self._base(
                "rank", mentions_csv, "--k", "2", "--on-predicate-error", "raise"
            )
        )
        assert policy_from_args(args).on_error == "raise"

    def test_generous_deadline_leaves_answer_unchanged(self, mentions_csv, capsys):
        code = main(self._base("topk", mentions_csv, "--k", "2"))
        assert code == 0
        plain = capsys.readouterr().out
        code = main(
            self._base("topk", mentions_csv, "--k", "2", "--deadline", "60")
        )
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out == plain
        assert "DEGRADED" not in captured.err

    def test_expired_deadline_warns_degraded(self, mentions_csv, capsys):
        code = main(
            self._base("topk", mentions_csv, "--k", "2", "--deadline", "0")
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "DEGRADED" in captured.err
        assert "deadline" in captured.err
        # Still prints a (best-effort) answer on stdout.
        assert captured.out.strip()

    def test_rank_and_threshold_accept_deadline(self, mentions_csv, capsys):
        assert (
            main(
                self._base(
                    "rank", mentions_csv, "--k", "2", "--deadline", "0"
                )
            )
            == 0
        )
        assert "DEGRADED" in capsys.readouterr().err
        assert (
            main(
                self._base(
                    "threshold",
                    mentions_csv,
                    "--min-weight",
                    "5",
                    "--deadline",
                    "0",
                )
            )
            == 0
        )
        assert "DEGRADED" in capsys.readouterr().err


class TestObservabilityFlags:
    def run_topk(self, mentions_csv, *extra):
        return main(
            [
                "topk",
                "--input",
                mentions_csv,
                "--field",
                "name",
                "--k",
                "2",
                *extra,
            ]
        )

    def test_trace_out_writes_replayable_jsonl(self, mentions_csv, tmp_path):
        import json

        trace_path = tmp_path / "trace.jsonl"
        assert self.run_topk(mentions_csv, "--trace-out", str(trace_path)) == 0
        lines = trace_path.read_text().splitlines()
        assert lines
        records = [json.loads(line) for line in lines]
        assert records[0]["name"] == "query"
        assert records[0]["parent"] is None
        assert records[0]["attributes"]["kind"] == "topk"
        names = {record["name"] for record in records}
        assert {"pruned_dedup", "level"} <= names
        from repro.observability import replay_counters

        replayed = replay_counters(lines)
        assert replayed["predicate_evaluations"] > 0

    def test_metrics_out_writes_prometheus_text(self, mentions_csv, tmp_path):
        metrics_path = tmp_path / "metrics.prom"
        assert (
            self.run_topk(mentions_csv, "--metrics-out", str(metrics_path))
            == 0
        )
        text = metrics_path.read_text()
        assert 'repro_queries_total{kind="topk"} 1' in text
        assert "# TYPE repro_queries_total counter" in text
        assert "repro_pipeline_predicate_evaluations_total" in text

    def test_explain_prints_span_tree_to_stderr(self, mentions_csv, capsys):
        assert self.run_topk(mentions_csv, "--explain") == 0
        err = capsys.readouterr().err
        assert err.startswith("query")
        assert "pruned_dedup" in err
        assert "level" in err

    def test_flags_do_not_change_answers(self, mentions_csv, capsys, tmp_path):
        assert self.run_topk(mentions_csv) == 0
        plain = capsys.readouterr().out
        assert (
            self.run_topk(
                mentions_csv,
                "--trace-out",
                str(tmp_path / "t.jsonl"),
                "--metrics-out",
                str(tmp_path / "m.prom"),
                "--explain",
            )
            == 0
        )
        traced = capsys.readouterr().out
        assert traced == plain

    def test_rank_and_threshold_accept_flags(self, mentions_csv, tmp_path):
        rank_trace = tmp_path / "rank.jsonl"
        code = main(
            [
                "rank",
                "--input",
                mentions_csv,
                "--field",
                "name",
                "--k",
                "2",
                "--trace-out",
                str(rank_trace),
                "--metrics-out",
                str(tmp_path / "rank.prom"),
            ]
        )
        assert code == 0
        assert '"kind":"rank"' in rank_trace.read_text().splitlines()[0]
        assert 'kind="rank"' in (tmp_path / "rank.prom").read_text()

        threshold_trace = tmp_path / "threshold.jsonl"
        code = main(
            [
                "threshold",
                "--input",
                mentions_csv,
                "--field",
                "name",
                "--min-weight",
                "2",
                "--trace-out",
                str(threshold_trace),
            ]
        )
        assert code == 0
        assert '"kind":"threshold"' in threshold_trace.read_text().splitlines()[0]

    def test_stream_flags_cover_wal_metrics(self, mentions_csv, tmp_path):
        metrics_path = tmp_path / "stream.prom"
        code = main(
            [
                "stream",
                "--input",
                mentions_csv,
                "--field",
                "name",
                "--k",
                "2",
                "--state-dir",
                str(tmp_path / "state"),
                "--trace-out",
                str(tmp_path / "stream.jsonl"),
                "--metrics-out",
                str(metrics_path),
            ]
        )
        assert code == 0
        text = metrics_path.read_text()
        assert "repro_wal_appends_total 6" in text
        assert 'repro_queries_total{kind="stream"} 1' in text
        trace = (tmp_path / "stream.jsonl").read_text().splitlines()
        assert '"kind":"stream"' in trace[0]

    def test_no_flags_means_no_files(self, mentions_csv, capsys):
        assert self.run_topk(mentions_csv) == 0
        err = capsys.readouterr().err
        assert "query" not in err


class TestWalCorruptionExit:
    """Mid-log WAL damage exits 3 with a one-line remediation hint."""

    def _seed_state(self, mentions_csv, tmp_path):
        state = tmp_path / "state"
        code = main(
            [
                "stream",
                "--input",
                mentions_csv,
                "--field",
                "name",
                "--state-dir",
                str(state),
            ]
        )
        assert code == 0
        return state

    def _corrupt_first_entry(self, state):
        segment = sorted(state.glob("wal-*.log"))[0]
        blob = bytearray(segment.read_bytes())
        blob[6] ^= 0xFF  # inside the first frame: mid-log, not a torn tail
        segment.write_bytes(bytes(blob))
        return segment

    def test_restore_exits_3_with_hint(self, mentions_csv, tmp_path, capsys):
        state = self._seed_state(mentions_csv, tmp_path)
        capsys.readouterr()
        segment = self._corrupt_first_entry(state)
        code = main(["restore", "--state-dir", str(state), "--field", "name"])
        assert code == 3
        err = capsys.readouterr().err
        assert err.startswith("error: WAL corrupt at")
        assert segment.name in err
        assert "restore from last checkpoint" in err
        assert err.count("\n") == 1  # one line, no traceback

    def test_stream_resume_exits_3(self, mentions_csv, tmp_path, capsys):
        state = self._seed_state(mentions_csv, tmp_path)
        capsys.readouterr()
        self._corrupt_first_entry(state)
        code = main(
            [
                "stream",
                "--input",
                mentions_csv,
                "--field",
                "name",
                "--state-dir",
                str(state),
            ]
        )
        assert code == 3
        assert capsys.readouterr().err.startswith("error: WAL corrupt at")


class TestHealthVerb:
    def test_health_without_state(self, capsys):
        code = main(["health"])
        assert code == 0
        out = capsys.readouterr().out
        assert "live=yes" in out
        assert "ready=yes" in out

    def test_health_state_dir_requires_field(self, tmp_path, capsys):
        code = main(["health", "--state-dir", str(tmp_path)])
        assert code == 2
        assert "--field" in capsys.readouterr().err

    def test_health_over_state_dir(self, mentions_csv, tmp_path, capsys):
        state = tmp_path / "state"
        assert (
            main(
                [
                    "stream",
                    "--input",
                    mentions_csv,
                    "--field",
                    "name",
                    "--state-dir",
                    str(state),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            ["health", "--state-dir", str(state), "--field", "name", "--audit"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "durability.journaling" in out
        assert "state.audit" in out
        assert "live=yes ready=yes" in out

    def test_health_metrics_out(self, mentions_csv, tmp_path, capsys):
        state = tmp_path / "state"
        assert (
            main(
                [
                    "stream",
                    "--input",
                    mentions_csv,
                    "--field",
                    "name",
                    "--state-dir",
                    str(state),
                ]
            )
            == 0
        )
        capsys.readouterr()
        metrics_path = tmp_path / "health.prom"
        code = main(
            [
                "health",
                "--state-dir",
                str(state),
                "--field",
                "name",
                "--metrics-out",
                str(metrics_path),
            ]
        )
        assert code == 0
        text = metrics_path.read_text()
        assert "repro_health_ready 1" in text
        assert "repro_health_degraded 0" in text
        assert "repro_breaker_state" in text


class TestIntervalSemantics:
    """``topk --semantics interval``: the uncertainty-aware round trip."""

    def test_interval_round_trip(self, mentions_csv, capsys):
        code = main(
            [
                "topk",
                "--input",
                mentions_csv,
                "--field",
                "name",
                "--weight-field",
                "count",
                "--k",
                "2",
                "--semantics",
                "interval",
                "--worlds",
                "8",
                "--ngram-threshold",
                "0.3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "world(s) aggregated" in out
        lines = [line for line in out.splitlines() if line.startswith("[")]
        assert lines
        for line in lines:
            # "[        lo,         hi]  p=0.93  label"
            bounds, rest = line.split("]", 1)
            lo, hi = (float(part) for part in bounds.strip("[").split(","))
            assert lo <= hi
            probability = float(rest.split("p=")[1].split()[0])
            assert 0.0 <= probability <= 1.0
        assert "ann smith" in out

    def test_interval_validates_worlds(self, mentions_csv, capsys):
        code = main(
            [
                "topk",
                "--input",
                mentions_csv,
                "--field",
                "name",
                "--semantics",
                "interval",
                "--worlds",
                "0",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_interval_validates_min_probability(self, mentions_csv, capsys):
        code = main(
            [
                "topk",
                "--input",
                mentions_csv,
                "--field",
                "name",
                "--semantics",
                "interval",
                "--min-probability",
                "1.5",
            ]
        )
        assert code == 2
        assert "min_probability" in capsys.readouterr().err

    def test_interval_stats_and_metrics(self, mentions_csv, capsys, tmp_path):
        metrics_path = tmp_path / "interval.prom"
        code = main(
            [
                "topk",
                "--input",
                mentions_csv,
                "--field",
                "name",
                "--semantics",
                "interval",
                "--ngram-threshold",
                "0.3",
                "--stats",
                "--metrics-out",
                str(metrics_path),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "verification stats" in captured.err
        text = metrics_path.read_text()
        assert 'repro_queries_total{kind="interval"}' in text
        assert "repro_worlds_enumerated_total" in text
        assert "repro_interval_width" in text
