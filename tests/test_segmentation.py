"""Tests for the segmentation DP (Section 5.3.2)."""

import pytest

from repro.clustering.correlation import ScoreMatrix, group_score
from repro.embedding.greedy import LinearEmbedding
from repro.embedding.segmentation import (
    SegmentScoreTable,
    best_partition,
    candidate_thresholds,
    top_k_answers,
    top_r_segmentations,
)


def two_cluster_matrix() -> ScoreMatrix:
    """{0,1,2} vs {3,4}: positives within, negatives across."""
    m = ScoreMatrix(5)
    for i, j in [(0, 1), (0, 2), (1, 2), (3, 4)]:
        m.set(i, j, 2.0)
    for i in (0, 1, 2):
        for j in (3, 4):
            m.set(i, j, -1.0)
    return m


def identity_embedding(n: int) -> LinearEmbedding:
    return LinearEmbedding(order=list(range(n)), breaks={0})


class TestSegmentScoreTable:
    def test_matches_group_score(self):
        m = two_cluster_matrix()
        emb = identity_embedding(5)
        table = SegmentScoreTable(m, emb, max_span=5)
        for a in range(5):
            for b in range(a, 5):
                members = list(range(a, b + 1))
                assert table.score(a, b) == pytest.approx(
                    group_score(members, m)
                ), (a, b)

    def test_respects_embedding_order(self):
        m = ScoreMatrix(3)
        m.set(0, 2, 4.0)
        emb = LinearEmbedding(order=[0, 2, 1], breaks={0})
        table = SegmentScoreTable(m, emb, max_span=3)
        # Segment [0, 1] in embedding order is records {0, 2}.
        assert table.score(0, 1) == pytest.approx(group_score([0, 2], m))


class TestCandidateThresholds:
    def test_unit_weights(self):
        emb = identity_embedding(4)
        thresholds = candidate_thresholds(emb, [1.0] * 4, max_span=3)
        assert thresholds == [0.0, 1.0, 2.0, 3.0]

    def test_includes_zero(self):
        emb = identity_embedding(3)
        assert 0.0 in candidate_thresholds(emb, [5.0, 2.0, 1.0], max_span=2)

    def test_subsampling_keeps_extremes(self):
        emb = identity_embedding(30)
        weights = [float(i + 1) for i in range(30)]
        thresholds = candidate_thresholds(
            emb, weights, max_span=10, max_thresholds=8
        )
        assert len(thresholds) <= 8
        assert thresholds[0] == 0.0

    def test_break_limits_spans(self):
        emb = LinearEmbedding(order=[0, 1, 2, 3], breaks={0, 2})
        thresholds = candidate_thresholds(emb, [1.0] * 4, max_span=4)
        # Max segment length is 2 on either side of the break.
        assert max(thresholds) == 2.0

    def test_near_tie_weights_stay_distinct(self):
        # Regression: thresholds used to be deduplicated via round(w, 9),
        # merging weights closer than 1e-9; the DP's strict `weight > l`
        # test then had no representable threshold between the K-th and
        # (K+1)-th group and silently dropped the separation.
        emb = LinearEmbedding(order=[0, 1], breaks={0, 1})
        low, high = 1.0, 1.0 + 1e-10
        thresholds = candidate_thresholds(emb, [low, high], max_span=1)
        assert thresholds == [0.0, low, high]

    def test_subsample_keeps_kth_weight_boundary(self):
        # 61 distinct values force subsampling; with k given, the value
        # immediately below the K-th largest weight (the separating
        # threshold) must survive — the plain even-spaced subsample
        # drops it.
        emb = LinearEmbedding(
            order=list(range(60)), breaks=set(range(60))
        )
        weights = [float(i + 1) for i in range(60)]
        blind = candidate_thresholds(
            emb, weights, max_span=1, max_thresholds=32
        )
        assert 55.0 not in blind
        aware = candidate_thresholds(
            emb, weights, max_span=1, max_thresholds=32, k=5
        )
        assert len(aware) <= 32 + 6
        assert 56.0 in aware  # the K-th weight itself
        assert 55.0 in aware  # the achievable value just below it


class TestTopRSegmentations:
    def test_k1_finds_biggest_cluster(self):
        m = two_cluster_matrix()
        answers = top_r_segmentations(
            m, identity_embedding(5), [1.0] * 5, k=1, r=1, max_span=5
        )
        assert answers
        best = answers[0]
        big = [
            seg
            for seg, flag in zip(best.segments, best.big_flags)
            if flag
        ]
        assert big == [(0, 2)]

    def test_k2_finds_both_clusters(self):
        m = two_cluster_matrix()
        answers = top_r_segmentations(
            m, identity_embedding(5), [1.0] * 5, k=2, r=1, max_span=5
        )
        best = answers[0]
        big = sorted(
            seg for seg, flag in zip(best.segments, best.big_flags) if flag
        )
        assert big == [(0, 2), (3, 4)]

    def test_r_answers_distinct_and_sorted(self):
        m = two_cluster_matrix()
        answers = top_r_segmentations(
            m, identity_embedding(5), [1.0] * 5, k=1, r=4, max_span=5
        )
        assert len(answers) >= 2
        scores = [a.score for a in answers]
        assert scores == sorted(scores, reverse=True)
        keys = {(a.segments, a.big_flags) for a in answers}
        assert len(keys) == len(answers)

    def test_segments_cover_everything(self):
        m = two_cluster_matrix()
        for answer in top_r_segmentations(
            m, identity_embedding(5), [1.0] * 5, k=2, r=3, max_span=5
        ):
            covered = []
            for start, end in answer.segments:
                covered.extend(range(start, end + 1))
            assert sorted(covered) == list(range(5))

    def test_exactly_k_big_segments(self):
        m = two_cluster_matrix()
        for k in (1, 2):
            for answer in top_r_segmentations(
                m, identity_embedding(5), [1.0] * 5, k=k, r=3, max_span=5
            ):
                assert sum(answer.big_flags) == k

    def test_weighted_items(self):
        # Single positive pair (0,1) with heavy weights; item 2 light.
        m = ScoreMatrix(3)
        m.set(0, 1, 5.0)
        m.set(1, 2, -1.0)
        answers = top_r_segmentations(
            m, identity_embedding(3), [10.0, 10.0, 1.0], k=1, r=1, max_span=3
        )
        best = answers[0]
        big = [s for s, f in zip(best.segments, best.big_flags) if f]
        assert big == [(0, 1)]

    def test_break_respected(self):
        m = ScoreMatrix(4)
        m.set(0, 1, 1.0)
        m.set(2, 3, 1.0)
        emb = LinearEmbedding(order=[0, 1, 2, 3], breaks={0, 2})
        for answer in top_r_segmentations(
            m, emb, [1.0] * 4, k=2, r=2, max_span=4
        ):
            for start, end in answer.segments:
                assert not (start < 2 <= end), "segment crosses the break"

    def test_n_smaller_than_k(self):
        m = ScoreMatrix(1)
        assert (
            top_r_segmentations(m, identity_embedding(1), [1.0], k=2, r=1)
            == []
        )

    def test_invalid_args(self):
        m = ScoreMatrix(2)
        with pytest.raises(ValueError):
            top_r_segmentations(m, identity_embedding(2), [1.0, 1.0], k=0, r=1)
        with pytest.raises(ValueError):
            top_r_segmentations(m, identity_embedding(2), [1.0, 1.0], k=1, r=0)
        with pytest.raises(ValueError):
            top_r_segmentations(m, identity_embedding(2), [1.0], k=1, r=1)


class TestTopKAnswers:
    def test_groups_map_to_original_positions(self):
        m = ScoreMatrix(3)
        m.set(0, 2, 4.0)  # 0 and 2 are duplicates
        m.set(0, 1, -1.0)  # 1 is explicitly not a duplicate of either
        m.set(1, 2, -1.0)
        emb = LinearEmbedding(order=[0, 2, 1], breaks={0})
        answers = top_k_answers(m, emb, [1.0] * 3, k=1, r=1, max_span=3)
        assert answers[0].groups[0] == (0, 2)

    def test_weights_sorted_desc(self):
        m = two_cluster_matrix()
        answers = top_k_answers(
            m, identity_embedding(5), [1.0] * 5, k=2, r=1, max_span=5
        )
        weights = answers[0].weights
        assert list(weights) == sorted(weights, reverse=True)

    def test_merges_duplicate_answers(self):
        m = two_cluster_matrix()
        answers = top_k_answers(
            m, identity_embedding(5), [1.0] * 5, k=1, r=3, max_span=5
        )
        keys = [a.groups for a in answers]
        assert len(keys) == len(set(keys))


class TestBestPartition:
    def test_recovers_two_clusters(self):
        m = two_cluster_matrix()
        partition = best_partition(m, identity_embedding(5), max_span=5)
        assert sorted(tuple(sorted(g)) for g in partition) == [
            (0, 1, 2),
            (3, 4),
        ]

    def test_matches_exhaustive_on_contiguous_partitions(self):
        # Enumerate all segmentations of 4 items; DP must match the best.
        import itertools

        m = ScoreMatrix(4)
        m.set(0, 1, 1.0)
        m.set(1, 2, -2.0)
        m.set(2, 3, 3.0)
        emb = identity_embedding(4)

        def seg_score(cuts):
            bounds = [0] + list(cuts) + [4]
            total = 0.0
            for a, b in zip(bounds, bounds[1:]):
                total += group_score(list(range(a, b)), m)
            return total

        best_exhaustive = max(
            seg_score(c)
            for r in range(4)
            for c in itertools.combinations([1, 2, 3], r)
        )
        partition = best_partition(m, emb, max_span=4)
        got = sum(group_score(g, m) for g in partition)
        assert got == pytest.approx(best_exhaustive)

    def test_empty(self):
        assert best_partition(ScoreMatrix(0), identity_embedding(0)) == []
