"""Differential oracle: the K-exploiting queries vs exhaustive full dedup.

:func:`repro.baselines.full_dedup_pipeline` deduplicates *everything* —
every level's sufficient closure over all records, then (for the count
query) the final pairwise criterion P over the full canopy — with no
bound estimation and no pruning anywhere.  That makes it a slow but
trustworthy ground truth: whatever the pruned pipeline answers must be
derivable from, and consistent with, the oracle's group structure.

For every seed x dataset family this suite checks, per query type:

* ``topk_count_query`` — answer entities are *pure* (each is a subset of
  exactly one oracle P-cluster, so the pipeline never merges records the
  exhaustive pipeline keeps apart), disjoint, and mass-conserving (an
  entity's weight is exactly the sum of its members' record weights,
  never exceeding its oracle cluster).  The pruning phase must retain
  every oracle closure group of Top-K weight with *identical*
  membership — pruning may never split, shrink, or drop a true answer.
* ``topk_rank_query`` — retained groups are subsets of oracle closure
  groups; every closure group heavy enough for the Top-K appears with
  identical membership and weight; the reported Top-K ranking weights
  equal the oracle's Top-K closure weights exactly.
* ``thresholded_rank_query`` — every oracle closure group of weight >= T
  is retained with identical membership and weight; when the query
  reports ``certain``, its >= T answer set matches the oracle's exactly.

Each check also re-runs the query under a generous
:class:`~repro.core.resilience.ExecutionPolicy` (nothing should degrade
at test scale) and requires the guarded answer to be bit-identical to
the unguarded one — resilience plumbing must not perturb answers.
"""

import pytest

from repro.baselines import full_dedup_pipeline
from repro.core.parallel import fork_available, group_fingerprint
from repro.core.pruned_dedup import pruned_dedup
from repro.core.rank_query import thresholded_rank_query, topk_rank_query
from repro.core.resilience import ExecutionPolicy
from repro.core.topk import topk_count_query
from repro.experiments.harness import (
    address_pipeline,
    citation_pipeline,
    student_pipeline,
    train_scorer_for,
)
from tests.conftest import vectorize_mode

K = 5
N_RECORDS = 300
SEEDS = tuple(range(20))
DATASETS = ("citations", "students", "addresses")

#: Generous enough that no stage can plausibly hit it at test scale:
#: the policy arms all the guard plumbing without ever firing.
GENEROUS_POLICY = ExecutionPolicy(deadline_seconds=300.0)

# One pipeline (and one oracle run) per seed x family, shared by the
# three query-type tests — the fixtures dominate the suite's cost.
_pipelines: dict = {}
_closures: dict = {}


def pipeline_for(kind: str, seed: int):
    """Return (store, levels, scorer) for one seed of one family."""
    key = (kind, seed)
    if key not in _pipelines:
        if kind == "citations":
            p = citation_pipeline(
                n_records=N_RECORDS, seed=seed, with_scorer=True
            )
            scorer = p.scorer
        elif kind == "students":
            p = student_pipeline(n_records=N_RECORDS, seed=seed)
            scorer = train_scorer_for(p.dataset, "name", p.levels, seed=seed)
        else:
            p = address_pipeline(
                n_records=N_RECORDS, seed=seed, with_scorer=True
            )
            scorer = p.scorer
        _pipelines[key] = (p.store, p.levels, scorer)
    return _pipelines[key]


def closure_groups(kind: str, seed: int) -> dict[frozenset, float]:
    """Oracle sufficient-closure groups as {member-id-set: weight}."""
    key = (kind, seed)
    if key not in _closures:
        store, levels, _ = pipeline_for(kind, seed)
        outcome = full_dedup_pipeline(store, K, levels)
        _closures[key] = {
            frozenset(g.member_ids): g.weight for g in outcome.groups.groups
        }
    return _closures[key]


def kth_weight(closure: dict[frozenset, float]) -> float:
    weights = sorted(closure.values(), reverse=True)
    return weights[min(K, len(weights)) - 1]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("kind", DATASETS)
class TestTopKCountQuery:
    def test_matches_full_dedup_oracle(self, kind, seed):
        store, levels, scorer = pipeline_for(kind, seed)
        oracle = full_dedup_pipeline(store, K, levels, scorer)
        oracle_clusters = {
            frozenset(g.member_ids): g.weight for g in oracle.groups.groups
        }
        result = topk_count_query(store, K, levels, scorer)
        assert not result.degraded

        entities = [
            (frozenset(e.record_ids), e.weight) for e in result.best.entities
        ]
        assert entities, "count query returned no answer entities"
        seen: set[int] = set()
        for members, weight in entities:
            homes = [o for o in oracle_clusters if members <= o]
            assert len(homes) == 1, (
                f"answer entity straddles {len(homes)} oracle clusters"
            )
            assert weight <= oracle_clusters[homes[0]] + 1e-9
            assert weight == pytest.approx(
                sum(store[i].weight for i in members)
            )
            assert not (members & seen), "answer entities overlap"
            seen |= members

        # Pruning must have kept every closure group heavy enough for
        # the Top-K, bit-for-bit: same members, nothing split off.
        closure = closure_groups(kind, seed)
        bar = kth_weight(closure)
        retained = {
            frozenset(g.member_ids) for g in result.pruning.groups
        }
        for members, weight in closure.items():
            if weight >= bar:
                assert members in retained, (
                    f"pruning lost/split a weight-{weight} oracle group "
                    f"(Top-K bar {bar})"
                )

    def test_policy_run_identical(self, kind, seed):
        store, levels, scorer = pipeline_for(kind, seed)
        plain = topk_count_query(store, K, levels, scorer)
        guarded = topk_count_query(
            store, K, levels, scorer, policy=GENEROUS_POLICY
        )
        assert not guarded.degraded
        assert [
            [(e.record_ids, e.weight) for e in a.entities]
            for a in guarded.answers
        ] == [
            [(e.record_ids, e.weight) for e in a.entities]
            for a in plain.answers
        ]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("kind", DATASETS)
class TestTopKRankQuery:
    def test_matches_full_dedup_oracle(self, kind, seed):
        store, levels, _ = pipeline_for(kind, seed)
        closure = closure_groups(kind, seed)
        result = topk_rank_query(store, K, levels)
        assert not result.degraded

        retained = {
            frozenset(g.member_ids): g.weight for g in result.groups.groups
        }
        for members in retained:
            assert any(members <= o for o in closure), (
                "rank query fabricated a group no oracle closure contains"
            )
        bar = kth_weight(closure)
        for members, weight in closure.items():
            if weight >= bar:
                assert retained.get(members) == weight

        weights = [entry.weight for entry in result.ranking]
        assert weights == sorted(weights, reverse=True)
        oracle_topk = sorted(closure.values(), reverse=True)[:K]
        assert weights[: len(oracle_topk)] == oracle_topk

    def test_policy_run_identical(self, kind, seed):
        store, levels, _ = pipeline_for(kind, seed)
        plain = topk_rank_query(store, K, levels)
        guarded = topk_rank_query(store, K, levels, policy=GENEROUS_POLICY)
        assert not guarded.degraded
        assert guarded.ranking == plain.ranking
        assert [g.member_ids for g in guarded.groups.groups] == [
            g.member_ids for g in plain.groups.groups
        ]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("kind", DATASETS)
class TestThresholdedRankQuery:
    def threshold(self, kind, seed) -> float:
        return kth_weight(closure_groups(kind, seed))

    def test_matches_full_dedup_oracle(self, kind, seed):
        store, levels, _ = pipeline_for(kind, seed)
        closure = closure_groups(kind, seed)
        threshold = self.threshold(kind, seed)
        result = thresholded_rank_query(store, threshold, levels)
        assert not result.degraded

        retained = {
            frozenset(g.member_ids): g.weight for g in result.groups.groups
        }
        for members in retained:
            assert any(members <= o for o in closure)
        oracle_answer = {
            members for members, weight in closure.items()
            if weight >= threshold
        }
        for members in oracle_answer:
            assert retained.get(members) == closure[members]
        if result.certain:
            got_answer = {
                members
                for members, weight in retained.items()
                if weight >= threshold
            }
            assert got_answer == oracle_answer

    def test_policy_run_identical(self, kind, seed):
        store, levels, _ = pipeline_for(kind, seed)
        threshold = self.threshold(kind, seed)
        plain = thresholded_rank_query(store, threshold, levels)
        guarded = thresholded_rank_query(
            store, threshold, levels, policy=GENEROUS_POLICY
        )
        assert not guarded.degraded
        assert guarded.ranking == plain.ranking
        assert guarded.certain == plain.certain


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("kind", DATASETS)
class TestVectorizedPathIdentity:
    """Scalar vs vectorized vs vectorized+sharded: bit-identical answers.

    The vectorized batch hot path (``REPRO_VECTORIZE``) and the
    shared-memory shard transport are pure execution strategies — every
    seeded dataset must produce byte-for-byte the same groups and
    weights whichever path runs, at every worker count.
    """

    def test_scalar_vectorized_sharded_identical(self, kind, seed):
        store, levels, _ = pipeline_for(kind, seed)
        with vectorize_mode(False):
            scalar = pruned_dedup(store, K, levels, workers=1)
        baseline = group_fingerprint(scalar.groups)
        worker_counts = (1, 2, 4) if fork_available() else (1,)
        with vectorize_mode(True):
            for workers in worker_counts:
                result = pruned_dedup(store, K, levels, workers=workers)
                assert group_fingerprint(result.groups) == baseline, (
                    kind, seed, workers,
                )
                assert result.groups.weights() == scalar.groups.weights()
                assert result.counters.shards_degraded == 0

    def test_count_query_identical(self, kind, seed):
        store, levels, scorer = pipeline_for(kind, seed)
        with vectorize_mode(False):
            scalar = topk_count_query(store, K, levels, scorer)
        with vectorize_mode(True):
            vectorized = topk_count_query(store, K, levels, scorer)
        assert [
            [(e.record_ids, e.weight) for e in a.entities]
            for a in vectorized.answers
        ] == [
            [(e.record_ids, e.weight) for e in a.entities]
            for a in scalar.answers
        ]
