"""Tests for the experiment drivers (small scales)."""

import pytest

from repro.experiments import (
    accuracy_shape_checks,
    citation_pipeline,
    cpn_vs_naive_checks,
    format_table,
    prune_iteration_checks,
    rank_query_checks,
    run_cpn_vs_naive,
    run_prune_iterations_ablation,
    run_pruning_table,
    run_rank_query_ablation,
    run_timing_comparison,
    shape_checks,
    student_pipeline,
    table1,
    timing_shape_checks,
)
from repro.experiments.accuracy import figure7_cases, run_accuracy_case


@pytest.fixture(scope="module")
def citation():
    return citation_pipeline(n_records=1200, with_scorer=True)


@pytest.fixture(scope="module")
def students():
    return student_pipeline(n_records=1200)


class TestPruningTables:
    def test_rows_per_level(self, citation):
        rows = run_pruning_table(citation, k_values=(1, 10))
        # Two levels per K.
        assert len(rows) in (3, 4)  # early termination may skip level 2
        assert {r["K"] for r in rows} == {1, 10}

    def test_shape_checks_pass(self, citation):
        rows = run_pruning_table(citation, k_values=(1, 10, 50))
        checks = shape_checks(rows)
        assert checks["small_k_prunes_hard"]
        assert checks["bound_shrinks_with_k"]

    def test_k_beyond_data_skipped(self, students):
        rows = run_pruning_table(students, k_values=(1, 10**9))
        assert {r["K"] for r in rows} == {1}


class TestTiming:
    def test_rows_and_checks(self, citation):
        rows = run_timing_comparison(citation, k_values=(1,), include_none=False)
        methods = {r["method"] for r in rows}
        assert methods == {"canopy", "canopy+collapse", "pruned-dedup"}
        checks = timing_shape_checks(rows)
        assert "pruned_beats_canopy_collapse" in checks

    def test_requires_scorer(self, students):
        with pytest.raises(ValueError):
            run_timing_comparison(students, k_values=(1,))


class TestAccuracy:
    def test_single_case_metrics(self):
        case = figure7_cases(scale=0.08)[2]  # Address, smallest
        row = run_accuracy_case(case)
        assert 0.0 <= float(row["seg_f1"]) <= 100.0
        assert 0.0 <= float(row["transitive_f1"]) <= 100.0
        assert int(row["lp_groups"]) <= int(row["records"])

    def test_table1_projection(self):
        rows = [
            {
                "dataset": "X",
                "records": 10,
                "lp_groups": 7,
                "lp_integral": True,
                "seg_f1": 99.0,
                "transitive_f1": 95.0,
            }
        ]
        t = table1(rows)
        assert t[0]["# Records"] == 10
        assert t[0]["# Groups in LP"] == 7

    def test_shape_checks(self):
        rows = [
            {"seg_f1": 99.5, "transitive_f1": 95.0, "seg_score": 10.0,
             "lp_score": 10.0},
            {"seg_f1": 100.0, "transitive_f1": 100.0, "seg_score": 5.0,
             "lp_score": 4.0},
        ]
        checks = accuracy_shape_checks(rows)
        assert checks["segmentation_high_f1"]
        assert checks["segmentation_ge_transitive"]
        assert checks["segmentation_score_ge_lp"]


class TestAblations:
    def test_prune_iterations(self, students):
        rows = run_prune_iterations_ablation(students, k_values=(1, 10))
        checks = prune_iteration_checks(rows)
        assert checks["second_pass_tightens"]

    def test_cpn_vs_naive(self, citation):
        rows = run_cpn_vs_naive(citation, k_values=(1, 5))
        checks = cpn_vs_naive_checks(rows)
        assert checks["m_no_later"]
        assert checks["bound_no_smaller"]

    def test_rank_query(self, students):
        rows = run_rank_query_ablation(students, k_values=(1, 10))
        checks = rank_query_checks(rows)
        assert checks["rank_no_bigger"]


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 100, "b": 0.25}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "100" in lines[-1]
        assert "0.25" in lines[-1]

    def test_empty(self):
        assert "(no rows)" in format_table([], title="T")

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestScaling:
    def test_sweep_rows(self):
        from repro.experiments import run_scaling_sweep, scaling_checks

        rows = run_scaling_sweep("students", sizes=(400, 800), k=5)
        assert [r["n_records"] for r in rows] == [400, 800]
        assert all(float(r["seconds"]) >= 0 for r in rows)
        checks = scaling_checks(rows)
        assert set(checks) == {
            "retained_fraction_not_growing",
            "subquadratic_runtime",
        }

    def test_unknown_dataset(self):
        import pytest as _pytest

        from repro.experiments import run_scaling_sweep

        with _pytest.raises(ValueError):
            run_scaling_sweep("bogus")


class TestFidelity:
    def test_sweep_shape(self):
        from repro.experiments import fidelity_checks, run_fidelity_sweep

        row = run_fidelity_sweep(n_instances=8, n_items=6, k=1, r=2)
        assert row["instances"] > 0
        assert 0.0 <= float(row["top1_match_pct"]) <= 100.0
        checks = fidelity_checks(row)
        assert set(checks) == {
            "mostly_exact_top1",
            "almost_always_exact_top3",
            "score_close",
        }
