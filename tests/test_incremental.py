"""Tests for the incremental Top-K engine over evolving sources."""

import pytest

from repro.core.incremental import IncrementalTopK
from repro.core.pruned_dedup import pruned_dedup
from repro.datasets import author_idf, generate_citations, suggest_min_idf
from repro.predicates import citation_levels
from repro.predicates.base import PredicateLevel
from tests.conftest import exact_name_predicate, make_store, shared_word_predicate


def one_level() -> list[PredicateLevel]:
    return [PredicateLevel(exact_name_predicate(), shared_word_predicate())]


class TestIncrementalBasics:
    def test_insert_and_length(self):
        engine = IncrementalTopK(one_level())
        engine.add({"name": "ann"})
        engine.add({"name": "bob"})
        assert len(engine) == 2
        assert engine.version == 2

    def test_collapse_maintained(self):
        engine = IncrementalTopK(one_level())
        for name in ["a", "b", "a", "a", "b"]:
            engine.add({"name": name})
        groups = engine.collapsed_groups()
        assert len(groups) == 2
        assert groups.weights() == [3.0, 2.0]

    def test_weights_accumulate(self):
        engine = IncrementalTopK(one_level())
        engine.add({"name": "a"}, weight=2.0)
        engine.add({"name": "a"}, weight=5.0)
        assert engine.collapsed_groups().weights() == [7.0]

    def test_query_result_shape(self):
        engine = IncrementalTopK(one_level())
        for name in ["a"] * 4 + ["b"] * 2 + ["c"]:
            engine.add({"name": name})
        result = engine.query(2)
        assert len(result.groups) == 2
        assert result.terminated_early

    def test_query_cache_invalidated_by_insert(self):
        engine = IncrementalTopK(one_level())
        for name in ["a"] * 3 + ["b"]:
            engine.add({"name": name})
        first = engine.query(1)
        assert first.groups.weights() == [3.0]
        for _ in range(5):
            engine.add({"name": "b"})
        second = engine.query(1)
        assert second.groups.weights() == [6.0]

    def test_query_cached_when_unchanged(self):
        engine = IncrementalTopK(one_level())
        engine.add({"name": "a"})
        assert engine.query(1) is engine.query(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            IncrementalTopK([])
        engine = IncrementalTopK(one_level())
        engine.add({"name": "a"})
        with pytest.raises(ValueError):
            engine.query(0)


class TestIncrementalMatchesBatch:
    def test_matches_batch_on_simple_stream(self):
        names = ["ann smith"] * 5 + ["bob jones"] * 3 + ["cara lee"] * 2
        engine = IncrementalTopK(one_level())
        for name in names:
            engine.add({"name": name})
        incremental = engine.query(2)

        store = make_store(names)
        batch = pruned_dedup(store, 2, one_level())
        assert incremental.groups.weights() == batch.groups.weights()

    def test_matches_batch_on_citations(self):
        ds = generate_citations(n_records=600, seed=4)
        idf = author_idf(ds.store)
        levels = citation_levels(idf, suggest_min_idf(idf))

        engine = IncrementalTopK(levels)
        engine.add_store(ds.store)
        incremental = engine.query(5)
        batch = pruned_dedup(ds.store, 5, levels)
        assert sorted(incremental.groups.weights(), reverse=True) == sorted(
            batch.groups.weights(), reverse=True
        )

    def test_interleaved_inserts_and_queries(self):
        engine = IncrementalTopK(one_level())
        tops = []
        for batch_names in (["a"] * 3, ["b"] * 5, ["a"] * 4):
            for name in batch_names:
                engine.add({"name": name})
            result = engine.query(1)
            top = result.groups[0]
            tops.append(
                (engine.current_store()[top.representative_id]["name"],
                 top.weight)
            )
        assert tops == [("a", 3.0), ("b", 5.0), ("a", 7.0)]
