"""Tests for the exact Top-K answer oracle and the segmentation DP's
fidelity to it (the abstract's "closely matches the accuracy of an exact
exponential time algorithm" claim, at unit scale)."""

import numpy as np
import pytest

from repro.clustering.correlation import ScoreMatrix
from repro.clustering.exact import exact_topk_answers
from repro.embedding.greedy import greedy_embedding
from repro.embedding.segmentation import top_k_answers


def two_cluster_matrix() -> ScoreMatrix:
    m = ScoreMatrix(5)
    for i, j in [(0, 1), (0, 2), (1, 2), (3, 4)]:
        m.set(i, j, 2.0)
    for i in (0, 1, 2):
        for j in (3, 4):
            m.set(i, j, -1.0)
    return m


def random_matrix(n: int, seed: int) -> ScoreMatrix:
    rng = np.random.default_rng(seed)
    m = ScoreMatrix(n)
    for i in range(n):
        for j in range(i + 1, n):
            m.set(i, j, float(rng.normal()))
    return m


class TestExactTopKAnswers:
    def test_clear_instance_top_answer(self):
        answers = exact_topk_answers(
            two_cluster_matrix(), [1.0] * 5, k=1, r=3
        )
        groups, best, log_mass = answers[0]
        assert groups == ((0, 1, 2),)
        assert log_mass >= best  # mass aggregates over >= 1 supporters

    def test_k2(self):
        answers = exact_topk_answers(
            two_cluster_matrix(), [1.0] * 5, k=2, r=1
        )
        assert answers[0][0] == ((0, 1, 2), (3, 4))

    def test_sorted_by_best_score(self):
        answers = exact_topk_answers(random_matrix(5, 1), [1.0] * 5, k=1, r=6)
        scores = [best for _, best, _ in answers]
        assert scores == sorted(scores, reverse=True)

    def test_weighted_ranking(self):
        # Item 2 alone outweighs {0, 1} merged.
        m = ScoreMatrix(3)
        m.set(0, 1, 5.0)
        m.set(0, 2, -1.0)
        answers = exact_topk_answers(m, [1.0, 1.0, 10.0], k=1, r=1)
        assert answers[0][0] == ((2,),)

    def test_tie_partitions_skipped(self):
        # Two singletons of equal weight cannot form a valid Top-1.
        m = ScoreMatrix(2)
        m.set(0, 1, -1.0)
        answers = exact_topk_answers(m, [1.0, 1.0], k=1, r=5)
        # Only the merged partition yields an unambiguous Top-1.
        assert all(groups == ((0, 1),) for groups, _, _ in answers)

    def test_validation(self):
        m = ScoreMatrix(2)
        with pytest.raises(ValueError):
            exact_topk_answers(m, [1.0], k=1, r=1)
        with pytest.raises(ValueError):
            exact_topk_answers(m, [1.0, 1.0], k=0, r=1)
        with pytest.raises(ValueError):
            exact_topk_answers(m, [1.0, 1.0], k=1, r=0)


class TestSegmentationMatchesExact:
    """The DP's best answer must match the exhaustive oracle whenever the
    embedding keeps the optimum's groups contiguous — verified across
    random fully-scored instances."""

    @pytest.mark.parametrize("seed", range(8))
    def test_top1_answer_matches_exact(self, seed):
        n = 6
        m = random_matrix(n, seed)
        weights = [1.0] * n
        exact = exact_topk_answers(m, weights, k=1, r=1)
        embedding = greedy_embedding(m)
        dp = top_k_answers(m, embedding, weights, k=1, r=1, max_span=n)
        assert dp, f"seed {seed}: DP returned nothing"
        # The DP optimizes over segmentations only, so its supporting
        # score can never exceed the exhaustive optimum; when the answer
        # groups agree it may still be lower (the non-answer records'
        # best arrangement need not be contiguous).
        assert dp[0].score <= exact[0][1] + 1e-9

    @pytest.mark.parametrize("seed", range(8))
    def test_top1_score_close_to_exact(self, seed):
        # Headline fidelity: the DP's best supporting score reaches at
        # least 95% of the exact optimum's *positive margin* over the
        # all-singletons baseline on these instances.
        n = 6
        m = random_matrix(n, seed + 100)
        weights = [1.0] * n
        exact = exact_topk_answers(m, weights, k=1, r=1)
        embedding = greedy_embedding(m)
        dp = top_k_answers(m, embedding, weights, k=1, r=3, max_span=n)
        assert dp[0].score >= exact[0][1] - abs(exact[0][1]) * 0.1 - 1e-9

    def test_r_answers_subset_of_exact_ranking(self):
        m = two_cluster_matrix()
        weights = [1.0] * 5
        exact = exact_topk_answers(m, weights, k=1, r=100)
        exact_answers = {groups for groups, _, _ in exact}
        embedding = greedy_embedding(m)
        dp = top_k_answers(m, embedding, weights, k=1, r=4, max_span=5)
        for answer in dp:
            assert answer.groups in exact_answers
