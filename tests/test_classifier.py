"""Unit tests for the from-scratch logistic regression."""

import numpy as np
import pytest

from repro.scoring.classifier import LogisticRegression


def separable_data(n: int = 200, seed: int = 0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    y = (x[:, 0] + 0.5 * x[:, 1] > 0).astype(float)
    return x, y


class TestLogisticRegression:
    def test_fits_separable_data(self):
        x, y = separable_data()
        clf = LogisticRegression(l2=0.1).fit(x, y)
        accuracy = (clf.predict(x) == y).mean()
        assert accuracy > 0.95

    def test_probabilities_in_range(self):
        x, y = separable_data()
        clf = LogisticRegression().fit(x, y)
        probs = clf.predict_proba(x)
        assert np.all(probs >= 0) and np.all(probs <= 1)

    def test_decision_sign_matches_prediction(self):
        x, y = separable_data()
        clf = LogisticRegression().fit(x, y)
        scores = clf.decision_function(x)
        assert np.array_equal(clf.predict(x), (scores > 0).astype(int))

    def test_score_pair_single_vector(self):
        x, y = separable_data()
        clf = LogisticRegression().fit(x, y)
        score = clf.score_pair(np.array([5.0, 5.0]))
        assert score > 0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().decision_function(np.zeros((1, 2)))

    def test_label_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((2, 1)), np.array([0.5, 1.0]))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((3, 1)), np.zeros(2))

    def test_l2_shrinks_weights(self):
        x, y = separable_data()
        loose = LogisticRegression(l2=0.01).fit(x, y)
        tight = LogisticRegression(l2=100.0).fit(x, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_constant_labels_handled(self):
        x = np.random.default_rng(1).normal(size=(20, 2))
        clf = LogisticRegression().fit(x, np.ones(20))
        assert (clf.predict_proba(x) > 0.5).all()

    def test_converges_quickly_on_easy_data(self):
        x, y = separable_data()
        clf = LogisticRegression(l2=1.0).fit(x, y)
        assert clf.n_iter_ < 30

    def test_negative_l2_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression(l2=-1.0)
