"""Tests for the durable stream state layer (checkpoint + WAL + recovery)."""

import json
import random
import struct

import pytest

from repro.core.incremental import IncrementalTopK
from repro.core.persistence import (
    CheckpointError,
    DurabilityPolicy,
    DurableStateStore,
    PersistenceError,
    StateAuditError,
    WalCorruptionError,
    has_state,
    wal_entry_spans,
)
from repro.predicates.base import FunctionPredicate, PredicateLevel
from repro.testing.crashpoints import stream_fingerprint
from tests.conftest import exact_name_predicate, shared_word_predicate


def poison_keys(record):
    if record["name"] == "poison":
        raise ValueError("poisoned keying")
    return [record["name"]]


def make_levels():
    """Deterministic level whose keying raises for name == 'poison'."""
    sufficient = FunctionPredicate(
        evaluate_fn=lambda a, b: a["name"] == b["name"],
        keys_fn=poison_keys,
        name="exact-name-poisonable",
        key_implies_match=True,
    )
    return [PredicateLevel(sufficient, shared_word_predicate())]


def plain_levels():
    return [PredicateLevel(exact_name_predicate(), shared_word_predicate())]


def policy_for(tmp_path, **kwargs):
    kwargs.setdefault("fsync", False)
    return DurabilityPolicy(state_dir=tmp_path / "state", **kwargs)


def feed(engine, names, weight=1.0):
    for name in names:
        engine.add({"name": name}, weight)


class TestDurabilityPolicy:
    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            DurabilityPolicy(tmp_path, segment_bytes=0)
        with pytest.raises(ValueError):
            DurabilityPolicy(tmp_path, keep_checkpoints=0)

    def test_path_coercion(self, tmp_path):
        policy = DurabilityPolicy(str(tmp_path / "s"))
        assert policy.path == tmp_path / "s"

    def test_has_state(self, tmp_path):
        assert not has_state(tmp_path / "nope")
        engine = IncrementalTopK(plain_levels(), durability=policy_for(tmp_path))
        assert not has_state(tmp_path / "state")
        engine.add({"name": "a"})
        assert has_state(tmp_path / "state")
        engine.close()

    def test_fresh_dir_refuses_existing_state(self, tmp_path):
        engine = IncrementalTopK(plain_levels(), durability=policy_for(tmp_path))
        engine.add({"name": "a"})
        engine.close()
        with pytest.raises(PersistenceError, match="already holds"):
            IncrementalTopK(plain_levels(), durability=policy_for(tmp_path))

    def test_no_durability_writes_nothing(self, tmp_path):
        engine = IncrementalTopK(plain_levels())
        feed(engine, ["a", "b", "a"])
        assert not engine.durable
        assert list(tmp_path.iterdir()) == []
        with pytest.raises(PersistenceError):
            engine.checkpoint()


class TestWalRoundTrip:
    def test_wal_only_restore(self, tmp_path):
        engine = IncrementalTopK(plain_levels(), durability=policy_for(tmp_path))
        feed(engine, ["ann smith", "bob jones", "ann smith", "cara lee"], 2.0)
        engine.close()
        restored = IncrementalTopK.restore(tmp_path / "state", plain_levels())
        assert stream_fingerprint(restored) == stream_fingerprint(engine)
        assert restored.last_recovery.checkpoint_path is None
        assert restored.last_recovery.entries_replayed == 4
        assert restored.last_recovery.torn_tail_bytes == 0
        restored.close()

    def test_segment_rotation(self, tmp_path):
        policy = policy_for(tmp_path, segment_bytes=128)
        engine = IncrementalTopK(plain_levels(), durability=policy)
        feed(engine, [f"name-{i}" for i in range(20)])
        engine.close()
        segments = wal_entry_spans(tmp_path / "state")
        assert len(segments) > 1
        # Global numbering is contiguous across segments.
        expected = 0
        for _path, first_index, spans in segments:
            assert first_index == expected
            expected += len(spans)
        assert expected == 20
        restored = IncrementalTopK.restore(tmp_path / "state", plain_levels())
        assert len(restored) == 20
        restored.close()

    def test_restore_continues_journaling(self, tmp_path):
        engine = IncrementalTopK(plain_levels(), durability=policy_for(tmp_path))
        feed(engine, ["a", "b"])
        engine.close()
        restored = IncrementalTopK.restore(tmp_path / "state", plain_levels())
        feed(restored, ["a", "c"])
        restored.close()
        again = IncrementalTopK.restore(tmp_path / "state", plain_levels())
        assert stream_fingerprint(again) == stream_fingerprint(restored)
        assert len(again) == 4
        again.close()

    def test_restore_empty_dir_raises(self, tmp_path):
        (tmp_path / "state").mkdir()
        with pytest.raises(PersistenceError, match="no stream state"):
            IncrementalTopK.restore(tmp_path / "state", plain_levels())

    def test_weights_survive_exactly(self, tmp_path):
        engine = IncrementalTopK(plain_levels(), durability=policy_for(tmp_path))
        weights = [0.1, 2.5, 1e-3, 123456.789, 7.0]
        for i, w in enumerate(weights):
            engine.add({"name": f"n{i % 2}"}, w)
        engine.close()
        restored = IncrementalTopK.restore(tmp_path / "state", plain_levels())
        assert [r.weight for r in restored.current_store()] == weights
        restored.close()


class TestTornAndCorrupt:
    def _write_three(self, tmp_path):
        engine = IncrementalTopK(plain_levels(), durability=policy_for(tmp_path))
        feed(engine, ["a", "b", "c"])
        engine.close()
        [(path, _first, spans)] = wal_entry_spans(tmp_path / "state")
        return path, spans

    def test_torn_tail_is_absorbed(self, tmp_path):
        path, spans = self._write_three(tmp_path)
        with open(path, "r+b") as handle:
            handle.truncate(spans[-1][1] - 1)
        restored = IncrementalTopK.restore(tmp_path / "state", plain_levels())
        assert len(restored) == 2
        assert restored.last_recovery.torn_tail_bytes > 0
        # The torn tail is physically truncated so journaling resumes
        # from a clean boundary.
        restored.add({"name": "c"})
        restored.close()
        again = IncrementalTopK.restore(tmp_path / "state", plain_levels())
        assert len(again) == 3
        again.close()

    def test_corrupt_trailing_entry_is_absorbed(self, tmp_path):
        path, spans = self._write_three(tmp_path)
        start, end = spans[-1]
        data = bytearray(path.read_bytes())
        data[end - 2] ^= 0xFF  # flip a payload byte; length still intact
        path.write_bytes(data)
        restored = IncrementalTopK.restore(tmp_path / "state", plain_levels())
        assert len(restored) == 2
        restored.close()

    def test_mid_log_corruption_raises(self, tmp_path):
        path, spans = self._write_three(tmp_path)
        start, end = spans[0]
        data = bytearray(path.read_bytes())
        data[end - 2] ^= 0xFF  # corrupt the FIRST entry; two intact follow
        path.write_bytes(data)
        with pytest.raises(WalCorruptionError, match="mid-log"):
            IncrementalTopK.restore(tmp_path / "state", plain_levels())

    def test_corruption_in_non_final_segment_raises(self, tmp_path):
        policy = policy_for(tmp_path, segment_bytes=64)
        engine = IncrementalTopK(plain_levels(), durability=policy)
        feed(engine, [f"name-{i}" for i in range(10)])
        engine.close()
        segments = wal_entry_spans(tmp_path / "state")
        assert len(segments) > 2
        first_path = segments[0][0]
        with open(first_path, "r+b") as handle:
            handle.truncate(segments[0][2][-1][1] - 1)
        with pytest.raises(WalCorruptionError):
            IncrementalTopK.restore(tmp_path / "state", plain_levels())

    def test_missing_segment_raises(self, tmp_path):
        policy = policy_for(tmp_path, segment_bytes=64)
        engine = IncrementalTopK(plain_levels(), durability=policy)
        feed(engine, [f"name-{i}" for i in range(10)])
        engine.close()
        segments = wal_entry_spans(tmp_path / "state")
        segments[1][0].unlink()
        with pytest.raises(WalCorruptionError, match="gap"):
            IncrementalTopK.restore(tmp_path / "state", plain_levels())

    def test_garbage_length_field_in_tail_is_torn(self, tmp_path):
        path, spans = self._write_three(tmp_path)
        data = path.read_bytes()
        garbage = struct.pack(">II", 0x7FFFFFFF, 0) + b"xx"
        path.write_bytes(data + garbage)
        restored = IncrementalTopK.restore(tmp_path / "state", plain_levels())
        assert len(restored) == 3
        restored.close()


class TestCheckpoint:
    def test_checkpoint_restores_without_wal(self, tmp_path):
        engine = IncrementalTopK(plain_levels(), durability=policy_for(tmp_path))
        feed(engine, ["ann smith", "ann smith", "bob jones"], 3.0)
        engine.checkpoint()
        engine.close()
        state = tmp_path / "state"
        # The single retained checkpoint subsumes the whole WAL.
        assert not any(p.name.startswith("wal-") for p in state.iterdir())
        restored = IncrementalTopK.restore(state, plain_levels())
        assert stream_fingerprint(restored) == stream_fingerprint(engine)
        assert restored.last_recovery.checkpoint_entries == 3
        assert restored.last_recovery.entries_replayed == 0
        restored.close()

    def test_checkpoint_plus_tail_replay(self, tmp_path):
        engine = IncrementalTopK(plain_levels(), durability=policy_for(tmp_path))
        feed(engine, ["a"] * 5)
        engine.checkpoint()
        feed(engine, ["b"] * 3)
        engine.close()
        restored = IncrementalTopK.restore(tmp_path / "state", plain_levels())
        assert stream_fingerprint(restored) == stream_fingerprint(engine)
        assert restored.last_recovery.checkpoint_entries == 5
        assert restored.last_recovery.entries_replayed == 3
        restored.close()

    def test_corrupt_newest_checkpoint_falls_back(self, tmp_path):
        engine = IncrementalTopK(
            plain_levels(), durability=policy_for(tmp_path, keep_checkpoints=2)
        )
        feed(engine, ["a"] * 4)
        engine.checkpoint()
        feed(engine, ["b"] * 4)
        engine.checkpoint()
        engine.close()
        state = tmp_path / "state"
        checkpoints = sorted(state.glob("checkpoint-*.ckpt"))
        assert len(checkpoints) == 2
        newest = checkpoints[-1]
        data = bytearray(newest.read_bytes())
        data[len(data) // 2] ^= 0xFF
        newest.write_bytes(data)
        restored = IncrementalTopK.restore(state, plain_levels())
        # Fell back to the older checkpoint, then replayed the WAL tail
        # that was retained exactly for this case.
        assert restored.last_recovery.corrupt_checkpoints_skipped == 1
        assert restored.last_recovery.checkpoint_entries == 4
        assert stream_fingerprint(restored) == stream_fingerprint(engine)
        restored.close()

    def test_checkpoint_retention(self, tmp_path):
        engine = IncrementalTopK(
            plain_levels(), durability=policy_for(tmp_path, keep_checkpoints=2)
        )
        for round_number in range(4):
            feed(engine, [f"name-{round_number}"] * 2)
            engine.checkpoint()
        engine.close()
        checkpoints = sorted((tmp_path / "state").glob("checkpoint-*.ckpt"))
        assert len(checkpoints) == 2

    def test_bad_magic_rejected(self, tmp_path):
        engine = IncrementalTopK(plain_levels(), durability=policy_for(tmp_path))
        feed(engine, ["a"])
        path = engine.checkpoint()
        engine.close()
        header, _sections = DurableStateStore.read_checkpoint(path)
        assert header["magic"] == "repro-checkpoint"
        # Rewrite with a bogus magic: structurally valid frames, wrong format.
        blob = json.dumps({"magic": "not-a-checkpoint"}).encode()
        frame = struct.pack(">II", len(blob), __import__("zlib").crc32(blob)) + blob
        path.write_bytes(frame)
        with pytest.raises(CheckpointError):
            DurableStateStore.read_checkpoint(path)

    def test_checkpoint_frames_above_wal_entry_cap_stay_readable(
        self, tmp_path
    ):
        # Regression: checkpoint sections hold the whole record store
        # and legitimately clear the WAL's 32 MiB per-insert bound
        # (~400k records inline).  Reading them back through that bound
        # made every large checkpoint unreadable the moment after it
        # was written — restores silently fell back to full WAL replay.
        from repro.core.persistence import MAX_ENTRY_BYTES

        store = DurableStateStore(policy_for(tmp_path))
        store.directory.mkdir(parents=True, exist_ok=True)
        filler = "x" * 1024
        rows = [[filler, 1.0]] * (MAX_ENTRY_BYTES // 1024 + 64)
        path = store.write_checkpoint(
            {"entries_applied": 7, "version": 7}, {"records": rows}
        )
        assert path.stat().st_size > MAX_ENTRY_BYTES
        header, sections = DurableStateStore.read_checkpoint(path)
        assert header["entries_applied"] == 7
        assert sections["records"] == rows
        assert store.checkpoint_usable(path)
        loaded = store.load_latest_checkpoint()
        assert loaded is not None and loaded[2] == path

    def test_tampered_group_weights_fail_restore(self, tmp_path):
        engine = IncrementalTopK(plain_levels(), durability=policy_for(tmp_path))
        feed(engine, ["a", "a", "b"], 2.0)
        path = engine.checkpoint()
        engine.close()
        header, sections = DurableStateStore.read_checkpoint(path)
        sections["groups"] = [[root, weight + 1.0] for root, weight in sections["groups"]]
        store = DurableStateStore(policy_for(tmp_path))
        path.unlink()
        store.write_checkpoint(
            {k: v for k, v in header.items() if k not in ("magic", "format_version", "sections")},
            sections,
        )
        with pytest.raises(StateAuditError, match="group weights"):
            IncrementalTopK.restore(tmp_path / "state", plain_levels())


class TestPruneRetention:
    """Regression: prune must never count corrupt checkpoints toward
    retention — doing so deleted the older *valid* checkpoint plus the
    WAL segments needed to replay forward from it, turning a
    recoverable directory into an unrecoverable one."""

    def _grow_state(self, tmp_path, *, store="memory", rounds=3):
        engine = IncrementalTopK(
            plain_levels(),
            durability=policy_for(tmp_path, keep_checkpoints=2),
            store=store,
        )
        for round_number in range(rounds):
            feed(engine, [f"name-{round_number} shared"] * 10)
            engine.checkpoint(prune=False)
        fingerprint = stream_fingerprint(engine)
        engine.close()
        return tmp_path / "state", fingerprint

    @staticmethod
    def _pruned_store(state):
        store = DurableStateStore(policy_for(state.parent, keep_checkpoints=2))
        log = store.recover_log()
        store.resume_appends(log, log.end_index)
        store.prune()
        store.close()

    @pytest.mark.parametrize("store_kind", ["memory", "columnar"])
    def test_corrupt_checkpoints_do_not_occupy_retention_slots(
        self, tmp_path, store_kind
    ):
        state, fingerprint = self._grow_state(tmp_path, store=store_kind)
        checkpoints = sorted(state.glob("checkpoint-*.ckpt"))
        assert len(checkpoints) == 3
        for path in checkpoints[1:]:  # entries 20 and 30 — the newest two
            path.write_bytes(b"\x00" * 64)
        self._pruned_store(state)
        # The only valid checkpoint (entries=10) survived, with the WAL
        # tail needed to replay entries 10..30 behind it.
        survivors = sorted(state.glob("checkpoint-*.ckpt"))
        assert survivors == [checkpoints[0]]
        assert any(p.name.startswith("wal-") for p in state.iterdir())
        restored = IncrementalTopK.restore(
            state, plain_levels(), store=store_kind
        )
        assert stream_fingerprint(restored) == fingerprint
        assert restored.entries_applied == 30
        assert restored.last_recovery.checkpoint_entries == 10
        assert restored.last_recovery.entries_replayed == 20
        restored.close()

    def test_no_valid_checkpoint_prunes_nothing(self, tmp_path):
        state, fingerprint = self._grow_state(tmp_path)
        checkpoints = sorted(state.glob("checkpoint-*.ckpt"))
        for path in checkpoints:
            path.write_bytes(b"\x00" * 64)
        wal_before = sorted(p.name for p in state.glob("wal-*.log"))
        self._pruned_store(state)
        # Recovery must replay from entry 0, so every WAL segment (and
        # the checkpoint files, for forensics) is still load-bearing.
        assert sorted(p.name for p in state.glob("wal-*.log")) == wal_before
        assert sorted(state.glob("checkpoint-*.ckpt")) == checkpoints
        restored = IncrementalTopK.restore(state, plain_levels())
        assert stream_fingerprint(restored) == fingerprint
        assert restored.last_recovery.checkpoint_path is None
        assert restored.last_recovery.entries_replayed == 30
        restored.close()

    def test_columnar_sidecars_follow_their_checkpoints(self, tmp_path):
        state, _ = self._grow_state(tmp_path, store="columnar", rounds=4)
        assert len(sorted(state.glob("columnar-*.col"))) == 4
        # Fabricate an orphan sidecar (crash between sidecar write and
        # checkpoint rename leaves exactly this).
        orphan = state / "columnar-000000000099.col"
        orphan.write_bytes(b"orphan")
        self._pruned_store(state)
        survivors = sorted(state.glob("checkpoint-*.ckpt"))
        assert len(survivors) == 2
        kept = {p.name.split("-")[1].split(".")[0] for p in survivors}
        sidecars = sorted(state.glob("columnar-*.col"))
        assert {
            p.name.split("-")[1].split(".")[0] for p in sidecars
        } == kept
        assert not orphan.exists()
        restored = IncrementalTopK.restore(
            state, plain_levels(), store="columnar"
        )
        assert restored.last_recovery.entries_replayed == 0
        restored.close()

    def test_missing_sidecar_invalidates_checkpoint_for_retention(
        self, tmp_path
    ):
        # A v2 checkpoint whose sidecar vanished must not count toward
        # retention either: restores cannot seed from it.
        state, fingerprint = self._grow_state(tmp_path, store="columnar")
        sidecars = sorted(state.glob("columnar-*.col"))
        assert len(sidecars) == 3
        for path in sidecars[1:]:  # strand checkpoints 20 and 30
            path.unlink()
        self._pruned_store(state)
        survivors = sorted(state.glob("checkpoint-*.ckpt"))
        assert [p.name for p in survivors] == [
            "checkpoint-000000000010.ckpt"
        ]
        restored = IncrementalTopK.restore(
            state, plain_levels(), store="columnar"
        )
        assert stream_fingerprint(restored) == fingerprint
        assert restored.last_recovery.checkpoint_entries == 10
        assert restored.last_recovery.entries_replayed == 20
        restored.close()


class TestDeadLetterDurability:
    def test_dead_letters_roundtrip_checkpoint_restore(self, tmp_path):
        engine = IncrementalTopK(make_levels(), durability=policy_for(tmp_path))
        feed(engine, ["a", "poison", "b", "poison", "a"])
        assert len(engine.dead_letters) == 2
        engine.checkpoint()
        feed(engine, ["poison"])
        engine.close()
        restored = IncrementalTopK.restore(tmp_path / "state", make_levels())
        assert stream_fingerprint(restored) == stream_fingerprint(engine)
        letters = restored.dead_letters
        assert len(letters) == 3
        assert all(letter.stage == "keying" for letter in letters)
        assert all(letter.fields == {"name": "poison"} for letter in letters)
        assert "poisoned keying" in letters[0].error
        # Quarantined inserts never bump version but do advance the log.
        assert restored.version == 3
        assert restored.entries_applied == 6
        restored.close()

    def test_dropped_counter_survives(self, tmp_path):
        engine = IncrementalTopK(
            make_levels(), dead_letter_limit=2, durability=policy_for(tmp_path)
        )
        feed(engine, ["poison"] * 5 + ["a"])
        assert engine.dead_letters_dropped == 3
        engine.checkpoint()
        engine.close()
        restored = IncrementalTopK.restore(
            tmp_path / "state", make_levels(), dead_letter_limit=2
        )
        assert restored.dead_letters_dropped == 3
        assert len(restored.dead_letters) == 2
        restored.close()


class TestAudit:
    def test_healthy_engine_passes(self):
        engine = IncrementalTopK(plain_levels())
        feed(engine, ["a", "b", "a"])
        assert engine.audit() == []

    def test_corrupted_parent_out_of_range(self):
        engine = IncrementalTopK(plain_levels())
        feed(engine, ["a", "b", "a"])
        parent, size, n_components = engine._uf.state()
        parent[1] = 99  # points outside the element range
        engine._uf = type(engine._uf).from_state(parent, size, n_components)
        with pytest.raises(StateAuditError, match="valid range"):
            engine.audit()

    def test_corrupted_parent_cycle(self):
        engine = IncrementalTopK(plain_levels())
        feed(engine, ["a", "b", "c"])
        parent, size, n_components = engine._uf.state()
        parent[0], parent[1] = 1, 0  # two-cycle that never reaches a root
        engine._uf = type(engine._uf).from_state(parent, size, n_components)
        problems = engine.audit(strict=False)
        assert any("cycle" in problem for problem in problems)

    def test_size_mismatch_detected(self):
        engine = IncrementalTopK(plain_levels())
        feed(engine, ["a", "a", "b"])
        parent, size, n_components = engine._uf.state()
        root = parent[0] if parent[0] == parent[parent[0]] else parent[parent[0]]
        size[root] += 1
        engine._uf = type(engine._uf).from_state(parent, size, n_components)
        problems = engine.audit(strict=False)
        assert any("members" in problem for problem in problems)

    def test_nonfinite_weight_detected(self):
        engine = IncrementalTopK(plain_levels())
        engine.add({"name": "a"}, weight=float("inf"))
        problems = engine.audit(strict=False)
        assert any("non-finite" in problem for problem in problems)


class TestQueryBitIdentity:
    @pytest.mark.parametrize("seed", range(20))
    def test_restored_query_matches_uninterrupted(self, tmp_path, seed):
        rng = random.Random(seed)
        events = []
        for _ in range(60):
            name = f"entity-{rng.randrange(12)}"
            events.append(({"name": name}, float(rng.randrange(1, 6))))
        reference = IncrementalTopK(plain_levels())
        durable = IncrementalTopK(plain_levels(), durability=policy_for(tmp_path))
        for position, (fields, weight) in enumerate(events, start=1):
            reference.add(fields, weight)
            durable.add(fields, weight)
            if position == 30:
                durable.checkpoint()
        durable.close()
        restored = IncrementalTopK.restore(tmp_path / "state", plain_levels())
        k = rng.randrange(1, 6)
        expected = reference.query(k)
        actual = restored.query(k)
        assert actual.groups.weights() == expected.groups.weights()
        assert [sorted(g.member_ids) for g in actual.groups] == [
            sorted(g.member_ids) for g in expected.groups
        ]
        assert actual.terminated_early == expected.terminated_early
        assert actual.degraded == expected.degraded
        restored.close()


class TestBoundedDeadLetters:
    def test_fifo_eviction_and_counter(self):
        engine = IncrementalTopK(make_levels(), dead_letter_limit=3)
        for i in range(5):
            engine.add({"name": "poison", "tag": str(i)})
        letters = engine.dead_letters
        assert len(letters) == 3
        assert [letter.fields["tag"] for letter in letters] == ["2", "3", "4"]
        assert engine.dead_letters_dropped == 2

    def test_zero_limit_keeps_nothing(self):
        engine = IncrementalTopK(make_levels(), dead_letter_limit=0)
        engine.add({"name": "poison"})
        assert engine.dead_letters == []
        assert engine.dead_letters_dropped == 1

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            IncrementalTopK(make_levels(), dead_letter_limit=-1)

    def test_default_limit_generous(self):
        engine = IncrementalTopK(make_levels())
        for _ in range(50):
            engine.add({"name": "poison"})
        assert len(engine.dead_letters) == 50
        assert engine.dead_letters_dropped == 0
