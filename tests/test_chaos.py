"""Tests for the seeded chaos harness and the headline chaos scenario.

The acceptance scenario from the robustness issue: a citation-dataset
query with 20% injected predicate exceptions plus one stalling pair must
come back flagged ``degraded`` (no crash, no hang) with top-K groups
that are a superset-safe approximation — fault fallbacks may merge
*less* than the clean run, never more.
"""

import time

import pytest

from repro.core.incremental import IncrementalTopK
from repro.core.collapse import collapse
from repro.core.pruned_dedup import pruned_dedup
from repro.core.records import GroupSet
from repro.core.resilience import REASON_DEADLINE, ExecutionPolicy
from repro.datasets import (
    author_idf,
    author_string_idf,
    generate_citations,
    suggest_min_idf,
)
from repro.experiments.chaos import chaos_checks, refines, run_chaos_sweep
from repro.predicates import citation_levels
from repro.predicates.base import FunctionPredicate, Predicate, PredicateLevel
from repro.scoring.pairwise import PairwiseScorer
from repro.testing.chaos import (
    ChaosError,
    ChaosPredicate,
    ChaosScorer,
    FaultPlan,
    chaos_levels,
)
from tests.conftest import exact_name_predicate, make_store, shared_word_predicate


def level():
    return [PredicateLevel(exact_name_predicate(), shared_word_predicate())]


def records_ab():
    store = make_store(["ann smith", "ann smyth"])
    return store[0], store[1]


class ConstantScorer(PairwiseScorer):
    def score(self, a, b):
        return 1.0


class RecordingPredicate(Predicate):
    """Pass-through wrapper noting every evaluated record-id pair."""

    symmetric = False

    def __init__(self, inner):
        self._inner = inner
        self.name = f"recording[{inner.name}]"
        self.cost = inner.cost
        self.key_implies_match = inner.key_implies_match
        self.pairs = []

    def evaluate(self, a, b):
        self.pairs.append((a.record_id, b.record_id))
        return self._inner.evaluate(a, b)

    def blocking_keys(self, record):
        return self._inner.blocking_keys(record)


class TestFaultPlan:
    def test_draw_is_deterministic_and_order_free(self):
        plan = FaultPlan(seed=11)
        assert plan.draw("x", 3, 7) == plan.draw("x", 7, 3)
        assert plan.draw("x", 3, 7) == FaultPlan(seed=11).draw("x", 3, 7)
        assert plan.draw("x", 3, 7) != plan.draw("y", 3, 7)
        assert plan.draw("x", 3, 7) != FaultPlan(seed=12).draw("x", 3, 7)

    def test_draw_is_roughly_uniform(self):
        plan = FaultPlan(seed=0)
        draws = [plan.draw("u", i) for i in range(2000)]
        assert all(0.0 <= d < 1.0 for d in draws)
        below = sum(d < 0.2 for d in draws) / len(draws)
        assert 0.15 < below < 0.25

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError, match="error_rate"):
            FaultPlan(error_rate=1.5)
        with pytest.raises(ValueError, match="stall_seconds"):
            FaultPlan(stall_seconds=-1.0)

    def test_stall_pair_matches_either_order(self):
        plan = FaultPlan(stall_pair=(4, 9))
        assert plan.is_stall_pair(9, 4)
        assert not plan.is_stall_pair(4, 5)
        assert not FaultPlan().is_stall_pair(4, 9)


class TestChaosPredicate:
    def test_error_rate_one_always_raises(self):
        a, b = records_ab()
        chaos = ChaosPredicate(shared_word_predicate(), FaultPlan(error_rate=1.0))
        with pytest.raises(ChaosError):
            chaos.evaluate(a, b)

    def test_error_rate_zero_never_raises(self):
        a, b = records_ab()
        chaos = ChaosPredicate(shared_word_predicate(), FaultPlan())
        assert chaos.evaluate(a, b) is True

    def test_same_pair_faults_identically_across_calls(self):
        store = make_store([f"name {i}" for i in range(60)])
        chaos = ChaosPredicate(shared_word_predicate(), FaultPlan(error_rate=0.4))
        outcomes = {}
        for trial in range(2):
            for i in range(0, 60, 2):
                a, b = store[i], store[i + 1]
                try:
                    chaos.evaluate(a, b)
                    result = "ok"
                except ChaosError:
                    result = "raise"
                if trial == 0:
                    outcomes[(i, i + 1)] = result
                else:
                    assert outcomes[(i, i + 1)] == result
        assert set(outcomes.values()) == {"ok", "raise"}

    def test_flip_negates_the_inner_verdict(self):
        a, b = records_ab()  # share "ann" -> inner says True
        chaos = ChaosPredicate(shared_word_predicate(), FaultPlan(flip_rate=1.0))
        assert chaos.evaluate(a, b) is False

    def test_keying_error_rate_one_always_raises(self):
        store = make_store(["ann smith"])
        chaos = ChaosPredicate(
            shared_word_predicate(), FaultPlan(keying_error_rate=1.0)
        )
        with pytest.raises(ChaosError, match="keying"):
            chaos.blocking_keys(store[0])

    def test_stall_pair_sleeps(self):
        a, b = records_ab()
        chaos = ChaosPredicate(
            shared_word_predicate(),
            FaultPlan(stall_pair=(0, 1), stall_seconds=0.05),
        )
        started = time.perf_counter()
        chaos.evaluate(a, b)
        assert time.perf_counter() - started >= 0.05

    def test_forces_pairwise_verification_and_no_verdict_cache(self):
        chaos = ChaosPredicate(exact_name_predicate(), FaultPlan())
        assert chaos.key_implies_match is False
        assert chaos.symmetric is False
        assert chaos.inner.key_implies_match is True

    def test_salts_decorrelate_roles(self):
        plan = FaultPlan(seed=3, error_rate=0.5)
        s = ChaosPredicate(shared_word_predicate(), plan, salt="S0")
        n = ChaosPredicate(shared_word_predicate(), plan, salt="N0")
        store = make_store([f"x {i}" for i in range(40)])
        differs = False
        for i in range(0, 40, 2):
            outcomes = []
            for chaos in (s, n):
                try:
                    chaos.evaluate(store[i], store[i + 1])
                    outcomes.append("ok")
                except ChaosError:
                    outcomes.append("raise")
            differs = differs or outcomes[0] != outcomes[1]
        assert differs


class TestChaosScorer:
    def test_error_injection(self):
        a, b = records_ab()
        chaos = ChaosScorer(ConstantScorer(), FaultPlan(error_rate=1.0))
        with pytest.raises(ChaosError):
            chaos.score(a, b)
        assert ChaosScorer(ConstantScorer(), FaultPlan()).score(a, b) == 1.0


class TestChaosLevels:
    def test_roles_selectable(self):
        [only_s] = chaos_levels(level(), FaultPlan(), roles="sufficient")
        assert isinstance(only_s.sufficient, ChaosPredicate)
        assert not isinstance(only_s.necessary, ChaosPredicate)
        [only_n] = chaos_levels(level(), FaultPlan(), roles="necessary")
        assert not isinstance(only_n.sufficient, ChaosPredicate)
        assert isinstance(only_n.necessary, ChaosPredicate)
        with pytest.raises(ValueError, match="roles"):
            chaos_levels(level(), FaultPlan(), roles="everything")

    def test_chaos_runs_are_reproducible(self):
        names = [f"e{i % 5} v{i % 5}x{i % 3}" for i in range(50)]
        results = []
        for _ in range(2):
            plan = FaultPlan(seed=21, error_rate=0.3)
            result = pruned_dedup(
                make_store(names),
                2,
                chaos_levels(level(), plan),
                policy=ExecutionPolicy(),
            )
            results.append(
                (
                    sorted(result.groups.weights()),
                    result.counters.predicate_errors_contained,
                )
            )
        assert results[0] == results[1]
        assert results[0][1] > 0


class TestChaosSweep:
    def test_sweep_checks_hold_on_small_citations(self):
        rows = run_chaos_sweep(
            error_rates=(0.0, 0.2), n_records=300, k=5, seed=0
        )
        checks = chaos_checks(rows)
        assert all(checks.values()), checks


def citation_setup(n_records=700, seed=3):
    dataset = generate_citations(n_records=n_records, seed=seed)
    idf = author_idf(dataset.store)
    levels = citation_levels(
        idf, suggest_min_idf(idf), anchor_idf=author_string_idf(dataset.store)
    )
    return dataset, levels


class TestAcceptanceScenario:
    """20% predicate exceptions + one stalling pair on citations."""

    def test_degraded_but_safe_and_bounded(self):
        dataset, levels = citation_setup()
        plan = FaultPlan(seed=7, error_rate=0.2, stall_seconds=1.5)

        # Dry run (same fault schedule, no stall pair yet) to find a
        # pair the chaos pipeline actually evaluates; injecting the
        # stall there guarantees the stall fires in the real run.
        recorders = [RecordingPredicate(p) for p in (levels[0].sufficient,)]
        probe_levels = chaos_levels(
            [PredicateLevel(recorders[0], levels[0].necessary, name=levels[0].name)]
            + levels[1:],
            plan,
        )
        # Pinned serial: the recorder mutates in-process state and the
        # wall-clock bounds below assume no fork overhead, neither of
        # which survives a REPRO_WORKERS fan-out.
        pruned_dedup(
            dataset.store, 5, probe_levels, policy=ExecutionPolicy(), workers=1
        )
        assert recorders[0].pairs, "probe run evaluated no pairs"
        stall_pair = recorders[0].pairs[0]

        stall_plan = FaultPlan(
            seed=7, error_rate=0.2, stall_seconds=1.5, stall_pair=stall_pair
        )
        policy = ExecutionPolicy(
            deadline_seconds=1.0,
            call_timeout_seconds=0.25,
            on_error="degrade",
        )
        started = time.perf_counter()
        result = pruned_dedup(
            dataset.store,
            5,
            chaos_levels(levels, plan=stall_plan),
            policy=policy,
            workers=1,
        )
        elapsed = time.perf_counter() - started

        # No hang: one bounded stall delays the query by at most that
        # stall before the deadline fires.
        assert elapsed < 10.0
        assert result.degraded
        assert result.degraded_reason == REASON_DEADLINE
        assert result.counters.predicate_timeouts_contained >= 1
        assert result.stage_records[-1].completed is False

        # Superset-safe approximation: no fallback-introduced
        # over-merge, measured against the fault-free full closure.
        clean = GroupSet.singletons(dataset.store)
        for lvl in levels:
            clean = collapse(clean, lvl.sufficient)
        assert refines(result.groups, clean)

    def test_no_policy_no_faults_is_unchanged(self):
        # The resilience layer must be inert when not asked for.
        dataset, levels = citation_setup(n_records=300)
        before = pruned_dedup(dataset.store, 5, levels)
        again = pruned_dedup(dataset.store, 5, levels)
        assert before.groups.weights() == again.groups.weights()
        assert not before.degraded
        assert all(record.completed for record in before.stage_records)
        assert before.counters.total_contained == 0


class TestChaosQuarantine:
    def test_chaos_keying_faults_divert_to_dead_letters(self):
        plan = FaultPlan(seed=5, keying_error_rate=0.3)
        chaotic = chaos_levels(level(), plan, roles="sufficient")
        stream = IncrementalTopK(chaotic)
        names = [f"e{i % 4} v{i % 4}x{i % 2}" for i in range(40)]
        accepted = sum(stream.add({"name": name}) >= 0 for name in names)
        quarantined = len(stream.dead_letters)
        assert accepted + quarantined == len(names)
        assert 0 < quarantined < len(names)
        assert all(l.stage == "keying" for l in stream.dead_letters)
        assert (
            stream.verification.counters.records_quarantined == quarantined
        )
        # The stream still answers queries over the surviving records.
        result = stream.query(2)
        assert len(result.groups) >= 1

    def test_quarantine_is_deterministic(self):
        def run():
            plan = FaultPlan(seed=5, keying_error_rate=0.3)
            stream = IncrementalTopK(
                chaos_levels(level(), plan, roles="sufficient")
            )
            for i in range(30):
                stream.add({"name": f"e{i % 3} v{i % 3}x{i % 2}"})
            return [letter.fields["name"] for letter in stream.dead_letters]

        assert run() == run()
