"""Unit tests for the lower-bound estimator (Section 4.2)."""

import pytest

from repro.core.lower_bound import (
    estimate_lower_bound,
    estimate_lower_bound_naive,
)
from repro.core.records import GroupSet
from repro.predicates.base import FunctionPredicate
from tests.conftest import make_store, shared_word_predicate


def weighted_groups(names_weights: list[tuple[str, float]]) -> GroupSet:
    names = [n for n, _ in names_weights]
    weights = [w for _, w in names_weights]
    store = make_store(names, weights=weights)
    return GroupSet.singletons(store)


class TestEstimateLowerBound:
    def test_disconnected_groups_m_equals_k(self):
        gs = weighted_groups([("a", 10.0), ("b", 7.0), ("c", 3.0)])
        est = estimate_lower_bound(gs, shared_word_predicate(), 2)
        assert est.certified
        assert est.m == 2
        assert est.bound == 7.0

    def test_connected_groups_push_m_out(self):
        # First two groups can merge (share word), third cannot.
        gs = weighted_groups([("x a", 10.0), ("x b", 7.0), ("y c", 3.0)])
        est = estimate_lower_bound(gs, shared_word_predicate(), 2)
        assert est.certified
        assert est.m == 3
        assert est.bound == 3.0

    def test_uncertifiable_returns_zero_bound(self):
        # All groups pairwise joinable: only 1 distinct group guaranteed.
        gs = weighted_groups([("x a", 5.0), ("x b", 4.0), ("x c", 3.0)])
        est = estimate_lower_bound(gs, shared_word_predicate(), 2)
        assert not est.certified
        assert est.bound == 0.0
        assert est.m == 3

    def test_k_one_always_first_group(self):
        gs = weighted_groups([("x a", 5.0), ("x b", 4.0)])
        est = estimate_lower_bound(gs, shared_word_predicate(), 1)
        assert est.certified
        assert est.m == 1
        assert est.bound == 5.0

    def test_empty_group_set(self):
        store = make_store([])
        est = estimate_lower_bound(
            GroupSet.singletons(store), shared_word_predicate(), 1
        )
        assert not est.certified
        assert est.m == 0

    def test_invalid_k(self):
        gs = weighted_groups([("a", 1.0)])
        with pytest.raises(ValueError):
            estimate_lower_bound(gs, shared_word_predicate(), 0)

    def test_figure_1_style_refinement_beats_naive(self):
        # Groups c1..c5 in weight order with the paper's Figure-1 N-graph:
        # edges c1-c2, c1-c5, c2-c3, c2-c4, c3-c4.  CPN certifies K=2 at
        # m=3 (c1, c3 disconnected); the naive count needs all 5.
        names = ["p q", "q r", "r2 s", "r s", "p t"]
        # name overlaps: c1-c2 share q; c2-c3? 'q r' vs 'r2 s' share none...
        # Build the graph explicitly through a predicate on ids instead.
        edges = {(0, 1), (0, 4), (1, 2), (1, 3), (2, 3)}

        def connected(a, b):
            pair = (min(a.record_id, b.record_id), max(a.record_id, b.record_id))
            return pair in edges

        predicate = FunctionPredicate(
            evaluate_fn=connected,
            keys_fn=lambda r: ["all"],  # one block; evaluate decides
            name="figure-1",
        )
        gs = weighted_groups(
            [("c1", 50.0), ("c2", 40.0), ("c3", 30.0), ("c4", 20.0), ("c5", 10.0)]
        )
        est = estimate_lower_bound(gs, predicate, 2)
        naive = estimate_lower_bound_naive(gs, predicate, 2)
        assert est.certified
        assert est.m == 3
        assert est.bound == 30.0
        assert naive.m == 5  # the weak bound needs the whole list

    def test_bound_monotone_in_k(self):
        gs = weighted_groups(
            [("a", 9.0), ("b", 7.0), ("c", 5.0), ("d", 3.0), ("e", 1.0)]
        )
        bounds = [
            estimate_lower_bound(gs, shared_word_predicate(), k).bound
            for k in (1, 2, 3, 4, 5)
        ]
        assert bounds == sorted(bounds, reverse=True)


class TestNaiveBoundEstimator:
    def test_matches_on_disconnected(self):
        gs = weighted_groups([("a", 5.0), ("b", 3.0)])
        naive = estimate_lower_bound_naive(gs, shared_word_predicate(), 2)
        assert naive.certified
        assert naive.m == 2

    def test_never_tighter_than_cpn(self):
        gs = weighted_groups(
            [("x a", 9.0), ("b c", 7.0), ("x d", 5.0), ("e f", 3.0)]
        )
        for k in (1, 2, 3):
            cpn = estimate_lower_bound(gs, shared_word_predicate(), k)
            naive = estimate_lower_bound_naive(gs, shared_word_predicate(), k)
            assert naive.m >= cpn.m
            assert naive.bound <= cpn.bound

    def test_invalid_k(self):
        gs = weighted_groups([("a", 1.0)])
        with pytest.raises(ValueError):
            estimate_lower_bound_naive(gs, shared_word_predicate(), 0)
