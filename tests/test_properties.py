"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.correlation import ScoreMatrix, correlation_score, partition_score
from repro.clustering.exact import all_partitions, exact_best_partition
from repro.clustering.metrics import pairwise_scores
from repro.clustering.transitive import transitive_closure_clusters
from repro.embedding.greedy import greedy_embedding
from repro.embedding.segmentation import best_partition
from repro.graphs.adjacency import Graph
from repro.graphs.clique_partition import (
    clique_partition_lower_bound,
    naive_distinct_bound,
)
from repro.graphs.triangulation import (
    is_perfect_elimination_ordering,
    min_fill_ordering,
)
from repro.graphs.union_find import UnionFind
from repro.similarity.measures import jaccard, overlap_coefficient
from repro.similarity.strings import jaro, jaro_winkler, levenshtein
from repro.similarity.tokenize import ngram_set, sorted_initials_key, words

names = st.text(
    alphabet=st.sampled_from("abcdefghij "), min_size=0, max_size=20
)
small_graphs = st.integers(min_value=0, max_value=8).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.tuples(
                st.integers(0, max(0, n - 1)), st.integers(0, max(0, n - 1))
            ),
            max_size=12,
        ),
    )
)


def build_graph(spec) -> Graph:
    n, edges = spec
    g = Graph(n)
    for u, v in edges:
        if u != v and n > 0:
            g.add_edge(u, v)
    return g


@st.composite
def score_matrices(draw, max_n=7):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = ScoreMatrix(n)
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                m.set(
                    i,
                    j,
                    draw(
                        st.floats(
                            min_value=-5,
                            max_value=5,
                            allow_nan=False,
                            allow_infinity=False,
                        )
                    ),
                )
    return m


class TestStringProperties:
    @given(names, names)
    def test_levenshtein_symmetric(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(names, names)
    def test_levenshtein_triangle_with_empty(self, a, b):
        # d(a,b) <= d(a,"") + d("",b) = len(a) + len(b)
        assert levenshtein(a, b) <= len(a) + len(b)

    @given(names)
    def test_levenshtein_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(names, names)
    def test_jaro_bounds(self, a, b):
        assert 0.0 <= jaro(a, b) <= 1.0

    @given(names, names)
    def test_jaro_winkler_dominates_jaro(self, a, b):
        assert jaro_winkler(a, b) >= jaro(a, b) - 1e-12

    @given(names, names)
    def test_jaro_symmetric(self, a, b):
        assert jaro(a, b) == jaro(b, a)


class TestTokenizeProperties:
    @given(names)
    def test_ngram_set_normalization_idempotent(self, text):
        assert ngram_set(text) == ngram_set(text.upper())

    @given(names)
    def test_initials_key_order_invariant(self, text):
        tokens = words(text)
        reversed_text = " ".join(reversed(tokens))
        assert sorted_initials_key(text) == sorted_initials_key(reversed_text)


class TestMeasureProperties:
    sets = st.frozensets(st.sampled_from("abcdefgh"), max_size=6)

    @given(sets, sets)
    def test_jaccard_bounds_and_symmetry(self, a, b):
        assert 0.0 <= jaccard(a, b) <= 1.0
        assert jaccard(a, b) == jaccard(b, a)

    @given(sets, sets)
    def test_overlap_dominates_jaccard(self, a, b):
        assert overlap_coefficient(a, b) >= jaccard(a, b) - 1e-12


class TestUnionFindProperties:
    @given(
        st.integers(min_value=1, max_value=30),
        st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=40),
    )
    def test_components_partition(self, n, unions):
        uf = UnionFind(n)
        for a, b in unions:
            if a < n and b < n:
                uf.union(a, b)
        components = uf.components()
        flat = sorted(x for c in components for x in c)
        assert flat == list(range(n))
        assert len(components) == uf.n_components


class TestGraphProperties:
    @given(small_graphs)
    @settings(max_examples=60)
    def test_min_fill_produces_peo(self, spec):
        g = build_graph(spec)
        ordering, filled = min_fill_ordering(g)
        assert sorted(ordering) == list(range(g.n_vertices))
        assert is_perfect_elimination_ordering(filled, ordering)

    @given(small_graphs)
    @settings(max_examples=60)
    def test_cpn_bound_is_independent_set(self, spec):
        g = build_graph(spec)
        cpn, selected = clique_partition_lower_bound(g)
        assert cpn == len(selected)
        for i, u in enumerate(selected):
            for v in selected[i + 1 :]:
                assert not g.has_edge(u, v)

    @given(small_graphs)
    @settings(max_examples=60)
    def test_cpn_bound_sound_vs_exhaustive(self, spec):
        # The bound must never exceed the true clique partition number,
        # computed here by exhaustive partition search.
        g = build_graph(spec)
        n = g.n_vertices
        if n == 0 or n > 6:
            return
        cpn_bound, _ = clique_partition_lower_bound(g)

        def is_clique(group):
            return all(
                g.has_edge(u, v)
                for i, u in enumerate(group)
                for v in group[i + 1 :]
            )

        true_cpn = min(
            len(p)
            for p in all_partitions(n)
            if all(is_clique(group) for group in p)
        )
        assert cpn_bound <= true_cpn
        assert naive_distinct_bound(g) <= true_cpn


class TestScoreProperties:
    @given(score_matrices())
    @settings(max_examples=40)
    def test_partition_score_equals_correlation_score(self, m):
        for partition in ([[i] for i in range(m.n)], [list(range(m.n))]):
            assert math.isclose(
                partition_score(partition, m),
                correlation_score(partition, m),
                rel_tol=1e-9,
                abs_tol=1e-9,
            )

    @given(score_matrices(max_n=6))
    @settings(max_examples=25, deadline=None)
    def test_exact_dominates_heuristics(self, m):
        _, exact_score = exact_best_partition(m)
        transitive = transitive_closure_clusters(m)
        assert partition_score(transitive, m) <= exact_score + 1e-9

    @given(score_matrices(max_n=6))
    @settings(max_examples=25, deadline=None)
    def test_segmentation_never_beats_exact(self, m):
        _, exact_score = exact_best_partition(m)
        embedding = greedy_embedding(m)
        partition = best_partition(m, embedding, max_span=m.n)
        assert partition_score(partition, m) <= exact_score + 1e-9

    @given(score_matrices(max_n=6))
    @settings(max_examples=25, deadline=None)
    def test_segmentation_partition_valid(self, m):
        embedding = greedy_embedding(m)
        partition = best_partition(m, embedding, max_span=m.n)
        flat = sorted(i for g in partition for i in g)
        assert flat == list(range(m.n))


class TestMetricsProperties:
    partitions = st.lists(
        st.lists(st.integers(0, 15), min_size=1, max_size=4),
        min_size=1,
        max_size=5,
    )

    @staticmethod
    def dedupe(partition):
        seen = set()
        out = []
        for group in partition:
            cleaned = []
            for item in group:
                if item not in seen:
                    seen.add(item)
                    cleaned.append(item)
            if cleaned:
                out.append(cleaned)
        return out

    @given(partitions, partitions)
    def test_f1_bounds_and_self_identity(self, p1, p2):
        p1 = self.dedupe(p1)
        p2 = self.dedupe(p2)
        if not p1 or not p2:
            return
        s = pairwise_scores(p1, p2)
        assert 0.0 <= s.f1 <= 1.0
        assert pairwise_scores(p1, p1).f1 == 1.0

    @given(partitions, partitions)
    def test_precision_recall_swap(self, p1, p2):
        p1 = self.dedupe(p1)
        p2 = self.dedupe(p2)
        if not p1 or not p2:
            return
        forward = pairwise_scores(p1, p2)
        backward = pairwise_scores(p2, p1)
        # Swapping roles swaps precision and recall only when both
        # partitions cover the same items; restrict to that case.
        items1 = {i for g in p1 for i in g}
        items2 = {i for g in p2 for i in g}
        if items1 == items2:
            assert forward.precision == backward.recall
            assert forward.recall == backward.precision


class TestEmbeddingProperties:
    @given(score_matrices())
    @settings(max_examples=40)
    def test_greedy_embedding_is_permutation(self, m):
        emb = greedy_embedding(m)
        assert sorted(emb.order) == list(range(m.n))
        assert 0 in emb.breaks


class TestSoundexProperties:
    from hypothesis import strategies as _st

    words_strategy = _st.text(
        alphabet=_st.sampled_from("abcdefghijklmnopqrstuvwxyz"),
        min_size=1,
        max_size=12,
    )

    @given(words_strategy)
    def test_code_format(self, word):
        from repro.similarity.strings import soundex

        code = soundex(word)
        assert len(code) == 4
        assert code[0] == word[0].upper()
        assert all(c.isdigit() for c in code[1:])

    @given(words_strategy)
    def test_case_invariant(self, word):
        from repro.similarity.strings import soundex

        assert soundex(word) == soundex(word.upper())


class TestSetJoinVsPredicateConsistency:
    @given(
        st.lists(
            st.frozensets(st.sampled_from("abcdefg"), min_size=1, max_size=5),
            min_size=2,
            max_size=12,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_join_results_satisfy_threshold(self, sets):
        from repro.similarity.measures import jaccard
        from repro.similarity.setjoin import jaccard_self_join

        for i, j, reported in jaccard_self_join(sets, 0.5):
            actual = jaccard(sets[i], sets[j])
            assert actual == reported
            assert actual >= 0.5
