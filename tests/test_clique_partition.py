"""Unit tests for the CPN lower bound (Algorithm 1) and its incremental form."""

from repro.graphs.adjacency import Graph
from repro.graphs.clique_partition import (
    IncrementalCliquePartition,
    clique_partition_lower_bound,
    naive_distinct_bound,
)


def figure_1_graph() -> Graph:
    """The paper's Figure-1 example: CPN 2 via cliques (c1,c5),(c2,c3,c4).

    Vertices 0..4 stand for c1..c5; edges: c1-c2, c1-c5, c2-c3, c2-c4,
    c3-c4 (every group connects to some earlier group, so the naive
    bound never certifies 2 groups before the end).
    """
    return Graph.from_edges(5, [(0, 1), (0, 4), (1, 2), (1, 3), (2, 3)])


class TestCliquePartitionBound:
    def test_figure_1_example(self):
        cpn, selected = clique_partition_lower_bound(figure_1_graph())
        assert cpn == 2

    def test_certificate_is_independent_set(self):
        g = figure_1_graph()
        _, selected = clique_partition_lower_bound(g)
        for i, u in enumerate(selected):
            for v in selected[i + 1 :]:
                assert not g.has_edge(u, v)

    def test_empty_graph(self):
        assert clique_partition_lower_bound(Graph(0)) == (0, [])

    def test_edgeless_graph(self):
        cpn, selected = clique_partition_lower_bound(Graph(4))
        assert cpn == 4
        assert sorted(selected) == [0, 1, 2, 3]

    def test_complete_graph(self):
        g = Graph.from_edges(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
        cpn, _ = clique_partition_lower_bound(g)
        assert cpn == 1

    def test_two_disjoint_triangles(self):
        g = Graph.from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        cpn, _ = clique_partition_lower_bound(g)
        assert cpn == 2

    def test_path_graph(self):
        # Path of 5 vertices: CPN = 3 (chordal, so bound is exact).
        g = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        cpn, _ = clique_partition_lower_bound(g)
        assert cpn == 3

    def test_five_cycle_lower_bound(self):
        # C5 has clique cover number 3; the bound via triangulation may
        # certify less but never more.
        g = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        cpn, _ = clique_partition_lower_bound(g)
        assert 1 <= cpn <= 3


class TestNaiveBound:
    def test_figure_1_naive_is_weaker(self):
        # Every vertex after c1 connects to an earlier one.
        assert naive_distinct_bound(figure_1_graph()) == 1

    def test_edgeless(self):
        assert naive_distinct_bound(Graph(3)) == 3

    def test_never_exceeds_cpn_bound_on_examples(self):
        for g in (figure_1_graph(), Graph(4), Graph.from_edges(3, [(0, 1)])):
            cpn, _ = clique_partition_lower_bound(g)
            assert naive_distinct_bound(g) <= cpn


class TestIncremental:
    def test_matches_figure_1_after_refine(self):
        inc = IncrementalCliquePartition()
        edges_to_earlier = [[], [0], [1], [1, 2], [0]]
        for neighbors in edges_to_earlier:
            inc.add_vertex(neighbors)
        assert inc.refine() == 2

    def test_cheap_bound_monotone(self):
        inc = IncrementalCliquePartition()
        bounds = []
        edges_to_earlier = [[], [0], [], [1, 2], [0, 3]]
        for neighbors in edges_to_earlier:
            bounds.append(inc.add_vertex(neighbors))
        assert bounds == sorted(bounds)

    def test_isolated_vertices_counted(self):
        inc = IncrementalCliquePartition()
        assert inc.add_vertex([]) == 1
        assert inc.add_vertex([]) == 2
        assert inc.add_vertex([]) == 3

    def test_refine_never_decreases(self):
        inc = IncrementalCliquePartition()
        for neighbors in ([], [0], [0, 1], [2]):
            inc.add_vertex(neighbors)
        before = inc.bound()
        assert inc.refine() >= before

    def test_vertex_count(self):
        inc = IncrementalCliquePartition()
        inc.add_vertex([])
        inc.add_vertex([0])
        assert inc.n_vertices == 2
