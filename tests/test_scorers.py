"""Unit tests for pairwise scorers and Gibbs normalization."""

import math

import pytest

from repro.core.records import RecordStore
from repro.scoring.gibbs import gibbs_probabilities, log_odds_to_probability
from repro.scoring.pairwise import CachedScorer, WeightedScorer, train_scorer
from repro.similarity.vectorize import name_only_featurizer


def records(*names):
    return list(RecordStore.from_rows([{"name": n} for n in names]))


@pytest.fixture
def featurizer():
    return name_only_featurizer()


class TestWeightedScorer:
    def test_similar_pair_scores_higher(self, featurizer):
        scorer = WeightedScorer(
            featurizer, weights=[1.0] * featurizer.n_features, bias=-2.0
        )
        a, b, c = records("sunita sarawagi", "s sarawagi", "vinay deshpande")
        assert scorer.score(a, b) > scorer.score(a, c)

    def test_bias_shifts_sign(self, featurizer):
        a, b = records("x y", "p q")
        positive = WeightedScorer(featurizer, [0.0] * featurizer.n_features, 1.0)
        negative = WeightedScorer(featurizer, [0.0] * featurizer.n_features, -1.0)
        assert positive.score(a, b) == 1.0
        assert negative.score(a, b) == -1.0

    def test_weight_length_checked(self, featurizer):
        with pytest.raises(ValueError):
            WeightedScorer(featurizer, [1.0], 0.0)


class TestTrainedScorer:
    def test_learns_duplicate_signal(self, featurizer):
        positives = [
            ("sunita sarawagi", "s sarawagi"),
            ("vinay deshpande", "vinay deshpnde"),
            ("sourabh kasliwal", "s kasliwal"),
            ("amit sharma", "amit sharma"),
            ("priya gupta", "priya gupt"),
            ("rahul verma", "r verma"),
        ]
        negatives = [
            ("sunita sarawagi", "vinay deshpande"),
            ("amit sharma", "priya gupta"),
            ("rahul verma", "sourabh kasliwal"),
            ("bob jones", "cara lee"),
            ("john smith", "mary wilson"),
            ("a b", "c d"),
        ]
        pairs = []
        labels = []
        for x, y in positives:
            pairs.append((records(x)[0], records(y)[0]))
            labels.append(1)
        for x, y in negatives:
            pairs.append((records(x)[0], records(y)[0]))
            labels.append(0)
        scorer = train_scorer(featurizer, pairs, labels, l2=0.5)
        a, b, c = records("kiran patil", "k patil", "esha bose")
        assert scorer.score(a, b) > scorer.score(a, c)

    def test_pair_label_length_mismatch(self, featurizer):
        a, b = records("x", "y")
        with pytest.raises(ValueError):
            train_scorer(featurizer, [(a, b)], [1, 0])


class TestCachedScorer:
    def test_caches_by_id_pair(self, featurizer):
        inner = WeightedScorer(featurizer, [1.0] * featurizer.n_features, 0.0)
        cached = CachedScorer(inner)
        a, b = records("sunita sarawagi", "s sarawagi")
        first = cached.score(a, b)
        second = cached.score(b, a)  # order-insensitive
        assert first == second
        assert cached.n_evaluations == 1


class TestGibbs:
    def test_sums_to_one(self):
        probs = gibbs_probabilities([1.0, 2.0, 3.0])
        assert sum(probs) == pytest.approx(1.0)

    def test_monotone_in_score(self):
        probs = gibbs_probabilities([1.0, 3.0, 2.0])
        assert probs[1] > probs[2] > probs[0]

    def test_temperature_flattens(self):
        sharp = gibbs_probabilities([0.0, 5.0], temperature=0.5)
        flat = gibbs_probabilities([0.0, 5.0], temperature=10.0)
        assert sharp[1] > flat[1]

    def test_empty(self):
        assert gibbs_probabilities([]) == []

    def test_large_scores_stable(self):
        probs = gibbs_probabilities([1e6, 1e6 + 1])
        assert sum(probs) == pytest.approx(1.0)
        assert not any(math.isnan(p) for p in probs)

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            gibbs_probabilities([1.0], temperature=0.0)

    def test_log_odds_conversion(self):
        assert log_odds_to_probability(0.0) == pytest.approx(0.5)
        assert log_odds_to_probability(100.0) == pytest.approx(1.0)
        assert log_odds_to_probability(-100.0) == pytest.approx(0.0, abs=1e-6)
