"""Unit tests for the columnar storage layer (:mod:`repro.storage`).

Covers the physical array container (round-trip, corruption detection),
string pools, columnar records (field-order and missing-vs-empty
fidelity), the postings key codec, the engine sidecar's vectorised
validation, the hybrid record container, and the mapped serving paths
built on top (TF-IDF index, dataset files, batch neighbor engines,
snapshot answer-cache bounds).
"""

import math

import numpy as np
import pytest

from repro.core.records import Record
from repro.storage import (
    ArrayFileError,
    HybridRecordList,
    KeyEncodingError,
    MappedArrays,
    RecordColumns,
    StringPool,
    build_sidecar_arrays,
    decode_key,
    encode_key,
    postings_from_arrays,
    postings_to_arrays,
    resolve_roots,
    write_arrays,
)
from repro.storage.columnar import FrozenRecordView
from repro.storage.engine_state import EngineStateColumns
from repro.storage.layout import read_header_meta


# -- layout -----------------------------------------------------------


def _sample_arrays():
    return {
        "a": np.arange(10, dtype=np.int64),
        "b": np.asarray([1.5, -0.0, float("inf")], dtype=np.float64),
        "c": np.zeros(0, dtype=np.int32),
        "d": np.frombuffer(b"hello", dtype=np.uint8),
    }


class TestArrayLayout:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "x.col"
        write_arrays(path, _sample_arrays(), {"kind": "test", "n": 3})
        mapped = MappedArrays(path, verify=True)
        assert mapped.meta["kind"] == "test"
        for name, original in _sample_arrays().items():
            got = mapped.array(name)
            assert got.dtype == original.dtype
            assert np.array_equal(got, original, equal_nan=True)
        assert "a" in mapped and "nope" not in mapped
        assert read_header_meta(path)["n"] == 3

    def test_mapped_arrays_are_read_only(self, tmp_path):
        path = tmp_path / "x.col"
        write_arrays(path, _sample_arrays(), {})
        mapped = MappedArrays(path)
        with pytest.raises((ValueError, RuntimeError)):
            mapped.array("a")[0] = 99

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "x.col"
        write_arrays(path, _sample_arrays(), {})
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(ArrayFileError, match="magic"):
            MappedArrays(path)

    def test_corrupt_header_rejected(self, tmp_path):
        path = tmp_path / "x.col"
        write_arrays(path, _sample_arrays(), {})
        raw = bytearray(path.read_bytes())
        raw[20] ^= 0xFF  # inside the header JSON
        path.write_bytes(bytes(raw))
        with pytest.raises(ArrayFileError):
            MappedArrays(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "x.col"
        write_arrays(path, _sample_arrays(), {})
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 8])
        with pytest.raises(ArrayFileError):
            MappedArrays(path)

    def test_body_corruption_caught_by_verify(self, tmp_path):
        path = tmp_path / "x.col"
        write_arrays(path, _sample_arrays(), {})
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # last payload byte
        path.write_bytes(bytes(raw))
        MappedArrays(path)  # lazy open does not checksum the body
        with pytest.raises(ArrayFileError, match="checksum"):
            MappedArrays(path, verify=True)

    def test_unsupported_dtype_rejected(self, tmp_path):
        with pytest.raises(ArrayFileError, match="dtype"):
            write_arrays(
                tmp_path / "x.col",
                {"bad": np.asarray(["a"], dtype=object)},
                {},
            )


# -- string pools -----------------------------------------------------


class TestStringPool:
    def test_roundtrip_and_index(self):
        strings = ["", "hello", "héllo wörld", "", "a" * 1000]
        pool = StringPool.build(strings)
        assert list(pool) == strings
        assert pool.index()["hello"] == 1

    def test_array_roundtrip(self, tmp_path):
        strings = ["x", "", "日本語"]
        pool = StringPool.build(strings)
        path = tmp_path / "s.col"
        write_arrays(path, dict(pool.to_arrays("s.")), {})
        back = StringPool.from_arrays(MappedArrays(path).arrays, "s.")
        assert list(back) == strings


# -- columnar records -------------------------------------------------


def _records():
    return [
        Record(record_id=0, fields={"name": "ann", "city": "x"}, weight=1.0),
        Record(record_id=1, fields={"city": "", "name": "bob"}, weight=-0.0),
        Record(record_id=2, fields={}, weight=2.5),
        Record(record_id=3, fields={"name": "ann"}, weight=0.125),
    ]


class TestRecordColumns:
    def test_roundtrip_preserves_everything(self, tmp_path):
        records = _records()
        columns = RecordColumns.from_records(records)
        path = tmp_path / "r.col"
        columns.save(path)
        back = RecordColumns.open(path)
        for i, original in enumerate(records):
            got = back.record(i)
            assert got == original
            # field insertion order and missing-vs-empty both survive
            assert list(got.fields) == list(original.fields)
            assert math.copysign(1.0, got.weight) == math.copysign(
                1.0, original.weight
            )

    def test_missing_field_reads_empty_via_record(self):
        columns = RecordColumns.from_records(_records())
        rec = columns.record(2)
        assert rec["name"] == ""  # Record contract for absent fields
        assert "name" not in rec.fields


class TestHybridRecordList:
    def test_list_surface(self):
        base = RecordColumns.from_records(_records())
        hybrid = HybridRecordList(base)
        assert len(hybrid) == 4
        hybrid.append(
            Record(record_id=4, fields={"name": "eve"}, weight=1.0)
        )
        assert len(hybrid) == 5
        assert hybrid[0] == _records()[0]
        assert hybrid[-1].fields["name"] == "eve"
        assert [r.record_id for r in hybrid] == list(range(5))
        assert hybrid[1:3] == [_records()[1], _records()[2]]
        with pytest.raises(IndexError):
            hybrid[5]

    def test_freeze_is_immutable_view(self):
        hybrid = HybridRecordList(RecordColumns.from_records(_records()))
        frozen = hybrid.freeze()
        hybrid.append(
            Record(record_id=4, fields={"name": "eve"}, weight=1.0)
        )
        assert len(frozen) == 4 and len(hybrid) == 5
        assert frozen[3] == _records()[3]
        assert tuple(frozen[i] for i in range(4)) == frozen[0:4]

    def test_swap_base_requires_full_coverage(self):
        hybrid = HybridRecordList()
        hybrid.append(Record(record_id=0, fields={"a": "b"}, weight=1.0))
        with pytest.raises(ValueError, match="holds"):
            hybrid.swap_base(RecordColumns.from_records(_records()))
        compacted = RecordColumns.from_records(list(hybrid))
        hybrid.swap_base(compacted)
        assert hybrid.base is compacted and len(hybrid) == 1

    def test_weights_array_matches_records(self):
        hybrid = HybridRecordList(RecordColumns.from_records(_records()))
        hybrid.append(Record(record_id=4, fields={}, weight=7.0))
        assert hybrid.weights_array().tolist() == [
            r.weight for r in hybrid
        ]


# -- postings codec ---------------------------------------------------


class TestPostingsCodec:
    @pytest.mark.parametrize(
        "key",
        [
            None,
            True,
            False,
            0,
            -(10**30),
            3.5,
            -0.0,
            "",
            "héllo",
            (),
            ("a", 1, (2.0, None), ("deep", (True,))),
        ],
    )
    def test_key_roundtrip(self, key):
        assert decode_key(encode_key(key)) == key

    def test_negative_zero_key_distinct_bits(self):
        decoded = decode_key(encode_key(-0.0))
        assert math.copysign(1.0, decoded) == -1.0

    def test_unencodable_key(self):
        with pytest.raises(KeyEncodingError):
            encode_key(frozenset({1}))
        with pytest.raises(KeyEncodingError):
            postings_to_arrays({frozenset({1}): [0]})

    def test_index_roundtrip_preserves_order(self):
        index = {
            ("b", 1): [3, 1, 2],
            "a": [0],
            2.5: [],
            None: [5, 4],
        }
        back = postings_from_arrays(postings_to_arrays(index))
        assert list(back) == list(index)
        for key in index:
            assert back[key] == index[key]
        assert back["unseen"] == []  # defaultdict semantics preserved


# -- engine sidecar ---------------------------------------------------


class TestEngineState:
    def test_resolve_roots_matches_scalar(self):
        parent = np.asarray([0, 0, 1, 3, 3, 4], dtype=np.int64)
        assert resolve_roots(parent).tolist() == [0, 0, 0, 3, 3, 3]

    def test_resolve_roots_rejects_out_of_range_and_cycles(self):
        with pytest.raises(ArrayFileError, match="range"):
            resolve_roots(np.asarray([0, 9], dtype=np.int64))
        with pytest.raises(ArrayFileError, match="cycle"):
            resolve_roots(np.asarray([1, 0], dtype=np.int64))

    def _state(self):
        records = _records()
        parent = [0, 0, 2, 0]
        size = [3, 1, 1, 1]
        key_members = {"ann": [0, 1, 3], ("t", 2): [2]}
        return records, parent, size, 2, key_members

    def test_build_validate_roundtrip(self, tmp_path):
        records, parent, size, n_components, key_members = self._state()
        arrays, meta, has_postings = build_sidecar_arrays(
            records, parent, size, n_components, key_members
        )
        assert has_postings
        path = tmp_path / "e.col"
        write_arrays(path, arrays, meta)
        columns = EngineStateColumns(MappedArrays(path))
        columns.validate()
        assert columns.key_members() == key_members
        assert [columns.records.record(i) for i in range(4)] == records

    def test_unencodable_key_degrades_postings(self, tmp_path):
        records, parent, size, n_components, _ = self._state()
        arrays, meta, has_postings = build_sidecar_arrays(
            records, parent, size, n_components, {object(): [0]}
        )
        assert not has_postings
        path = tmp_path / "e.col"
        write_arrays(path, arrays, meta)
        assert EngineStateColumns(MappedArrays(path)).key_members() is None

    def test_validate_rejects_tampered_weights(self, tmp_path):
        records, parent, size, n_components, key_members = self._state()
        arrays, meta, _ = build_sidecar_arrays(
            records, parent, size, n_components, key_members
        )
        arrays = dict(arrays)
        arrays["groups.weights"] = arrays["groups.weights"] + 1.0
        path = tmp_path / "e.col"
        write_arrays(path, arrays, meta)
        with pytest.raises(ArrayFileError, match="weights"):
            EngineStateColumns(MappedArrays(path)).validate()

    def test_validate_rejects_wrong_component_count(self, tmp_path):
        records, parent, size, _, key_members = self._state()
        arrays, meta, _ = build_sidecar_arrays(
            records, parent, size, 7, key_members
        )
        path = tmp_path / "e.col"
        write_arrays(path, arrays, meta)
        with pytest.raises(ArrayFileError, match="n_components"):
            EngineStateColumns(MappedArrays(path)).validate()


# -- mapped TF-IDF serving --------------------------------------------


class TestMappedTfIdf:
    def test_bit_identical_candidates(self, tmp_path):
        import random

        from repro.similarity import (
            IdfTable,
            TfIdfIndex,
            load_tfidf_index,
            save_tfidf_index,
        )

        rng = random.Random(7)
        vocab = [f"w{i}" for i in range(40)] + ["common"]
        docs = [
            [rng.choice(vocab) for _ in range(rng.randint(1, 10))] + ["common"]
            for _ in range(60)
        ]
        index = TfIdfIndex(IdfTable(docs))
        for i, doc in enumerate(docs):
            index.add(i * 2, doc)  # non-contiguous doc ids
        path = tmp_path / "tfidf.col"
        save_tfidf_index(index, path)
        mapped = load_tfidf_index(path)
        assert len(mapped) == len(index)
        assert mapped.n_posting_entries == index.n_posting_entries
        assert mapped.vector(0) == index.vector(0)
        assert mapped.cosine(0, 2) == index.cosine(0, 2)
        for probe in docs[:10] + [["unseen"], []]:
            for threshold in (0.0, 0.25, 0.7):
                assert mapped.candidates_above(
                    probe, threshold
                ) == index.candidates_above(probe, threshold)
        assert mapped.idf.idf("common") == index._idf.idf("common")
        assert mapped.idf.idf("unseen") == index._idf.idf("unseen")

    def test_wrong_kind_rejected(self, tmp_path):
        from repro.similarity import load_tfidf_index

        path = tmp_path / "x.col"
        write_arrays(path, _sample_arrays(), {"kind": "other"})
        with pytest.raises(ArrayFileError, match="kind"):
            load_tfidf_index(path)


# -- columnar datasets ------------------------------------------------


class TestColumnarDataset:
    def test_roundtrip_exact(self, tmp_path):
        from repro.datasets import (
            load_dataset_columnar,
            save_dataset_columnar,
        )
        from repro.datasets.students import generate_students

        dataset = generate_students(n_records=80, seed=5)
        path = tmp_path / "students.col"
        save_dataset_columnar(dataset, str(path))
        back = load_dataset_columnar(str(path))
        assert back.labels == dataset.labels
        assert len(back.store) == len(dataset.store)
        for restored, original in zip(back.store, dataset.store):
            assert restored == original
        assert back.store.total_weight() == dataset.store.total_weight()

    def test_wrong_kind_rejected(self, tmp_path):
        from repro.datasets import load_dataset_columnar

        path = tmp_path / "x.col"
        write_arrays(path, _sample_arrays(), {"kind": "other"})
        with pytest.raises(ArrayFileError, match="kind"):
            load_dataset_columnar(str(path))


# -- mapped neighbor engines ------------------------------------------


class _Sink:
    predicate_evaluations = 0
    signature_evaluations = 0
    cache_hits = 0


class TestMappedNeighborEngine:
    def test_member_verdicts_identical(self, tmp_path):
        import random

        from repro.core.records import RecordStore
        from repro.predicates.batch import (
            BatchNeighborEngine,
            load_engine_state,
            save_engine_state,
        )
        from repro.predicates.blocking import build_key_index
        from repro.predicates.library import NgramOverlapPredicate

        rng = random.Random(13)
        rows = [
            {"author": " ".join(rng.choice("abcdefgh") for _ in range(4))}
            for _ in range(50)
        ]
        store = RecordStore.from_rows(rows)
        records = list(store)
        predicate = NgramOverlapPredicate(field="author", threshold=0.5)
        engine = BatchNeighborEngine.build(
            predicate, records, build_key_index(predicate, records)
        )
        path = tmp_path / "engine.col"
        save_engine_state(engine, path)
        mapped = load_engine_state(path)
        for position in range(len(records)):
            assert mapped.member_neighbors(position, _Sink()) == (
                engine.member_neighbors(position, _Sink())
            )
        indptr_a, flat_a = engine.member_neighbors_csr(range(0, 50, 3), _Sink())
        indptr_b, flat_b = mapped.member_neighbors_csr(range(0, 50, 3), _Sink())
        assert indptr_a.tolist() == indptr_b.tolist()
        assert flat_a.tolist() == flat_b.tolist()


# -- snapshot answer-cache bounds (serving-path bugfixes) -------------


class TestSnapshotCacheBounds:
    def _engine(self):
        from repro.core import IncrementalTopK
        from repro.predicates.base import PredicateLevel

        from .conftest import exact_name_predicate, shared_word_predicate

        engine = IncrementalTopK(
            [PredicateLevel(exact_name_predicate(), shared_word_predicate())]
        )
        for i in range(8):
            engine.add({"name": f"name {i % 3}"}, float(i + 1))
        return engine

    def test_cache_is_fifo_bounded(self):
        from repro.server import EngineSnapshot

        snapshot = EngineSnapshot.freeze(self._engine(), cache_limit=3)
        for k in range(1, 6):
            snapshot.query_topk(k)
        assert snapshot.cache_size == 3
        assert snapshot.cache_evictions == 2
        # the newest keys survived; re-querying an evicted key recomputes
        baseline = snapshot.query_topk(1)
        assert snapshot.cache_evictions == 3
        assert baseline.groups.weights() == (
            EngineSnapshot.freeze(self._engine()).query_topk(1).groups.weights()
        )

    def test_eviction_metric_published(self):
        from repro.observability import MetricsRegistry
        from repro.server import EngineSnapshot

        metrics = MetricsRegistry()
        snapshot = EngineSnapshot.freeze(
            self._engine(), cache_limit=1, metrics=metrics
        )
        snapshot.query_topk(1)
        snapshot.query_topk(2)
        snapshot.query_topk(3)
        rendered = metrics.counter(
            "repro_snapshot_cache_evictions_total"
        ).value
        assert rendered == 2.0
        assert snapshot.cache_evictions == 2

    def test_cache_limit_validation(self):
        from repro.server import EngineSnapshot

        with pytest.raises(ValueError, match="cache_limit"):
            EngineSnapshot.freeze(self._engine(), cache_limit=0)

    def test_threshold_cache_key_is_canonical(self):
        from repro.server import EngineSnapshot

        snapshot = EngineSnapshot.freeze(self._engine())
        a = snapshot.query_threshold(4.0)
        b = snapshot.query_threshold(4.0)
        assert b is a  # same canonical key → cached object returned
        assert snapshot.cache_size == 1
        # a rejected threshold (engine requires > 0) caches nothing
        with pytest.raises(ValueError):
            snapshot.query_threshold(0.0)
        assert snapshot.cache_size == 1

    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), float("-inf")]
    )
    def test_threshold_rejects_non_finite(self, bad):
        from repro.server import EngineSnapshot

        snapshot = EngineSnapshot.freeze(self._engine())
        with pytest.raises(ValueError, match="finite"):
            snapshot.query_threshold(bad)
        assert snapshot.cache_size == 0  # no dead entry cached


class TestFrozenViewInSnapshots:
    def test_columnar_engine_snapshot_answers_match(self):
        from repro.core import IncrementalTopK
        from repro.core.parallel import group_fingerprint
        from repro.predicates.base import PredicateLevel
        from repro.server import EngineSnapshot

        from .conftest import exact_name_predicate, shared_word_predicate

        def levels():
            return [
                PredicateLevel(
                    exact_name_predicate(), shared_word_predicate()
                )
            ]

        memory = IncrementalTopK(levels())
        columnar = IncrementalTopK(levels(), store="columnar")
        for i in range(10):
            fields = {"name": f"name {i % 4}"}
            memory.add(fields, float(i + 1))
            columnar.add(fields, float(i + 1))
        snap_memory = EngineSnapshot.freeze(memory)
        snap_columnar = EngineSnapshot.freeze(columnar)
        assert isinstance(
            snap_columnar._state.records, FrozenRecordView
        )
        assert snap_columnar.consistency_problems() == []
        for k in (1, 3, 5):
            assert group_fingerprint(
                snap_columnar.query_topk(k).groups
            ) == group_fingerprint(snap_memory.query_topk(k).groups)
        assert (
            snap_columnar.query_rank(3).ranking
            == snap_memory.query_rank(3).ranking
        )
        assert (
            snap_columnar.query_threshold(4.0).ranking
            == snap_memory.query_threshold(4.0).ranking
        )
