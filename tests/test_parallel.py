"""Unit tests for the sharded parallel execution layer (repro.core.parallel)."""

import os

import pytest

from repro.core.collapse import collapse
from repro.core.parallel import (
    MIN_PARALLEL_GROUPS,
    WORKERS_ENV_VAR,
    ShardPlan,
    fork_available,
    group_fingerprint,
    parallel_collapse,
    prime_neighbor_index,
    resolve_workers,
)
from repro.core.records import GroupSet
from repro.core.resilience import ResilienceExhausted
from repro.core.verification import PipelineCounters, VerificationContext
from repro.predicates.base import FunctionPredicate
from repro.predicates.blocking import build_key_index
from tests.conftest import make_store, shared_word_predicate

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform has no fork start method"
)


def clustered_store(n_clusters: int = 40, size: int = 3):
    """A store of *n_clusters* disjoint shared-word clusters."""
    names = [
        f"c{cluster} u{cluster}x{member}"
        for cluster in range(n_clusters)
        for member in range(size)
    ]
    return make_store(names)


def counting_shared_word_predicate(calls: list):
    """shared-word predicate that appends to *calls* on every evaluate."""

    def evaluate(a, b):
        calls.append((a.record_id, b.record_id))
        return bool(set(a["name"].split()) & set(b["name"].split()))

    return FunctionPredicate(
        evaluate_fn=evaluate,
        keys_fn=lambda r: r["name"].split(),
        name="counting-shared-word",
    )


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "7")
        assert resolve_workers(3) == 3

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert resolve_workers(None) == 1

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "4")
        assert resolve_workers(None) == 4

    def test_env_blank_is_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "  ")
        assert resolve_workers(None) == 1

    def test_env_not_an_integer(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "lots")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers(None)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_nonpositive_rejected(self, bad):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            resolve_workers(bad)


class TestShardPlanByComponents:
    def test_candidate_pairs_stay_within_one_shard(self):
        store = clustered_store(n_clusters=20, size=3)
        predicate = shared_word_predicate()
        plan = ShardPlan.by_components(predicate, list(store), max_shards=4)
        position_to_shard = {
            position: shard_index
            for shard_index, shard in enumerate(plan.shards)
            for position in shard
        }
        index = build_key_index(predicate, list(store))
        for positions in index.values():
            shards_hit = {
                position_to_shard[p] for p in positions if p in position_to_shard
            }
            assert len(shards_hit) <= 1, positions

    def test_deterministic(self):
        store = clustered_store(n_clusters=15, size=4)
        predicate = shared_word_predicate()
        first = ShardPlan.by_components(predicate, list(store), max_shards=3)
        second = ShardPlan.by_components(predicate, list(store), max_shards=3)
        assert first == second

    def test_covers_every_position_once(self):
        store = clustered_store(n_clusters=10, size=3)
        plan = ShardPlan.by_components(
            shared_word_predicate(), list(store), max_shards=4
        )
        seen = sorted(
            [p for shard in plan.shards for p in shard] + list(plan.isolated)
        )
        assert seen == list(range(len(store)))

    def test_isolated_records_skip_shards(self):
        store = make_store(["a b", "a c", "lonely", "alone"])
        plan = ShardPlan.by_components(
            shared_word_predicate(), list(store), max_shards=2
        )
        assert plan.isolated == (2, 3)
        assert sorted(p for shard in plan.shards for p in shard) == [0, 1]

    def test_balanced_loads(self):
        # 12 equal-weight components over 4 shards must split 3/3/3/3.
        store = clustered_store(n_clusters=12, size=2)
        plan = ShardPlan.by_components(
            shared_word_predicate(), list(store), max_shards=4
        )
        assert plan.n_shards == 4
        assert all(pairs == plan.shard_pairs[0] for pairs in plan.shard_pairs)


class TestShardPlanByCandidateMass:
    def test_singleton_components_balance_a_giant_block(self):
        # One key shared by everyone: components would collapse to a
        # single shard, per-probe mass still splits the work.
        postings = {"shared": list(range(16))}
        plan = ShardPlan.by_candidate_mass(postings, 16, max_shards=4)
        assert plan.n_shards == 4
        assert all(len(shard) == 4 for shard in plan.shards)

    def test_zero_mass_positions_are_isolated(self):
        postings = {"a": [0, 1], "b": [3]}
        plan = ShardPlan.by_candidate_mass(postings, 5, max_shards=2)
        assert plan.isolated == (2, 3, 4)

    def test_empty_postings(self):
        plan = ShardPlan.by_candidate_mass({}, 3, max_shards=4)
        assert plan.n_shards == 0
        assert plan.isolated == (0, 1, 2)


class TestGroupFingerprint:
    def test_order_insensitive(self):
        store = make_store(["a", "a", "b"])
        gs = collapse(GroupSet.singletons(store), shared_word_predicate())
        reversed_gs = GroupSet(store=gs.store, groups=list(gs)[::-1])
        assert group_fingerprint(gs) == group_fingerprint(reversed_gs)

    def test_weight_sensitive(self):
        light = collapse(
            GroupSet.singletons(make_store(["a", "b"])),
            shared_word_predicate(),
        )
        heavy = collapse(
            GroupSet.singletons(make_store(["a", "b"], weights=[2.0, 1.0])),
            shared_word_predicate(),
        )
        assert group_fingerprint(light) != group_fingerprint(heavy)


class TestCountersMerge:
    def test_merges_int_fields_and_stage_times(self):
        left = PipelineCounters()
        left.predicate_evaluations = 3
        left.add_stage_time("collapse", 1.0)
        right = PipelineCounters()
        right.predicate_evaluations = 4
        right.shards_degraded = 2
        right.add_stage_time("collapse", 0.5)
        right.add_stage_time("prune", 2.0)
        left.merge(right)
        assert left.predicate_evaluations == 7
        assert left.shards_degraded == 2
        assert left.stage_seconds["collapse"] == pytest.approx(1.5)
        assert left.stage_seconds["prune"] == pytest.approx(2.0)


@needs_fork
class TestParallelCollapse:
    def test_bit_identical_to_serial(self):
        store = clustered_store(n_clusters=40, size=3)
        singletons = GroupSet.singletons(store)
        serial = collapse(singletons, shared_word_predicate())
        context = VerificationContext()
        parallel = parallel_collapse(
            singletons, shared_word_predicate(), workers=3, context=context
        )
        assert group_fingerprint(parallel) == group_fingerprint(serial)
        assert context.counters.shards_degraded == 0

    def test_work_happens_in_forked_children(self):
        # Fork isolates the children's evaluate calls from the parent's
        # closure list: an empty parent-side log proves the predicate
        # ran in worker processes, not inline.
        store = clustered_store(n_clusters=40, size=3)
        calls: list = []
        predicate = counting_shared_word_predicate(calls)
        parallel_collapse(
            GroupSet.singletons(store),
            predicate,
            workers=2,
            context=VerificationContext(),
        )
        assert calls == []

    def test_serial_below_group_threshold(self):
        store = clustered_store(n_clusters=4, size=3)
        assert len(store) < MIN_PARALLEL_GROUPS
        calls: list = []
        predicate = counting_shared_word_predicate(calls)
        result = parallel_collapse(
            GroupSet.singletons(store),
            predicate,
            workers=4,
            context=VerificationContext(),
        )
        assert calls, "small inputs must run inline"
        assert len(result) == 4

    def test_serial_with_one_worker(self):
        store = clustered_store(n_clusters=40, size=2)
        calls: list = []
        predicate = counting_shared_word_predicate(calls)
        parallel_collapse(
            GroupSet.singletons(store),
            predicate,
            workers=1,
            context=VerificationContext(),
        )
        assert calls, "workers=1 must run inline"

    def test_dead_worker_degrades_shard_not_query(self):
        # The predicate kills any process that is not the parent, so
        # every worker dies mid-shard; the parent must recompute every
        # shard serially and still produce the exact serial answer.
        store = clustered_store(n_clusters=40, size=3)
        parent_pid = os.getpid()

        def murderous_evaluate(a, b):
            if os.getpid() != parent_pid:
                os._exit(1)
            return bool(set(a["name"].split()) & set(b["name"].split()))

        predicate = FunctionPredicate(
            evaluate_fn=murderous_evaluate,
            keys_fn=lambda r: r["name"].split(),
            name="worker-killer",
        )
        context = VerificationContext()
        result = parallel_collapse(
            GroupSet.singletons(store), predicate, workers=2, context=context
        )
        serial = collapse(GroupSet.singletons(store), shared_word_predicate())
        assert group_fingerprint(result) == group_fingerprint(serial)
        assert context.counters.shards_degraded >= 1

    def test_worker_exhaustion_propagates(self):
        # A policy-exhausted worker must degrade the stage exactly like
        # the serial pipeline: ResilienceExhausted reaches the caller.
        store = clustered_store(n_clusters=40, size=3)
        parent_pid = os.getpid()

        def exhausted_evaluate(a, b):
            if os.getpid() != parent_pid:
                raise ResilienceExhausted("deadline")
            return bool(set(a["name"].split()) & set(b["name"].split()))

        predicate = FunctionPredicate(
            evaluate_fn=exhausted_evaluate,
            keys_fn=lambda r: r["name"].split(),
            name="exhausted-in-worker",
        )
        with pytest.raises(ResilienceExhausted):
            parallel_collapse(
                GroupSet.singletons(store),
                predicate,
                workers=2,
                context=VerificationContext(),
            )


@needs_fork
class TestPrimeNeighborIndex:
    def test_primed_lists_match_direct_probes(self):
        store = clustered_store(n_clusters=40, size=3)
        groups = GroupSet.singletons(store)
        predicate = shared_word_predicate()
        context = VerificationContext()
        index = prime_neighbor_index(groups, predicate, 3, context)
        fresh = VerificationContext().neighbor_index(
            shared_word_predicate(), groups
        )
        representatives = groups.representatives()
        for position, record in enumerate(representatives):
            assert index.neighbors(
                record, exclude_position=position
            ) == fresh.neighbors(record, exclude_position=position), position

    def test_probes_answered_from_memo(self):
        # After priming, serving every neighbor list must cost zero
        # further predicate evaluations in the parent.
        store = clustered_store(n_clusters=40, size=3)
        groups = GroupSet.singletons(store)
        calls: list = []
        predicate = counting_shared_word_predicate(calls)
        context = VerificationContext()
        index = prime_neighbor_index(groups, predicate, 3, context)
        assert calls == []
        for position, record in enumerate(groups.representatives()):
            index.neighbors(record, exclude_position=position)
        assert calls == []

    def test_single_worker_skips_priming(self):
        store = clustered_store(n_clusters=40, size=3)
        groups = GroupSet.singletons(store)
        calls: list = []
        predicate = counting_shared_word_predicate(calls)
        index = prime_neighbor_index(
            groups, predicate, 1, VerificationContext()
        )
        index.neighbors(groups.representatives()[0], exclude_position=0)
        assert calls, "workers=1 must leave probing lazy and inline"
