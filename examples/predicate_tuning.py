"""Automatic predicate selection (the paper's future-work section, built).

Given a pool of candidate (sufficient, necessary) predicate levels of
unknown value, `repro.predicates.optimizer.order_levels` profiles each
on a sample — collapse power, prune power for the target K, wall-clock
cost — and greedily assembles the plan with the best marginal
group-reduction per second, dropping useless levels.

Run:  python examples/predicate_tuning.py
"""

from repro.core import pruned_dedup
from repro.datasets import author_idf, generate_citations, suggest_min_idf
from repro.predicates import citation_levels
from repro.predicates.base import FunctionPredicate, PredicateLevel
from repro.predicates.library import JaccardPredicate, NgramOverlapPredicate
from repro.predicates.optimizer import order_levels


def wasteful_level() -> PredicateLevel:
    """A plausible-looking level that buys nothing: its sufficient
    predicate never fires (exact match of the whole record including the
    citation-specific pages field never recurs) and its necessary
    predicate is so loose it prunes nothing."""
    never = FunctionPredicate(
        evaluate_fn=lambda a, b: all(
            a[f] == b[f] for f in ("author", "coauthors", "title", "pages")
        ),
        keys_fn=lambda r: [
            (r["author"], r["coauthors"], r["title"], r["pages"])
        ],
        name="whole-record-exact",
        key_implies_match=True,
    )
    loose = FunctionPredicate(
        evaluate_fn=lambda a, b: True,
        keys_fn=lambda r: ["everything"],
        name="always-true",
    )
    return PredicateLevel(never, loose, name="wasteful")


def main() -> None:
    dataset = generate_citations(n_records=5000, seed=21)
    idf = author_idf(dataset.store)

    good = citation_levels(idf, suggest_min_idf(idf))
    candidates = [
        wasteful_level(),
        good[1],  # the tighter level, deliberately listed first
        good[0],
        PredicateLevel(
            JaccardPredicate("author", 0.95, name="author-jaccard-0.95"),
            NgramOverlapPredicate("author", 0.4, name="author-ngram-0.4"),
            name="loose-extra",
        ),
    ]

    print(f"candidate levels: {[level.name for level in candidates]}")
    # A modest profiling sample keeps the deliberately awful candidates
    # (the always-true necessary predicate is quadratic to bound) cheap.
    chosen, profiles = order_levels(
        candidates, dataset.store, k=10, sample_size=800
    )

    print("\nchosen plan (in order):")
    for level, profile in zip(chosen, profiles):
        print(
            f"  {level.name:<16} groups {profile.groups_before:>5} -> "
            f"{profile.groups_after_prune:>5}  "
            f"({profile.reduction * 100:5.1f}% reduction, "
            f"{profile.seconds:.2f}s on the sample)"
        )
    dropped = [lv.name for lv in candidates if lv not in chosen]
    print(f"dropped: {dropped}")

    result = pruned_dedup(dataset.store, 10, chosen)
    print(
        f"\nfull-data run with the tuned plan: "
        f"{len(result.groups)} groups retained "
        f"({100 * result.retained_fraction:.2f}% of records)"
    )


if __name__ == "__main__":
    main()
