"""Top-scoring students despite messy exam records (Section 6.1.2 scenario).

Exam papers are entered by primary-school children: names lose spaces,
birth dates get replaced by today's date.  Each student's total score
aggregates over all their papers, so the Top-K query has to dedup on the
fly.  This example runs both the Top-K count pipeline (pruning only, as
the paper does for this dataset) and the thresholded rank query
("everyone with at least T total marks").

Run:  python examples/top_students.py
"""

from repro import pruned_dedup, thresholded_rank_query
from repro.datasets import generate_students
from repro.predicates import student_levels


def main() -> None:
    dataset = generate_students(n_records=6000, seed=3)
    levels = student_levels()
    print(
        f"corpus: {dataset.n_records} exam papers from "
        f"{dataset.n_entities} students"
    )

    # --- Top-10 highest scoring students via PrunedDedup ---------------
    result = pruned_dedup(dataset.store, k=10, levels=levels)
    for level_index, stats in enumerate(result.stats, start=1):
        print(
            f"level {level_index}: collapsed to {stats.n_pct:.1f}%, "
            f"m={stats.m}, M={stats.bound:.0f}, "
            f"pruned to {stats.n_prime_pct:.2f}%"
        )
    print("\ncandidate top students after pruning (top 10 groups):")
    for group in list(result.groups)[:10]:
        student = dataset.store[group.representative_id]
        print(
            f"  {group.weight:8.1f} total marks  {student['name']:<28} "
            f"school {student['school']}"
        )

    # --- Thresholded rank query: everyone above 400 total marks --------
    threshold = 400.0
    ranked = thresholded_rank_query(dataset.store, threshold, levels)
    certainty = "certain" if ranked.certain else "needs exact evaluation"
    print(
        f"\nstudents with >= {threshold:.0f} total marks "
        f"({certainty}; {ranked.n_retained} groups retained):"
    )
    for entry in ranked.ranking[:10]:
        student = dataset.store[entry.representative_id]
        print(
            f"  {entry.weight:8.1f} (u <= {entry.upper_bound:7.1f})  "
            f"{student['name']}"
        )


if __name__ == "__main__":
    main()
