"""Reproduce every paper table and figure in one command.

Runs all experiment drivers at a configurable scale and prints the full
paper-vs-measured report (the same tables `pytest benchmarks/` asserts
on, without the pytest machinery).

Run:  python examples/reproduce_paper.py [--records 4000] [--fig7-scale 0.3]
"""

import argparse
import time

from repro.experiments import (
    accuracy_shape_checks,
    address_pipeline,
    citation_pipeline,
    fidelity_checks,
    format_table,
    robustness_checks,
    run_figure7,
    run_fidelity_sweep,
    run_noise_sweep,
    run_pruning_table,
    run_timing_comparison,
    shape_checks,
    student_pipeline,
    table1,
    timing_shape_checks,
)

K_VALUES = (1, 5, 10, 50, 100)


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def report_checks(checks: dict) -> None:
    for name, ok in checks.items():
        print(f"  [{'PASS' if ok else 'FAIL'}] {name}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--records", type=int, default=4000)
    parser.add_argument("--fig7-scale", type=float, default=0.3)
    args = parser.parse_args()
    started = time.time()

    banner("Figure 2 — citation pruning")
    citations = citation_pipeline(n_records=args.records, with_scorer=True)
    rows = run_pruning_table(citations, k_values=K_VALUES)
    print(format_table(rows))
    report_checks(shape_checks(rows))

    banner("Figure 3 — student pruning")
    students = student_pipeline(n_records=args.records)
    rows = run_pruning_table(students, k_values=K_VALUES)
    print(format_table(rows))
    report_checks(shape_checks(rows))

    banner("Figure 4 — address pruning")
    addresses = address_pipeline(n_records=args.records)
    rows = run_pruning_table(addresses, k_values=K_VALUES)
    print(format_table(rows))
    report_checks(shape_checks(rows))

    banner("Figure 6 — running time vs K")
    rows = run_timing_comparison(citations, k_values=(1, 10, 100))
    print(format_table(rows))
    report_checks(timing_shape_checks(rows))

    banner("Figure 7 + Table 1 — accuracy vs exact LP")
    rows = run_figure7(scale=args.fig7_scale)
    print(format_table(rows))
    print(format_table(table1(rows), title="Table 1"))
    report_checks(accuracy_shape_checks(rows))

    banner("X5 — segmentation vs exact exponential algorithm")
    row = run_fidelity_sweep(n_instances=40)
    print(format_table([row]))
    report_checks(fidelity_checks(row))

    banner("X7 — noise robustness")
    rows = run_noise_sweep(n_records=min(args.records, 3000))
    print(format_table(rows))
    report_checks(robustness_checks(rows))

    print(f"\ntotal: {time.time() - started:.0f}s")


if __name__ == "__main__":
    main()
