"""Exposing deduplication ambiguity: R alternative groupings (Section 5).

Some record pairs cannot be confidently resolved.  Instead of forcing a
single grouping, the segmentation DP returns the R highest-scoring
Top-K answers with Gibbs-normalized probabilities.  This example builds
a deliberately ambiguous instance — an author whose initials-only
mentions might or might not belong to the prolific variant — and shows
how the alternatives differ.

Run:  python examples/ambiguous_answers.py
"""

from repro.clustering.correlation import ScoreMatrix
from repro.embedding.greedy import greedy_embedding
from repro.embedding.segmentation import top_k_answers
from repro.scoring.gibbs import gibbs_probabilities


def main() -> None:
    # Nine mentions: positions 0-3 are "sunita sarawagi", 4-5 are the
    # ambiguous "s sarawagi" (weak positive to both neighbors), and 6-8
    # are "sanjay sarawagi".  Scores are signed log-odds from some P.
    labels = [
        "sunita sarawagi",
        "sunita sarawagi",
        "s sarawagi (ambiguous)",
        "s sarawagi (ambiguous)",
        "sanjay sarawagi",
        "sanjay sarawagi",
        "sanjay sarawagi",
    ]
    scores = ScoreMatrix(7)
    # Confident within-entity pairs.
    scores.set(0, 1, 4.0)
    for i in (4, 5, 6):
        for j in (4, 5, 6):
            if i < j:
                scores.set(i, j, 4.0)
    # The ambiguous initial-only mentions: weakly positive toward both.
    for ambiguous in (2, 3):
        scores.set(0, ambiguous, 0.6)
        scores.set(1, ambiguous, 0.4)
        scores.set(ambiguous, 4, 0.5)
        scores.set(ambiguous, 5, 0.3)
    scores.set(2, 3, 1.0)
    # Confident non-duplicates.
    scores.set(0, 4, -3.0)
    scores.set(1, 5, -3.0)

    embedding = greedy_embedding(scores)
    answers = top_k_answers(
        scores, embedding, weights=[1.0] * 7, k=1, r=4, max_span=7
    )
    probabilities = gibbs_probabilities([a.score for a in answers])

    print("Who has the most mentions?  Top alternative answers:\n")
    for answer, probability in zip(answers, probabilities):
        group = answer.groups[0]
        members = ", ".join(labels[i] for i in group)
        print(
            f"  p={probability:.2f}  score={answer.score:6.2f}  "
            f"count={answer.weights[0]:.0f}  [{members}]"
        )
    print(
        "\nThe ambiguous 's sarawagi' mentions swing the winner between "
        "the two full names; the ranked list surfaces both readings "
        "instead of hiding one."
    )


if __name__ == "__main__":
    main()
