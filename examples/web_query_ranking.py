"""Web query answering: rank candidate entities by mention frequency.

The paper's second motivating scenario: "web query answering where the
result of the query is expected to be a single entity where each
entity's rank is derived from its frequency of occurrences" [22].  We
simulate extraction output for the query "who invented the telephone?":
candidate answer strings pulled from many pages, full of variant
spellings.  The Top-1 count query aggregates variants; R alternative
answers expose how close the runner-up is.

Run:  python examples/web_query_ranking.py
"""

import numpy as np

from repro.core.topk import topk_count_query
from repro.datasets.noise import noisy_author_mention
from repro.predicates.base import PredicateLevel
from repro.predicates.library import ExactFieldsPredicate, NgramOverlapPredicate
from repro.core.records import RecordStore
from repro.scoring.pairwise import WeightedScorer
from repro.similarity.vectorize import name_only_featurizer

#: Candidate answers as an extractor might emit them, with the number of
#: supporting pages skewed toward the true answer.
CANDIDATES = [
    ("alexander graham bell", 55),
    ("antonio meucci", 30),
    ("elisha gray", 18),
    ("thomas edison", 9),
    ("johann philipp reis", 6),
]


def main() -> None:
    rng = np.random.default_rng(4)
    rows = []
    for answer, n_pages in CANDIDATES:
        for _ in range(n_pages):
            rows.append({"name": noisy_author_mention(answer, rng)})
    rng.shuffle(rows)
    store = RecordStore.from_rows(rows)
    print(f"{len(store)} extracted candidate mentions")

    levels = [
        PredicateLevel(
            ExactFieldsPredicate(["name"], name="exact"),
            NgramOverlapPredicate("name", 0.5, name="ngram-0.5"),
        )
    ]
    featurizer = name_only_featurizer()
    scorer = WeightedScorer(
        featurizer, weights=[2.0, 2.0, 1.0, 1.0, 2.0], bias=-3.5
    )

    result = topk_count_query(
        store, k=1, levels=levels, scorer=scorer, r=3, label_field="name",
        rank_answers_by="mass",
    )
    print("\nwho invented the telephone?  ranked answers:")
    for answer in result.answers:
        top = answer.entities[0]
        print(
            f"  p={answer.probability:.2f}  {top.label}  "
            f"({top.weight:.0f} supporting mentions)"
        )

    stats = result.pruning.stats[-1]
    print(
        f"\n(pruning retained {stats.n_prime_pct:.1f}% of mentions before "
        f"the final scoring step)"
    )


if __name__ == "__main__":
    main()
