"""Tax-screening over noisy address records (Section 6.1.3 scenario).

Asset records from multiple providers (vehicles, houses, ...) mention
the same person with abbreviated, word-dropped address variants.  The
query ranks the entities with the highest aggregate asset worth — the
Top-K *rank* query (Section 7.1), which only needs the order, enabling
extra pruning over the count query.

Run:  python examples/asset_screening.py
"""

from repro import pruned_dedup, topk_rank_query
from repro.datasets import generate_addresses
from repro.predicates import address_levels


def main() -> None:
    dataset = generate_addresses(n_records=6000, seed=11)
    levels = address_levels(dataset.store)
    print(
        f"corpus: {dataset.n_records} asset records over "
        f"{dataset.n_entities} owners"
    )

    k = 10
    count = pruned_dedup(dataset.store, k, levels)
    rank = topk_rank_query(dataset.store, k, levels)
    print(
        f"count query retains {len(count.groups)} groups; rank query "
        f"retains {rank.n_retained} (extra pruned: {rank.n_extra_pruned})"
    )

    print(f"\ntop-{k} owners by assessed asset worth:")
    for entry in rank.ranking[:k]:
        record = dataset.store[entry.representative_id]
        resolved = "resolved" if entry.resolved else "ambiguous"
        print(
            f"  {entry.weight:10.1f} (u <= {entry.upper_bound:10.1f}, "
            f"{resolved})  {record['name']:<24} {record['address'][:48]}"
        )

    # Cross-check against the gold heaviest owners.
    print("\ngold top owners:")
    for entity_id, weight in dataset.true_topk(5):
        print(f"  {weight:10.1f}  {dataset.entity_names[entity_id]}")


if __name__ == "__main__":
    main()
