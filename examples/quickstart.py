"""Quickstart: Top-K count query over noisy duplicate records.

Builds a small citation-style corpus, assembles the paper's predicate
suite, trains the final pairwise classifier, and asks for the 5 most
cited authors — returning the 3 highest-scoring alternative answers to
expose the ambiguity of the deduplication.

Run:  python examples/quickstart.py
"""

from repro import topk_count_query
from repro.datasets import author_idf, generate_citations, suggest_min_idf
from repro.experiments.harness import train_scorer_for
from repro.predicates import citation_levels


def main() -> None:
    # 1. A corpus of noisy author mentions (synthetic stand-in for the
    #    paper's Citeseer crawl).  Each record carries author, coauthors,
    #    title, year fields and a citation-count weight.
    dataset = generate_citations(n_records=4000, seed=7)
    print(
        f"corpus: {dataset.n_records} author mentions, "
        f"{dataset.n_entities} underlying authors"
    )

    # 2. The Section 6.1.1 predicate suite: two (sufficient, necessary)
    #    levels driven by corpus IDF statistics.
    idf = author_idf(dataset.store)
    levels = citation_levels(idf, suggest_min_idf(idf))

    # 3. The final pairwise criterion P: a logistic classifier trained on
    #    half the labeled groups (Jaccard/JaroWinkler/custom features).
    scorer = train_scorer_for(dataset, "citation", levels, seed=7)

    # 4. The query: 5 most-cited authors, top 3 alternative answers.
    result = topk_count_query(
        dataset.store, k=5, levels=levels, scorer=scorer, r=3,
        label_field="author",
    )

    stats = result.pruning.stats[-1]
    print(
        f"pruning kept {stats.n_prime_pct:.2f}% of the records "
        f"(bound M = {stats.bound:.0f})"
    )
    for rank, answer in enumerate(result.answers, start=1):
        print(f"\nanswer #{rank}  (probability {answer.probability:.2f})")
        for entity in answer.entities:
            print(f"  {entity.weight:8.0f}  {entity.label}")

    # 5. Sanity: compare against the gold top-5.
    print("\ngold top-5:")
    for entity_id, weight in dataset.true_topk(5):
        print(f"  {weight:8.0f}  {dataset.entity_names[entity_id]}")


if __name__ == "__main__":
    main()
