"""Tracking the most-mentioned organization in a streaming news feed.

One of the paper's motivating scenarios: "tracking the most frequently
mentioned organization in an online feed of news articles".  Mentions
arrive continuously; batch re-deduplication per query would be wasteful.
:class:`repro.IncrementalTopK` maintains the sufficient-predicate
closure as mentions stream in, so each query only pays for pruning the
current collapsed state.

Run:  python examples/streaming_feed.py
"""

import numpy as np

from repro import IncrementalTopK
from repro.datasets.noise import noisy_author_mention
from repro.predicates.base import PredicateLevel
from repro.predicates.library import ExactFieldsPredicate, NgramOverlapPredicate

ORGANIZATIONS = [
    "acme data systems",
    "global widget corporation",
    "northwind traders",
    "initech solutions",
    "umbrella analytics",
    "stark industries",
    "wayne enterprises",
    "tyrell microdevices",
    "cyberdyne compute",
    "aperture sciences",
]


def feed(rng: np.random.Generator, n_batches: int, batch_size: int):
    """Yield batches of noisy organization mentions with drifting focus.

    Early batches talk mostly about the head of the list; later batches
    shift attention down it — so the Top-1 answer changes over time.
    """
    for batch_index in range(n_batches):
        focus = batch_index % len(ORGANIZATIONS)
        weights = np.ones(len(ORGANIZATIONS))
        weights[focus] = 12.0
        weights /= weights.sum()
        batch = []
        for _ in range(batch_size):
            org = ORGANIZATIONS[int(rng.choice(len(ORGANIZATIONS), p=weights))]
            batch.append(noisy_author_mention(org, rng))
        yield batch


def main() -> None:
    rng = np.random.default_rng(2)
    levels = [
        PredicateLevel(
            sufficient=ExactFieldsPredicate(["org"], name="org-exact"),
            necessary=NgramOverlapPredicate("org", 0.5, name="org-ngram"),
            name="org-level",
        )
    ]
    engine = IncrementalTopK(levels)

    for batch_index, batch in enumerate(feed(rng, n_batches=6, batch_size=400)):
        for mention in batch:
            engine.add({"org": mention})
        result = engine.query(3)
        store = engine.current_store()
        top = ", ".join(
            f"{store[g.representative_id]['org']} ({g.weight:.0f})"
            for g in list(result.groups)[:3]
        )
        stats = result.stats[-1]
        print(
            f"after batch {batch_index + 1} ({len(engine)} mentions, "
            f"retained {stats.n_prime_pct:.1f}%): {top}"
        )


if __name__ == "__main__":
    main()
