"""Concrete predicates: the paper's Section 6.1 suites plus generic forms.

Each of the paper's three evaluation datasets comes with hand-designed
sufficient predicates (S1, S2) and necessary predicates (N1, N2).  This
module implements them exactly as described, on top of a few reusable
generic predicate shapes (exact-match, n-gram overlap, word overlap).

Factory functions at the bottom assemble the per-dataset
:class:`~repro.predicates.base.PredicateLevel` lists consumed by
``PrunedDedup``.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

from ..core.records import Record
from ..similarity.encoding import bitmask_encode
from ..similarity.measures import overlap_coefficient
from ..similarity.tfidf import IdfTable
from ..similarity.tokenize import (
    ADDRESS_STOP_WORDS,
    cached_content_word_set,
    cached_initial_set,
    cached_ngram_set,
    cached_sorted_initials_key,
    cached_word_set,
    normalize,
    words,
)
from .base import Predicate, PredicateLevel
from .batch import OverlapCountRule, SetSimilarityBatch


class ExactFieldsPredicate(Predicate):
    """True when every listed field matches exactly (after normalization).

    The key *is* the matching condition, so ``key_implies_match`` holds
    and closure never verifies pairs.
    """

    key_implies_match = True

    def __init__(self, fields: Sequence[str], name: str = ""):
        if not fields:
            raise ValueError("need at least one field")
        self._fields = list(fields)
        self.name = name or f"exact({','.join(fields)})"
        self.cost = 0.1

    def evaluate(self, a: Record, b: Record) -> bool:
        return all(normalize(a[f]) == normalize(b[f]) for f in self._fields)

    def blocking_keys(self, record: Record) -> Iterable[Hashable]:
        yield tuple(normalize(record[f]) for f in self._fields)


class NgramOverlapPredicate(Predicate):
    """Overlap coefficient of character n-grams on *field* >= threshold.

    Optional *exact_fields* must also match exactly, and
    *require_common_initial* additionally demands a shared name initial
    (the difference between the paper's citation N1 and N2).
    """

    def __init__(
        self,
        field: str,
        threshold: float,
        n: int = 3,
        exact_fields: Sequence[str] = (),
        require_common_initial: bool = False,
        name: str = "",
        cost: float = 1.0,
    ):
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self._field = field
        self._threshold = threshold
        self._n = n
        self._exact_fields = tuple(exact_fields)
        self._require_common_initial = require_common_initial
        self.name = name or f"ngram({field}>={threshold})"
        self.cost = cost

    def evaluate(self, a: Record, b: Record) -> bool:
        for f in self._exact_fields:
            if normalize(a[f]) != normalize(b[f]):
                return False
        if self._require_common_initial:
            if not (
                cached_initial_set(a[self._field])
                & cached_initial_set(b[self._field])
            ):
                return False
        grams_a = cached_ngram_set(a[self._field], self._n)
        grams_b = cached_ngram_set(b[self._field], self._n)
        return overlap_coefficient(grams_a, grams_b) >= self._threshold

    def blocking_keys(self, record: Record) -> Iterable[Hashable]:
        prefix = tuple(normalize(record[f]) for f in self._exact_fields)
        for gram in cached_ngram_set(record[self._field], self._n):
            yield (*prefix, gram)

    def signature(self, record: Record):
        """(exact-field tuple, initials set or None, gram set)."""
        return (
            tuple(normalize(record[f]) for f in self._exact_fields),
            cached_initial_set(record[self._field])
            if self._require_common_initial
            else None,
            cached_ngram_set(record[self._field], self._n),
        )

    # Count filtering: each blocking key is (exact-prefix, gram), so two
    # records' shared-key count IS their gram intersection size when the
    # exact fields agree (and 0 otherwise, correctly rejecting them for
    # any positive threshold).
    count_verifiable = True

    def count_accepts(self, shared: int, n_keys_a: int, n_keys_b: int) -> bool:
        if n_keys_a == 0 or n_keys_b == 0:
            return False
        return shared / min(n_keys_a, n_keys_b) >= self._threshold

    def count_post_signature(self, record: Record):
        if self._require_common_initial:
            return cached_initial_set(record[self._field])
        return None

    def count_post_check(self, post_a, post_b) -> bool:
        if post_a is None:
            return True
        return bool(post_a & post_b)

    def evaluate_signatures(self, sig_a, sig_b) -> bool:
        exact_a, initials_a, grams_a = sig_a
        exact_b, initials_b, grams_b = sig_b
        if exact_a != exact_b:
            return False
        if initials_a is not None and not (initials_a & initials_b):
            return False
        return overlap_coefficient(grams_a, grams_b) >= self._threshold

    def batch_count_rule(self, records):
        masks = None
        bit_of_token = None
        if self._require_common_initial:
            encoded = bitmask_encode(
                [cached_initial_set(r[self._field]) for r in records]
            )
            if encoded is None:
                return None
            masks, bit_of_token = encoded
        field = self._field
        return OverlapCountRule(
            self._threshold,
            masks=masks,
            bit_of_token=bit_of_token,
            post_probe=lambda record: cached_initial_set(record[field]),
        )

    def batch_verifier(self, records):
        gate_key = None
        if self._exact_fields:
            fields = self._exact_fields
            gate_key = lambda r: tuple(normalize(r[f]) for f in fields)
        initials_fn = None
        if self._require_common_initial:
            field = self._field
            initials_fn = lambda r: cached_initial_set(r[field])
        n = self._n
        field = self._field
        return SetSimilarityBatch.build(
            records,
            "overlap_ge",
            {"threshold": self._threshold},
            gate_key=gate_key,
            initials=initials_fn,
            tokens1=lambda r: cached_ngram_set(r[field], n),
        )


class InitialsWordOverlapPredicate(Predicate):
    """At least one common initial on *field*, plus exact *exact_fields*.

    This is the students' N1: "at least one common initial in the name and
    the class and school code match".
    """

    def __init__(self, field: str, exact_fields: Sequence[str] = (), name: str = ""):
        self._field = field
        self._exact_fields = tuple(exact_fields)
        self.name = name or f"common-initial({field})"
        self.cost = 0.3

    def evaluate(self, a: Record, b: Record) -> bool:
        for f in self._exact_fields:
            if normalize(a[f]) != normalize(b[f]):
                return False
        return bool(
            cached_initial_set(a[self._field])
            & cached_initial_set(b[self._field])
        )

    def blocking_keys(self, record: Record) -> Iterable[Hashable]:
        prefix = tuple(normalize(record[f]) for f in self._exact_fields)
        for initial in cached_initial_set(record[self._field]):
            yield (*prefix, initial)

    def batch_verifier(self, records):
        gate_key = None
        if self._exact_fields:
            fields = self._exact_fields
            gate_key = lambda r: tuple(normalize(r[f]) for f in fields)
        field = self._field
        return SetSimilarityBatch.build(
            records,
            "initials_any",
            {},
            gate_key=gate_key,
            initials=lambda r: cached_initial_set(r[field]),
        )


class CommonWordsPredicate(Predicate):
    """At least *min_common* shared non-stop words across *fields*.

    The address N1: "the number of common non-stop words in the
    concatenation of the name and address fields be at least 4".

    Blocking uses the classic *prefix filter*: sort a record's words by a
    global total order and emit only the first ``len - min_common + 1``
    as keys — any pair sharing >= min_common words must then share a key.
    Passing *word_frequency* (corpus word -> document frequency) orders
    rarest-first, which shrinks posting lists dramatically; without it a
    lexicographic order is used (correct, less selective).
    """

    def __init__(
        self,
        fields: Sequence[str],
        min_common: int,
        stop_words: frozenset[str] = frozenset(),
        name: str = "",
        word_frequency: dict[str, int] | None = None,
    ):
        if min_common < 1:
            raise ValueError(f"min_common must be >= 1, got {min_common}")
        self._fields = tuple(fields)
        self._min_common = min_common
        self._stop_words = stop_words
        self._word_frequency = word_frequency or {}
        # Word sets are cached per record id; a predicate instance must
        # therefore only be used against a single RecordStore.
        self._by_record: dict[int, frozenset[str]] = {}
        self.name = name or f"common-words(>={min_common})"
        self.cost = 0.5

    def _word_set(self, record: Record) -> frozenset[str]:
        cached = self._by_record.get(record.record_id)
        if cached is None:
            text = " ".join(record[f] for f in self._fields)
            cached = cached_content_word_set(text, self._stop_words)
            self._by_record[record.record_id] = cached
        return cached

    def evaluate(self, a: Record, b: Record) -> bool:
        return len(self._word_set(a) & self._word_set(b)) >= self._min_common

    def signature(self, record: Record) -> frozenset[str]:
        return self._word_set(record)

    def evaluate_signatures(self, sig_a, sig_b) -> bool:
        return len(sig_a & sig_b) >= self._min_common

    def blocking_keys(self, record: Record) -> Iterable[Hashable]:
        word_set = self._word_set(record)
        if len(word_set) < self._min_common:
            return  # cannot reach min_common shared words with anyone
        ordered = sorted(
            word_set, key=lambda w: (self._word_frequency.get(w, 0), w)
        )
        yield from ordered[: len(ordered) - self._min_common + 1]

    def batch_verifier(self, records):
        return SetSimilarityBatch.build(
            records,
            "inter_ge",
            {"min_common": self._min_common},
            tokens1=self._word_set,
        )


class JaccardPredicate(Predicate):
    """Jaccard of word sets on *field* >= threshold.

    Generic canopy-style predicate; also the "merge all records with more
    than 90% common words" pre-collapse the paper applies to raw
    citations.
    """

    def __init__(self, field: str, threshold: float, name: str = "", cost: float = 1.0):
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self._field = field
        self._threshold = threshold
        self.name = name or f"jaccard({field}>={threshold})"
        self.cost = cost

    def evaluate(self, a: Record, b: Record) -> bool:
        set_a = cached_word_set(a[self._field])
        set_b = cached_word_set(b[self._field])
        if not set_a and not set_b:
            return True
        if not set_a or not set_b:
            return False
        inter = len(set_a & set_b)
        return inter / (len(set_a) + len(set_b) - inter) >= self._threshold

    def blocking_keys(self, record: Record) -> Iterable[Hashable]:
        yield from cached_word_set(record[self._field])

    def batch_verifier(self, records):
        field = self._field
        return SetSimilarityBatch.build(
            records,
            "jaccard_ge",
            {"threshold": self._threshold},
            tokens1=lambda r: cached_word_set(r[field]),
        )


# ---------------------------------------------------------------------------
# Citation dataset predicates (Section 6.1.1)
# ---------------------------------------------------------------------------


class CitationS1(Predicate):
    """Sufficient S1: author initials match exactly, the minimum IDF over
    the two authors' name words is at least *min_idf* ("their names need
    to be sufficiently rare and their initials have to match"), and the
    names agree on their rarest token.

    The rarest-token condition is a strictly tightening refinement of the
    paper's S1 (anything it merges, the paper's S1 merges too, so
    sufficiency is preserved): it anchors each qualifying name to its
    most distinctive word, which stops a typo-induced rare variant of one
    name from matching a different rare name that merely shares initials.

    S1 is an equivalence relation on the qualifying (rare-named) records:
    keys are only emitted for them and two qualifying records match iff
    their keys coincide — so shared key implies match and the closure can
    union whole blocks without pairwise verification.
    """

    key_implies_match = True

    def __init__(
        self,
        idf: IdfTable,
        min_idf: float,
        field: str = "author",
        anchor_idf: IdfTable | None = None,
    ):
        self._idf = idf
        self._min_idf = min_idf
        self._field = field
        # The anchor table picks each name's most distinctive token; a
        # distinct-string IDF avoids ties that a blocked IDF cannot break
        # (see repro.datasets.citations.author_string_idf).
        self._anchor_idf = anchor_idf or idf
        self.name = f"citation-S1(idf>={min_idf:.2f})"
        self.cost = 0.2

    def _rare_enough(self, record: Record) -> bool:
        # All tokens count, single-letter initials included: an initial
        # like "a" is common corpus-wide, so initialized mentions fail
        # the rarity test — exactly what keeps S1 from equating
        # "a sharma" with "a shah" through the shared key "as".
        tokens = words(record[self._field])
        if not tokens:
            return False
        return self._idf.min_idf(tokens) >= self._min_idf

    def _key(self, record: Record) -> tuple[str, str]:
        tokens = words(record[self._field])
        rarest = max(tokens, key=lambda t: (self._anchor_idf.idf(t), t))
        return (cached_sorted_initials_key(record[self._field]), rarest)

    def evaluate(self, a: Record, b: Record) -> bool:
        if not (self._rare_enough(a) and self._rare_enough(b)):
            return False
        return self._key(a) == self._key(b)

    def blocking_keys(self, record: Record) -> Iterable[Hashable]:
        # Records whose own words are too common can never satisfy S1.
        if self._rare_enough(record):
            yield self._key(record)


class CitationS2(Predicate):
    """Sufficient S2: initials match exactly, at least *min_coauthors*
    common co-author words, and last names match.
    """

    def __init__(
        self,
        author_field: str = "author",
        coauthor_field: str = "coauthors",
        min_coauthors: int = 3,
    ):
        self._author_field = author_field
        self._coauthor_field = coauthor_field
        self._min_coauthors = min_coauthors
        self.name = f"citation-S2(coauth>={min_coauthors})"
        self.cost = 0.4

    def _last_name(self, record: Record) -> str:
        tokens = words(record[self._author_field])
        return tokens[-1] if tokens else ""

    def evaluate(self, a: Record, b: Record) -> bool:
        if cached_sorted_initials_key(a[self._author_field]) != cached_sorted_initials_key(
            b[self._author_field]
        ):
            return False
        if self._last_name(a) != self._last_name(b):
            return False
        common = cached_word_set(a[self._coauthor_field]) & cached_word_set(
            b[self._coauthor_field]
        )
        return len(common) >= self._min_coauthors

    def blocking_keys(self, record: Record) -> Iterable[Hashable]:
        yield (
            cached_sorted_initials_key(record[self._author_field]),
            self._last_name(record),
        )

    def batch_verifier(self, records):
        coauthor_field = self._coauthor_field
        return SetSimilarityBatch.build(
            records,
            "inter_ge",
            {"min_common": self._min_coauthors},
            gate_key=lambda r: (
                cached_sorted_initials_key(r[self._author_field]),
                self._last_name(r),
            ),
            tokens1=lambda r: cached_word_set(r[coauthor_field]),
        )


def citation_n1(threshold: float = 0.6) -> Predicate:
    """Necessary N1: common author 3-grams > *threshold* of the smaller set."""
    return NgramOverlapPredicate(
        field="author",
        threshold=threshold,
        name=f"citation-N1(3gram>{threshold})",
        cost=0.8,
    )


def citation_n2(threshold: float = 0.6) -> Predicate:
    """Necessary N2: N1 plus at least one common initial."""
    return NgramOverlapPredicate(
        field="author",
        threshold=threshold,
        require_common_initial=True,
        name=f"citation-N2(3gram>{threshold}+initial)",
        cost=1.0,
    )


def citation_levels(
    idf: IdfTable, min_idf: float, anchor_idf: IdfTable | None = None
) -> list[PredicateLevel]:
    """The two citation predicate levels of Section 6.1.1.

    *anchor_idf* (a distinct-string IDF) sharpens S1's rarest-token
    anchor; without it the rarity table doubles as the anchor table.
    """
    return [
        PredicateLevel(
            CitationS1(idf, min_idf, anchor_idf=anchor_idf),
            citation_n1(),
            name="citation-1",
        ),
        PredicateLevel(CitationS2(), citation_n2(), name="citation-2"),
    ]


# ---------------------------------------------------------------------------
# Students dataset predicates (Section 6.1.2)
# ---------------------------------------------------------------------------


def student_s1() -> Predicate:
    """Sufficient S1: name, class, school and birth date all exact."""
    return ExactFieldsPredicate(
        ["name", "class", "school", "dob"], name="student-S1"
    )


def student_s2(threshold: float = 0.9) -> Predicate:
    """Sufficient S2: like S1 but name needs only 90% 3-gram overlap."""
    return NgramOverlapPredicate(
        field="name",
        threshold=threshold,
        exact_fields=("class", "school", "dob"),
        name=f"student-S2(3gram>={threshold})",
        cost=0.4,
    )


def student_n1() -> Predicate:
    """Necessary N1: one common name initial; class and school exact."""
    return InitialsWordOverlapPredicate(
        field="name", exact_fields=("class", "school"), name="student-N1"
    )


def student_n2(threshold: float = 0.5) -> Predicate:
    """Necessary N2: 50% common name 3-grams; class and school exact."""
    return NgramOverlapPredicate(
        field="name",
        threshold=threshold,
        exact_fields=("class", "school"),
        name=f"student-N2(3gram>={threshold})",
        cost=0.9,
    )


def student_levels() -> list[PredicateLevel]:
    """The two student predicate levels of Section 6.1.2."""
    return [
        PredicateLevel(student_s1(), student_n1(), name="student-1"),
        PredicateLevel(student_s2(), student_n2(), name="student-2"),
    ]


# ---------------------------------------------------------------------------
# Address dataset predicates (Section 6.1.3)
# ---------------------------------------------------------------------------


class AddressS1(Predicate):
    """Sufficient S1: name initials match exactly, common non-stop name
    words > *name_threshold* of the smaller set, and matching non-stop
    address words >= *address_threshold* of the smaller set.
    """

    def __init__(
        self,
        name_threshold: float = 0.7,
        address_threshold: float = 0.6,
        stop_words: frozenset[str] = ADDRESS_STOP_WORDS,
    ):
        self._name_threshold = name_threshold
        self._address_threshold = address_threshold
        self._stop_words = stop_words
        self.name = "address-S1"
        self.cost = 0.5

    def evaluate(self, a: Record, b: Record) -> bool:
        if cached_sorted_initials_key(a["name"]) != cached_sorted_initials_key(b["name"]):
            return False
        name_a = cached_content_word_set(a["name"], self._stop_words)
        name_b = cached_content_word_set(b["name"], self._stop_words)
        if overlap_coefficient(name_a, name_b) <= self._name_threshold:
            return False
        addr_a = cached_content_word_set(a["address"], self._stop_words)
        addr_b = cached_content_word_set(b["address"], self._stop_words)
        return overlap_coefficient(addr_a, addr_b) >= self._address_threshold

    def blocking_keys(self, record: Record) -> Iterable[Hashable]:
        yield cached_sorted_initials_key(record["name"])

    def signature(self, record: Record):
        """(initials key, name content words, address content words)."""
        return (
            cached_sorted_initials_key(record["name"]),
            cached_content_word_set(record["name"], self._stop_words),
            cached_content_word_set(record["address"], self._stop_words),
        )

    def evaluate_signatures(self, sig_a, sig_b) -> bool:
        key_a, name_a, addr_a = sig_a
        key_b, name_b, addr_b = sig_b
        if key_a != key_b:
            return False
        if overlap_coefficient(name_a, name_b) <= self._name_threshold:
            return False
        return overlap_coefficient(addr_a, addr_b) >= self._address_threshold

    def batch_verifier(self, records):
        stop = self._stop_words
        return SetSimilarityBatch.build(
            records,
            "address_s1",
            {
                "name_threshold": self._name_threshold,
                "address_threshold": self._address_threshold,
            },
            gate_key=lambda r: cached_sorted_initials_key(r["name"]),
            tokens1=lambda r: cached_content_word_set(r["name"], stop),
            tokens2=lambda r: cached_content_word_set(r["address"], stop),
        )


def address_n1(
    min_common: int = 4,
    stop_words: frozenset[str] = ADDRESS_STOP_WORDS,
    word_frequency: dict[str, int] | None = None,
) -> Predicate:
    """Necessary N1: >= *min_common* shared non-stop words of name+address."""
    return CommonWordsPredicate(
        fields=("name", "address"),
        min_common=min_common,
        stop_words=stop_words,
        name=f"address-N1(words>={min_common})",
        word_frequency=word_frequency,
    )


def address_word_frequency(store, stop_words: frozenset[str] = ADDRESS_STOP_WORDS):
    """Document frequency of non-stop name+address words over *store*.

    Feed to :func:`address_n1` so its prefix filter orders rarest-first.
    """
    from collections import Counter

    df: Counter[str] = Counter()
    for record in store:
        text = f"{record['name']} {record['address']}"
        df.update(cached_content_word_set(text, stop_words))
    return dict(df)


def address_levels(store=None) -> list[PredicateLevel]:
    """The single address predicate level of Section 6.1.3.

    Passing the target *store* precomputes word frequencies for the
    necessary predicate's prefix filter (a pure speed-up).
    """
    frequency = address_word_frequency(store) if store is not None else None
    return [
        PredicateLevel(
            AddressS1(), address_n1(word_frequency=frequency), name="address-1"
        )
    ]
