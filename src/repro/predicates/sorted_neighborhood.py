"""Sorted-neighborhood blocking (Hernandez & Stolfo's classic SNM).

The other canonical canopy besides key blocking and TF-IDF canopies:
sort records by a domain key and compare only records within a sliding
window.  Multi-pass SNM (several keys) recovers pairs a single sort
order misses.  Unlike predicate key-blocking, SNM gives *bounded* pair
counts (``n * window`` per pass) at a recall cost — which is exactly why
:func:`repro.predicates.blocking.closure` already falls back to it for
pathologically large blocks; this module exposes the method standalone.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence

from ..core.records import Record

SortKey = Callable[[Record], str]


def field_key(field: str) -> SortKey:
    """Sort key: the normalized field value."""
    from ..similarity.tokenize import normalize

    def key(record: Record) -> str:
        return normalize(record[field])

    return key


def reversed_tokens_key(field: str) -> SortKey:
    """Sort key: field tokens reversed ("sunita sarawagi" -> "sarawagi sunita").

    The classic second SNM pass — surname-first ordering groups records
    that a first-name-first sort scatters.
    """
    from ..similarity.tokenize import words

    def key(record: Record) -> str:
        return " ".join(reversed(words(record[field])))

    return key


def soundex_key(field: str) -> SortKey:
    """Sort key: Soundex codes of the field tokens (phonetic pass)."""
    from ..similarity.strings import soundex
    from ..similarity.tokenize import words

    def key(record: Record) -> str:
        return " ".join(soundex(w) for w in words(record[field]))

    return key


def sorted_neighborhood_pairs(
    records: Sequence[Record],
    keys: Sequence[SortKey],
    window: int = 5,
) -> Iterator[tuple[int, int]]:
    """Yield candidate position pairs from multi-pass sorted neighborhoods.

    Each pass sorts positions by one key and pairs every record with its
    ``window - 1`` successors; passes are unioned and each pair is
    yielded once, as ``(min, max)``.  Total candidates are bounded by
    ``len(keys) * window * n``.
    """
    if window < 2:
        raise ValueError(f"window must be >= 2, got {window}")
    if not keys:
        raise ValueError("need at least one sort key")
    seen: set[tuple[int, int]] = set()
    for key in keys:
        order = sorted(range(len(records)), key=lambda p: key(records[p]))
        for rank, position in enumerate(order):
            for other in order[rank + 1 : rank + window]:
                pair = (
                    (position, other) if position < other else (other, position)
                )
                if pair not in seen:
                    seen.add(pair)
                    yield pair


def sorted_neighborhood_recall(
    records: Sequence[Record],
    labels: Sequence[int],
    keys: Sequence[SortKey],
    window: int = 5,
) -> float:
    """Fraction of true duplicate pairs surfaced by the SNM passes.

    Evaluation helper: compares the raw candidate set against gold
    labels.  Note this is *pair* recall — entities with more mentions
    than the window necessarily miss their distant internal pairs, which
    downstream transitive closure repairs; component-level recall is
    therefore higher.
    """
    from collections import defaultdict

    by_entity: dict[int, list[int]] = defaultdict(list)
    for position, label in enumerate(labels):
        by_entity[label].append(position)
    true_pairs = {
        (members[i], members[j])
        for members in by_entity.values()
        for i in range(len(members))
        for j in range(i + 1, len(members))
    }
    if not true_pairs:
        return 1.0
    found = set(sorted_neighborhood_pairs(records, keys, window))
    return len(true_pairs & found) / len(true_pairs)
