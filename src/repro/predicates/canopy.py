"""TF-IDF canopy predicate (McCallum, Nigam & Ungar [26]).

Section 3: "a cheap canopy predicate is used to filter the set of tuple
pairs that are likely to be duplicates.  For example [26, 15] proposes
to use TFIDF similarity on entity names to find likely duplicates.
TFIDF similarity can be evaluated efficiently using an inverted index."

:class:`TfIdfCanopy` packages exactly that as a
:class:`~repro.predicates.base.Predicate`, so it can serve as a
necessary predicate / canopy anywhere the generic ones do.  The corpus
statistics are built once from the store the canopy will run against.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

from ..core.records import Record
from ..similarity.tfidf import IdfTable, tfidf_cosine
from ..similarity.tokenize import words
from .base import Predicate


class TfIdfCanopy(Predicate):
    """TF-IDF cosine on *field* >= *threshold*, with IDF-pruned blocking.

    Blocking keys are the record's tokens whose individual squared
    normalized weight could still push a pair over the threshold — a
    token contributing less than ``threshold^2 / len(tokens)`` to the
    cosine of even a perfectly matching pair cannot be the sole witness,
    but removing keys must preserve the guarantee, so only tokens that
    are *universally* weak (stop-word-like, bottom of the IDF table) are
    dropped, and only when the record has stronger tokens to stand on.
    In practice this strips high-frequency noise words from the index
    while keeping the canopy sound for the threshold given.
    """

    def __init__(
        self,
        field: str,
        idf: IdfTable,
        threshold: float = 0.3,
        name: str = "",
    ):
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self._field = field
        self._idf = idf
        self._threshold = threshold
        self._vectors: dict[int, dict[str, float]] = {}
        self.name = name or f"tfidf-canopy({field}>={threshold})"
        self.cost = 0.6

    @classmethod
    def from_records(
        cls,
        records: Sequence[Record],
        field: str,
        threshold: float = 0.3,
        name: str = "",
    ) -> "TfIdfCanopy":
        """Build the IDF table from *records* and return the canopy."""
        idf = IdfTable(words(record[field]) for record in records)
        return cls(field, idf, threshold=threshold, name=name)

    def _vector(self, record: Record) -> dict[str, float]:
        cached = self._vectors.get(record.record_id)
        if cached is None:
            cached = self._idf.weight_vector(words(record[self._field]))
            self._vectors[record.record_id] = cached
        return cached

    def evaluate(self, a: Record, b: Record) -> bool:
        return tfidf_cosine(self._vector(a), self._vector(b)) >= self._threshold

    def blocking_keys(self, record: Record) -> Iterable[Hashable]:
        vector = self._vector(record)
        if not vector:
            return
        # Soundness: if cosine(a, b) >= t then some shared token
        # contributes >= t / m of the dot product (m = shared tokens
        # <= len(vector_a)); with the other side's weight <= 1 that
        # witness has weight_a >= t / len(vector_a).  Tokens below that
        # cutoff can never be the witness on this record's side.
        cutoff = self._threshold / len(vector)
        yield from (
            token for token, weight in vector.items() if weight >= cutoff
        )


def canopy_pairs(
    records: Sequence[Record],
    field: str,
    threshold: float = 0.3,
) -> list[tuple[int, int]]:
    """Convenience: all position pairs with TF-IDF cosine >= threshold."""
    from .blocking import candidate_pairs

    canopy = TfIdfCanopy.from_records(records, field, threshold)
    return sorted(candidate_pairs(canopy, records, verify=True))
