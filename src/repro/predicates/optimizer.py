"""Predicate selection and ordering (the paper's stated future work).

Section 8: "Future work includes methods for automatically choosing the
necessary and sufficient predicates, designing a query optimization
framework for selecting the best subset of predicates based on
selectivity and running time."

This module implements that framework at its natural granularity:

* :func:`profile_level` measures, on a sample of the data, what one
  (sufficient, necessary) level actually buys — collapse factor, prune
  factor for a reference K, and wall-clock cost;
* :func:`order_levels` greedily sequences candidate levels by marginal
  group-reduction per second, re-profiling on the sample state each
  pick (a later level is only worth running on what earlier levels left
  behind), and drops levels whose marginal gain is negligible.

The result plugs straight into :func:`repro.core.pruned_dedup`.
"""

from __future__ import annotations

import time
import typing
from dataclasses import dataclass

import numpy as np

from .base import PredicateLevel

if typing.TYPE_CHECKING:  # imported lazily at runtime (core imports us)
    from ..core.records import GroupSet, RecordStore


@dataclass(frozen=True)
class LevelProfile:
    """Measured behaviour of one predicate level on a sample.

    Attributes:
        level_name: The profiled level.
        groups_before: Groups entering the level.
        groups_after_collapse: Groups after the sufficient closure.
        groups_after_prune: Groups after bound + prune.
        seconds: Wall-clock cost of running the level on the sample.
        reduction: Fractional group reduction achieved (0..1).
    """

    level_name: str
    groups_before: int
    groups_after_collapse: int
    groups_after_prune: int
    seconds: float

    @property
    def reduction(self) -> float:
        if self.groups_before == 0:
            return 0.0
        return 1.0 - self.groups_after_prune / self.groups_before

    @property
    def gain_per_second(self) -> float:
        """Groups eliminated per second — the greedy ordering key."""
        eliminated = self.groups_before - self.groups_after_prune
        return eliminated / max(self.seconds, 1e-6)


def sample_store(store: "RecordStore", n: int, seed: int = 0) -> "RecordStore":
    """A uniform sample of *store* as a standalone RecordStore."""
    from ..core.records import Record, RecordStore

    if n >= len(store):
        return store
    rng = np.random.default_rng(seed)
    chosen = sorted(int(i) for i in rng.choice(len(store), size=n, replace=False))
    return RecordStore(
        Record(record_id=new_id, fields=store[old].fields, weight=store[old].weight)
        for new_id, old in enumerate(chosen)
    )


def profile_level(
    group_set: "GroupSet", level: PredicateLevel, k: int
) -> tuple[LevelProfile, "GroupSet"]:
    """Run *level* on *group_set*; return its profile and the result."""
    from ..core.collapse import collapse
    from ..core.lower_bound import estimate_lower_bound
    from ..core.prune import prune

    start = time.perf_counter()
    collapsed = collapse(group_set, level.sufficient)
    estimate = estimate_lower_bound(collapsed, level.necessary, k)
    pruned = prune(collapsed, level.necessary, estimate.bound)
    seconds = time.perf_counter() - start
    profile = LevelProfile(
        level_name=level.name,
        groups_before=len(group_set),
        groups_after_collapse=len(collapsed),
        groups_after_prune=len(pruned.retained),
        seconds=seconds,
    )
    return profile, pruned.retained


def order_levels(
    candidates: list[PredicateLevel],
    store: "RecordStore",
    k: int,
    sample_size: int = 2000,
    min_marginal_reduction: float = 0.02,
    seed: int = 0,
) -> tuple[list[PredicateLevel], list[LevelProfile]]:
    """Greedily order (and subset) candidate levels by measured value.

    Each round profiles every remaining candidate on the current sample
    state and commits the one eliminating the most groups per second;
    candidates whose best marginal reduction falls below
    *min_marginal_reduction* are dropped.  Returns the chosen ordering
    and the profile of each chosen level (as measured when picked).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not candidates:
        raise ValueError("need at least one candidate level")

    from ..core.records import GroupSet

    sample = sample_store(store, sample_size, seed=seed)
    state = GroupSet.singletons(sample)
    remaining = list(candidates)
    chosen: list[PredicateLevel] = []
    profiles: list[LevelProfile] = []

    while remaining:
        measured: list[tuple[LevelProfile, "GroupSet", PredicateLevel]] = []
        for level in remaining:
            profile, result = profile_level(state, level, k)
            measured.append((profile, result, level))
        measured.sort(key=lambda entry: -entry[0].gain_per_second)
        best_profile, best_state, best_level = measured[0]
        if best_profile.reduction < min_marginal_reduction:
            break
        chosen.append(best_level)
        profiles.append(best_profile)
        state = best_state
        remaining.remove(best_level)
    if not chosen:
        # Never return an empty plan: keep the single most effective
        # candidate even if its measured reduction was small.
        profile, _, level = measured[0]
        chosen.append(level)
        profiles.append(profile)
    return chosen, profiles
