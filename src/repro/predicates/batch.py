"""Vectorized batch predicate verification over pre-encoded arrays.

The scalar pipeline decides one candidate pair per Python call.  This
module decides one *candidate block* per NumPy call, on integer arrays
encoded once at index-build time:

* :class:`SetSimilarityBatch` — a pairwise verifier for the library's
  set-similarity predicate shapes (overlap coefficient, shared-word
  count, Jaccard, common initials, the address S1 conjunction), with an
  optional exact-match *gate* (dictionary-encoded field tuples) and
  initials as uint64 bitmasks;
* :class:`OverlapCountRule` — the vectorized form of the
  count-filtering fast path (``shared / min(keys) >= t`` plus the
  initials post-check) for :class:`~repro.predicates.library.NgramOverlapPredicate`;
* :class:`BatchNeighborEngine` — member/probe neighbor computation
  over CSR postings: gather the probe's posting rows, count shared
  keys per candidate with one ``np.unique``, verify the whole
  candidate block with the rule or verifier.

Every kernel replicates the scalar semantics bit-for-bit (see
:mod:`repro.similarity.encoding` for the float contract); the
differential-oracle and parallel property suites assert the equality
end-to-end on every dataset family.

Predicates opt in via :meth:`~repro.predicates.base.Predicate.batch_verifier`
/ :meth:`~repro.predicates.base.Predicate.batch_count_rule`; wrappers
(resilience guards, chaos) deliberately do not forward the hooks, so
guarded runs fall back to the scalar path and fault containment keeps
intercepting every predicate call.  The ``REPRO_VECTORIZE`` environment
variable (``0``/``false``/``off`` to disable) forces the scalar path
globally — the lever the equivalence tests use.

Engines are built from plain arrays and parameter dicts
(:meth:`BatchNeighborEngine.export_state`), so the parallel layer can
ship them to workers through ``multiprocessing.shared_memory`` instead
of pickling records.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Hashable, Sequence

import numpy as np

from ..core.records import Record
from ..similarity.encoding import (
    EncodedSetCorpus,
    TokenDictionary,
    bitmask_encode,
    bitmask_probe,
    gather_rows,
    intersection_counts,
    jaccard_block,
    overlap_block,
)

#: Environment variable disabling the vectorized path (set to ``0``,
#: ``false`` or ``off``); anything else — including unset — enables it.
VECTORIZE_ENV_VAR = "REPRO_VECTORIZE"


def vectorize_enabled(explicit: bool | None = None) -> bool:
    """Resolve the vectorization switch.

    An explicit True/False wins; ``None`` consults ``REPRO_VECTORIZE``
    (default: enabled).
    """
    if explicit is not None:
        return explicit
    raw = os.environ.get(VECTORIZE_ENV_VAR, "").strip().lower()
    return raw not in ("0", "false", "off", "no")


#: Verifier rules understood by :class:`SetSimilarityBatch`.
_RULES = ("overlap_ge", "inter_ge", "jaccard_ge", "initials_any", "address_s1")


class SetSimilarityBatch:
    """Verify one probe record against a block of candidates at once.

    A verifier instance is bound to one record sequence (the index's
    records); features are encoded once at construction:

    * ``gate_ids`` — dictionary id of an exact-match key (tuple of
      normalized fields, initials key, ...); candidates whose gate
      differs from the probe's fail immediately;
    * ``masks`` — uint64 bitmask of a small set (name initials); the
      "share at least one" check is a single ``&``;
    * token CSR corpora — the set(s) the similarity rule runs on.

    ``rule`` selects the decision applied after the gate/mask checks:

    ========== =================================================
    rule        accept condition
    ========== =================================================
    overlap_ge  ``overlap_coefficient(a, b) >= threshold``
    inter_ge    ``|a ∩ b| >= min_common``
    jaccard_ge  ``jaccard(a, b) >= threshold``
    initials_any  gate/mask checks only (no token sets)
    address_s1  ``overlap(name) > name_threshold`` and
                ``overlap(addr) >= address_threshold``
    ========== =================================================
    """

    def __init__(
        self,
        rule: str,
        params: dict[str, float],
        gate_ids: np.ndarray | None = None,
        masks: np.ndarray | None = None,
        corpus1: EncodedSetCorpus | None = None,
        corpus2: EncodedSetCorpus | None = None,
        vocab1: int = 0,
        vocab2: int = 0,
        gate_map: dict[Hashable, int] | None = None,
        bit_of_token: dict[Hashable, int] | None = None,
        features: dict[str, Callable[[Record], object]] | None = None,
    ) -> None:
        if rule not in _RULES:
            raise ValueError(f"unknown batch rule {rule!r}")
        self.rule = rule
        self.params = params
        self.gate_ids = gate_ids
        self.masks = masks
        self._indptr1 = corpus1.indptr if corpus1 is not None else None
        self._ids1 = corpus1.token_ids if corpus1 is not None else None
        self._indptr2 = corpus2.indptr if corpus2 is not None else None
        self._ids2 = corpus2.token_ids if corpus2 is not None else None
        self._vocab1 = (
            corpus1.vocabulary_size if corpus1 is not None else vocab1
        )
        self._vocab2 = (
            corpus2.vocabulary_size if corpus2 is not None else vocab2
        )
        self._scratch1 = (
            np.zeros(self._vocab1, dtype=bool) if self._indptr1 is not None else None
        )
        self._scratch2 = (
            np.zeros(self._vocab2, dtype=bool) if self._indptr2 is not None else None
        )
        # Parent-only probe-encoding state; absent on worker rebuilds
        # (workers verify member probes, which need only the arrays).
        self._gate_map = gate_map
        self._bit_of_token = bit_of_token
        self._dict1 = corpus1.dictionary if corpus1 is not None else None
        self._dict2 = corpus2.dictionary if corpus2 is not None else None
        self._features = features or {}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        records: Sequence[Record],
        rule: str,
        params: dict[str, float],
        gate_key: Callable[[Record], Hashable] | None = None,
        initials: Callable[[Record], frozenset] | None = None,
        tokens1: Callable[[Record], frozenset] | None = None,
        tokens2: Callable[[Record], frozenset] | None = None,
    ) -> "SetSimilarityBatch | None":
        """Encode *records* under the feature extractors; None when the
        shape cannot be vectorized (initials vocabulary over 64 bits)."""
        gate_ids = None
        gate_map = None
        if gate_key is not None:
            gate_dict = TokenDictionary()
            gate_ids = np.fromiter(
                (gate_dict.add(gate_key(record)) for record in records),
                dtype=np.int32,
                count=len(records),
            )
            gate_map = dict(gate_dict._ids)  # noqa: SLF001 - same module family
        masks = None
        bit_of_token = None
        if initials is not None:
            encoded = bitmask_encode([initials(record) for record in records])
            if encoded is None:
                return None
            masks, bit_of_token = encoded
        corpus1 = (
            EncodedSetCorpus.from_sets([tokens1(r) for r in records])
            if tokens1 is not None
            else None
        )
        corpus2 = (
            EncodedSetCorpus.from_sets([tokens2(r) for r in records])
            if tokens2 is not None
            else None
        )
        return cls(
            rule,
            params,
            gate_ids=gate_ids,
            masks=masks,
            corpus1=corpus1,
            corpus2=corpus2,
            gate_map=gate_map,
            bit_of_token=bit_of_token,
            features={
                "gate_key": gate_key,
                "initials": initials,
                "tokens1": tokens1,
                "tokens2": tokens2,
            },
        )

    # -- probe encoding ----------------------------------------------------

    def encode_probe(self, record: Record):
        """Encode an external probe, or None when this instance cannot
        (worker rebuilds drop the dictionaries; callers fall back to
        the scalar strategy)."""
        features = self._features
        if not features:
            return None
        gate = None
        if self.gate_ids is not None:
            # -2 is "gate unseen in the index": matches no candidate.
            gate = self._gate_map.get(features["gate_key"](record), -2)
        mask = None
        if self.masks is not None:
            mask = np.uint64(
                bitmask_probe(features["initials"](record), self._bit_of_token)
            )
        ids1 = size1 = None
        if self._indptr1 is not None:
            token_set = features["tokens1"](record)
            ids1 = self._dict1.lookup_ids(token_set)
            size1 = len(token_set)
        ids2 = size2 = None
        if self._indptr2 is not None:
            token_set = features["tokens2"](record)
            ids2 = self._dict2.lookup_ids(token_set)
            size2 = len(token_set)
        return (gate, mask, ids1, size1, ids2, size2)

    def member_state(self, position: int):
        """Probe state for the indexed record at *position* (pure array
        reads — this is the path worker rebuilds use)."""
        gate = (
            int(self.gate_ids[position]) if self.gate_ids is not None else None
        )
        mask = self.masks[position] if self.masks is not None else None
        ids1 = size1 = None
        if self._indptr1 is not None:
            start, stop = self._indptr1[position], self._indptr1[position + 1]
            ids1 = self._ids1[start:stop]
            size1 = int(stop - start)
        ids2 = size2 = None
        if self._indptr2 is not None:
            start, stop = self._indptr2[position], self._indptr2[position + 1]
            ids2 = self._ids2[start:stop]
            size2 = int(stop - start)
        return (gate, mask, ids1, size1, ids2, size2)

    # -- verification ------------------------------------------------------

    def verify_member_block(
        self, position: int, candidates: np.ndarray
    ) -> np.ndarray:
        """Verdicts of (member at *position*, candidate) for each row."""
        return self.verify_block(self.member_state(position), candidates)

    def verify_block(self, probe_state, candidates: np.ndarray) -> np.ndarray:
        """Boolean verdict per candidate row for an encoded probe."""
        gate, mask, ids1, size1, ids2, size2 = probe_state
        ok = np.ones(len(candidates), dtype=bool)
        if self.gate_ids is not None:
            ok &= self.gate_ids[candidates] == gate
        if self.masks is not None:
            ok &= (self.masks[candidates] & mask) != np.uint64(0)
        rule = self.rule
        if rule == "initials_any":
            return ok
        inter1 = intersection_counts(
            ids1, self._indptr1, self._ids1, candidates, self._scratch1
        )
        sizes1 = (
            self._indptr1[candidates + np.int64(1)] - self._indptr1[candidates]
        )
        if rule == "overlap_ge":
            ok &= (
                overlap_block(inter1, size1, sizes1)
                >= self.params["threshold"]
            )
        elif rule == "inter_ge":
            ok &= inter1 >= self.params["min_common"]
        elif rule == "jaccard_ge":
            ok &= (
                jaccard_block(inter1, size1, sizes1)
                >= self.params["threshold"]
            )
        else:  # address_s1
            ok &= (
                overlap_block(inter1, size1, sizes1)
                > self.params["name_threshold"]
            )
            inter2 = intersection_counts(
                ids2, self._indptr2, self._ids2, candidates, self._scratch2
            )
            sizes2 = (
                self._indptr2[candidates + np.int64(1)]
                - self._indptr2[candidates]
            )
            ok &= (
                overlap_block(inter2, size2, sizes2)
                >= self.params["address_threshold"]
            )
        return ok

    # -- worker transport --------------------------------------------------

    def export_state(self) -> tuple[dict[str, np.ndarray], dict]:
        """(arrays, params) sufficient to rebuild a member-only verifier."""
        arrays: dict[str, np.ndarray] = {}
        if self.gate_ids is not None:
            arrays["verifier_gate_ids"] = self.gate_ids
        if self.masks is not None:
            arrays["verifier_masks"] = self.masks
        if self._indptr1 is not None:
            arrays["verifier_indptr1"] = self._indptr1
            arrays["verifier_ids1"] = self._ids1
        if self._indptr2 is not None:
            arrays["verifier_indptr2"] = self._indptr2
            arrays["verifier_ids2"] = self._ids2
        params = {
            "rule": self.rule,
            "params": dict(self.params),
            "vocab1": self._vocab1,
            "vocab2": self._vocab2,
        }
        return arrays, params

    @classmethod
    def from_state(
        cls, arrays: dict[str, np.ndarray], params: dict
    ) -> "SetSimilarityBatch":
        """Rebuild from exported arrays (member-probe verification only)."""
        verifier = cls.__new__(cls)
        verifier.rule = params["rule"]
        verifier.params = params["params"]
        verifier.gate_ids = arrays.get("verifier_gate_ids")
        verifier.masks = arrays.get("verifier_masks")
        verifier._indptr1 = arrays.get("verifier_indptr1")
        verifier._ids1 = arrays.get("verifier_ids1")
        verifier._indptr2 = arrays.get("verifier_indptr2")
        verifier._ids2 = arrays.get("verifier_ids2")
        verifier._vocab1 = params["vocab1"]
        verifier._vocab2 = params["vocab2"]
        verifier._scratch1 = (
            np.zeros(verifier._vocab1, dtype=bool)
            if verifier._indptr1 is not None
            else None
        )
        verifier._scratch2 = (
            np.zeros(verifier._vocab2, dtype=bool)
            if verifier._indptr2 is not None
            else None
        )
        verifier._gate_map = None
        verifier._bit_of_token = None
        verifier._dict1 = None
        verifier._dict2 = None
        verifier._features = {}
        return verifier


class OverlapCountRule:
    """Vectorized count-filtering accept: the batch form of
    :meth:`~repro.predicates.base.Predicate.count_accepts` plus the
    bitmask post-check, for predicates whose shared-blocking-key count
    *is* the intersection size (``NgramOverlapPredicate``)."""

    def __init__(
        self,
        threshold: float,
        masks: np.ndarray | None = None,
        bit_of_token: dict[Hashable, int] | None = None,
        post_probe: Callable[[Record], frozenset] | None = None,
    ) -> None:
        self.threshold = threshold
        self.masks = masks
        self._bit_of_token = bit_of_token
        self._post_probe = post_probe

    def probe_mask(self, record: Record) -> np.uint64 | None:
        """Bitmask of an external probe's post-check set (None when the
        rule has no post-check or cannot encode probes)."""
        if self.masks is None:
            return None
        if self._post_probe is None or self._bit_of_token is None:
            raise ValueError("rule rebuilt without probe-encoding state")
        return np.uint64(
            bitmask_probe(self._post_probe(record), self._bit_of_token)
        )

    @property
    def probe_encodable(self) -> bool:
        return self.masks is None or self._post_probe is not None

    def accepts(
        self,
        shared: np.ndarray,
        n_probe_keys: int,
        candidate_key_counts: np.ndarray,
        probe_mask: np.uint64 | None,
        candidates: np.ndarray,
    ) -> np.ndarray:
        """Verdict per candidate from shared-key counts.

        Candidates share at least one key by construction, so both key
        counts are >= 1 and the division is always defined; ``int64 /
        int64`` true division reproduces the scalar ``shared /
        min(n_a, n_b)`` bit-for-bit.
        """
        ok = (
            shared / np.minimum(n_probe_keys, candidate_key_counts)
            >= self.threshold
        )
        if self.masks is not None:
            ok &= (self.masks[candidates] & probe_mask) != np.uint64(0)
        return ok

    def export_state(self) -> tuple[dict[str, np.ndarray], dict]:
        arrays: dict[str, np.ndarray] = {}
        if self.masks is not None:
            arrays["rule_masks"] = self.masks
        return arrays, {"threshold": self.threshold}

    @classmethod
    def from_state(
        cls, arrays: dict[str, np.ndarray], params: dict
    ) -> "OverlapCountRule":
        return cls(params["threshold"], masks=arrays.get("rule_masks"))


class BatchNeighborEngine:
    """Vectorized neighbor computation over inverted-index postings.

    Holds the index's structure as four flat arrays — a record → key-id
    CSR and a key-id → positions CSR — plus either a count rule or a
    pairwise verifier.  One member query is then: gather the probe's
    posting rows, ``np.unique`` for (candidates, shared counts), verify
    the block, done — no per-candidate Python.

    Built by :meth:`build` in the parent (which keeps the key-id map
    for external probes) or rebuilt worker-side from
    :meth:`export_state` arrays (member probes only — exactly what the
    parallel neighbors stage needs).
    """

    def __init__(
        self,
        n_records: int,
        key_indptr: np.ndarray,
        key_ids: np.ndarray,
        post_indptr: np.ndarray,
        post_positions: np.ndarray,
        count_rule: OverlapCountRule | None = None,
        verifier: SetSimilarityBatch | None = None,
        key_id_of: dict[Hashable, int] | None = None,
        symmetric: bool = True,
    ) -> None:
        self.n_records = n_records
        self.key_indptr = key_indptr
        self.key_ids = key_ids
        self.post_indptr = post_indptr
        self.post_positions = post_positions
        self.count_rule = count_rule
        self.verifier = verifier
        self._key_id_of = key_id_of
        self.symmetric = symmetric

    @property
    def count_mode(self) -> bool:
        return self.count_rule is not None

    @classmethod
    def build(
        cls,
        predicate,
        records: Sequence[Record],
        key_index: dict[Hashable, list[int]],
    ) -> "BatchNeighborEngine | None":
        """Build from a predicate's posting lists; None when the
        predicate offers no batch capability (scalar fallback)."""
        count_rule = None
        verifier = None
        if predicate.count_verifiable:
            count_rule = predicate.batch_count_rule(records)
            if count_rule is None:
                return None
        else:
            verifier = predicate.batch_verifier(records)
            if verifier is None:
                return None

        n = len(records)
        keys = list(key_index)
        key_id_of = {key: key_id for key_id, key in enumerate(keys)}
        lengths = np.fromiter(
            (len(key_index[key]) for key in keys),
            dtype=np.int64,
            count=len(keys),
        )
        post_indptr = np.zeros(len(keys) + 1, dtype=np.int64)
        np.cumsum(lengths, out=post_indptr[1:])
        total = int(post_indptr[-1])
        post_positions = np.fromiter(
            (
                position
                for key in keys
                for position in key_index[key]
            ),
            dtype=np.int32,
            count=total,
        )
        # Invert postings into the record → key-ids CSR: a stable sort
        # by position keeps each record's key ids ascending.
        entry_key = np.repeat(
            np.arange(len(keys), dtype=np.int32), lengths
        )
        order = np.argsort(post_positions, kind="stable")
        key_ids = entry_key[order]
        key_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(post_positions, minlength=n), out=key_indptr[1:]
        )
        return cls(
            n,
            key_indptr,
            key_ids,
            post_indptr,
            post_positions,
            count_rule=count_rule,
            verifier=verifier,
            key_id_of=key_id_of,
            symmetric=getattr(predicate, "symmetric", True),
        )

    # -- queries -----------------------------------------------------------

    def _candidates(
        self, probe_key_ids: np.ndarray, exclude: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """(candidates, shared-key counts), candidates ascending and
        *exclude* removed — the postings walk of the scalar path as one
        gather + unique."""
        if len(probe_key_ids) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        flat, _ = gather_rows(
            self.post_indptr,
            self.post_positions,
            probe_key_ids.astype(np.int64, copy=False),
        )
        candidates, shared = np.unique(flat, return_counts=True)
        if 0 <= exclude <= self.n_records:
            keep = candidates != exclude
            if not keep.all():
                candidates = candidates[keep]
                shared = shared[keep]
        return candidates.astype(np.int64, copy=False), shared

    def _verify(
        self,
        candidates: np.ndarray,
        shared: np.ndarray,
        n_probe_keys: int,
        probe_mask,
        probe_state,
        counters,
    ) -> list[int]:
        if len(candidates) == 0:
            return []
        if self.count_rule is not None:
            counters.predicate_evaluations += len(candidates)
            candidate_key_counts = (
                self.key_indptr[candidates + np.int64(1)]
                - self.key_indptr[candidates]
            )
            ok = self.count_rule.accepts(
                shared, n_probe_keys, candidate_key_counts, probe_mask, candidates
            )
        else:
            counters.signature_evaluations += len(candidates)
            ok = self.verifier.verify_block(probe_state, candidates)
        return candidates[ok].tolist()

    def member_neighbors(self, position: int, counters) -> list[int]:
        """Verified neighbor list of the indexed member at *position*
        (``exclude_position=position`` semantics), ascending."""
        probe_key_ids = self.key_ids[
            self.key_indptr[position] : self.key_indptr[position + 1]
        ]
        candidates, shared = self._candidates(probe_key_ids, position)
        probe_mask = None
        if self.count_rule is not None and self.count_rule.masks is not None:
            probe_mask = self.count_rule.masks[position]
        probe_state = (
            self.verifier.member_state(position)
            if self.verifier is not None
            else None
        )
        return self._verify(
            candidates,
            shared,
            len(probe_key_ids),
            probe_mask,
            probe_state,
            counters,
        )

    def probe_neighbors(
        self,
        probe: Record,
        probe_keys: set,
        exclude: int,
        counters,
    ) -> list[int] | None:
        """Verified neighbors of an external *probe*; None when this
        engine cannot encode it (caller falls back to the scalar
        strategy)."""
        if self._key_id_of is None:
            return None
        probe_mask = None
        probe_state = None
        if self.count_rule is not None:
            if not self.count_rule.probe_encodable:
                return None
            probe_mask = self.count_rule.probe_mask(probe)
        else:
            probe_state = self.verifier.encode_probe(probe)
            if probe_state is None:
                return None
        key_id_of = self._key_id_of
        probe_key_ids = np.fromiter(
            (
                key_id
                for key_id in (key_id_of.get(key) for key in probe_keys)
                if key_id is not None
            ),
            dtype=np.int64,
        )
        candidates, shared = self._candidates(probe_key_ids, exclude)
        # n_probe counts *all* probe keys, unknown ones included — they
        # cannot intersect but they do enter min(n_a, n_b).
        return self._verify(
            candidates, shared, len(probe_keys), probe_mask, probe_state, counters
        )

    def member_neighbors_block(
        self,
        positions: Sequence[int],
        counters,
        known: dict[int, set[int]] | None = None,
    ) -> dict[int, list[int]]:
        """Neighbor lists for many members, each symmetric pair verified
        once.

        Probing members in ascending position order, a candidate that is
        itself in the batch and *below* the probe is skipped — its own
        (earlier) probe already decided the pair, and the verdict flows
        back as a reverse edge after the sweep.  *known* maps
        already-answered member positions to their neighbor sets (the
        index's ``_probed`` store); pairs against those are decided by
        set membership.  Both shortcuts count as ``cache_hits``,
        mirroring the scalar count path's probed-membership sharing.
        The sharing is only sound for symmetric predicates; asymmetric
        engines fall back to independent per-member probes.
        """
        order = sorted({int(position) for position in positions})
        if not self.symmetric:
            return {p: self.member_neighbors(p, counters) for p in order}
        in_batch = np.zeros(self.n_records, dtype=bool)
        in_batch[order] = True
        known_mask = None
        if known:
            known_mask = np.zeros(self.n_records, dtype=bool)
            known_mask[
                np.fromiter(known.keys(), dtype=np.int64, count=len(known))
            ] = True
        verified: dict[int, list[int]] = {}
        # Verdicts recovered without verification: reverse edges from
        # earlier in-batch probes plus membership in `known` sets.
        recovered: dict[int, list[int]] = {p: [] for p in order}
        for p in order:
            probe_key_ids = self.key_ids[
                self.key_indptr[p] : self.key_indptr[p + 1]
            ]
            candidates, shared = self._candidates(probe_key_ids, p)
            accepted: list[int] = []
            if len(candidates):
                skip = in_batch[candidates] & (candidates < p)
                if known_mask is not None:
                    known_here = known_mask[candidates]
                    skip |= known_here
                    if known_here.any():
                        for c in candidates[known_here].tolist():
                            if p in known[c]:
                                recovered[p].append(c)
                hits = int(skip.sum())
                if hits:
                    counters.cache_hits += hits
                keep = ~skip
                probe_mask = None
                if (
                    self.count_rule is not None
                    and self.count_rule.masks is not None
                ):
                    probe_mask = self.count_rule.masks[p]
                probe_state = (
                    self.verifier.member_state(p)
                    if self.verifier is not None
                    else None
                )
                accepted = self._verify(
                    candidates[keep],
                    shared[keep],
                    len(probe_key_ids),
                    probe_mask,
                    probe_state,
                    counters,
                )
                for q in accepted:
                    if q > p and in_batch[q]:
                        recovered[q].append(p)
            verified[p] = accepted
        results: dict[int, list[int]] = {}
        for p in order:
            extras = recovered[p]
            results[p] = (
                sorted(set(verified[p]) | set(extras))
                if extras
                else verified[p]
            )
        return results

    def member_neighbors_csr(
        self, positions: Sequence[int], counters
    ) -> tuple[np.ndarray, np.ndarray]:
        """Neighbor lists of many members as (indptr, flat int32) — the
        compact shape worker shards ship back to the parent.

        Uses the symmetric block sweep, so in-shard pairs are verified
        once; results are identical to per-member queries."""
        lists = self.member_neighbors_block(positions, counters)
        indptr = np.zeros(len(positions) + 1, dtype=np.int64)
        chunks: list[list[int]] = []
        for row, position in enumerate(positions):
            neighbors = lists[int(position)]
            chunks.append(neighbors)
            indptr[row + 1] = indptr[row] + len(neighbors)
        flat = (
            np.array(
                [neighbor for chunk in chunks for neighbor in chunk],
                dtype=np.int32,
            )
            if chunks
            else np.empty(0, dtype=np.int32)
        )
        return indptr, flat

    # -- worker transport --------------------------------------------------

    def export_state(self) -> tuple[dict[str, np.ndarray], dict]:
        """(arrays, params) for a member-only worker rebuild."""
        arrays = {
            "key_indptr": self.key_indptr,
            "key_ids": self.key_ids,
            "post_indptr": self.post_indptr,
            "post_positions": self.post_positions,
        }
        params: dict = {
            "n_records": self.n_records,
            "symmetric": self.symmetric,
        }
        if self.count_rule is not None:
            rule_arrays, rule_params = self.count_rule.export_state()
            arrays.update(rule_arrays)
            params["count_rule"] = rule_params
        else:
            verifier_arrays, verifier_params = self.verifier.export_state()
            arrays.update(verifier_arrays)
            params["verifier"] = verifier_params
        return arrays, params

    @classmethod
    def from_state(
        cls, arrays: dict[str, np.ndarray], params: dict
    ) -> "BatchNeighborEngine":
        count_rule = None
        verifier = None
        if "count_rule" in params:
            count_rule = OverlapCountRule.from_state(
                arrays, params["count_rule"]
            )
        else:
            verifier = SetSimilarityBatch.from_state(
                arrays, params["verifier"]
            )
        return cls(
            params["n_records"],
            arrays["key_indptr"],
            arrays["key_ids"],
            arrays["post_indptr"],
            arrays["post_positions"],
            count_rule=count_rule,
            verifier=verifier,
            symmetric=params.get("symmetric", True),
        )


def save_engine_state(engine: BatchNeighborEngine, path) -> None:
    """Persist an engine's :meth:`~BatchNeighborEngine.export_state`
    into one checksummed array container (:mod:`repro.storage.layout`).

    The same transport shape the parallel layer ships over shared
    memory, just durable: arrays in the body, the params dict in the
    header (floats survive the JSON round-trip exactly — Python's float
    repr is shortest-exact).
    """
    from ..storage.layout import write_arrays

    arrays, params = engine.export_state()
    write_arrays(
        path, arrays, {"kind": "batch-neighbor-engine", "params": params}
    )


def load_engine_state(path) -> BatchNeighborEngine:
    """Rebuild a member-probe engine with its arrays memory-mapped.

    ``np.memmap`` is an ``ndarray`` subclass, so every kernel —
    ``gather_rows``, ``intersection_counts``, the block rules — gathers
    rows straight from the mapped file; nothing is copied until a page
    is touched, and verdicts are bit-identical to the resident engine.
    """
    from ..storage.layout import ArrayFileError, MappedArrays

    mapped = MappedArrays(path)
    if mapped.meta.get("kind") != "batch-neighbor-engine":
        raise ArrayFileError(
            f"{path} is not a serialized neighbor engine "
            f"(kind={mapped.meta.get('kind')!r})"
        )
    return BatchNeighborEngine.from_state(
        dict(mapped.arrays), mapped.meta["params"]
    )
