"""Inverted-index blocking: evaluate predicates without O(n^2) pair scans.

Three operations power the whole pipeline:

* :func:`build_key_index` — key → ids posting lists for a predicate;
* :func:`closure` — union-find transitive closure of all pairs satisfying
  a (sufficient) predicate, verifying pairs only inside shared-key blocks;
* :class:`NeighborIndex` — for a fixed set of groups, answer "which groups
  can satisfy N with this one?", the primitive behind both the
  lower-bound estimator and the prune stage.

Oversized blocks (a key shared by a large fraction of all records — e.g.
a stop-gram) are handled by capping pairwise verification per block and
falling back to sorted-neighborhood verification within the block, which
preserves sub-quadratic behaviour at a small recall cost that only makes
the sufficient-collapse *less* aggressive (never incorrect).
"""

from __future__ import annotations

import time
from collections import defaultdict
from collections.abc import Callable, Hashable, Iterator, Sequence

import numpy as np

from ..core.records import Record
from ..graphs.union_find import UnionFind
from .base import Predicate
from .batch import BatchNeighborEngine, vectorize_enabled

#: Minimum block size for batch (vectorized) closure verification;
#: smaller blocks stay scalar — kernel setup would dominate.
_BATCH_BLOCK_MIN = 8


def build_key_index(
    predicate: Predicate, records: Sequence[Record]
) -> dict[Hashable, list[int]]:
    """Return key → list of positions (into *records*) for *predicate*."""
    index: dict[Hashable, list[int]] = defaultdict(list)
    for position, record in enumerate(records):
        for key in set(predicate.blocking_keys(record)):
            index[key].append(position)
    return dict(index)


def closure(
    predicate: Predicate,
    records: Sequence[Record],
    max_block_pairs: int = 2_000_000,
    vectorize: bool | None = None,
) -> UnionFind:
    """Return the union-find closure of pairs satisfying *predicate*.

    Within each key block, pairs are verified with ``predicate.evaluate``
    unless ``predicate.key_implies_match`` (then the whole block is
    unioned directly).  Pairs already connected are skipped, so repeated
    keys cost nothing extra.

    Predicates exposing a batch verifier have their larger blocks
    (>= ``_BATCH_BLOCK_MIN`` members) verified one whole row per NumPy
    call; the block union is identical because the batch verdicts equal
    the scalar ones bit-for-bit.  *vectorize* overrides the
    ``REPRO_VECTORIZE`` switch.

    Blocks whose pair count exceeds *max_block_pairs* are verified in
    sorted-neighborhood mode (adjacent-pair chains after sorting by a
    cheap canonical string), bounding worst-case work.
    """
    uf = UnionFind(len(records))
    index = build_key_index(predicate, records)
    verifier = None
    if (
        not predicate.key_implies_match
        and predicate.supports_batch
        and vectorize_enabled(vectorize)
        and any(len(p) >= _BATCH_BLOCK_MIN for p in index.values())
    ):
        verifier = predicate.batch_verifier(records)
    for positions in index.values():
        if len(positions) < 2:
            continue
        if predicate.key_implies_match:
            first = positions[0]
            for other in positions[1:]:
                uf.union(first, other)
            continue
        n_pairs = len(positions) * (len(positions) - 1) // 2
        if n_pairs > max_block_pairs:
            _verify_sorted_neighborhood(predicate, records, positions, uf)
        elif verifier is not None and len(positions) >= _BATCH_BLOCK_MIN:
            _verify_block_batch(verifier, positions, uf)
        else:
            _verify_all_pairs(predicate, records, positions, uf)
    return uf


def _verify_block_batch(verifier, positions: list[int], uf: UnionFind) -> None:
    """Union all matching pairs of one block, one row per kernel call.

    Unlike :func:`_verify_all_pairs` this does not skip already-connected
    pairs — a redundant union is a no-op on the partition, and the batch
    verdict for the whole remainder row costs less than per-pair
    connectivity checks would.
    """
    block = np.asarray(positions, dtype=np.int64)
    for i in range(len(block) - 1):
        rest = block[i + 1 :]
        verdicts = verifier.verify_member_block(int(block[i]), rest)
        for pos_b in rest[verdicts]:
            uf.union(int(block[i]), int(pos_b))


def _verify_all_pairs(
    predicate: Predicate,
    records: Sequence[Record],
    positions: list[int],
    uf: UnionFind,
) -> None:
    if predicate.supports_signatures:
        signatures = [predicate.signature(records[p]) for p in positions]
        verify = predicate.evaluate_signatures
        for i, pos_a in enumerate(positions):
            sig_a = signatures[i]
            for offset, pos_b in enumerate(positions[i + 1 :], start=i + 1):
                if uf.connected(pos_a, pos_b):
                    continue
                if verify(sig_a, signatures[offset]):
                    uf.union(pos_a, pos_b)
        return
    for i, pos_a in enumerate(positions):
        record_a = records[pos_a]
        for pos_b in positions[i + 1 :]:
            if uf.connected(pos_a, pos_b):
                continue
            if predicate.evaluate(record_a, records[pos_b]):
                uf.union(pos_a, pos_b)


def _verify_sorted_neighborhood(
    predicate: Predicate,
    records: Sequence[Record],
    positions: list[int],
    uf: UnionFind,
    window: int = 8,
) -> None:
    """Fallback for huge blocks: verify only nearby pairs after sorting."""
    def sort_key(pos: int) -> str:
        # Sort the stringified values: raw field values are not
        # guaranteed mutually comparable (mixed int/str stores).
        record = records[pos]
        return "|".join(sorted(str(v) for v in record.fields.values()))

    ordered = sorted(positions, key=sort_key)
    for i, pos_a in enumerate(ordered):
        record_a = records[pos_a]
        for pos_b in ordered[i + 1 : i + 1 + window]:
            if uf.connected(pos_a, pos_b):
                continue
            if predicate.evaluate(record_a, records[pos_b]):
                uf.union(pos_a, pos_b)


def candidate_pairs(
    predicate: Predicate,
    records: Sequence[Record],
    verify: bool = True,
) -> Iterator[tuple[int, int]]:
    """Yield each position pair sharing a key (optionally N-verified) once.

    This is the canopy-style pair enumeration used by the baseline
    pipelines and by the final stage of Algorithm 2 ("apply criteria P on
    pairs in D_{L+1} for which N_L is true").
    """
    index = build_key_index(predicate, records)
    # Dedupe by ownership instead of a global pair set: each pair is
    # yielded only from the first key (in index order) the two records
    # share.  Memory drops from O(cross-key pairs) to O(postings).
    key_ordinals: list[set[int]] = [set() for _ in range(len(records))]
    for ordinal, positions in enumerate(index.values()):
        for position in positions:
            key_ordinals[position].add(ordinal)
    verifying = verify and not predicate.key_implies_match
    signatures = None
    if verifying and predicate.supports_signatures:
        signatures = [predicate.signature(record) for record in records]
    for ordinal, positions in enumerate(index.values()):
        if len(positions) < 2:
            continue
        for i, pos_a in enumerate(positions):
            keys_a = key_ordinals[pos_a]
            record_a = records[pos_a]
            sig_a = signatures[pos_a] if signatures is not None else None
            for pos_b in positions[i + 1 :]:
                shared = keys_a & key_ordinals[pos_b]
                if len(shared) > 1 and min(shared) != ordinal:
                    continue  # owned by an earlier shared key
                if verifying:
                    if signatures is not None:
                        if not predicate.evaluate_signatures(
                            sig_a, signatures[pos_b]
                        ):
                            continue
                    elif not predicate.evaluate(record_a, records[pos_b]):
                        continue
                yield (pos_a, pos_b) if pos_a < pos_b else (pos_b, pos_a)


class _DiscardCounters:
    """Null counter sink (duck-typed PipelineCounters) for bare indexes.

    The field set is derived from
    :class:`repro.core.verification.PipelineCounters` at construction
    time (a lazy import — ``core.verification`` imports this module, so
    a top-level import would cycle).  A hardcoded copy drifted once
    already: the containment counters added to ``PipelineCounters``
    were missing here, and a bare index over a guarded predicate raised
    ``AttributeError`` on the first contained fault.
    """

    def __init__(self):
        from ..core.verification import PipelineCounters

        for field in PipelineCounters._INT_FIELDS:
            setattr(self, field, 0)


class NeighborIndex:
    """Answer "which members of this set can match *probe* under N?".

    Built once over a fixed sequence of records (group representatives);
    queries return candidate positions that share a blocking key with the
    probe, optionally verified with the predicate.  Probes can be records
    outside the indexed set or members of it (the member itself is then
    excluded from its own neighbor list).

    Args:
        predicate: The (necessary) predicate to verify candidates with.
        records: The indexed records (group representatives).
        counters: Optional counter sink (see
            :class:`repro.core.verification.PipelineCounters`); work is
            counted into a discard sink when omitted.
        verdicts: Optional shared pair-verdict cache keyed by
            ``(record_id, record_id)`` with the smaller id first.  Only
            sound for symmetric predicates; supplied by
            :class:`~repro.core.verification.VerificationContext` and
            consulted by the evaluate/signature strategies (count
            filtering shares verdicts via neighbor-set membership
            instead — cheaper than per-pair dict traffic).
        memoize: Cache full neighbor lists per
            ``(probe.record_id, exclude_position)``.  Each cached entry
            also remembers the probe record it was computed for and is
            only served to an identical probe, so two distinct records
            that happen to share a ``record_id`` can never receive each
            other's neighbor list.  Callers must not mutate returned
            lists when enabled.
        latency_observe: Optional callable fed sampled per-pair
            verification latencies in seconds (1 in
            ``LATENCY_SAMPLE_EVERY`` pairwise verifications; the
            count-filtering fast path is not sampled — its per-pair cost
            is a couple of integer compares, below clock resolution).
            Supplied by ``VerificationContext`` when metrics are
            enabled; kept as a plain callable so this layer stays free
            of core/observability imports.
        candidate_observe: Optional callable fed the size of each
            *computed* (non-memoized) verified neighbor list.
    """

    #: Pairwise verifications between latency samples (power of two so
    #: the modulo stays cheap).
    LATENCY_SAMPLE_EVERY = 64

    def __init__(
        self,
        predicate: Predicate,
        records: Sequence[Record],
        counters=None,
        verdicts: dict[tuple[int, int], bool] | None = None,
        memoize: bool = False,
        latency_observe: Callable[[float], None] | None = None,
        candidate_observe: Callable[[float], None] | None = None,
        vectorize: bool | None = None,
    ):
        self._predicate = predicate
        self._records = records
        self._counters = counters if counters is not None else _DiscardCounters()
        self._verdicts = verdicts
        self._latency_observe = latency_observe
        self._candidate_observe = candidate_observe
        self._verify_calls = 0
        # memo_key -> (probe record, neighbor list).  The probe record is
        # kept so a lookup can verify the cached list was computed for
        # *this* record, not merely one with the same record_id.
        self._memo: dict[tuple[int, int], tuple[Record, list[int]]] | None = (
            {} if memoize else None
        )
        # Position -> neighbor-position set for fully self-probed members.
        # For a symmetric predicate, membership in an already-computed
        # neighbor set decides a pair with zero storage beyond the memo —
        # crucial for count-verifiable predicates, where a per-pair
        # verdict dict would cost more than the evaluation it replaces.
        self._probed: dict[int, set[int]] | None = (
            {}
            if memoize and getattr(predicate, "symmetric", True)
            else None
        )
        self._counters.index_builds += 1
        self._index = build_key_index(predicate, records)
        # Count-filtering fast path: verification happens inside the
        # postings pass itself (no per-pair set intersections).
        self._count_mode = (
            predicate.count_verifiable and not predicate.key_implies_match
        )
        self._key_counts: list[int] = []
        self._post_signatures: list = []
        if self._count_mode:
            # A record's distinct-key count equals the number of posting
            # lists holding it, so invert the index instead of running
            # blocking_keys over every record a second time.
            self._key_counts = [0] * len(records)
            for positions in self._index.values():
                for position in positions:
                    self._key_counts[position] += 1
            self._post_signatures = [
                predicate.count_post_signature(record) for record in records
            ]
        # Batch engine: whole-candidate-block verification in NumPy.
        # Wrapper predicates (guards, chaos) don't expose the hooks, so
        # they land on the scalar strategies below automatically.
        self._engine: BatchNeighborEngine | None = None
        if (
            not predicate.key_implies_match
            and predicate.supports_batch
            and vectorize_enabled(vectorize)
        ):
            self._engine = BatchNeighborEngine.build(
                predicate, records, self._index
            )
        # Signature fast path: precompute per-record signatures once so
        # the (potentially millions of) verifications skip Record-level
        # field access.
        self._signatures: list | None = None
        if (
            not self._count_mode
            and predicate.supports_signatures
            and not predicate.key_implies_match
        ):
            self._signatures = [predicate.signature(r) for r in records]

    @property
    def memoizing(self) -> bool:
        """True when neighbor lists are memoized (``memoize=True``)."""
        return self._memo is not None

    @property
    def batch_engine(self) -> BatchNeighborEngine | None:
        """The vectorized engine, or None when queries run scalar."""
        return self._engine

    @property
    def key_postings(self) -> dict[Hashable, list[int]]:
        """The key → positions posting lists (treat as read-only)."""
        return self._index

    def candidate_positions(self, probe: Record) -> set[int]:
        """Return positions sharing at least one key with *probe*."""
        result: set[int] = set()
        for key in set(self._predicate.blocking_keys(probe)):
            result.update(self._index.get(key, ()))
        return result

    def neighbors(self, probe: Record, exclude_position: int = -1) -> list[int]:
        """Return verified neighbor positions of *probe* under N."""
        counters = self._counters
        counters.neighbor_queries += 1
        memo_key = (probe.record_id, exclude_position)
        if self._memo is not None:
            cached = self._memo.get(memo_key)
            # Serve the memo only for the record it was computed for:
            # distinct records sharing a record_id (e.g. probes built
            # outside the store) must not collide on the cached list.
            if cached is not None and (
                cached[0] is probe or cached[0] == probe
            ):
                counters.neighbor_memo_hits += 1
                return cached[1]
        result = None
        if self._engine is not None:
            result = self._engine_neighbors(probe, exclude_position)
        if result is None:
            if self._count_mode:
                result = self._neighbors_by_count(probe, exclude_position)
            else:
                result = self._neighbors_by_pairs(probe, exclude_position)
        if self._candidate_observe is not None:
            self._candidate_observe(len(result))
        if self._memo is not None:
            self._memo[memo_key] = (probe, result)
        if self._probed is not None and self._is_member_probe(
            probe, exclude_position
        ):
            self._probed[exclude_position] = set(result)
        return result

    def _is_member_probe(self, probe: Record, exclude_position: int) -> bool:
        """True when *probe* IS the indexed record at *exclude_position*
        (identity first, equality as the fallback for reconstructed but
        value-identical records) — not merely a record sharing its id."""
        if not 0 <= exclude_position < len(self._records):
            return False
        member = self._records[exclude_position]
        return member is probe or member == probe

    def prime(self, position: int, neighbors: list[int]) -> None:
        """Inject a precomputed neighbor list for the indexed member at
        *position* (``exclude_position=position`` semantics).

        Used by the parallel execution layer: worker shards compute the
        lists, the parent primes the shared index so downstream stages
        (lower bound, prune, rank pruning) hit the memo instead of
        re-verifying.  Requires ``memoize=True``.
        """
        if self._memo is None:
            raise ValueError("prime() requires a memoizing index")
        record = self._records[position]
        self._memo[(record.record_id, position)] = (record, neighbors)
        if self._probed is not None:
            self._probed[position] = set(neighbors)

    def neighbors_batch(self, positions: Sequence[int]) -> list[list[int]]:
        """Verified neighbor lists for many indexed members at once.

        Equivalent to ``[self.neighbors(records[p], exclude_position=p)
        for p in positions]`` — memo/probed caches included — but
        member probes skip the probe-side key recomputation and, with a
        batch engine, verify each candidate block in one kernel call.
        """
        counters = self._counters
        results: dict[int, list[int]] = {}
        pending: list[int] = []
        seen: set[int] = set()
        for position in positions:
            counters.neighbor_queries += 1
            if position in seen:
                if self._memo is not None:
                    counters.neighbor_memo_hits += 1
                continue
            seen.add(position)
            record = self._records[position]
            if self._memo is not None:
                cached = self._memo.get((record.record_id, position))
                if cached is not None and (
                    cached[0] is record or cached[0] == record
                ):
                    counters.neighbor_memo_hits += 1
                    results[position] = cached[1]
                    continue
            pending.append(position)
        if pending:
            if self._engine is not None and getattr(
                self._predicate, "symmetric", True
            ):
                # Batch symmetric sweep: each in-batch pair verified
                # once, pairs against already-probed members decided by
                # membership — the vectorized mirror of the scalar
                # count path's `_probed` sharing.
                known = self._probed if self._probed else None
                computed = self._engine.member_neighbors_block(
                    pending, counters, known=known
                )
                for position in pending:
                    self._record_batch_result(
                        position, computed[position], results
                    )
            else:
                # Scalar fallback: caches must advance *between* member
                # probes — `_neighbors_by_count` shares verdicts through
                # `_probed` incrementally.
                for position in pending:
                    record = self._records[position]
                    if self._engine is not None:
                        result = self._engine.member_neighbors(
                            position, counters
                        )
                    elif self._count_mode:
                        result = self._neighbors_by_count(record, position)
                    else:
                        result = self._neighbors_by_pairs(record, position)
                    self._record_batch_result(position, result, results)
        return [results[position] for position in positions]

    def _record_batch_result(
        self,
        position: int,
        result: list[int],
        results: dict[int, list[int]],
    ) -> None:
        record = self._records[position]
        if self._candidate_observe is not None:
            self._candidate_observe(len(result))
        if self._memo is not None:
            self._memo[(record.record_id, position)] = (record, result)
        if self._probed is not None:
            self._probed[position] = set(result)
        results[position] = result

    def _engine_neighbors(
        self, probe: Record, exclude_position: int
    ) -> list[int] | None:
        """Engine-backed neighbor query; None when the engine cannot
        encode this probe (caller falls back to the scalar strategy)."""
        if self._is_member_probe(probe, exclude_position):
            if self._probed and getattr(self._predicate, "symmetric", True):
                # Answer pairs against already-probed members from their
                # recorded sets — the vectorized mirror of the scalar
                # count path's `_probed` sharing.
                return self._engine.member_neighbors_block(
                    [exclude_position], self._counters, known=self._probed
                )[exclude_position]
            return self._engine.member_neighbors(
                exclude_position, self._counters
            )
        probe_keys = set(self._predicate.blocking_keys(probe))
        return self._engine.probe_neighbors(
            probe, probe_keys, exclude_position, self._counters
        )

    def _neighbors_by_pairs(self, probe: Record, exclude_position: int) -> list[int]:
        """Pairwise verification (signature fast path when available),
        consulting the shared verdict cache per candidate pair."""
        candidates = self.candidate_positions(probe)
        candidates.discard(exclude_position)
        if self._predicate.key_implies_match:
            return sorted(candidates)
        counters = self._counters
        verdicts = self._verdicts
        probe_signature = (
            self._predicate.signature(probe)
            if self._signatures is not None
            else None
        )
        out = []
        probe_id = probe.record_id
        for position in candidates:
            if verdicts is not None:
                other_id = self._records[position].record_id
                pair = (
                    (probe_id, other_id)
                    if probe_id < other_id
                    else (other_id, probe_id)
                )
                verdict = verdicts.get(pair)
                if verdict is None:
                    verdict = self._verify_pair(probe, probe_signature, position)
                    verdicts[pair] = verdict
                    counters.cache_misses += 1
                else:
                    counters.cache_hits += 1
            else:
                verdict = self._verify_pair(probe, probe_signature, position)
            if verdict:
                out.append(position)
        out.sort()
        return out

    def _verify_pair(self, probe: Record, probe_signature, position: int) -> bool:
        if self._latency_observe is not None:
            self._verify_calls += 1
            if self._verify_calls % self.LATENCY_SAMPLE_EVERY == 1:
                start = time.perf_counter()
                verdict = self._evaluate_pair(probe, probe_signature, position)
                self._latency_observe(time.perf_counter() - start)
                return verdict
        return self._evaluate_pair(probe, probe_signature, position)

    def _evaluate_pair(self, probe: Record, probe_signature, position: int) -> bool:
        if self._signatures is not None:
            self._counters.signature_evaluations += 1
            return self._predicate.evaluate_signatures(
                probe_signature, self._signatures[position]
            )
        self._counters.predicate_evaluations += 1
        return self._predicate.evaluate(probe, self._records[position])

    def _neighbors_by_count(self, probe: Record, exclude_position: int) -> list[int]:
        """Count-filtering verification: one pass over the probe's
        postings accumulates shared-key counts for every candidate; the
        predicate is decided from the counts directly.

        Pairs whose other endpoint was already fully self-probed are
        decided by symmetric membership in that endpoint's neighbor set
        instead — the count-mode analogue of the pair-verdict cache.  A
        per-pair dict is deliberately NOT used here: a count-mode verdict
        is a couple of integer comparisons, cheaper than the dict
        traffic (and unbounded per-pair storage) it would take to cache.
        """
        probe_keys = set(self._predicate.blocking_keys(probe))
        counts: dict[int, int] = defaultdict(int)
        for key in probe_keys:
            for position in self._index.get(key, ()):
                counts[position] += 1
        n_probe = len(probe_keys)
        probe_post = self._predicate.count_post_signature(probe)
        accepts = self._predicate.count_accepts
        post_check = self._predicate.count_post_check
        counters = self._counters
        records = self._records
        # Membership shortcuts are only sound when the probe IS the
        # excluded member: neighbor sets were computed excluding only
        # their own position, so they answer exactly "is position
        # `exclude_position` my neighbor?".
        probed = self._probed
        if probed is not None and not self._is_member_probe(
            probe, exclude_position
        ):
            probed = None
        out = []
        for position, shared in counts.items():
            if position == exclude_position:
                continue
            if probed is not None:
                known = probed.get(position)
                if known is not None:
                    counters.cache_hits += 1
                    if exclude_position in known:
                        out.append(position)
                    continue
            counters.predicate_evaluations += 1
            if accepts(
                shared, n_probe, self._key_counts[position]
            ) and post_check(probe_post, self._post_signatures[position]):
                out.append(position)
        out.sort()
        return out
