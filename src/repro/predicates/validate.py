"""Validate necessary/sufficient predicates against labeled data.

Section 6.1: "We used hand-labeled dataset to validate that the chosen
predicates indeed satisfy their respective conditions of being necessary
and sufficient."  Given gold entity labels:

* a **necessary** predicate is violated by any same-entity pair on which
  it is false (checked by enumerating pairs *within* gold groups);
* a **sufficient** predicate is violated by any cross-entity pair on
  which it is true (checked via the predicate's own blocking index, so no
  O(n^2) scan).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence
from dataclasses import dataclass, field

from ..core.records import Record
from .base import Predicate
from .blocking import candidate_pairs


@dataclass
class ValidationReport:
    """Outcome of validating one predicate against gold labels.

    ``violations`` holds up to ``max_examples`` offending record-id pairs.
    """

    predicate_name: str
    role: str
    n_pairs_checked: int
    n_violations: int
    violations: list[tuple[int, int]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the predicate satisfies its role on this data."""
        return self.n_violations == 0

    @property
    def violation_rate(self) -> float:
        """Fraction of checked pairs that violate the role."""
        if self.n_pairs_checked == 0:
            return 0.0
        return self.n_violations / self.n_pairs_checked


def validate_necessary(
    predicate: Predicate,
    records: Sequence[Record],
    labels: Sequence[int],
    max_examples: int = 10,
) -> ValidationReport:
    """Check that *predicate* is true on every same-entity pair."""
    if len(records) != len(labels):
        raise ValueError(f"{len(records)} records but {len(labels)} labels")
    by_entity: dict[int, list[int]] = defaultdict(list)
    for position, label in enumerate(labels):
        by_entity[label].append(position)

    checked = 0
    violations: list[tuple[int, int]] = []
    n_violations = 0
    for members in by_entity.values():
        for i, pos_a in enumerate(members):
            for pos_b in members[i + 1 :]:
                checked += 1
                if not predicate.evaluate(records[pos_a], records[pos_b]):
                    n_violations += 1
                    if len(violations) < max_examples:
                        violations.append((pos_a, pos_b))
    return ValidationReport(
        predicate_name=predicate.name,
        role="necessary",
        n_pairs_checked=checked,
        n_violations=n_violations,
        violations=violations,
    )


def validate_sufficient(
    predicate: Predicate,
    records: Sequence[Record],
    labels: Sequence[int],
    max_examples: int = 10,
) -> ValidationReport:
    """Check that *predicate* is false on every cross-entity pair.

    Only pairs sharing a blocking key can be predicate-true, so those are
    the only pairs that need checking.
    """
    if len(records) != len(labels):
        raise ValueError(f"{len(records)} records but {len(labels)} labels")
    checked = 0
    violations: list[tuple[int, int]] = []
    n_violations = 0
    for pos_a, pos_b in candidate_pairs(predicate, records, verify=True):
        checked += 1
        if labels[pos_a] != labels[pos_b]:
            n_violations += 1
            if len(violations) < max_examples:
                violations.append((pos_a, pos_b))
    return ValidationReport(
        predicate_name=predicate.name,
        role="sufficient",
        n_pairs_checked=checked,
        n_violations=n_violations,
        violations=violations,
    )
