"""Predicate framework: necessary and sufficient predicates over record pairs.

Section 4 of the paper builds everything on two kinds of cheap binary
predicates:

* a **necessary** predicate N: ``N(t1, t2) = false  =>  not duplicate``
  (every duplicate pair satisfies N — the classic canopy/blocking role);
* a **sufficient** predicate S: ``S(t1, t2) = true  =>  duplicate``
  (a stringent condition that only fires on sure duplicates).

Both roles share one mechanical interface, :class:`Predicate`.  Besides
pairwise evaluation, every predicate exposes *blocking keys* with the
contract::

    evaluate(a, b) is True  =>  blocking_keys(a) & blocking_keys(b) != {}

which is what lets the collapse and prune stages run off inverted indexes
instead of enumerating O(n^2) pairs.  Predicates whose keys fully encode
the condition set ``key_implies_match`` and skip pairwise verification
entirely inside a block.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Hashable, Iterable

from ..core.records import Record


class Predicate(ABC):
    """A binary predicate on record pairs with inverted-index support.

    Attributes:
        name: Human-readable identifier used in reports.
        cost: Relative evaluation cost; pipelines order predicate levels
            by increasing cost (Section 4.4's "series of ... predicates of
            increasing cost").
        key_implies_match: When True, two records sharing any blocking key
            are guaranteed to satisfy the predicate, so blocks can be
            unioned without pairwise verification.
    """

    name: str = "predicate"
    cost: float = 1.0
    key_implies_match: bool = False

    #: Whether ``evaluate(a, b) == evaluate(b, a)``.  The pipeline's
    #: neighbor graphs already treat predicate edges as undirected; the
    #: shared pair-verdict cache additionally relies on this to serve a
    #: verdict computed from either endpoint.  Set False on a direction-
    #: sensitive predicate to opt out of verdict caching.
    symmetric: bool = True

    @abstractmethod
    def evaluate(self, a: Record, b: Record) -> bool:
        """Return the truth value of the predicate on the pair (a, b)."""

    @abstractmethod
    def blocking_keys(self, record: Record) -> Iterable[Hashable]:
        """Yield keys such that matching pairs always share at least one.

        A record yielding *no* keys is asserted to satisfy the predicate
        with no other record.
        """

    def signature(self, record: Record):
        """Optional fast path: a precomputed per-record signature.

        Predicates evaluated millions of times inside neighbor queries
        can return a signature object here and implement
        :meth:`evaluate_signatures`; bulk evaluators (NeighborIndex)
        then skip the Record-level indirection entirely.  The default
        (returning None) means "no fast path".
        """
        return None

    def evaluate_signatures(self, sig_a, sig_b) -> bool:
        """Evaluate the predicate on two :meth:`signature` results."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the signature fast path"
        )

    @property
    def supports_signatures(self) -> bool:
        """True when this predicate overrides the signature fast path."""
        return type(self).signature is not Predicate.signature

    #: Count-filtering fast path: set True when the record's blocking
    #: keys form a set such that the predicate holds iff the pair's
    #: shared-key count passes :meth:`count_accepts` and the (cheap)
    #: :meth:`count_post_check` agrees.  Bulk evaluators can then verify
    #: all candidates in one postings pass with no set intersections.
    count_verifiable: bool = False

    def count_accepts(self, shared: int, n_keys_a: int, n_keys_b: int) -> bool:
        """Decide the predicate from the shared-key count and key counts."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement count filtering"
        )

    def count_post_signature(self, record: Record):
        """Minimal extra per-record data for :meth:`count_post_check`."""
        return None

    def count_post_check(self, post_a, post_b) -> bool:
        """Residual condition not captured by the shared-key count."""
        return True

    def batch_verifier(self, records):
        """Optional vectorized pairwise verifier over *records*.

        A predicate whose decision runs on encoded sets can return a
        :class:`~repro.predicates.batch.SetSimilarityBatch` here; bulk
        evaluators (NeighborIndex, closure) then verify whole candidate
        blocks in NumPy instead of one pair per Python call.  The
        default — returning None — keeps the scalar path.  Wrapper
        predicates (resilience guards, chaos) deliberately do not
        forward this hook: falling back to scalar keeps every call
        inside their interception machinery.
        """
        return None

    def batch_count_rule(self, records):
        """Optional vectorized form of the count-filtering fast path.

        Counterpart of :meth:`count_accepts`/:meth:`count_post_check`
        as one array decision per candidate block (an
        :class:`~repro.predicates.batch.OverlapCountRule`); None — the
        default — means scalar count filtering.
        """
        return None

    @property
    def supports_batch(self) -> bool:
        """True when this predicate overrides a batch hook."""
        cls = type(self)
        return (
            cls.batch_verifier is not Predicate.batch_verifier
            or cls.batch_count_rule is not Predicate.batch_count_rule
        )

    def __call__(self, a: Record, b: Record) -> bool:
        return self.evaluate(a, b)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class ConjunctionPredicate(Predicate):
    """AND of several predicates.

    Blocking keys come from the *most selective* conjunct (the one
    declared first); the guarantee holds because a pair satisfying the
    conjunction satisfies every conjunct, in particular the first.
    """

    def __init__(self, predicates: list[Predicate], name: str | None = None):
        if not predicates:
            raise ValueError("ConjunctionPredicate needs at least one conjunct")
        self._predicates = list(predicates)
        self.name = name or " & ".join(p.name for p in self._predicates)
        self.cost = sum(p.cost for p in self._predicates)
        self.key_implies_match = False
        self.symmetric = all(p.symmetric for p in self._predicates)

    def evaluate(self, a: Record, b: Record) -> bool:
        return all(p.evaluate(a, b) for p in self._predicates)

    def blocking_keys(self, record: Record) -> Iterable[Hashable]:
        return self._predicates[0].blocking_keys(record)


class FunctionPredicate(Predicate):
    """Adapt a plain pair function + key function into a Predicate.

    Handy in tests and for user-supplied criteria that already have a
    blocking scheme.
    """

    def __init__(
        self,
        evaluate_fn,
        keys_fn,
        name: str = "function-predicate",
        cost: float = 1.0,
        key_implies_match: bool = False,
        symmetric: bool = True,
    ):
        self._evaluate_fn = evaluate_fn
        self._keys_fn = keys_fn
        self.name = name
        self.cost = cost
        self.key_implies_match = key_implies_match
        self.symmetric = symmetric

    def evaluate(self, a: Record, b: Record) -> bool:
        return bool(self._evaluate_fn(a, b))

    def blocking_keys(self, record: Record) -> Iterable[Hashable]:
        return self._keys_fn(record)


class PredicateLevel:
    """One (sufficient, necessary) predicate pair of Algorithm 2.

    ``PrunedDedup`` takes a list of these, ordered cheapest/loosest first.
    """

    def __init__(self, sufficient: Predicate, necessary: Predicate, name: str = ""):
        self.sufficient = sufficient
        self.necessary = necessary
        self.name = name or f"S[{sufficient.name}] / N[{necessary.name}]"

    def __repr__(self) -> str:
        return f"<PredicateLevel {self.name!r}>"
