"""Binary logistic regression, from scratch on NumPy.

The paper trains "a binary logistic classifier using standard string
similarity functions" on labeled duplicate pairs; its signed log-odds
output is the pairwise criterion P of Section 5 (positive = duplicate,
magnitude = confidence).  We implement L2-regularized logistic regression
with full-batch Newton–Raphson (IRLS), which converges in a handful of
iterations on these low-dimensional feature vectors.
"""

from __future__ import annotations

import numpy as np


class LogisticRegression:
    """L2-regularized binary logistic regression trained by IRLS.

    Attributes (after :meth:`fit`):
        coef_: Weight vector (n_features,).
        intercept_: Bias term.
        n_iter_: Newton iterations actually used.
    """

    def __init__(
        self,
        l2: float = 1.0,
        max_iter: int = 50,
        tol: float = 1e-8,
    ):
        if l2 < 0:
            raise ValueError(f"l2 must be >= 0, got {l2}")
        self.l2 = l2
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        """Fit on features *x* (n, d) and binary labels *y* (n,) in {0, 1}."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        if y.shape != (x.shape[0],):
            raise ValueError(
                f"y shape {y.shape} does not match x rows {x.shape[0]}"
            )
        if not np.isin(y, (0.0, 1.0)).all():
            raise ValueError("labels must be 0 or 1")

        n, d = x.shape
        design = np.hstack([np.ones((n, 1)), x])
        weights = np.zeros(d + 1)
        # No regularization on the intercept.
        reg = np.full(d + 1, self.l2)
        reg[0] = 0.0

        for iteration in range(1, self.max_iter + 1):
            logits = design @ weights
            probs = _sigmoid(logits)
            gradient = design.T @ (probs - y) + reg * weights
            # IRLS Hessian with a floor on the variance terms for stability.
            variance = np.maximum(probs * (1.0 - probs), 1e-10)
            hessian = (design * variance[:, None]).T @ design + np.diag(reg)
            try:
                step = np.linalg.solve(hessian, gradient)
            except np.linalg.LinAlgError:
                step = np.linalg.lstsq(hessian, gradient, rcond=None)[0]
            weights -= step
            self.n_iter_ = iteration
            if float(np.abs(step).max()) < self.tol:
                break

        self.intercept_ = float(weights[0])
        self.coef_ = weights[1:]
        return self

    def _require_fitted(self) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("classifier is not fitted")
        return self.coef_

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Return signed log-odds for rows of *x* (the paper's score P)."""
        coef = self._require_fitted()
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return x @ coef + self.intercept_

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Return P(duplicate) for rows of *x*."""
        return _sigmoid(self.decision_function(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Return hard 0/1 labels for rows of *x*."""
        return (self.decision_function(x) > 0.0).astype(int)

    def score_pair(self, features: np.ndarray) -> float:
        """Return the signed log-odds of a single feature vector."""
        return float(self.decision_function(features.reshape(1, -1))[0])


def _sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z, dtype=float)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out
