"""Pairwise scorers: the final criterion P of the paper.

A scorer maps a record pair to a signed real score — positive means
duplicate, negative non-duplicate, magnitude is confidence (Section 5.1).
The main implementation wraps a trained
:class:`~repro.scoring.classifier.LogisticRegression` over a
:class:`~repro.similarity.vectorize.PairFeaturizer`; a hand-weighted
variant covers datasets without training data, and a cache wrapper
memoizes by record id (P is "expensive" by assumption — never score the
same pair twice).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from ..core.records import Record
from ..similarity.vectorize import PairFeaturizer
from .classifier import LogisticRegression


class PairwiseScorer(ABC):
    """Signed scoring function over record pairs."""

    @abstractmethod
    def score(self, a: Record, b: Record) -> float:
        """Return the signed duplicate score of (a, b)."""

    def __call__(self, a: Record, b: Record) -> float:
        return self.score(a, b)


class TrainedScorer(PairwiseScorer):
    """Signed log-odds of a trained logistic classifier (the paper's P)."""

    def __init__(self, featurizer: PairFeaturizer, classifier: LogisticRegression):
        self._featurizer = featurizer
        self._classifier = classifier

    def score(self, a: Record, b: Record) -> float:
        return self._classifier.score_pair(self._featurizer.vector(a, b))


class WeightedScorer(PairwiseScorer):
    """Hand-tuned linear combination of features, shifted by *bias*.

    ``score = weights . features + bias`` — the paper's "hand tuned
    weighted combination of the similarity between the record pairs".
    A negative bias makes dissimilar pairs score negative.
    """

    def __init__(
        self,
        featurizer: PairFeaturizer,
        weights: Sequence[float],
        bias: float,
    ):
        if len(weights) != featurizer.n_features:
            raise ValueError(
                f"{len(weights)} weights for {featurizer.n_features} features"
            )
        self._featurizer = featurizer
        self._weights = np.asarray(weights, dtype=float)
        self._bias = bias

    def score(self, a: Record, b: Record) -> float:
        return float(self._weights @ self._featurizer.vector(a, b) + self._bias)


class CachedScorer(PairwiseScorer):
    """Memoize an inner scorer by unordered record-id pair."""

    def __init__(self, inner: PairwiseScorer):
        self._inner = inner
        self._cache: dict[tuple[int, int], float] = {}
        self.n_evaluations = 0

    def fresh(self) -> "CachedScorer":
        """Return a new empty cache over the same inner scorer.

        Timing experiments use this so each measured run pays the full
        cost of its own P evaluations instead of reusing a warm cache.
        """
        return CachedScorer(self._inner)

    def score(self, a: Record, b: Record) -> float:
        key = (
            (a.record_id, b.record_id)
            if a.record_id <= b.record_id
            else (b.record_id, a.record_id)
        )
        cached = self._cache.get(key)
        if cached is None:
            cached = self._inner.score(a, b)
            self._cache[key] = cached
            self.n_evaluations += 1
        return cached


def train_scorer(
    featurizer: PairFeaturizer,
    pairs: Sequence[tuple[Record, Record]],
    labels: Sequence[int],
    l2: float = 1.0,
) -> TrainedScorer:
    """Train a logistic classifier on labeled pairs; return its scorer.

    *labels* are 1 for duplicate pairs, 0 for non-duplicates.
    """
    if len(pairs) != len(labels):
        raise ValueError(f"{len(pairs)} pairs but {len(labels)} labels")
    x = featurizer.matrix(pairs)
    y = np.asarray(labels, dtype=float)
    classifier = LogisticRegression(l2=l2).fit(x, y)
    return TrainedScorer(featurizer, classifier)
