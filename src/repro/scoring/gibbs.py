"""Score-to-probability normalization.

Section 5: "These scores can be converted to probabilities through
appropriate normalization, for example by constructing a Gibbs
distribution from the scores."  Given the scores of the R returned
answers, the Gibbs weights ``exp(score / temperature)`` normalized over
the answer set give the relative probability of each answer.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def gibbs_probabilities(
    scores: Sequence[float], temperature: float = 1.0
) -> list[float]:
    """Return the Gibbs distribution over *scores*.

    Computed with the log-sum-exp shift for numerical stability;
    *temperature* > 1 flattens the distribution, < 1 sharpens it.
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    if len(scores) == 0:
        return []
    z = np.asarray(scores, dtype=float) / temperature
    z -= z.max()
    weights = np.exp(z)
    return list(weights / weights.sum())


def log_odds_to_probability(score: float) -> float:
    """Map a signed log-odds pair score to P(duplicate)."""
    if score >= 0:
        return 1.0 / (1.0 + float(np.exp(-score)))
    e = float(np.exp(score))
    return e / (1.0 + e)
