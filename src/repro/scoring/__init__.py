"""Pairwise scoring: classifier, scorer wrappers, Gibbs normalization."""

from .classifier import LogisticRegression
from .gibbs import gibbs_probabilities, log_odds_to_probability
from .pairwise import (
    CachedScorer,
    PairwiseScorer,
    TrainedScorer,
    WeightedScorer,
    train_scorer,
)

__all__ = [
    "CachedScorer",
    "LogisticRegression",
    "PairwiseScorer",
    "TrainedScorer",
    "WeightedScorer",
    "gibbs_probabilities",
    "log_odds_to_probability",
    "train_scorer",
]
