"""Reproduction of "Efficient Top-K Count Queries over Imprecise Duplicates".

Sarawagi, Deshpande and Kasliwal, EDBT 2009.

Public entry points:

* :func:`repro.core.topk_count_query` — the end-to-end Top-K count query
  (PrunedDedup + final scoring + R best answers);
* :func:`repro.core.pruned_dedup` — Algorithm 2's collapse/bound/prune
  pipeline on its own;
* :func:`repro.core.topk_rank_query` / ``thresholded_rank_query`` — the
  Section 7 query variants;
* :mod:`repro.datasets` — synthetic corpora with gold labels;
* :mod:`repro.predicates` — the necessary/sufficient predicate library.
"""

from .core import (
    DurabilityPolicy,
    EntityGroup,
    ExecutionPolicy,
    HealthMonitor,
    IncrementalTopK,
    GroupSet,
    Record,
    RecordStore,
    RetryPolicy,
    TopKQueryResult,
    pruned_dedup,
    thresholded_rank_query,
    topk_count_query,
    topk_rank_query,
)
from .predicates import PredicateLevel

__version__ = "1.0.0"

__all__ = [
    "DurabilityPolicy",
    "EntityGroup",
    "ExecutionPolicy",
    "HealthMonitor",
    "IncrementalTopK",
    "GroupSet",
    "PredicateLevel",
    "Record",
    "RecordStore",
    "RetryPolicy",
    "TopKQueryResult",
    "__version__",
    "pruned_dedup",
    "thresholded_rank_query",
    "topk_count_query",
    "topk_rank_query",
]
