"""Synthetic Citeseer-like citation data (substitute for Section 6.1.1).

The paper's citation dataset is a proprietary Citeseer crawl: 150k
citations / 240k author-mention records, each carrying a ``count`` field,
with noisy author names (initials, dropped middle names, typos,
reordering).  The generator reproduces the *shape* that matters to the
algorithms:

* Zipfian author popularity (few prolific authors, long tail) — the skew
  that makes small-K pruning effective;
* one record per (citation, author) pair with author/coauthors/title/
  year fields, weighted by the citation count;
* the documented noise channels on author mentions;
* entity names constructed so the Section 6.1.1 predicates really are
  necessary/sufficient: first names come from a common bank (never
  "rare"), surnames are globally unique per entity (rare by
  construction), and no two entities share a (first, last) pair.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.records import RecordStore
from ..similarity.tfidf import IdfTable
from ..similarity.tokenize import words
from .base import SyntheticDataset
from .names import FIRST_NAMES, LAST_NAMES, TITLE_WORDS, pick, synthetic_name
from .noise import noisy_author_mention


def _unique_author_names(
    n_authors: int,
    rng: np.random.Generator,
    middle_probability: float = 0.25,
    head_fraction: float = 0.1,
) -> list[str]:
    """Entity names with globally unique surnames and (first, last) pairs.

    The *head* (the most popular ``head_fraction`` of entities — the
    generator assigns popularity by index) gets fully rare names: unique
    synthetic first names, no middles, and pairwise-distinct initials
    keys.  These are the authors the S1 "initials + rare words" predicate
    can and should collapse (the paper's prolific rare-named authors);
    giving them colliding initials or common first names would either
    break S1's sufficiency or starve the collapse stage.  Tail entities
    use common bank first names, which the rarity test rejects, keeping
    them invisible to S1.
    """
    used_last: set[str] = set()
    used_head_keys: set[tuple[str, str]] = set()
    names: list[str] = []
    # The initials-key space for head entities is bounded (pairs of
    # initial letters), so the fully-rare head is capped.
    n_head = min(int(n_authors * head_fraction), 300)
    for index in range(n_authors):
        if index < len(LAST_NAMES) and LAST_NAMES[index] not in used_last:
            last = LAST_NAMES[index]
        else:
            last = synthetic_name(rng, n_syllables=4)
            while last in used_last:
                last = synthetic_name(rng, n_syllables=4)
        used_last.add(last)

        if index < n_head:
            first = synthetic_name(rng, n_syllables=3)
            key = tuple(sorted((first[0], last[0])))
            attempts = 0
            while (first in used_last or key in used_head_keys) and attempts < 200:
                first = synthetic_name(rng, n_syllables=3)
                key = tuple(sorted((first[0], last[0])))
                attempts += 1
            used_head_keys.add(key)
            names.append(f"{first} {last}")
            continue

        first = pick(rng, FIRST_NAMES)
        if rng.random() < middle_probability:
            middle = pick(rng, FIRST_NAMES)
            names.append(f"{first} {middle} {last}")
        else:
            names.append(f"{first} {last}")
    return names


def _zipf_weights(n: int, s: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-s)
    return weights / weights.sum()


def generate_citations(
    n_records: int = 5000,
    n_authors: int | None = None,
    seed: int = 0,
    zipf_s: float = 0.9,
    max_authors_per_citation: int = 4,
    noise_level: float = 1.0,
) -> SyntheticDataset:
    """Generate author-mention records with gold entity labels.

    Args:
        n_records: Target number of author-mention records.
        n_authors: Distinct author entities (default ``n_records // 15``).
        seed: RNG seed (generation is fully deterministic).
        zipf_s: Skew of author popularity.
        max_authors_per_citation: Authors per citation are uniform in
            ``1..max_authors_per_citation``.
        noise_level: Scales the mention-noise mixture (1.0 = the paper's
            documented channels; see :func:`repro.datasets.noise.noisy_author_mention`).
    """
    if n_records < 1:
        raise ValueError(f"n_records must be >= 1, got {n_records}")
    rng = np.random.default_rng(seed)
    if n_authors is None:
        n_authors = max(20, n_records // 2)
    n_authors = min(n_authors, n_records)

    entity_names = _unique_author_names(n_authors, rng)
    popularity = _zipf_weights(n_authors, zipf_s)

    rows: list[dict[str, str]] = []
    weights: list[float] = []
    labels: list[int] = []
    while len(rows) < n_records:
        n_in_citation = int(
            rng.integers(1, max_authors_per_citation + 1)
        )
        n_in_citation = min(n_in_citation, n_authors)
        members = rng.choice(
            n_authors, size=n_in_citation, replace=False, p=popularity
        )
        title = " ".join(
            pick(rng, TITLE_WORDS) for _ in range(int(rng.integers(4, 9)))
        )
        year = str(int(rng.integers(1985, 2009)))
        count = 1.0 + float(rng.geometric(0.4))
        pages = f"{int(rng.integers(1, 500))}-{int(rng.integers(500, 900))}"

        mentions = {
            int(a): noisy_author_mention(
                entity_names[int(a)], rng, level=noise_level
            )
            for a in members
        }
        for author in members:
            author = int(author)
            coauthors = "; ".join(
                mention for other, mention in mentions.items() if other != author
            )
            rows.append(
                {
                    "author": mentions[author],
                    "coauthors": coauthors,
                    "title": title,
                    "year": year,
                    "pages": pages,
                }
            )
            weights.append(count)
            labels.append(author)
            if len(rows) >= n_records:
                break

    store = RecordStore.from_rows(rows, weights=weights)
    return SyntheticDataset(store=store, labels=labels, entity_names=entity_names)


def author_idf(store: RecordStore, field: str = "author") -> IdfTable:
    """Blocked IDF over the author strings of the corpus.

    Each *document* is the union of words over all distinct author
    strings sharing a sorted-initials key.  Two layers of variant
    collapsing keep the rarity signal meaningful:

    * distinct strings (not raw mentions), so a prolific author's
      popularity does not inflate the df of the author's own surname;
    * initials-key blocking, so the author's *spelling variants* (typos,
      initialisms — which share the key) count as one document while a
      genuinely common word still spans many keys.

    Under this table, "min IDF over name words >= threshold" separates
    entity-specific surnames (df ~ 1 key) from shared first names
    (df ~ number of entities using them) — the property the paper's S1
    sufficient predicate relies on.
    """
    from ..similarity.tokenize import sorted_initials_key

    by_key: dict[str, set[str]] = {}
    for value in set(store.field_values(field)):
        key = sorted_initials_key(value)
        by_key.setdefault(key, set()).update(words(value))
    return IdfTable(by_key.values())


def author_string_idf(store: RecordStore, field: str = "author") -> IdfTable:
    """IDF over *distinct* author strings (one document per string).

    Used as the rarest-token *anchor* table for
    :class:`~repro.predicates.library.CitationS1`: inside one
    initials-key block the blocked table cannot tell a shared first name
    from an entity-specific surname (everything collapses to one
    document), whereas over distinct strings the shared first name spans
    several documents and loses the argmax.
    """
    distinct = sorted(set(store.field_values(field)))
    return IdfTable(words(value) for value in distinct)


def suggest_min_idf(idf: IdfTable, df_cap: int = 3) -> float:
    """Rarity threshold admitting words in at most *df_cap* key blocks.

    Surnames are unique per entity (one or two key blocks after noise),
    so they pass; bank first names span many entities' blocks and fail.
    """
    if df_cap < 1:
        raise ValueError(f"df_cap must be >= 1, got {df_cap}")
    if idf.n_documents <= df_cap:
        return 0.0
    return math.log(idf.n_documents / df_cap)


def generate_author_sample(
    n_records: int = 1800, seed: int = 7, n_authors: int | None = None
) -> SyntheticDataset:
    """Singleton author-name records (the Figure-7 "Authors" dataset).

    Mirrors the paper's sample: a list of bare author names drawn from
    the citation machinery, most entities appearing once or twice.
    """
    rng = np.random.default_rng(seed)
    if n_authors is None:
        n_authors = max(10, int(n_records * 0.8))
    entity_names = _unique_author_names(n_authors, rng)
    popularity = _zipf_weights(n_authors, 1.05)

    rows = []
    labels = []
    for _ in range(n_records):
        author = int(rng.choice(n_authors, p=popularity))
        rows.append({"name": noisy_author_mention(entity_names[author], rng)})
        labels.append(author)
    store = RecordStore.from_rows(rows)
    return SyntheticDataset(store=store, labels=labels, entity_names=entity_names)


def generate_getoor_sample(n_records: int = 1700, seed: int = 11) -> SyntheticDataset:
    """A citation-flavored sample akin to the Figure-7 "Getoor" dataset."""
    return generate_citations(
        n_records=n_records,
        n_authors=max(10, int(n_records * 0.7)),
        seed=seed,
        zipf_s=1.05,
        max_authors_per_citation=3,
    )
