"""Synthetic restaurant benchmark (the Figure-7 "Restaurant" dataset).

The real benchmark (Fodors/Zagat, 860 records / 734 groups) is not
redistributable offline; this generator mirrors its structure: most
restaurants are listed once, a minority twice (once per guide) with
diverging name/address conventions.
"""

from __future__ import annotations

import numpy as np

from ..core.records import RecordStore
from .base import SyntheticDataset
from .names import CUISINES, LOCALITIES, RESTAURANT_WORDS, STREET_WORDS, pick
from .noise import abbreviate, drop_token, typo_in_name


def _restaurant_name(rng: np.random.Generator) -> str:
    n_words = int(rng.integers(2, 4))
    picks = rng.choice(len(RESTAURANT_WORDS), size=n_words, replace=False)
    return " ".join(RESTAURANT_WORDS[int(i)] for i in picks)


def _second_listing(name: str, address: str, rng: np.random.Generator) -> tuple[str, str]:
    """The other guide's rendering of the same restaurant."""
    roll = rng.random()
    if roll < 0.35:
        name2 = f"{name} {pick(rng, ['restaurant', 'cafe', 'diner'])}"
    elif roll < 0.55:
        name2 = drop_token(f"the {name}", rng)
    elif roll < 0.75:
        name2 = typo_in_name(name, rng)
    else:
        name2 = name
    address2 = abbreviate(address, rng, probability=0.8)
    return name2, address2


def generate_restaurants(
    n_records: int = 860, duplicate_rate: float = 0.17, seed: int = 5
) -> SyntheticDataset:
    """Generate guide listings; ~*duplicate_rate* of entities listed twice.

    Defaults reproduce Table 1's shape (860 records, ~734 groups).
    """
    if n_records < 1:
        raise ValueError(f"n_records must be >= 1, got {n_records}")
    if not 0.0 <= duplicate_rate <= 1.0:
        raise ValueError(f"duplicate_rate must be in [0, 1], got {duplicate_rate}")
    rng = np.random.default_rng(seed)

    rows: list[dict[str, str]] = []
    labels: list[int] = []
    entity_names: list[str] = []
    entity = 0
    while len(rows) < n_records:
        name = _restaurant_name(rng)
        street = (
            f"{int(rng.integers(1, 999))} {pick(rng, STREET_WORDS)} street"
        )
        city = pick(rng, LOCALITIES)
        cuisine = pick(rng, CUISINES)
        entity_names.append(name)
        rows.append(
            {"name": name, "address": street, "city": city, "cuisine": cuisine}
        )
        labels.append(entity)
        if len(rows) < n_records and rng.random() < duplicate_rate:
            name2, address2 = _second_listing(name, street, rng)
            rows.append(
                {"name": name2, "address": address2, "city": city, "cuisine": cuisine}
            )
            labels.append(entity)
        entity += 1

    store = RecordStore.from_rows(rows)
    return SyntheticDataset(store=store, labels=labels, entity_names=entity_names)
