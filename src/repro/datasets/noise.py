"""Noise channels: how clean entity values become noisy mentions.

Each channel reproduces an error mode the paper observes in its data:
typos, names reduced to initials, dropped middle names, reordered name
parts (citations); missing spaces between name parts and
current-date-for-birth-date substitutions (students); abbreviations and
dropped words (addresses).
"""

from __future__ import annotations

import numpy as np

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"

#: Common address abbreviations (applied in either direction).
ABBREVIATIONS = {
    "road": "rd",
    "street": "st",
    "lane": "ln",
    "apartment": "apt",
    "building": "bldg",
    "society": "soc",
    "nagar": "ngr",
    "opposite": "opp",
    "number": "no",
}


def typo(word: str, rng: np.random.Generator) -> str:
    """Introduce one random character-level error into *word*.

    The first character is never touched (first-letter typos are rare in
    practice, and initials-based predicates depend on it).
    """
    if len(word) < 3:
        return word
    kind = int(rng.integers(0, 4))
    position = int(rng.integers(1, len(word)))
    letter = _ALPHABET[int(rng.integers(0, len(_ALPHABET)))]
    if kind == 0:  # substitution
        return word[:position] + letter + word[position + 1 :]
    if kind == 1:  # deletion
        return word[:position] + word[position + 1 :]
    if kind == 2:  # insertion
        return word[:position] + letter + word[position:]
    # transposition
    if position >= len(word) - 1:
        position = len(word) - 2
    return (
        word[:position]
        + word[position + 1]
        + word[position]
        + word[position + 2 :]
    )


def initialize_tokens(name: str, rng: np.random.Generator, keep_last: bool = True) -> str:
    """Replace name tokens with their initials ("sunita sarawagi" -> "s sarawagi").

    With *keep_last*, the last token (surname) is preserved; all other
    tokens are independently reduced with probability 0.8.
    """
    tokens = name.split()
    if len(tokens) < 2:
        return name
    out = []
    for index, token in enumerate(tokens):
        is_last = index == len(tokens) - 1
        if keep_last and is_last:
            out.append(token)
        elif rng.random() < 0.8:
            out.append(token[0])
        else:
            out.append(token)
    return " ".join(out)


def drop_token(name: str, rng: np.random.Generator) -> str:
    """Drop one non-final token (middle names vanish most often)."""
    tokens = name.split()
    if len(tokens) < 3:
        return name
    position = int(rng.integers(0, len(tokens) - 1))
    return " ".join(tokens[:position] + tokens[position + 1 :])


def swap_order(name: str) -> str:
    """Move the last token to the front ("sunita sarawagi" -> "sarawagi sunita")."""
    tokens = name.split()
    if len(tokens) < 2:
        return name
    return " ".join([tokens[-1]] + tokens[:-1])


def merge_spaces(name: str, rng: np.random.Generator) -> str:
    """Delete the space between two adjacent tokens (the students' error)."""
    tokens = name.split()
    if len(tokens) < 2:
        return name
    position = int(rng.integers(0, len(tokens) - 1))
    merged = tokens[position] + tokens[position + 1]
    return " ".join(tokens[:position] + [merged] + tokens[position + 2 :])


def typo_in_name(
    name: str, rng: np.random.Generator, exclude_last: bool = False
) -> str:
    """Apply :func:`typo` to one random token of *name*.

    With *exclude_last* the final token (the surname) is never touched —
    used for citation mentions, where a surname typo combined with an
    initialized counterpart mention would break the 60%-common-3-grams
    necessary predicate.
    """
    tokens = name.split()
    if not tokens:
        return name
    limit = len(tokens) - 1 if exclude_last and len(tokens) > 1 else len(tokens)
    position = int(rng.integers(0, limit))
    tokens[position] = typo(tokens[position], rng)
    return " ".join(t for t in tokens if t)


def abbreviate(text: str, rng: np.random.Generator, probability: float = 0.5) -> str:
    """Randomly abbreviate known address words in *text*."""
    out = []
    for token in text.split():
        short = ABBREVIATIONS.get(token)
        if short is not None and rng.random() < probability:
            out.append(short)
        else:
            out.append(token)
    return " ".join(out)


def drop_words(text: str, rng: np.random.Generator, max_drops: int = 2) -> str:
    """Drop up to *max_drops* random words, keeping at least two."""
    tokens = text.split()
    drops = int(rng.integers(0, max_drops + 1))
    for _ in range(drops):
        if len(tokens) <= 2:
            break
        tokens.pop(int(rng.integers(0, len(tokens))))
    return " ".join(tokens)


def noisy_author_mention(
    name: str, rng: np.random.Generator, level: float = 1.0
) -> str:
    """One noisy citation-style mention of an author *name*.

    At the default *level* (1.0) the mixture is 40% verbatim, 35%
    initials form, 10% dropped middle token, 5% typo, 10% reordered.
    *level* scales every non-verbatim probability (capped so the
    verbatim share never drops below 5%) — the robustness-sweep knob.
    Typos are kept rare because a character error combined with an
    initialized counterpart mention is the one pattern that can slip
    below the paper's 60%-common-3-grams necessary predicate.
    """
    if level < 0:
        raise ValueError(f"level must be non-negative, got {level}")
    scale = min(level, 0.95 / 0.60)
    roll = rng.random()
    cumulative = 0.0
    for probability, channel in (
        (0.35, lambda: initialize_tokens(name, rng)),
        (0.10, lambda: drop_token(name, rng)),
        (0.05, lambda: typo_in_name(name, rng, exclude_last=True)),
        (0.10, lambda: swap_order(name)),
    ):
        cumulative += probability * scale
        if roll < cumulative:
            return channel()
    return name


def noisy_student_name(name: str, rng: np.random.Generator) -> str:
    """One noisy student-form name: 55% verbatim, 25% missing space,
    12% typo, 8% dropped token."""
    roll = rng.random()
    if roll < 0.55:
        return name
    if roll < 0.80:
        return merge_spaces(name, rng)
    if roll < 0.92:
        return typo_in_name(name, rng)
    return drop_token(name, rng)


def noisy_address(text: str, rng: np.random.Generator) -> str:
    """One noisy address mention: abbreviations plus one drop *or* typo.

    At most one content word is perturbed per mention so the paper's
    ">= 4 common non-stop words" necessary predicate holds across any
    two mentions of the same address (given enough distinct content
    words in the clean form).
    """
    text = abbreviate(text, rng)
    roll = rng.random()
    if roll < 0.40:
        return drop_words(text, rng, max_drops=1)
    if roll < 0.55:
        return typo_in_name(text, rng)
    return text
