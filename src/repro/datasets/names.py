"""Name and word banks for the synthetic dataset generators.

The banks mix Indian and western names (the paper's datasets are a
Citeseer crawl, Pune school records and Pune utility addresses).  A
syllable-based generator extends the fixed banks so large corpora do not
exhaust distinct names.
"""

from __future__ import annotations

import numpy as np

FIRST_NAMES = [
    "sunita", "vinay", "sourabh", "rahul", "priya", "amit", "anjali",
    "deepak", "kavita", "manish", "neha", "prakash", "rohit", "sanjay",
    "sneha", "vikram", "anita", "arun", "divya", "ganesh", "harish",
    "isha", "jayant", "kiran", "lata", "mohan", "nitin", "pooja",
    "raj", "sachin", "tanvi", "uday", "varsha", "yogesh", "zara",
    "aditya", "bhavna", "chetan", "dinesh", "esha", "farhan", "gaurav",
    "hema", "indira", "jatin", "kunal", "leela", "mahesh", "nandini",
    "om", "pallavi", "qasim", "ritu", "suresh", "tara", "umesh",
    "vandana", "william", "xavier", "yash", "zoya", "john", "michael",
    "david", "james", "robert", "mary", "jennifer", "linda", "susan",
    "richard", "joseph", "thomas", "charles", "daniel", "matthew",
    "anthony", "mark", "steven", "paul", "andrew", "joshua", "kevin",
    "brian", "george", "edward", "ronald", "timothy", "jason", "jeffrey",
    "peter", "walter", "henry", "carl", "arthur", "lawrence", "albert",
    "alice", "barbara", "carol", "diane", "elizabeth", "frances",
    "grace", "helen", "irene", "janet", "karen", "laura", "margaret",
    "nancy", "olivia", "patricia", "rachel", "sarah", "teresa", "ursula",
    "victoria", "wendy", "yvonne", "arnab", "debashish", "gopal",
    "hemant", "jagdish", "kalpana", "madhuri", "narayan", "padma",
]

LAST_NAMES = [
    "sarawagi", "deshpande", "kasliwal", "sharma", "verma", "gupta",
    "patel", "shah", "mehta", "joshi", "kulkarni", "desai", "patil",
    "reddy", "rao", "nair", "menon", "iyer", "iyengar", "pillai",
    "banerjee", "chatterjee", "mukherjee", "bose", "ghosh", "das",
    "dutta", "sen", "roy", "sinha", "mishra", "pandey", "tiwari",
    "dubey", "shukla", "trivedi", "bhatt", "thakur", "chauhan", "yadav",
    "singh", "kumar", "agarwal", "bansal", "goyal", "jain", "khanna",
    "kapoor", "malhotra", "chopra", "arora", "bhatia", "sethi", "tandon",
    "saxena", "srivastava", "chandra", "prasad", "naidu", "chowdhury",
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "taylor", "moore", "jackson", "martin", "lee",
    "perez", "thompson", "white", "harris", "sanchez", "clark", "lewis",
    "robinson", "walker", "young", "allen", "king", "wright", "scott",
    "torres", "nguyen", "hill", "flores", "green", "adams", "nelson",
    "baker", "hall", "rivera", "campbell", "mitchell", "carter",
    "phillips", "evans", "turner", "parker", "collins", "edwards",
    "stewart", "morris", "murphy", "cook", "rogers", "peterson",
    "cooper", "reed", "bailey", "bell", "kelly", "howard", "ward",
    "wagle", "gokhale", "ranade", "apte", "bhide", "sathe", "lele",
]

TITLE_WORDS = [
    "efficient", "scalable", "distributed", "adaptive", "incremental",
    "approximate", "robust", "optimal", "parallel", "probabilistic",
    "query", "queries", "processing", "optimization", "indexing",
    "clustering", "classification", "learning", "mining", "matching",
    "deduplication", "integration", "extraction", "ranking", "retrieval",
    "databases", "streams", "graphs", "networks", "records", "entities",
    "duplicates", "similarity", "joins", "aggregation", "sampling",
    "estimation", "selectivity", "cardinality", "skyline", "spatial",
    "temporal", "uncertain", "noisy", "imprecise", "evolving", "massive",
    "topk", "count", "answers", "framework", "system", "approach",
    "method", "algorithm", "analysis", "evaluation", "model", "models",
]

STREET_WORDS = [
    "mahatma", "gandhi", "nehru", "shivaji", "tilak", "laxmi", "ganesh",
    "station", "market", "temple", "garden", "river", "hill", "lake",
    "university", "college", "hospital", "railway", "airport", "fort",
    "karve", "senapati", "bajirao", "sinhagad", "paud", "baner", "aundh",
    "kothrud", "deccan", "shaniwar", "kasba", "vishrambaug", "sadashiv",
    "narayan", "rasta", "peth", "camp", "khadki", "yerwada", "hadapsar",
    "kondhwa", "katraj", "warje", "pashan", "bavdhan", "wakad",
]

LOCALITIES = [
    "shivajinagar", "kothrud", "aundh", "baner", "hadapsar", "katraj",
    "warje", "pashan", "bavdhan", "wakad", "hinjewadi", "kharadi",
    "viman nagar", "kalyani nagar", "koregaon park", "camp", "swargate",
    "deccan gymkhana", "erandwane", "karve nagar", "bibwewadi",
    "dhankawadi", "sahakarnagar", "parvati", "gultekdi", "wanowrie",
    "fatima nagar", "mundhwa", "magarpatta", "pimple saudagar",
]

RESTAURANT_WORDS = [
    "spice", "garden", "royal", "golden", "blue", "green", "red",
    "palace", "kitchen", "grill", "house", "corner", "express", "plaza",
    "tandoor", "curry", "dosa", "biryani", "pavilion", "terrace",
    "ocean", "mountain", "valley", "sunset", "sunrise", "lotus", "jade",
    "pearl", "ruby", "saffron", "cinnamon", "olive", "basil", "mint",
]

CUISINES = [
    "indian", "chinese", "italian", "mexican", "thai", "japanese",
    "french", "american", "mediterranean", "continental", "seafood",
    "vegetarian", "barbecue", "fusion", "korean",
]

_SYLLABLES = [
    "ka", "ri", "sha", "na", "ve", "ta", "mo", "lu", "pra", "de",
    "sa", "ni", "ra", "ja", "ba", "go", "che", "dha", "vi", "su",
    "an", "el", "fa", "ho", "wu", "ya", "zo", "ir", "ul", "om",
    "qi", "xa", "ke", "tu", "pe", "do", "ga", "hi", "wa", "yu",
]


def synthetic_name(rng: np.random.Generator, n_syllables: int = 3) -> str:
    """Generate a pronounceable synthetic surname from syllables."""
    count = int(rng.integers(2, n_syllables + 1))
    picks = rng.integers(0, len(_SYLLABLES), size=count)
    return "".join(_SYLLABLES[int(p)] for p in picks)


def pick(rng: np.random.Generator, bank: list[str]) -> str:
    """Uniformly pick one entry of *bank*."""
    return bank[int(rng.integers(0, len(bank)))]


def person_name(rng: np.random.Generator, with_middle: bool = False) -> str:
    """Generate a full person name, optionally with a middle name.

    Falls back to syllable surnames 10% of the time so very large
    corpora keep producing fresh names.
    """
    first = pick(rng, FIRST_NAMES)
    if rng.random() < 0.1:
        last = synthetic_name(rng)
    else:
        last = pick(rng, LAST_NAMES)
    if with_middle and rng.random() < 0.4:
        middle = pick(rng, FIRST_NAMES)
        return f"{first} {middle} {last}"
    return f"{first} {last}"
