"""Synthetic student exam records (substitute for Section 6.1.2).

The paper's student data is private: ~170k exam-paper records with
name / birth date / class / school / paper fields, needing per-student
score aggregation.  Documented error modes: missing spaces between name
parts, the current date entered as the birth date, plus ordinary typos.
Scores follow the paper's own synthetic protocol — a Gaussian
proficiency per student drives the per-paper marks.
"""

from __future__ import annotations

import numpy as np

from ..core.records import RecordStore
from .base import SyntheticDataset
from .names import FIRST_NAMES, LAST_NAMES, pick
from .noise import noisy_student_name

#: The "filled in today instead of my birth date" value.
CURRENT_DATE = "2008-06-15"


def generate_students(
    n_records: int = 5000,
    n_students: int | None = None,
    n_schools: int | None = None,
    seed: int = 0,
    current_date_error_rate: float = 0.05,
) -> SyntheticDataset:
    """Generate exam-paper records with gold student labels.

    Args:
        n_records: Target number of paper records.
        n_students: Distinct students (default ``n_records // 4``).
        n_schools: Distinct school codes (default scaled to students).
        seed: RNG seed.
        current_date_error_rate: Fraction of records whose birth date is
            replaced by :data:`CURRENT_DATE`.

    Record weight is the paper's mark: ``50 + 15 * proficiency + noise``
    clipped to [1, 100], with proficiency ~ N(0, 1) per student — the
    Top-K query "identify the K highest scoring students" aggregates
    these marks over each student's papers.
    """
    if n_records < 1:
        raise ValueError(f"n_records must be >= 1, got {n_records}")
    rng = np.random.default_rng(seed)
    if n_students is None:
        n_students = max(10, n_records // 4)
    if n_schools is None:
        n_schools = max(3, n_students // 40)

    # Unique (first, last) per student so the sufficient predicates
    # cannot merge distinct students.
    seen_pairs: set[tuple[str, str]] = set()
    entity_names: list[str] = []
    schools: list[str] = []
    classes: list[str] = []
    dobs: list[str] = []
    proficiency = rng.normal(0.0, 1.0, size=n_students)
    for _ in range(n_students):
        while True:
            first = pick(rng, FIRST_NAMES)
            last = pick(rng, LAST_NAMES)
            if (first, last) not in seen_pairs:
                seen_pairs.add((first, last))
                break
        entity_names.append(f"{first} {last}")
        schools.append(f"SCH{int(rng.integers(0, n_schools)):04d}")
        classes.append(str(int(rng.integers(1, 8))))
        year = int(rng.integers(1994, 2002))
        month = int(rng.integers(1, 13))
        day = int(rng.integers(1, 29))
        dobs.append(f"{year:04d}-{month:02d}-{day:02d}")

    # Paper counts per student: at least one, skewed low.
    papers_per_student = 1 + rng.geometric(0.45, size=n_students)

    rows: list[dict[str, str]] = []
    weights: list[float] = []
    labels: list[int] = []
    student_cycle = rng.permutation(n_students)
    cursor = 0
    while len(rows) < n_records:
        student = int(student_cycle[cursor % n_students])
        cursor += 1
        for paper_index in range(int(papers_per_student[student])):
            if len(rows) >= n_records:
                break
            dob = dobs[student]
            if rng.random() < current_date_error_rate:
                dob = CURRENT_DATE
            mark = 50.0 + 15.0 * proficiency[student] + rng.normal(0.0, 5.0)
            rows.append(
                {
                    "name": noisy_student_name(entity_names[student], rng),
                    "class": classes[student],
                    "school": schools[student],
                    "dob": dob,
                    "paper": f"P{paper_index + 1:02d}",
                }
            )
            weights.append(float(np.clip(mark, 1.0, 100.0)))
            labels.append(student)

    store = RecordStore.from_rows(rows, weights=weights)
    return SyntheticDataset(store=store, labels=labels, entity_names=entity_names)
