"""Labeled pair sampling and group-wise train/test splitting.

The paper trains its final classifier on labeled duplicate groups,
"us[ing] 50% of the groups to train" (Section 6.4).  Positives are
within-group pairs; negatives mix *near-miss* pairs (different entities
that share a blocking key — the hard cases the classifier must separate)
with random cross-entity pairs.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..core.records import Record
from ..predicates.base import Predicate
from ..predicates.blocking import candidate_pairs
from .base import SyntheticDataset

LabeledPairs = tuple[list[tuple[Record, Record]], list[int]]


def split_groups(
    dataset: SyntheticDataset, train_fraction: float = 0.5, seed: int = 0
) -> tuple[list[int], list[int]]:
    """Split record ids by gold *group*; return (train_ids, test_ids)."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    rng = np.random.default_rng(seed)
    groups = dataset.gold_partition()
    order = rng.permutation(len(groups))
    n_train = max(1, int(round(train_fraction * len(groups))))
    train_ids: list[int] = []
    test_ids: list[int] = []
    for rank, group_index in enumerate(order):
        target = train_ids if rank < n_train else test_ids
        target.extend(groups[int(group_index)])
    return sorted(train_ids), sorted(test_ids)


def sample_labeled_pairs(
    dataset: SyntheticDataset,
    record_ids: list[int] | None = None,
    candidate_predicate: Predicate | None = None,
    max_positives: int = 2000,
    negatives_per_positive: float = 2.0,
    seed: int = 0,
) -> LabeledPairs:
    """Return (pairs, labels) for classifier training.

    Args:
        dataset: The labeled dataset.
        record_ids: Restrict sampling to these records (e.g. the train
            split); all records when None.
        candidate_predicate: Source of near-miss negatives — cross-entity
            pairs satisfying it.  Random negatives are used when None or
            when near-misses run out.
        max_positives: Cap on positive pairs.
        negatives_per_positive: Negative:positive ratio.
        seed: RNG seed.
    """
    rng = np.random.default_rng(seed)
    ids = list(range(len(dataset.store))) if record_ids is None else list(record_ids)
    id_set = set(ids)

    by_entity: dict[int, list[int]] = defaultdict(list)
    for record_id in ids:
        by_entity[dataset.labels[record_id]].append(record_id)

    positives: list[tuple[int, int]] = []
    for members in by_entity.values():
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                positives.append((a, b))
    if len(positives) > max_positives:
        chosen = rng.choice(len(positives), size=max_positives, replace=False)
        positives = [positives[int(i)] for i in chosen]

    n_negatives = int(round(negatives_per_positive * len(positives)))
    negatives: list[tuple[int, int]] = []
    if candidate_predicate is not None:
        records = [dataset.store[i] for i in ids]
        local_to_global = {local: global_id for local, global_id in enumerate(ids)}
        near_misses: list[tuple[int, int]] = []
        # The pair stream's order depends on hash-randomized set
        # iteration; collect and sort so training is reproducible across
        # processes, then subsample with the seeded generator.
        for local_a, local_b in candidate_pairs(candidate_predicate, records):
            a = local_to_global[local_a]
            b = local_to_global[local_b]
            if dataset.labels[a] != dataset.labels[b]:
                near_misses.append((a, b))
        near_misses.sort()
        if len(near_misses) > n_negatives:
            chosen = rng.choice(
                len(near_misses), size=n_negatives, replace=False
            )
            near_misses = [near_misses[int(i)] for i in sorted(chosen)]
        negatives.extend(near_misses)
    while len(negatives) < n_negatives and len(ids) >= 2:
        a, b = (int(x) for x in rng.choice(len(ids), size=2, replace=False))
        a, b = ids[a], ids[b]
        if dataset.labels[a] != dataset.labels[b]:
            negatives.append((a, b))

    pairs = [
        (dataset.store[a], dataset.store[b]) for a, b in positives + negatives
    ]
    labels = [1] * len(positives) + [0] * len(negatives)
    if not id_set:
        raise ValueError("no records to sample from")
    return pairs, labels
