"""Common container for synthetic datasets with gold labels."""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence
from dataclasses import dataclass, field

from ..core.records import RecordStore


@dataclass
class SyntheticDataset:
    """A generated record store plus its ground truth.

    Attributes:
        store: The noisy mention records.
        labels: Gold entity id per record (parallel to the store).
        entity_names: Clean canonical name per entity id.
    """

    store: RecordStore
    labels: list[int]
    entity_names: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.labels) != len(self.store):
            raise ValueError(
                f"{len(self.store)} records but {len(self.labels)} labels"
            )

    @property
    def n_records(self) -> int:
        return len(self.store)

    @property
    def n_entities(self) -> int:
        return len(set(self.labels))

    def gold_partition(self) -> list[list[int]]:
        """Gold grouping of record ids, largest first."""
        by_entity: dict[int, list[int]] = defaultdict(list)
        for record_id, label in enumerate(self.labels):
            by_entity[label].append(record_id)
        return sorted(by_entity.values(), key=len, reverse=True)

    def entity_weights(self) -> dict[int, float]:
        """Total record weight per gold entity."""
        weights: dict[int, float] = defaultdict(float)
        for record, label in zip(self.store, self.labels):
            weights[label] += record.weight
        return dict(weights)

    def true_topk(self, k: int) -> list[tuple[int, float]]:
        """Gold (entity id, total weight) of the K heaviest entities."""
        ranked = sorted(self.entity_weights().items(), key=lambda p: -p[1])
        return ranked[:k]

    def subset(self, record_ids: Sequence[int]) -> "SyntheticDataset":
        """Dataset restricted to *record_ids* (records renumbered)."""
        from ..core.records import Record  # local import avoids cycle at load

        records = []
        labels = []
        for new_id, old_id in enumerate(record_ids):
            old = self.store[old_id]
            records.append(
                Record(record_id=new_id, fields=old.fields, weight=old.weight)
            )
            labels.append(self.labels[old_id])
        return SyntheticDataset(
            store=RecordStore(records),
            labels=labels,
            entity_names=self.entity_names,
        )
