"""Synthetic datasets substituting the paper's proprietary corpora."""

from .addresses import generate_address_sample, generate_addresses
from .base import SyntheticDataset
from .citations import (
    author_idf,
    author_string_idf,
    generate_author_sample,
    generate_citations,
    generate_getoor_sample,
    suggest_min_idf,
)
from .io import (
    load_dataset,
    load_dataset_columnar,
    save_dataset,
    save_dataset_columnar,
)
from .labeled import sample_labeled_pairs, split_groups
from .restaurants import generate_restaurants
from .students import CURRENT_DATE, generate_students

__all__ = [
    "CURRENT_DATE",
    "SyntheticDataset",
    "author_idf",
    "author_string_idf",
    "generate_address_sample",
    "generate_addresses",
    "generate_author_sample",
    "generate_citations",
    "generate_getoor_sample",
    "generate_restaurants",
    "generate_students",
    "load_dataset",
    "load_dataset_columnar",
    "sample_labeled_pairs",
    "save_dataset",
    "save_dataset_columnar",
    "split_groups",
    "suggest_min_idf",
]
