"""CSV and columnar round-tripping for labeled datasets.

`python -m repro generate` writes synthetic corpora with a
``gold_entity`` column; this module reads such files (or any labeled
CSV in the same shape) back into a :class:`SyntheticDataset`, so
external data can flow through the validation, training and experiment
machinery unchanged.

For corpora too large to re-parse on every run,
:func:`save_dataset_columnar` / :func:`load_dataset_columnar`
round-trip the same dataset through the tokenized columnar container
(:mod:`repro.storage`): one checksummed array file, loaded via
``np.memmap`` with records materialised lazily — no CSV parsing, no
per-row Python objects until a record is actually touched.
"""

from __future__ import annotations

import csv
import math

from ..core.records import RecordStore
from .base import SyntheticDataset

WEIGHT_COLUMN = "weight"
LABEL_COLUMN = "gold_entity"


def save_dataset(dataset: SyntheticDataset, path: str) -> None:
    """Write *dataset* to *path* as CSV with weight and gold columns."""
    field_names = list(dataset.store[0].fields)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([*field_names, WEIGHT_COLUMN, LABEL_COLUMN])
        for record, label in zip(dataset.store, dataset.labels):
            writer.writerow(
                [*(record[f] for f in field_names), record.weight, label]
            )


def load_dataset(path: str) -> SyntheticDataset:
    """Read a labeled CSV (as written by :func:`save_dataset` or the CLI
    ``generate`` command) back into a :class:`SyntheticDataset`.

    Requires a ``gold_entity`` column; ``weight`` is optional (defaults
    to 1.0).  Entity labels may be arbitrary strings — they are
    re-encoded densely.
    """
    rows: list[dict[str, str]] = []
    weights: list[float] = []
    raw_labels: list[str] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or LABEL_COLUMN not in reader.fieldnames:
            raise ValueError(
                f"{path} lacks the required {LABEL_COLUMN!r} column "
                f"(columns: {reader.fieldnames})"
            )
        has_weight = WEIGHT_COLUMN in reader.fieldnames
        for row in reader:
            raw_labels.append(row.pop(LABEL_COLUMN))
            if has_weight:
                raw_weight = row.pop(WEIGHT_COLUMN)
                try:
                    weight = float(raw_weight)
                except (TypeError, ValueError):
                    raise ValueError(
                        f"malformed weight {raw_weight!r} "
                        f"(row {len(rows) + 1} of {path})"
                    ) from None
                if not math.isfinite(weight):
                    # nan/inf weights silently poison every weight sum,
                    # bound, and comparison downstream — reject up front.
                    raise ValueError(
                        f"non-finite weight {raw_weight!r} "
                        f"(row {len(rows) + 1} of {path}); weights must "
                        f"be finite numbers"
                    )
                weights.append(weight)
            else:
                weights.append(1.0)
            rows.append({k: (v or "") for k, v in row.items()})
    if not rows:
        raise ValueError(f"{path} contains no data rows")

    encoding: dict[str, int] = {}
    labels = []
    for raw in raw_labels:
        if raw not in encoding:
            encoding[raw] = len(encoding)
        labels.append(encoding[raw])
    store = RecordStore.from_rows(rows, weights=weights)
    return SyntheticDataset(store=store, labels=labels)


def save_dataset_columnar(dataset: SyntheticDataset, path: str) -> None:
    """Write *dataset* as one columnar array file (records + labels).

    Bit-identical round-trip: field insertion order, the
    missing-vs-empty distinction, exact float64 weights, and the dense
    label encoding all survive (property-tested against the CSV path).
    """
    import numpy as np

    from ..storage.columnar import RecordColumns
    from ..storage.layout import write_arrays

    columns = RecordColumns.from_records(list(dataset.store))
    arrays = dict(columns.to_arrays())
    arrays["labels"] = np.asarray(dataset.labels, dtype=np.int64)
    meta = {"kind": "labeled-dataset", "n_records": len(dataset.store)}
    write_arrays(path, arrays, meta)


def load_dataset_columnar(path: str) -> SyntheticDataset:
    """Map a columnar dataset file back into a :class:`SyntheticDataset`.

    The record payload stays mapped; records materialise as the store
    is indexed (the store itself holds the lazily-built list).
    """
    from ..storage.columnar import FrozenRecordView, RecordColumns
    from ..storage.layout import ArrayFileError, MappedArrays

    mapped = MappedArrays(path)
    if mapped.meta.get("kind") != "labeled-dataset":
        raise ArrayFileError(
            f"{path} is not a columnar dataset "
            f"(kind={mapped.meta.get('kind')!r})"
        )
    columns = RecordColumns.from_arrays(mapped.arrays)
    view = FrozenRecordView(columns, [None] * columns.n, ())
    store = RecordStore.backed_by(view)
    labels = [int(label) for label in mapped.arrays["labels"].tolist()]
    if len(labels) != len(store):
        raise ArrayFileError(
            f"{path} holds {len(store)} records but {len(labels)} labels"
        )
    return SyntheticDataset(store=store, labels=labels)
