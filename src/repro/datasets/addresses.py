"""Synthetic Pune-style address records (substitute for Section 6.1.3).

The paper's address data (250k name/address/PIN rows from asset
providers, for tax-evasion screening) is private.  The generator emits
multiple asset records per person with abbreviation / word-drop / typo
noise on the address and synthetic asset-worth weights following the
paper's protocol (Gaussian "worth" per entity).
"""

from __future__ import annotations

import numpy as np

from ..core.records import RecordStore
from .base import SyntheticDataset
from .names import FIRST_NAMES, LAST_NAMES, LOCALITIES, STREET_WORDS, pick
from .noise import noisy_address, typo_in_name


def generate_addresses(
    n_records: int = 5000,
    n_entities: int | None = None,
    seed: int = 0,
) -> SyntheticDataset:
    """Generate asset records with gold person labels.

    Each entity owns 1..8 assets (skewed low); every asset contributes
    one record whose weight is the asset's synthetic financial worth.
    The Top-K query "find the addresses with the highest scores"
    aggregates worth per entity.
    """
    if n_records < 1:
        raise ValueError(f"n_records must be >= 1, got {n_records}")
    rng = np.random.default_rng(seed)
    if n_entities is None:
        n_entities = max(10, n_records // 4)

    seen_pairs: set[tuple[str, str]] = set()
    entity_names: list[str] = []
    clean_addresses: list[str] = []
    pins: list[str] = []
    worth = np.exp(rng.normal(3.0, 1.0, size=n_entities))  # log-normal worth
    for _ in range(n_entities):
        while True:
            first = pick(rng, FIRST_NAMES)
            last = pick(rng, LAST_NAMES)
            if (first, last) not in seen_pairs:
                seen_pairs.add((first, last))
                break
        entity_names.append(f"{first} {last}")
        # >= 6 distinct content words so the >=4-common-words necessary
        # predicate survives one content-word loss per side.
        house = str(int(rng.integers(1, 999)))
        street_picks = rng.choice(len(STREET_WORDS), size=4, replace=False)
        s1, s2, l1, l2 = (STREET_WORDS[int(i)] for i in street_picks)
        locality = pick(rng, LOCALITIES)
        clean_addresses.append(
            f"house no {house} {s1} {s2} road near {l1} {l2} {locality} pune"
        )
        pins.append(f"4110{int(rng.integers(10, 99)):02d}")

    assets_per_entity = 1 + rng.geometric(0.5, size=n_entities)

    rows: list[dict[str, str]] = []
    weights: list[float] = []
    labels: list[int] = []
    entity_cycle = rng.permutation(n_entities)
    cursor = 0
    while len(rows) < n_records:
        entity = int(entity_cycle[cursor % n_entities])
        cursor += 1
        for _ in range(int(assets_per_entity[entity])):
            if len(rows) >= n_records:
                break
            name = entity_names[entity]
            if rng.random() < 0.10:
                name = typo_in_name(name, rng)
            pin = pins[entity]
            if rng.random() < 0.05:
                pin = f"4110{int(rng.integers(10, 99)):02d}"
            asset_worth = worth[entity] * float(rng.uniform(0.5, 1.5))
            rows.append(
                {
                    "name": name,
                    "address": noisy_address(clean_addresses[entity], rng),
                    "pin": pin,
                }
            )
            weights.append(asset_worth)
            labels.append(entity)

    store = RecordStore.from_rows(rows, weights=weights)
    return SyntheticDataset(store=store, labels=labels, entity_names=entity_names)


def generate_address_sample(n_records: int = 306, seed: int = 3) -> SyntheticDataset:
    """The small Figure-7 "Address" sample (Table 1: 306 records)."""
    return generate_addresses(
        n_records=n_records, n_entities=max(5, int(n_records * 0.7)), seed=seed
    )
