"""Dictionary-encoded string storage: one UTF-8 blob + int64 offsets.

The columnar record store never materialises Python strings at load
time: a :class:`StringPool` keeps every distinct string as a slice of a
single mapped byte blob, decoded on demand.  This extends the intent of
:class:`repro.similarity.encoding.TokenDictionary` (string → small int
at ingest) with the inverse direction served from disk.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np


class StringPool(Sequence):
    """An immutable, index-addressed pool of UTF-8 strings.

    ``pool[i]`` decodes string *i* from the blob; building the reverse
    ``str → id`` map (:meth:`index`) is deferred until someone actually
    needs to encode, so a cold start pays nothing for it.
    """

    __slots__ = ("_blob", "_offsets", "_index")

    def __init__(self, blob: np.ndarray, offsets: np.ndarray):
        self._blob = np.asarray(blob, dtype=np.uint8)
        self._offsets = np.asarray(offsets, dtype=np.int64)
        if self._offsets.ndim != 1 or len(self._offsets) == 0:
            raise ValueError("offsets must be a non-empty 1-d int64 array")
        self._index: dict[str, int] | None = None

    @classmethod
    def build(cls, strings: Iterable[str]) -> "StringPool":
        """Encode *strings* (in order) into a fresh in-memory pool."""
        chunks: list[bytes] = []
        offsets = [0]
        total = 0
        for text in strings:
            encoded = text.encode("utf-8")
            chunks.append(encoded)
            total += len(encoded)
            offsets.append(total)
        blob = np.frombuffer(b"".join(chunks), dtype=np.uint8)
        return cls(blob, np.asarray(offsets, dtype=np.int64))

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, i: int) -> str:
        start, end = self._offsets[i], self._offsets[i + 1]
        return self._blob[start:end].tobytes().decode("utf-8")

    def __iter__(self):
        offsets = self._offsets
        for i in range(len(offsets) - 1):
            yield self._blob[offsets[i] : offsets[i + 1]].tobytes().decode(
                "utf-8"
            )

    def index(self) -> dict[str, int]:
        """The reverse map (str → id), built on first use and cached."""
        if self._index is None:
            self._index = {text: i for i, text in enumerate(self)}
        return self._index

    def to_arrays(self, prefix: str) -> dict[str, np.ndarray]:
        """The pool's physical arrays, named ``<prefix>blob``/``offsets``."""
        return {f"{prefix}blob": self._blob, f"{prefix}offsets": self._offsets}

    @classmethod
    def from_arrays(cls, arrays, prefix: str) -> "StringPool":
        """Rebuild a pool from :meth:`to_arrays` output (mapped or not)."""
        return cls(arrays[f"{prefix}blob"], arrays[f"{prefix}offsets"])
