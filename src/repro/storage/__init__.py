"""Columnar record storage with memory-mapped on-disk generations.

The package that takes the reproduction from "all records are resident
Python objects" to "a million-record corpus cold-starts by mapping a
compacted checkpoint":

- :mod:`~repro.storage.layout` — the physical array container
  (named, checksummed NumPy buffers in one file, opened via
  ``np.memmap``).
- :mod:`~repro.storage.strings` — dictionary-encoded string pools.
- :mod:`~repro.storage.columnar` — records as CSR field columns, plus
  the hybrid (mapped base + in-memory tail) container the incremental
  engine mutates.
- :mod:`~repro.storage.postings` — blocking-key postings as flat
  arrays with a tagged key codec.
- :mod:`~repro.storage.engine_state` — the ``columnar-<entries>.col``
  checkpoint sidecar schema and its vectorised closure validation.

See ``docs/storage.md`` for the layout, the mmap lifecycle, and how
checkpoint compaction interacts with WAL pruning.
"""

from .columnar import FrozenRecordView, HybridRecordList, RecordColumns
from .engine_state import (
    SIDECAR_PREFIX,
    SIDECAR_SUFFIX,
    EngineStateColumns,
    build_sidecar_arrays,
    open_sidecar,
    resolve_roots,
    sidecar_name,
    sidecar_path,
    write_sidecar,
)
from .layout import ArrayFileError, MappedArrays, read_header_meta, write_arrays
from .postings import (
    KeyEncodingError,
    decode_key,
    encode_key,
    postings_from_arrays,
    postings_to_arrays,
)
from .strings import StringPool

__all__ = [
    "ArrayFileError",
    "EngineStateColumns",
    "FrozenRecordView",
    "HybridRecordList",
    "KeyEncodingError",
    "MappedArrays",
    "RecordColumns",
    "SIDECAR_PREFIX",
    "SIDECAR_SUFFIX",
    "StringPool",
    "build_sidecar_arrays",
    "decode_key",
    "encode_key",
    "open_sidecar",
    "postings_from_arrays",
    "postings_to_arrays",
    "read_header_meta",
    "resolve_roots",
    "sidecar_name",
    "sidecar_path",
    "write_arrays",
    "write_sidecar",
]
