"""Columnar record storage: CSR field columns over string dictionaries.

A :class:`RecordColumns` is the immutable columnar image of a record
sequence — the on-disk generation a compacted checkpoint maps at cold
start.  Layout per record: a CSR slice of ``(field_id, value_id)``
pairs (field order preserved exactly as inserted, so a round-tripped
:class:`~repro.core.records.Record` equals the original, including the
missing-field-vs-empty-string distinction) plus a float64 weight.
Field names and field values are dictionary-encoded into
:class:`~repro.storage.strings.StringPool`\\ s, so repeated values cost
one posting, not one copy.

:class:`HybridRecordList` is the live engine-side container: an
immutable mapped base generation plus an in-memory tail of records
inserted since the last compaction.  It duck-types the ``list[Record]``
surface the incremental engine uses (append / index / iterate / len),
materialises base records lazily with memoisation, and freezes into a
:class:`FrozenRecordView` for snapshot-isolated readers — freezing
copies one tuple of tail references, never the base.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

import numpy as np

from ..core.records import Record
from .layout import MappedArrays, write_arrays
from .strings import StringPool

_PREFIX = "records."


class RecordColumns:
    """Immutable columnar image of ``records[0..n)``."""

    __slots__ = (
        "field_names",
        "values",
        "field_indptr",
        "field_ids",
        "value_ids",
        "weights",
        "n",
    )

    def __init__(
        self,
        field_names: StringPool,
        values: StringPool,
        field_indptr: np.ndarray,
        field_ids: np.ndarray,
        value_ids: np.ndarray,
        weights: np.ndarray,
    ):
        self.field_names = field_names
        self.values = values
        self.field_indptr = np.asarray(field_indptr, dtype=np.int64)
        self.field_ids = np.asarray(field_ids, dtype=np.int32)
        self.value_ids = np.asarray(value_ids, dtype=np.int32)
        self.weights = np.asarray(weights, dtype=np.float64)
        self.n = len(self.weights)
        if len(self.field_indptr) != self.n + 1:
            raise ValueError(
                f"field_indptr has {len(self.field_indptr)} entries for "
                f"{self.n} records"
            )

    @classmethod
    def from_records(cls, records: Sequence[Record]) -> "RecordColumns":
        """Columnarise *records* (must be in id order, ids dense from 0)."""
        name_ids: dict[str, int] = {}
        value_ids: dict[str, int] = {}
        indptr = np.zeros(len(records) + 1, dtype=np.int64)
        flat_fields: list[int] = []
        flat_values: list[int] = []
        weights = np.zeros(len(records), dtype=np.float64)
        for i, record in enumerate(records):
            for name, value in record.fields.items():
                fid = name_ids.setdefault(name, len(name_ids))
                vid = value_ids.setdefault(value, len(value_ids))
                flat_fields.append(fid)
                flat_values.append(vid)
            indptr[i + 1] = len(flat_fields)
            weights[i] = record.weight
        return cls(
            field_names=StringPool.build(name_ids),
            values=StringPool.build(value_ids),
            field_indptr=indptr,
            field_ids=np.asarray(flat_fields, dtype=np.int32),
            value_ids=np.asarray(flat_values, dtype=np.int32),
            weights=weights,
        )

    def record(self, record_id: int) -> Record:
        """Materialise one :class:`Record` (field order preserved)."""
        start = int(self.field_indptr[record_id])
        end = int(self.field_indptr[record_id + 1])
        names = self.field_names
        values = self.values
        fields = {
            names[int(fid)]: values[int(vid)]
            for fid, vid in zip(
                self.field_ids[start:end], self.value_ids[start:end]
            )
        }
        return Record(
            record_id=record_id,
            fields=fields,
            weight=float(self.weights[record_id]),
        )

    def to_arrays(self) -> dict[str, np.ndarray]:
        arrays = {
            f"{_PREFIX}field_indptr": self.field_indptr,
            f"{_PREFIX}field_ids": self.field_ids,
            f"{_PREFIX}value_ids": self.value_ids,
            f"{_PREFIX}weights": self.weights,
        }
        arrays.update(self.field_names.to_arrays(f"{_PREFIX}names."))
        arrays.update(self.values.to_arrays(f"{_PREFIX}values."))
        return arrays

    @classmethod
    def from_arrays(cls, arrays) -> "RecordColumns":
        return cls(
            field_names=StringPool.from_arrays(arrays, f"{_PREFIX}names."),
            values=StringPool.from_arrays(arrays, f"{_PREFIX}values."),
            field_indptr=arrays[f"{_PREFIX}field_indptr"],
            field_ids=arrays[f"{_PREFIX}field_ids"],
            value_ids=arrays[f"{_PREFIX}value_ids"],
            weights=arrays[f"{_PREFIX}weights"],
        )

    def save(self, path: str | Path, meta: dict | None = None) -> Path:
        return write_arrays(path, self.to_arrays(), meta)

    @classmethod
    def open(cls, path: str | Path, *, verify: bool = False) -> "RecordColumns":
        return cls.from_arrays(MappedArrays(path, verify=verify).arrays)


class FrozenRecordView(Sequence):
    """Immutable, lazily-materialising view of (base generation, tail).

    What :meth:`IncrementalTopK.snapshot_state` hands to readers when
    the engine runs on a columnar store: indexing materialises records
    on demand (sharing the live engine's memo cache — item assignment
    is atomic under the GIL and every writer stores an equal value, so
    the benign race costs at most a duplicate materialisation).
    """

    __slots__ = ("_base", "_cache", "_tail")

    def __init__(
        self,
        base: RecordColumns | None,
        cache: list,
        tail: tuple,
    ):
        self._base = base
        self._cache = cache
        self._tail = tail

    def __len__(self) -> int:
        base_n = self._base.n if self._base is not None else 0
        return base_n + len(self._tail)

    def __getitem__(self, record_id):
        if isinstance(record_id, slice):
            return tuple(
                self[i] for i in range(*record_id.indices(len(self)))
            )
        n = len(self)
        if record_id < 0:
            record_id += n
        if not 0 <= record_id < n:
            raise IndexError(record_id)
        base_n = self._base.n if self._base is not None else 0
        if record_id >= base_n:
            return self._tail[record_id - base_n]
        record = self._cache[record_id]
        if record is None:
            record = self._base.record(record_id)
            self._cache[record_id] = record
        return record

    def __iter__(self):
        for record_id in range(len(self)):
            yield self[record_id]


class HybridRecordList:
    """The engine's mutable record container over a mapped base.

    Equivalent to ``list[Record]`` for the operations the incremental
    engine performs, with the prefix ``[0, base.n)`` served from a
    mapped :class:`RecordColumns` generation instead of resident
    objects.  :meth:`swap_base` installs a freshly compacted generation
    (after a columnar checkpoint) without touching published frozen
    views — they keep the old base alive through their own references.
    """

    __slots__ = ("_base", "_cache", "_tail")

    def __init__(self, base: RecordColumns | None = None):
        self._base = base
        self._cache: list = [None] * (base.n if base is not None else 0)
        self._tail: list[Record] = []

    @property
    def base(self) -> RecordColumns | None:
        return self._base

    @property
    def base_n(self) -> int:
        return self._base.n if self._base is not None else 0

    def append(self, record: Record) -> None:
        self._tail.append(record)

    def __len__(self) -> int:
        return self.base_n + len(self._tail)

    def __getitem__(self, record_id):
        if isinstance(record_id, slice):
            return [self[i] for i in range(*record_id.indices(len(self)))]
        n = len(self)
        if record_id < 0:
            record_id += n
        if not 0 <= record_id < n:
            raise IndexError(record_id)
        base_n = self.base_n
        if record_id >= base_n:
            return self._tail[record_id - base_n]
        record = self._cache[record_id]
        if record is None:
            record = self._base.record(record_id)
            self._cache[record_id] = record
        return record

    def __iter__(self):
        for record_id in range(len(self)):
            yield self[record_id]

    def freeze(self) -> FrozenRecordView:
        return FrozenRecordView(self._base, self._cache, tuple(self._tail))

    def swap_base(self, base: RecordColumns) -> None:
        """Replace the base with a compacted generation covering every
        current record; the in-memory tail (and memo cache) is released."""
        if base.n != len(self):
            raise ValueError(
                f"compacted generation holds {base.n} records but the "
                f"live store holds {len(self)}"
            )
        self._base = base
        self._cache = [None] * base.n
        self._tail = []

    def weights_array(self) -> np.ndarray:
        """All record weights as float64, base served without
        materialising records (used by the vectorised audit)."""
        tail = np.asarray(
            [record.weight for record in self._tail], dtype=np.float64
        )
        if self._base is None:
            return tail
        if not len(tail):
            return self._base.weights
        return np.concatenate([self._base.weights, tail])
