"""Single-file container for named NumPy arrays, opened via ``np.memmap``.

This is the physical layer of the columnar store: one file holds a JSON
header describing a set of named, typed, CRC32-checksummed arrays,
followed by their raw little-endian buffers at 64-byte-aligned offsets.
Writers produce the file atomically (tmp + fsync + rename + directory
fsync, the same protocol as checkpoints); readers map the whole file
once with ``numpy.memmap`` and expose zero-copy views, so opening a
multi-gigabyte container costs page-table setup, not I/O — pages fault
in lazily as kernels touch them.

Array checksums are verified only on request (``verify=True``): a cold
start must not read every byte of a mapped file just to serve the first
query.  The header's own checksum is always verified, so a truncated or
overwritten file is rejected before any view is handed out.

Format (all integers little-endian inside array buffers; the framing
is big-endian to match the WAL/checkpoint framing):

========  ==========================================================
bytes     content
========  ==========================================================
0..8      magic ``b"repocol1"``
8..16     ``>II`` header frame: JSON byte length, CRC32 of the JSON
16..      header JSON: ``{"meta": ..., "arrays": [{name, dtype,
          shape, offset, nbytes, crc32}, ...]}``
...       zero padding to the first 64-byte boundary
...       array buffers, each starting on a 64-byte boundary
========  ==========================================================
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path

import numpy as np

MAGIC = b"repocol1"
_FRAME = struct.Struct(">II")  # header byte length, CRC32 of the header
_ALIGN = 64

#: dtypes a container may hold — fixed-width, endian-explicit scalars.
SUPPORTED_DTYPES = frozenset(
    np.dtype(d).str
    for d in (
        "<i1", "<i2", "<i4", "<i8",
        "<u1", "<u2", "<u4", "<u8",
        "<f4", "<f8", "|b1", "|u1", "|i1",
    )
)


class ArrayFileError(ValueError):
    """An array container is structurally invalid or fails a checksum."""


def _fsync_dir(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _pad(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def write_arrays(
    path: str | Path,
    arrays: dict[str, np.ndarray],
    meta: dict | None = None,
    *,
    fsync: bool = True,
) -> Path:
    """Atomically write *arrays* (with JSON-able *meta*) to *path*.

    Arrays are coerced to C-contiguous little-endian buffers; the value
    stored is exactly the value read back (lossless round-trip).
    """
    path = Path(path)
    prepared: list[tuple[str, np.ndarray]] = []
    for name, array in arrays.items():
        if not isinstance(name, str) or not name:
            raise ArrayFileError(f"array name must be a non-empty str: {name!r}")
        array = np.ascontiguousarray(array)
        if array.dtype.byteorder == ">":
            array = array.astype(array.dtype.newbyteorder("<"))
        if array.dtype.str not in SUPPORTED_DTYPES:
            raise ArrayFileError(
                f"array {name!r} has unsupported dtype {array.dtype.str!r}"
            )
        prepared.append((name, array))

    # Lay out offsets: the header length feeds back into the first
    # offset, so compute with a fixed-point pass (offsets are zero-padded
    # decimal of constant width, making the header size stable).
    entries = []
    for name, array in prepared:
        entries.append(
            {
                "name": name,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": 0,
                "nbytes": int(array.nbytes),
                "crc32": zlib.crc32(array.tobytes()) & 0xFFFFFFFF,
            }
        )
    header = {"meta": meta or {}, "arrays": entries}

    def _encode() -> bytes:
        return json.dumps(header, separators=(",", ":")).encode("utf-8")

    # Two passes reach a fixed point: offsets only grow if the header
    # grows, and a second pass with final offsets has a final size.
    for _ in range(8):
        blob = _encode()
        cursor = _pad(len(MAGIC) + _FRAME.size + len(blob))
        changed = False
        for entry in entries:
            if entry["offset"] != cursor:
                entry["offset"] = cursor
                changed = True
            cursor = _pad(cursor + entry["nbytes"])
        if not changed:
            break
    else:  # pragma: no cover - offsets stabilise in <= 2 passes
        raise ArrayFileError("array layout did not stabilise")

    blob = _encode()
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(MAGIC)
        handle.write(_FRAME.pack(len(blob), zlib.crc32(blob) & 0xFFFFFFFF))
        handle.write(blob)
        for entry, (_name, array) in zip(entries, prepared):
            handle.write(b"\x00" * (entry["offset"] - handle.tell()))
            handle.write(array.tobytes())
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    if fsync:
        _fsync_dir(path.parent)
    return path


class MappedArrays:
    """Read-only view of an array container, backed by one ``np.memmap``.

    Views returned by :meth:`array` (and the :attr:`arrays` mapping) are
    zero-copy slices of the mapping — immutable (``writeable=False``)
    and valid for the lifetime of this object.  The underlying mapping
    stays alive as long as any view references it (NumPy keeps the base
    alive), so dropping the container while a view is in flight is safe.
    """

    def __init__(self, path: str | Path, *, verify: bool = False):
        self.path = Path(path)
        try:
            with open(self.path, "rb") as handle:
                magic = handle.read(len(MAGIC))
                if magic != MAGIC:
                    raise ArrayFileError(
                        f"{self.path.name}: bad magic {magic!r}"
                    )
                frame = handle.read(_FRAME.size)
                if len(frame) != _FRAME.size:
                    raise ArrayFileError(
                        f"{self.path.name}: truncated header frame"
                    )
                length, crc = _FRAME.unpack(frame)
                blob = handle.read(length)
        except OSError as exc:
            raise ArrayFileError(f"cannot open {self.path}: {exc}") from exc
        if len(blob) != length or zlib.crc32(blob) & 0xFFFFFFFF != crc:
            raise ArrayFileError(
                f"{self.path.name}: header checksum mismatch"
            )
        try:
            header = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ArrayFileError(
                f"{self.path.name}: header is not valid JSON"
            ) from exc
        self.meta: dict = header.get("meta", {})
        file_size = self.path.stat().st_size
        self._mm = np.memmap(self.path, dtype=np.uint8, mode="r")
        self._views: dict[str, np.ndarray] = {}
        for entry in header.get("arrays", []):
            name = entry["name"]
            dtype = np.dtype(entry["dtype"])
            if dtype.str not in SUPPORTED_DTYPES:
                raise ArrayFileError(
                    f"{self.path.name}: array {name!r} has unsupported "
                    f"dtype {entry['dtype']!r}"
                )
            offset, nbytes = int(entry["offset"]), int(entry["nbytes"])
            shape = tuple(int(s) for s in entry["shape"])
            expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            if expected != nbytes or offset < 0 or offset + nbytes > file_size:
                raise ArrayFileError(
                    f"{self.path.name}: array {name!r} extent is "
                    f"inconsistent with the file"
                )
            view = self._mm[offset : offset + nbytes].view(dtype).reshape(shape)
            view.flags.writeable = False
            if verify:
                actual = zlib.crc32(view.tobytes()) & 0xFFFFFFFF
                if actual != int(entry["crc32"]):
                    raise ArrayFileError(
                        f"{self.path.name}: array {name!r} checksum mismatch"
                    )
            self._views[name] = view

    @property
    def arrays(self) -> dict[str, np.ndarray]:
        """Name → mapped view, in header order."""
        return dict(self._views)

    def array(self, name: str) -> np.ndarray:
        try:
            return self._views[name]
        except KeyError:
            raise ArrayFileError(
                f"{self.path.name}: no array named {name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._views

    def __len__(self) -> int:
        return len(self._views)


def read_header_meta(path: str | Path) -> dict:
    """Validate a container's framing and return its ``meta`` (cheap:
    reads the header only, never the array bodies)."""
    return MappedArrays(path).meta
