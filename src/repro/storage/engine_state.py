"""The engine checkpoint sidecar: full stream state as mapped arrays.

A format-2 checkpoint splits the engine state in two: the ``.ckpt``
file keeps the small JSON parts (header, dead letters, and a reference
frame naming this sidecar), while the bulk — records, union-find
closure, per-group weights, and the blocking-key index — lives in a
``columnar-<entries>.col`` array container next to it.  Restoring from
a compacted checkpoint maps the container and validates the closure
with array kernels; no per-record Python work, no WAL replay beyond
the checkpoint's tail.

This module owns the sidecar schema and the vectorised validation
(root resolution by pointer jumping, weight sums by ``np.bincount`` —
which accumulates strictly in input order, matching the scalar loops
bit for bit).
"""

from __future__ import annotations

import math
from pathlib import Path

import numpy as np

from ..core.persistence import _COL_PREFIX, _COL_SUFFIX, columnar_sidecar_path
from .columnar import RecordColumns
from .layout import ArrayFileError, MappedArrays, write_arrays
from .postings import KeyEncodingError, postings_from_arrays, postings_to_arrays

#: Name pattern of engine sidecar files inside a state directory
#: (owned by the persistence layer, which prunes them with their
#: checkpoints).
SIDECAR_PREFIX = _COL_PREFIX
SIDECAR_SUFFIX = _COL_SUFFIX


def sidecar_name(entries: int) -> str:
    return columnar_sidecar_path(".", entries).name


def sidecar_path(directory: str | Path, entries: int) -> Path:
    return columnar_sidecar_path(directory, entries)


def resolve_roots(parent: np.ndarray) -> np.ndarray:
    """Resolve every element's union-find root by pointer jumping.

    Raises :class:`ArrayFileError` on an out-of-range parent or a cycle
    (a parent chain that fails to terminate), mirroring what the scalar
    ``_walk_root`` audit detects one record at a time.
    """
    parent = np.asarray(parent, dtype=np.int64)
    n = len(parent)
    if n == 0:
        return parent.copy()
    if int(parent.min()) < 0 or int(parent.max()) >= n:
        raise ArrayFileError("union-find parent points out of range")
    current = parent.copy()
    # Path lengths at most n; squaring jumps converge in ceil(log2 n)
    # passes.  Even-length cycles also converge (each member ends up its
    # own fixed point), so convergence alone is not proof of validity —
    # a genuine root must be a self-parent in the ORIGINAL array.
    for _ in range(max(2, n.bit_length()) + 1):
        jumped = current[current]
        if np.array_equal(jumped, current):
            if not np.array_equal(parent[current], current):
                break
            return current
        current = jumped
    raise ArrayFileError("union-find parent chain does not terminate (cycle)")


class EngineStateColumns:
    """Decoded view of one engine sidecar (arrays stay mapped)."""

    def __init__(self, mapped: MappedArrays):
        self.meta = mapped.meta
        arrays = mapped.arrays
        try:
            self.records = RecordColumns.from_arrays(arrays)
            self.uf_parent = arrays["uf.parent"]
            self.uf_size = arrays["uf.size"]
            self.group_roots = arrays["groups.roots"]
            self.group_weights = arrays["groups.weights"]
        except KeyError as exc:
            raise ArrayFileError(
                f"engine sidecar is missing array {exc.args[0]!r}"
            ) from None
        self.n_components = int(self.meta.get("n_components", -1))
        self.has_postings = bool(self.meta.get("has_postings", False))
        self._arrays = arrays

    def key_members(self):
        """The blocking-key index, or None when it was not persisted."""
        if not self.has_postings:
            return None
        return postings_from_arrays(self._arrays)

    def validate(self) -> None:
        """Cross-check the closure invariants with array kernels.

        Mirrors the scalar ``_install_checkpoint`` validation: parent
        chains terminate in range, component count matches, component
        sizes match member counts, and the persisted per-group weights
        equal the member-weight sums (same 1e-9 relative tolerance).
        """
        n = self.records.n
        if len(self.uf_parent) != n or len(self.uf_size) != n:
            raise ArrayFileError(
                f"union-find covers {len(self.uf_parent)} elements but the "
                f"store holds {n} records"
            )
        roots = resolve_roots(self.uf_parent)
        if n == 0:
            if len(self.group_roots):
                raise ArrayFileError("groups persisted for an empty store")
            return
        counts = np.bincount(roots, minlength=n)
        root_ids = np.nonzero(counts)[0]
        if self.n_components >= 0 and len(root_ids) != self.n_components:
            raise ArrayFileError(
                f"n_components says {self.n_components} but "
                f"{len(root_ids)} roots are reachable"
            )
        sizes = np.asarray(self.uf_size, dtype=np.int64)
        if not np.array_equal(counts[root_ids], sizes[root_ids]):
            raise ArrayFileError(
                "component sizes disagree with reachable member counts"
            )
        sums = np.bincount(roots, weights=self.records.weights, minlength=n)
        persisted_roots = np.asarray(self.group_roots, dtype=np.int64)
        if not np.array_equal(persisted_roots, root_ids):
            raise ArrayFileError(
                "persisted group roots disagree with the union-find closure"
            )
        persisted = np.asarray(self.group_weights, dtype=np.float64)
        recomputed = sums[root_ids]
        close = np.isclose(persisted, recomputed, rtol=1e-9, atol=0.0)
        if not bool(np.all(close)):
            raise ArrayFileError(
                "checkpointed group weights do not sum to member weights"
            )
        if not bool(np.all(np.isfinite(persisted))):
            raise ArrayFileError("a persisted group weight is non-finite")


def build_sidecar_arrays(
    records,
    parent: list[int],
    size: list[int],
    n_components: int,
    key_members,
) -> tuple[dict[str, np.ndarray], dict, bool]:
    """Assemble the sidecar arrays for the current engine state.

    *records* is any sequence of :class:`~repro.core.records.Record`
    (the hybrid container included — its mapped base is re-encoded so a
    compacted generation is always self-contained).  Returns
    ``(arrays, meta, has_postings)``; when some blocking key is outside
    the codec's domain the postings are omitted and ``has_postings`` is
    False (restore falls back to re-deriving the index).
    """
    from .columnar import HybridRecordList

    if isinstance(records, HybridRecordList) and records.base_n == len(records):
        columns = records.base  # already compacted, nothing new to encode
    else:
        columns = RecordColumns.from_records(list(records))
    parent_arr = np.asarray(parent, dtype=np.int64)
    roots = resolve_roots(parent_arr) if len(parent_arr) else parent_arr
    n = len(parent_arr)
    if n:
        weight_sums = np.bincount(roots, weights=columns.weights, minlength=n)
        counts = np.bincount(roots, minlength=n)
        root_ids = np.nonzero(counts)[0]
        group_roots = root_ids.astype(np.int64)
        group_weights = weight_sums[root_ids].astype(np.float64)
    else:
        group_roots = np.zeros(0, dtype=np.int64)
        group_weights = np.zeros(0, dtype=np.float64)
    arrays = dict(columns.to_arrays())
    arrays["uf.parent"] = parent_arr
    arrays["uf.size"] = np.asarray(size, dtype=np.int64)
    arrays["groups.roots"] = group_roots
    arrays["groups.weights"] = group_weights
    has_postings = True
    try:
        arrays.update(postings_to_arrays(key_members))
    except KeyEncodingError:
        has_postings = False
    meta = {
        "kind": "engine-state",
        "n_records": int(columns.n),
        "n_components": int(n_components),
        "has_postings": has_postings,
    }
    return arrays, meta, has_postings


def write_sidecar(
    directory: str | Path,
    entries: int,
    arrays: dict[str, np.ndarray],
    meta: dict,
    *,
    fsync: bool = True,
) -> Path:
    path = sidecar_path(directory, entries)
    write_arrays(path, arrays, meta, fsync=fsync)
    return path


def open_sidecar(path: str | Path, *, verify: bool = False) -> EngineStateColumns:
    return EngineStateColumns(MappedArrays(path, verify=verify))


def group_weight_map(columns: EngineStateColumns) -> dict[int, float]:
    """The persisted ``root → weight`` map as plain Python values."""
    return {
        int(root): float(weight)
        for root, weight in zip(
            columns.group_roots.tolist(), columns.group_weights.tolist()
        )
    }


def checkpoint_group_items(records, parent: list[int]) -> list[tuple[int, float]]:
    """``sorted((root, weight))`` pairs for a checkpoint's groups
    section, computed with array kernels instead of a scalar find loop.

    Bit-identical to the scalar accumulation: ``np.bincount`` sums
    weights strictly in input (record-id) order, exactly like the
    ``group_weights[find(rid)] += weight`` loop it replaces.
    """
    parent_arr = np.asarray(parent, dtype=np.int64)
    n = len(parent_arr)
    if n == 0:
        return []
    roots = resolve_roots(parent_arr)
    weights = (
        records.weights_array()
        if hasattr(records, "weights_array")
        else np.asarray([r.weight for r in records], dtype=np.float64)
    )
    sums = np.bincount(roots, weights=weights, minlength=n)
    counts = np.bincount(roots, minlength=n)
    root_ids = np.nonzero(counts)[0]
    return [(int(root), float(sums[root])) for root in root_ids.tolist()]


def weight_total_close(total_group: float, total_records: float) -> bool:
    """Shared tolerance for the audit's total-weight cross-check."""
    return math.isclose(total_group, total_records, rel_tol=1e-9, abs_tol=1e-9)
