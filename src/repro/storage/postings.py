"""Serialisable postings: blocking-key → member-id lists as flat arrays.

The incremental engine's blocking-key index (``key → [record ids]`` in
insertion order) is the one piece of state the v1 checkpoint format
deliberately re-derived from the records at restore (calling
``blocking_keys`` once per record — a Python-level pass over the whole
corpus).  The columnar sidecar persists it instead: keys are encoded
into a tagged byte pool, member lists into one CSR pair, and restore
rebuilds the index with zero predicate calls.

Keys are arbitrary hashables produced by user predicates, so encoding
is best-effort: the tagged codec covers ``str``/``int``/``float``/
``bool``/``None`` and (nested) tuples of those — everything the
library predicates emit.  Anything else raises
:class:`KeyEncodingError`; the engine then simply omits the postings
section and restore falls back to the v1 re-derivation.
"""

from __future__ import annotations

import struct
from collections import defaultdict
from collections.abc import Hashable, Mapping

import numpy as np

_LEN = struct.Struct(">I")
_F64 = struct.Struct(">d")


class KeyEncodingError(TypeError):
    """A blocking key's type is outside the tagged codec's domain."""


def encode_key(key: Hashable) -> bytes:
    """Encode one blocking key; decodes back to an equal object."""
    out = bytearray()
    _encode_into(key, out)
    return bytes(out)


def _encode_into(obj, out: bytearray) -> None:
    if obj is None:
        out += b"n"
    elif isinstance(obj, bool):
        out += b"T" if obj else b"F"
    elif isinstance(obj, int):
        text = str(obj).encode("ascii")
        out += b"i" + _LEN.pack(len(text)) + text
    elif isinstance(obj, float):
        out += b"f" + _F64.pack(obj)
    elif isinstance(obj, str):
        text = obj.encode("utf-8")
        out += b"s" + _LEN.pack(len(text)) + text
    elif isinstance(obj, tuple):
        out += b"t" + _LEN.pack(len(obj))
        for item in obj:
            _encode_into(item, out)
    else:
        raise KeyEncodingError(
            f"blocking key of type {type(obj).__name__} is not encodable"
        )


def decode_key(blob: bytes) -> Hashable:
    """Inverse of :func:`encode_key`."""
    value, pos = _decode_from(blob, 0)
    if pos != len(blob):
        raise ValueError(f"trailing bytes after key at offset {pos}")
    return value


def _decode_from(blob: bytes, pos: int):
    tag = blob[pos : pos + 1]
    pos += 1
    if tag == b"n":
        return None, pos
    if tag == b"T":
        return True, pos
    if tag == b"F":
        return False, pos
    if tag == b"f":
        return _F64.unpack_from(blob, pos)[0], pos + _F64.size
    if tag in (b"i", b"s"):
        (length,) = _LEN.unpack_from(blob, pos)
        pos += _LEN.size
        raw = blob[pos : pos + length]
        pos += length
        if tag == b"i":
            return int(raw.decode("ascii")), pos
        return raw.decode("utf-8"), pos
    if tag == b"t":
        (count,) = _LEN.unpack_from(blob, pos)
        pos += _LEN.size
        items = []
        for _ in range(count):
            item, pos = _decode_from(blob, pos)
            items.append(item)
        return tuple(items), pos
    raise ValueError(f"unknown key tag {tag!r} at offset {pos - 1}")


def postings_to_arrays(
    key_members: Mapping[Hashable, list[int]], prefix: str = "keys."
) -> dict[str, np.ndarray]:
    """Flatten a key index into ``{blob, offsets, indptr, members}``.

    Raises :class:`KeyEncodingError` when any key is outside the codec's
    domain (the caller degrades to not persisting the index).
    """
    blobs: list[bytes] = []
    key_offsets = [0]
    indptr = [0]
    members: list[int] = []
    total = 0
    for key, ids in key_members.items():
        encoded = encode_key(key)
        blobs.append(encoded)
        total += len(encoded)
        key_offsets.append(total)
        members.extend(ids)
        indptr.append(len(members))
    return {
        f"{prefix}blob": np.frombuffer(b"".join(blobs), dtype=np.uint8),
        f"{prefix}offsets": np.asarray(key_offsets, dtype=np.int64),
        f"{prefix}indptr": np.asarray(indptr, dtype=np.int64),
        f"{prefix}members": np.asarray(members, dtype=np.int64),
    }


def postings_from_arrays(
    arrays, prefix: str = "keys."
) -> defaultdict[Hashable, list[int]]:
    """Inverse of :func:`postings_to_arrays`: rebuild the live index.

    Insertion order of keys and of the ids inside each list round-trips
    exactly — the engine's audit checks per-key id monotonicity and the
    verification path slices lists by recency, both order-sensitive.
    """
    blob = np.asarray(arrays[f"{prefix}blob"], dtype=np.uint8).tobytes()
    offsets = arrays[f"{prefix}offsets"]
    indptr = arrays[f"{prefix}indptr"]
    members = arrays[f"{prefix}members"]
    index: defaultdict[Hashable, list[int]] = defaultdict(list)
    member_list = [int(m) for m in members.tolist()]
    for slot in range(len(offsets) - 1):
        key = decode_key(blob[int(offsets[slot]) : int(offsets[slot + 1])])
        index[key] = member_list[int(indptr[slot]) : int(indptr[slot + 1])]
    return index
