"""Structured tracing: nested spans with counter deltas and events.

The pipeline's unit of observation is the **span** — one timed interval
of one pipeline activity (`query` → `pruned_dedup` → `level` → stage),
carrying:

* deterministic **attributes** (group counts, bounds, k, level names —
  facts about the computation that are bit-identical across worker
  counts and re-runs on the same input);
* **wall_seconds** and an optional **counters_delta** (the work the
  interval performed, measured against any counter object exposing
  ``snapshot()``/``delta()`` — in practice
  :class:`repro.core.verification.PipelineCounters`);
* **events** (degradations, shard deaths, quarantines) pinned to the
  span they happened under.

Spans marked ``transient`` exist only under some execution
configurations (per-shard worker spans, the parallel layer's
neighbor-priming stage): the deterministic trace export skips them so
traces of the same query are byte-identical at every worker count.

This module deliberately imports nothing from the rest of ``repro``:
the core layers import *it*, never the other way around, and counter
objects are duck-typed.  Tracers are not thread-safe; the pipelines
that feed them are single-threaded in the parent process (worker
*processes* report deltas back to the parent, which records spans on
their behalf, in fixed shard order).

:class:`NullTracer` is the default everywhere.  Its methods are no-ops
returning shared singletons, so an untraced run does no counter
snapshotting, no clock reads, and no allocation — query answers are
bit-identical to a build without the observability layer.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class SpanEvent:
    """One point-in-time occurrence attached to a span."""

    __slots__ = ("name", "attributes")

    def __init__(self, name: str, attributes: dict[str, object]):
        self.name = name
        self.attributes = attributes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanEvent({self.name!r}, {self.attributes!r})"


class Span:
    """One timed, attributed interval in the trace tree.

    Attributes:
        name: Span name (``query``, ``pruned_dedup``, ``level``, a stage
            name, or ``shard``).
        attributes: Deterministic facts about the computation.  Only
            values that are bit-identical across worker counts belong
            here; timing and machine-dependent data go in
            :attr:`wall_seconds` / :attr:`counters_delta` / event
            attributes instead.
        transient: True for spans that exist only under some execution
            configurations (shard spans, priming stages); excluded from
            the deterministic export.
        wall_seconds: Wall-clock duration (0.0 for synthesized spans
            whose real time overlapped others, e.g. parallel shards —
            their worker-side elapsed time is an *event/attribute*
            concern, never span wall time, so child wall times always
            nest under the parent's).
        counters_delta: Work done during the span (a counter object
            delta, usually ``PipelineCounters``), or None when the span
            was opened without a counter sink.
        events: Occurrences recorded while the span was current.
        children: Child spans, in execution order.
    """

    __slots__ = (
        "name",
        "attributes",
        "transient",
        "wall_seconds",
        "counters_delta",
        "events",
        "children",
    )

    def __init__(
        self,
        name: str,
        attributes: dict[str, object] | None = None,
        transient: bool = False,
    ):
        self.name = name
        self.attributes: dict[str, object] = dict(attributes or {})
        self.transient = transient
        self.wall_seconds = 0.0
        self.counters_delta: object | None = None
        self.events: list[SpanEvent] = []
        self.children: list[Span] = []

    def set_attribute(self, key: str, value: object) -> None:
        """Attach one deterministic attribute (see class docstring)."""
        self.attributes[key] = value

    def set_attributes(self, **attributes: object) -> None:
        """Attach several deterministic attributes at once."""
        self.attributes.update(attributes)

    def add_event(self, name: str, **attributes: object) -> None:
        """Record a point-in-time event under this span."""
        self.events.append(SpanEvent(name, attributes))

    def walk(self) -> Iterator["Span"]:
        """Yield this span and all descendants, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, children={len(self.children)}, "
            f"wall={self.wall_seconds:.6f})"
        )


class _NullSpan:
    """Inert span: accepts every mutation, stores nothing."""

    __slots__ = ()

    name = "null"
    attributes: dict[str, object] = {}
    transient = False
    wall_seconds = 0.0
    counters_delta = None
    events: list[SpanEvent] = []
    children: list["Span"] = []

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def set_attributes(self, **attributes: object) -> None:
        pass

    def add_event(self, name: str, **attributes: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """Reusable no-op context manager yielding the shared null span."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """The zero-overhead default tracer: every operation is a no-op.

    ``span`` hands back a shared, pre-built context manager — no clock
    read, no counter snapshot, no allocation — so pipelines can call it
    unconditionally on their hot path.
    """

    enabled = False

    @property
    def roots(self) -> list[Span]:
        return []

    @property
    def orphan_events(self) -> list[SpanEvent]:
        return []

    def span(
        self,
        name: str,
        counters: object | None = None,
        transient: bool = False,
        **attributes: object,
    ) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def record_span(
        self,
        name: str,
        counters_delta: object | None = None,
        transient: bool = False,
        **attributes: object,
    ) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attributes: object) -> None:
        pass

    def current(self) -> None:
        return None


#: Shared default instance — the pipelines' tracer when none is given.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects a forest of spans, one root per top-level query.

    Args:
        clock: Monotonic clock used for span durations (injectable for
            tests); defaults to :func:`time.perf_counter`.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self.roots: list[Span] = []
        self.orphan_events: list[SpanEvent] = []
        self._clock = clock
        self._stack: list[Span] = []

    def current(self) -> Span | None:
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(
        self,
        name: str,
        counters: object | None = None,
        transient: bool = False,
        **attributes: object,
    ) -> Iterator[Span]:
        """Open a child span of the current span (or a new root).

        *counters* may be any object with ``snapshot()`` and
        ``delta(snapshot)``; the span's :attr:`~Span.counters_delta` is
        the work done between enter and exit.  The span stays open — and
        is the target of :meth:`event` — until the ``with`` block ends,
        including over early returns and exceptions.
        """
        span = Span(name, attributes, transient=transient)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        before = counters.snapshot() if counters is not None else None
        start = self._clock()
        try:
            yield span
        finally:
            span.wall_seconds = self._clock() - start
            if before is not None:
                span.counters_delta = counters.delta(before)
            self._stack.pop()

    def record_span(
        self,
        name: str,
        counters_delta: object | None = None,
        transient: bool = False,
        **attributes: object,
    ) -> Span:
        """Attach an already-finished span under the current span.

        Used for work that completed elsewhere — a worker shard whose
        counter delta travelled back to the parent.  The span's wall
        time is left at 0.0 (it overlapped its siblings in real time;
        record worker-side elapsed as an attribute instead) so the
        child-wall-times-nest-under-parent invariant holds.
        """
        span = Span(name, attributes, transient=transient)
        span.counters_delta = counters_delta
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    def event(self, name: str, **attributes: object) -> None:
        """Record an event under the current span (orphaned if none)."""
        current = self.current()
        if current is not None:
            current.add_event(name, **attributes)
        else:
            self.orphan_events.append(SpanEvent(name, attributes))

    def clear(self) -> None:
        """Drop all collected spans and orphan events."""
        if self._stack:
            raise RuntimeError(
                f"cannot clear mid-trace: span {self._stack[-1].name!r} is "
                f"still open"
            )
        self.roots.clear()
        self.orphan_events.clear()
