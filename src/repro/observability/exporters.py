"""Exporters: JSON-lines traces, Prometheus text metrics, explain trees.

Three views of one run, all derived from the same :class:`Tracer` /
:class:`MetricsRegistry` state:

* :func:`trace_to_jsonl` — one JSON object per span, preorder, parent
  links by id.  ``mode="full"`` includes wall times, counter deltas and
  events (everything needed to replay the run's totals);
  ``mode="deterministic"`` keeps only the machine-independent skeleton
  (names, attributes, tree shape; transient subtrees dropped) and is
  byte-identical across worker counts and re-runs on the same input.
* :func:`prometheus_text` — the registry in Prometheus exposition
  format (text/plain version 0.0.4), ready for a node exporter's
  textfile collector.
* :func:`render_explain` — a human tree for the CLI's ``--explain``.

:func:`replay_counters` closes the loop: it reads a full JSONL trace
back and re-derives the run's total counter deltas from the root spans,
which the test suite compares against the live ``PipelineCounters``.
"""

from __future__ import annotations

import json
from typing import Iterable, TextIO

from .metrics import MetricsRegistry
from .tracer import Span, Tracer


def _span_payload(span: Span, span_id: int, parent_id: int | None, mode: str):
    payload: dict[str, object] = {
        "id": span_id,
        "parent": parent_id,
        "name": span.name,
        "attributes": span.attributes,
    }
    if mode == "full":
        payload["transient"] = span.transient
        payload["wall_seconds"] = span.wall_seconds
        delta = span.counters_delta
        payload["counters"] = (
            delta.as_dict() if delta is not None else None
        )
        payload["events"] = [
            {"name": event.name, "attributes": event.attributes}
            for event in span.events
        ]
    return payload


def trace_lines(tracer: Tracer, mode: str = "full") -> Iterable[str]:
    """Yield one JSON line per exported span, preorder across roots.

    Span ids are preorder integers assigned at export time, so the same
    trace always serializes identically.
    """
    if mode not in ("full", "deterministic"):
        raise ValueError(f"unknown trace export mode: {mode!r}")
    next_id = 0
    # Explicit stack of (span, parent_id) to keep preorder ids stable.
    stack: list[tuple[Span, int | None]] = [
        (root, None) for root in reversed(tracer.roots)
    ]
    while stack:
        span, parent_id = stack.pop()
        if mode == "deterministic" and span.transient:
            continue
        span_id = next_id
        next_id += 1
        yield json.dumps(
            _span_payload(span, span_id, parent_id, mode),
            sort_keys=True,
            separators=(",", ":"),
            default=_jsonable,
        )
        for child in reversed(span.children):
            stack.append((child, span_id))


def _jsonable(value: object) -> object:
    """Serialize attribute values that json doesn't handle natively."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, tuple):
        return list(value)
    if hasattr(value, "as_dict"):
        return value.as_dict()
    return str(value)


def trace_to_jsonl(tracer: Tracer, out: TextIO, mode: str = "full") -> int:
    """Write the trace as JSON lines; returns the number of spans written."""
    n = 0
    for line in trace_lines(tracer, mode=mode):
        out.write(line)
        out.write("\n")
        n += 1
    return n


def replay_counters(lines: Iterable[str]) -> dict[str, object]:
    """Re-derive total counter deltas from a full JSONL trace.

    Sums the ``counters`` payloads of root spans (one per query); every
    nested span's delta is a sub-interval of its root's, so roots alone
    carry the run totals.  Returns a plain dict shaped like
    ``PipelineCounters.as_dict()`` — integer fields summed, per-stage
    seconds merged — for direct comparison with the live counters.
    """
    totals: dict[str, object] = {}
    stage_seconds: dict[str, float] = {}
    for line in lines:
        record = json.loads(line)
        if record.get("parent") is not None:
            continue
        counters = record.get("counters")
        if not counters:
            continue
        for key, value in counters.items():
            if key == "stage_seconds":
                for stage, seconds in value.items():
                    stage_seconds[stage] = stage_seconds.get(stage, 0.0) + seconds
            else:
                totals[key] = totals.get(key, 0) + value
    totals["stage_seconds"] = stage_seconds
    return totals


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus text exposition format."""
    lines: list[str] = []
    seen_header: set[str] = set()
    for name, labels, instrument in registry.series():
        if name not in seen_header:
            seen_header.add(name)
            help_text = registry.help_text(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {instrument.kind}")
        if instrument.kind == "histogram":
            cumulative = 0
            for bound, count in zip(instrument.buckets, instrument.bucket_counts):
                cumulative += count
                bucket_labels = dict(labels, le=_format_bound(bound))
                lines.append(
                    f"{name}_bucket{_label_text(bucket_labels)} {cumulative}"
                )
            cumulative += instrument.bucket_counts[-1]
            lines.append(
                f"{name}_bucket{_label_text(dict(labels, le='+Inf'))} {cumulative}"
            )
            lines.append(f"{name}_sum{_label_text(labels)} {_format(instrument.sum)}")
            lines.append(f"{name}_count{_label_text(labels)} {instrument.count}")
        else:
            lines.append(f"{name}{_label_text(labels)} {_format(instrument.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def _label_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_bound(bound: float) -> str:
    return _format(bound) if bound == int(bound) else repr(bound)


def render_explain(tracer: Tracer, counter_keys: tuple[str, ...] = ()) -> str:
    """Render the trace as a human-readable tree for ``--explain``.

    Each span line shows the name, wall time, notable attributes, and —
    when *counter_keys* name counter fields — the span's non-zero deltas
    for those fields.  Events render as ``!`` lines under their span.
    """
    out: list[str] = []
    for root in tracer.roots:
        _render_span(root, "", True, out, counter_keys, is_root=True)
    for event in tracer.orphan_events:
        out.append(f"! {event.name} {_attr_text(event.attributes)}".rstrip())
    return "\n".join(out) + ("\n" if out else "")


def _render_span(
    span: Span,
    prefix: str,
    last: bool,
    out: list[str],
    counter_keys: tuple[str, ...],
    is_root: bool = False,
) -> None:
    if is_root:
        connector, child_prefix = "", ""
    else:
        connector = "└─ " if last else "├─ "
        child_prefix = prefix + ("   " if last else "│  ")
    parts = [f"{span.name}"]
    if span.wall_seconds:
        parts.append(f"{span.wall_seconds * 1000:.2f}ms")
    attr_text = _attr_text(span.attributes)
    if attr_text:
        parts.append(attr_text)
    delta = span.counters_delta
    if delta is not None and counter_keys:
        delta_dict = delta.as_dict() if hasattr(delta, "as_dict") else dict(delta)
        shown = [
            f"{key}={delta_dict[key]}"
            for key in counter_keys
            if delta_dict.get(key)
        ]
        if shown:
            parts.append("[" + " ".join(shown) + "]")
    out.append((prefix + connector + "  ".join(parts)).rstrip())
    for event in span.events:
        out.append(
            f"{child_prefix}! {event.name} {_attr_text(event.attributes)}".rstrip()
        )
    for index, child in enumerate(span.children):
        _render_span(
            child,
            child_prefix,
            index == len(span.children) - 1,
            out,
            counter_keys,
        )


def _attr_text(attributes: dict[str, object]) -> str:
    return " ".join(f"{key}={value}" for key, value in attributes.items())
