"""Structured observability: tracing, metrics, and exporters.

The subsystem is strictly downstream-free — it imports nothing from the
rest of ``repro`` — so the core, parallel, resilience, persistence, and
CLI layers can all depend on it without cycles.  See
``docs/observability.md`` for the span model, the metric catalogue, and
exporter formats.
"""

from .exporters import (
    prometheus_text,
    render_explain,
    replay_counters,
    trace_lines,
    trace_to_jsonl,
)
from .metrics import (
    LATENCY_BUCKETS,
    NULL_METRICS,
    RATIO_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from .tracer import NULL_TRACER, NullTracer, Span, SpanEvent, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "RATIO_BUCKETS",
    "SIZE_BUCKETS",
    "Span",
    "SpanEvent",
    "Tracer",
    "prometheus_text",
    "render_explain",
    "replay_counters",
    "trace_lines",
    "trace_to_jsonl",
]
