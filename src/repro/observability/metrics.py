"""Metric instruments: counters, gauges, and bounded histograms.

A :class:`MetricsRegistry` holds named instruments, each optionally
split by a small, fixed label set (``stage="prune"``,
``kind="topk"``).  Instruments follow Prometheus conventions — which
keeps the text exporter trivial — but the implementation is deliberately
tiny and dependency-free:

* :class:`Counter` — monotone float total;
* :class:`Gauge` — last-set value;
* :class:`Histogram` — **bounded**: a fixed bucket layout chosen at
  creation plus running count/sum.  Observing is O(#buckets) worst case
  and allocates nothing, so instruments are safe on pipeline hot paths
  (predicate verification, WAL appends).

Like the tracer, this module imports nothing from the rest of
``repro``; pipelines feed it through plain callables or direct method
calls.  ``MetricsRegistry`` is process-local; the parallel layer's
workers report histogram-worthy facts (shard sizes, elapsed times) back
to the parent, which observes them in fixed shard order.
"""

from __future__ import annotations

from bisect import bisect_left

#: Default histogram buckets for second-scale latencies (predicate
#: evaluation, WAL fsync, stage durations).
LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3,
    1e-2, 5e-2, 1e-1, 5e-1, 1.0, 5.0, 10.0,
)

#: Default buckets for set-size style metrics (candidate sets, shards).
SIZE_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
    512.0, 1024.0, 4096.0, 16384.0,
)

#: Default buckets for ratio-style metrics (shard imbalance ≥ 1.0).
RATIO_BUCKETS: tuple[float, ...] = (
    1.0, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> _LabelKey:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def as_dict(self) -> dict[str, float]:
        return {"value": self.value}


class Gauge:
    """Last-observed value."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def as_dict(self) -> dict[str, float]:
        return {"value": self.value}


class Histogram:
    """Fixed-bucket histogram with running count and sum.

    *buckets* are the inclusive upper bounds of each bucket, strictly
    increasing; an implicit +Inf bucket catches the rest.  The layout is
    frozen at creation — observations never allocate.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "sum")

    kind = "histogram"

    def __init__(self, buckets: tuple[float, ...] = LATENCY_BUCKETS):
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError(f"bucket bounds must be strictly increasing: {buckets}")
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {
                str(bound): count
                for bound, count in zip(self.buckets, self.bucket_counts)
            }
            | {"+Inf": self.bucket_counts[-1]},
        }


class MetricsRegistry:
    """Named metric instruments, each optionally split by labels.

    Instruments are created on first use and keyed by
    ``(name, sorted labels)``; repeated calls with the same key return
    the same instrument.  A name is bound to one instrument kind and —
    for histograms — one bucket layout; mixing kinds under a name is a
    programming error and raises.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, _LabelKey], object] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}

    def _get(self, name: str, kind: str, labels: dict[str, str], factory):
        bound = self._kinds.setdefault(name, kind)
        if bound != kind:
            raise ValueError(
                f"metric {name!r} already registered as {bound}, not {kind}"
            )
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._instruments[key] = factory()
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(name, "counter", labels, Counter)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(name, "gauge", labels, Gauge)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get(name, "histogram", labels, lambda: Histogram(buckets))

    def describe(self, name: str, help_text: str) -> None:
        """Attach a HELP line for the Prometheus export."""
        self._help[name] = help_text

    def help_text(self, name: str) -> str:
        return self._help.get(name, "")

    def series(self) -> list[tuple[str, dict[str, str], object]]:
        """All instruments as ``(name, labels, instrument)``, sorted
        deterministically by name then labels."""
        return [
            (name, dict(label_key), self._instruments[(name, label_key)])
            for name, label_key in sorted(self._instruments)
        ]

    def as_dict(self) -> dict[str, object]:
        """Nested plain-dict snapshot (JSON-friendly)."""
        out: dict[str, object] = {}
        for name, labels, instrument in self.series():
            entry = {"kind": self._kinds[name], **instrument.as_dict()}
            if labels:
                entry["labels"] = labels
            out.setdefault(name, []).append(entry)
        return out

    def value(self, name: str, **labels: str) -> float:
        """Convenience accessor: current value of a counter/gauge (0.0
        when the series does not exist)."""
        instrument = self._instruments.get((name, _label_key(labels)))
        if instrument is None:
            return 0.0
        return instrument.value


class NullMetrics:
    """No-op registry look-alike handed to pipelines by default.

    Returns shared inert instruments so call sites can feed metrics
    unconditionally; ``enabled`` lets hot paths skip sampling work
    (clock reads) entirely.
    """

    enabled = False

    class _NullInstrument:
        __slots__ = ()
        value = 0.0
        count = 0
        sum = 0.0

        def inc(self, amount: float = 1.0) -> None:
            pass

        def set(self, value: float) -> None:
            pass

        def observe(self, value: float) -> None:
            pass

    _INSTRUMENT = _NullInstrument()

    def counter(self, name: str, **labels: str):
        return self._INSTRUMENT

    def gauge(self, name: str, **labels: str):
        return self._INSTRUMENT

    def histogram(self, name: str, buckets=LATENCY_BUCKETS, **labels: str):
        return self._INSTRUMENT

    def describe(self, name: str, help_text: str) -> None:
        pass

    def series(self) -> list:
        return []

    def as_dict(self) -> dict:
        return {}

    def value(self, name: str, **labels: str) -> float:
        return 0.0


#: Shared default instance — the pipelines' registry when none is given.
NULL_METRICS = NullMetrics()
