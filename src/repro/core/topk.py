"""End-to-end Top-K count query engine (Algorithm 2, steps 1-10).

Glues the stages together: PrunedDedup reduces the data to the groups
that can still reach the Top-K answer; the final pairwise criterion P is
applied to surviving pairs allowed by the last necessary predicate; the
greedy linear embedding + segmentation DP then produce the R highest
scoring Top-K answers (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..clustering.correlation import ScoreMatrix
from ..embedding.greedy import LinearEmbedding, greedy_embedding
from ..embedding.segmentation import TopKAnswer, auto_max_span, top_k_answers
from ..predicates.base import PredicateLevel
from ..scoring.gibbs import gibbs_probabilities
from ..scoring.pairwise import PairwiseScorer
from .pruned_dedup import PrunedDedupResult, pruned_dedup
from .records import GroupSet, RecordStore
from .resilience import (
    ExecutionPolicy,
    GuardedScorer,
    ResilienceExhausted,
    StageRecord,
)
from .verification import VerificationContext


@dataclass(frozen=True)
class EntityGroup:
    """One entity in a Top-K answer.

    Attributes:
        label: Display name — the representative record's key field.
        weight: Aggregated count/weight of all merged mentions.
        record_ids: All underlying record ids.
    """

    label: str
    weight: float
    record_ids: tuple[int, ...]


@dataclass(frozen=True)
class RankedAnswer:
    """One of the R answers: K entity groups in non-increasing weight order."""

    entities: tuple[EntityGroup, ...]
    score: float
    probability: float


@dataclass
class TopKQueryResult:
    """Full result of a Top-K count query.

    Attributes:
        answers: The R highest-scoring answers, best first.
        pruning: Per-level statistics from PrunedDedup.
        exact: True when pruning alone reduced the data to exactly K
            groups — the answer needed no scoring at all.
        degraded: True when the execution policy stopped the query
            early (during pruning or scoring); the answer is then the K
            heaviest groups of the last consistent collapsed state —
            well-formed and role-safe, but not certified.
        degraded_reason: Why the query degraded (``"deadline"`` or
            ``"stage_budget"``); empty otherwise.
    """

    answers: list[RankedAnswer] = field(default_factory=list)
    pruning: PrunedDedupResult | None = None
    exact: bool = False
    degraded: bool = False
    degraded_reason: str = ""

    @property
    def best(self) -> RankedAnswer:
        """The highest-scoring answer."""
        if not self.answers:
            raise ValueError("query produced no answers")
        return self.answers[0]


def topk_count_query(
    store: RecordStore,
    k: int,
    levels: list[PredicateLevel],
    scorer: PairwiseScorer,
    r: int = 1,
    label_field: str = "",
    prune_iterations: int = 2,
    max_span: int | None = None,
    aggregate_scores: bool = True,
    alpha: float = 0.75,
    rank_answers_by: str = "score",
    probability_temperature: float | None = None,
    context: VerificationContext | None = None,
    policy: ExecutionPolicy | None = None,
    workers: int | None = None,
) -> TopKQueryResult:
    """Answer a Top-K count query over *store*, returning R ranked answers.

    Args:
        store: The raw (duplicate-ridden) records.
        k: Number of largest entity groups to return.
        levels: Necessary/sufficient predicate levels, cheapest first.
        scorer: The final pairwise criterion P (signed score).
        r: Number of alternative answers to return.
        label_field: Record field used as the entity display label;
            defaults to the first field of the representative.
        prune_iterations: Upper-bound refinement passes (Section 4.3).
        max_span: Segment length cap for the segmentation DP; derived
            from the positive-score component sizes when None.
        aggregate_scores: Scale P between collapsed groups by the product
            of member counts, reflecting "the aggregate score over the
            members on each side" (Section 4.1).
        alpha: Decay of the greedy linear embedding (Eq. 3).
        rank_answers_by: ``"score"`` ranks the R answers by their best
            supporting segmentation; ``"mass"`` by their Gibbs log-mass
            over all supporting segmentations (the paper's
            sum-over-groupings answer score; only meaningful for r > 1).
        probability_temperature: Temperature for the Gibbs normalization
            of answer probabilities.  Defaults to the spread of the
            answer scores, so reported probabilities stay informative
            even when aggregate scaling makes raw scores huge.
        context: Shared verification state forwarded to the pruning
            pipeline; the run's counters land on ``result.pruning``.
        policy: Optional :class:`~repro.core.resilience.ExecutionPolicy`
            spanning the whole query — pruning *and* scoring share one
            deadline.  Predicate/scorer faults are contained role-safely
            and on exhaustion the query returns the K heaviest groups of
            the last consistent collapsed state, flagged ``degraded``.
        workers: Worker processes for the sharded parallel pruning
            pipeline (:mod:`repro.core.parallel`); bit-identical results
            at any count.  ``None`` consults ``REPRO_WORKERS`` (default
            1 = serial).  Scoring stays in-process.
    """
    if context is None:
        context = VerificationContext()
    metrics = context.metrics
    before = context.counters.snapshot() if metrics.enabled else None
    with context.span("query", kind="topk", k=k, r=r):
        result = _topk_count_query(
            store,
            k,
            levels,
            scorer,
            r=r,
            label_field=label_field,
            prune_iterations=prune_iterations,
            max_span=max_span,
            aggregate_scores=aggregate_scores,
            alpha=alpha,
            rank_answers_by=rank_answers_by,
            probability_temperature=probability_temperature,
            context=context,
            policy=policy,
            workers=workers,
        )
    if metrics.enabled:
        metrics.counter("repro_queries_total", kind="topk").inc()
        if result.degraded:
            metrics.counter(
                "repro_degraded_queries_total", reason=result.degraded_reason
            ).inc()
        context.publish_pipeline_metrics(context.counters.delta(before))
    return result


def _topk_count_query(
    store: RecordStore,
    k: int,
    levels: list[PredicateLevel],
    scorer: PairwiseScorer,
    r: int,
    label_field: str,
    prune_iterations: int,
    max_span: int | None,
    aggregate_scores: bool,
    alpha: float,
    rank_answers_by: str,
    probability_temperature: float | None,
    context: VerificationContext,
    policy: ExecutionPolicy | None,
    workers: int | None,
) -> TopKQueryResult:
    state = policy.start(context.counters) if policy is not None else None
    pruning = pruned_dedup(
        store,
        k,
        levels,
        prune_iterations=prune_iterations,
        context=context,
        execution_state=state,
        workers=workers,
    )
    groups = pruning.groups
    if pruning.degraded:
        return _degraded_result(groups, k, label_field, pruning)

    if len(groups) <= k:
        # Pruning already certified the K groups: no scoring needed.
        entities = tuple(
            _entity(groups, position, label_field)
            for position in range(len(groups))
        )
        answer = RankedAnswer(entities=entities, score=0.0, probability=1.0)
        return TopKQueryResult(answers=[answer], pruning=pruning, exact=True)

    if state is not None:
        state.begin_stage()
        scorer = GuardedScorer(scorer, state)
    try:
        with context.span("score", n_groups=len(groups)):
            if state is not None:
                state.check()
            scores = group_score_matrix(
                groups, scorer, levels[-1].necessary, aggregate=aggregate_scores
            )
            if state is not None:
                state.check()
            embedding = greedy_embedding(scores, alpha=alpha)
            if max_span is None:
                max_span = auto_max_span(scores)
            if state is not None:
                state.check()
            with context.span("segment_dp", r=r):
                if r == 1:
                    raw_answers = _single_best_answer(
                        scores, embedding, groups, k, max_span
                    )
                else:
                    raw_answers = top_k_answers(
                        scores,
                        embedding,
                        weights=groups.weights(),
                        k=k,
                        r=r,
                        max_span=max_span,
                        rank_by=rank_answers_by,
                    )
                    if not raw_answers:
                        # Degenerate threshold structure (e.g. the K-th
                        # and (K+1)-th groups tie in every
                        # segmentation): fall back to the best
                        # unconstrained segmentation's K largest groups.
                        raw_answers = _single_best_answer(
                            scores, embedding, groups, k, max_span
                        )
    except ResilienceExhausted as exc:
        pruning.stage_records.append(
            StageRecord("scoring", "score", False, exc.reason)
        )
        return _degraded_result(groups, k, label_field, pruning, exc.reason)
    if state is not None:
        pruning.stage_records.append(StageRecord("scoring", "score", True))
    answer_scores = [
        a.log_mass if a.log_mass is not None else a.score for a in raw_answers
    ]
    if probability_temperature is None:
        spread = max(answer_scores) - min(answer_scores) if answer_scores else 0.0
        probability_temperature = max(spread / 4.0, 1.0)
    probabilities = gibbs_probabilities(
        answer_scores, temperature=probability_temperature
    )
    answers = [
        _to_ranked_answer(groups, raw, probability, label_field)
        for raw, probability in zip(raw_answers, probabilities)
    ]
    return TopKQueryResult(answers=answers, pruning=pruning, exact=False)


def _degraded_result(
    groups: GroupSet,
    k: int,
    label_field: str,
    pruning: PrunedDedupResult,
    reason: str | None = None,
) -> TopKQueryResult:
    """Anytime answer after policy exhaustion: the K heaviest groups of
    the last consistent collapsed state.  Groups reflect only completed
    sufficient-closure merges and role-safe pruning, so the answer is
    well-formed (no over-merge introduced by fallbacks) — just not
    certified."""
    entities = tuple(
        _entity(groups, position, label_field)
        for position in range(min(k, len(groups)))
    )
    answer = RankedAnswer(entities=entities, score=0.0, probability=1.0)
    return TopKQueryResult(
        answers=[answer],
        pruning=pruning,
        exact=False,
        degraded=True,
        degraded_reason=reason if reason is not None else pruning.degraded_reason,
    )


def _single_best_answer(
    scores: ScoreMatrix,
    embedding: LinearEmbedding,
    groups: GroupSet,
    k: int,
    max_span: int,
) -> list[TopKAnswer]:
    """Fast R = 1 path: the best *unconstrained* segmentation's K largest
    groups are the answer, skipping the threshold sweep of the full
    Ans_R DP (only needed to rank multiple alternatives)."""
    from ..clustering.correlation import group_score
    from ..embedding.segmentation import best_partition

    partition = best_partition(scores, embedding, max_span=max_span)
    weights = groups.weights()
    scored_groups = sorted(
        (
            (tuple(sorted(members)), sum(weights[m] for m in members))
            for members in partition
        ),
        key=lambda g: (-g[1], g[0]),
    )
    top = scored_groups[:k]
    total = sum(group_score(g, scores) for g in partition)
    return [
        TopKAnswer(
            groups=tuple(members for members, _ in top),
            weights=tuple(weight for _, weight in top),
            score=total,
            n_supporting=1,
        )
    ]


def group_score_matrix(
    groups: GroupSet,
    scorer: PairwiseScorer,
    necessary,
    aggregate: bool = True,
) -> ScoreMatrix:
    """Score surviving group pairs allowed by the necessary predicate.

    With *aggregate*, each representative-pair score is scaled by the
    product of group sizes — the sum of the score over all cross member
    pairs under the Section 4.1 equivalence.
    """
    representatives = groups.representatives()
    matrix = ScoreMatrix.from_scorer(representatives, scorer, necessary)
    if not aggregate:
        return matrix
    scaled = ScoreMatrix(matrix.n, default=matrix.default)
    sizes = [group.size for group in groups]
    for i, j, score in matrix.scored_pairs():
        scaled.set(i, j, score * sizes[i] * sizes[j])
    return scaled


def _entity(groups: GroupSet, position: int, label_field: str) -> EntityGroup:
    group = groups[position]
    representative = groups.store[group.representative_id]
    if label_field:
        label = representative[label_field]
    else:
        label = next(iter(representative.fields.values()), "")
    return EntityGroup(
        label=label,
        weight=group.weight,
        record_ids=tuple(sorted(group.member_ids)),
    )


def _merged_entity(
    groups: GroupSet, positions: tuple[int, ...], label_field: str
) -> EntityGroup:
    """Entity formed by merging several collapsed groups in an answer."""
    heaviest = max(positions, key=lambda p: groups[p].weight)
    base = _entity(groups, heaviest, label_field)
    record_ids: list[int] = []
    weight = 0.0
    for position in positions:
        record_ids.extend(groups[position].member_ids)
        weight += groups[position].weight
    return EntityGroup(
        label=base.label, weight=weight, record_ids=tuple(sorted(record_ids))
    )


def _to_ranked_answer(
    groups: GroupSet,
    raw: TopKAnswer,
    probability: float,
    label_field: str,
) -> RankedAnswer:
    entities = tuple(
        _merged_entity(groups, positions, label_field)
        for positions in raw.groups
    )
    return RankedAnswer(entities=entities, score=raw.score, probability=probability)
