"""Record and group data model.

A :class:`Record` is one noisy mention (a row of the source table) with
named string fields and a numeric *weight* — the aggregation unit for the
Top-K count query (the citation ``count`` field, a student's paper score,
an address' asset worth; 1.0 when the query counts plain mentions).

A :class:`Group` is a set of records already established to be duplicates
of one another (e.g. by the transitive closure of a sufficient predicate).
Its *weight* is the sum of member weights and its *representative* is the
record that stands in for the group in later predicate evaluations —
Section 4.1 proves any member works; we elect a centroid-like one.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Record:
    """One noisy mention of an entity.

    Attributes:
        record_id: Unique integer id within its :class:`RecordStore`.
        fields: Field name → raw string value.
        weight: Contribution of this mention to its group's count.
    """

    record_id: int
    fields: Mapping[str, str]
    weight: float = 1.0

    def __getitem__(self, field_name: str) -> str:
        """Return the value of *field_name* ('' if the field is absent)."""
        return self.fields.get(field_name, "")

    def get(self, field_name: str, default: str = "") -> str:
        """Return the value of *field_name*, or *default* if absent."""
        return self.fields.get(field_name, default)


class RecordStore:
    """An immutable, indexable collection of records.

    Record ids are positions: ``store[i].record_id == i``.  The store is
    the single source of truth the rest of the pipeline refers to by id,
    so collapsed groups and pruned subsets stay cheap (lists of ints).
    """

    def __init__(self, records: Iterable[Record]):
        self._records = list(records)
        for position, record in enumerate(self._records):
            if record.record_id != position:
                raise ValueError(
                    f"record at position {position} has id {record.record_id}; "
                    "RecordStore requires record_id == position"
                )

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Mapping[str, str]],
        weights: Iterable[float] | None = None,
    ) -> "RecordStore":
        """Build a store from dict-like rows, assigning sequential ids."""
        rows = list(rows)
        if weights is None:
            weight_list = [1.0] * len(rows)
        else:
            weight_list = [float(w) for w in weights]
            if len(weight_list) != len(rows):
                raise ValueError(
                    f"{len(rows)} rows but {len(weight_list)} weights"
                )
        return cls(
            Record(record_id=i, fields=dict(row), weight=w)
            for i, (row, w) in enumerate(zip(rows, weight_list))
        )

    @classmethod
    def backed_by(cls, records) -> "RecordStore":
        """Wrap a position-indexed sequence without copying it.

        For lazily-materialising columnar views
        (:class:`repro.storage.FrozenRecordView`), whose construction
        already guarantees ``records[i].record_id == i``: skipping the
        eager copy keeps mapped records unmaterialised until touched.
        The caller vouches for the id invariant.
        """
        store = cls.__new__(cls)
        store._records = records
        return store

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, record_id: int) -> Record:
        return self._records[record_id]

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def field_values(self, field_name: str) -> list[str]:
        """Return the value of *field_name* for every record, in id order."""
        return [record[field_name] for record in self._records]

    def total_weight(self) -> float:
        """Return the sum of all record weights."""
        return sum(record.weight for record in self._records)


@dataclass
class Group:
    """A set of records known to be mutual duplicates.

    Attributes:
        group_id: Stable id of the group within one pipeline stage.
        member_ids: Ids of the member records.
        representative_id: Record elected to represent the group in
            predicate evaluations (Section 4.1 allows any member).
        weight: Sum of member weights — the group's count.
    """

    group_id: int
    member_ids: list[int]
    representative_id: int
    weight: float

    @property
    def size(self) -> int:
        """Number of member records (unweighted)."""
        return len(self.member_ids)

    @classmethod
    def singleton(cls, group_id: int, record: Record) -> "Group":
        """Return a group holding just *record*."""
        return cls(
            group_id=group_id,
            member_ids=[record.record_id],
            representative_id=record.record_id,
            weight=record.weight,
        )


@dataclass
class GroupSet:
    """Groups over a store, ordered by non-increasing weight.

    This is the unit flowing between the collapse, lower-bound and prune
    stages of :mod:`repro.core.pruned_dedup`.
    """

    store: RecordStore
    groups: list[Group] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.groups = sorted(self.groups, key=lambda g: -g.weight)
        for position, group in enumerate(self.groups):
            group.group_id = position

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self) -> Iterator[Group]:
        return iter(self.groups)

    def __getitem__(self, group_id: int) -> Group:
        return self.groups[group_id]

    def representative(self, group_id: int) -> Record:
        """Return the representative record of group *group_id*."""
        return self.store[self.groups[group_id].representative_id]

    def representatives(self) -> list[Record]:
        """Return representatives for all groups, in group order."""
        return [self.store[g.representative_id] for g in self.groups]

    def weights(self) -> list[float]:
        """Return group weights in group order (non-increasing)."""
        return [g.weight for g in self.groups]

    def covered_record_ids(self) -> list[int]:
        """Return ids of all records covered by any group."""
        ids: list[int] = []
        for group in self.groups:
            ids.extend(group.member_ids)
        return ids

    def subset(self, group_ids: Sequence[int]) -> "GroupSet":
        """Return a new GroupSet restricted to *group_ids* (renumbered)."""
        kept = [self.groups[i] for i in group_ids]
        copies = [
            Group(
                group_id=pos,
                member_ids=list(g.member_ids),
                representative_id=g.representative_id,
                weight=g.weight,
            )
            for pos, g in enumerate(kept)
        ]
        return GroupSet(store=self.store, groups=copies)

    @classmethod
    def singletons(cls, store: RecordStore) -> "GroupSet":
        """Return the trivial grouping: one group per record."""
        groups = [Group.singleton(i, record) for i, record in enumerate(store)]
        return cls(store=store, groups=groups)


def merge_groups(store: RecordStore, groups: Iterable[Group]) -> Group:
    """Merge *groups* into one, electing a new representative.

    The representative is the member record (among the old
    representatives) with the largest total weight behind it — a cheap
    centroid-ness proxy in the spirit of [36]: the variant that already
    stands for the most mentions is the least noisy choice.
    """
    groups = list(groups)
    if not groups:
        raise ValueError("cannot merge zero groups")
    member_ids: list[int] = []
    weight = 0.0
    best = groups[0]
    for group in groups:
        member_ids.extend(group.member_ids)
        weight += group.weight
        if group.weight > best.weight:
            best = group
    return Group(
        group_id=-1,
        member_ids=member_ids,
        representative_id=best.representative_id,
        weight=weight,
    )
