"""Retries, backoff, circuit breakers, and the core fault-injection hook.

The storage and parallel layers talk to infrastructure that fails
routinely — disks fill, fsync returns ``EIO``, shared-memory segments
vanish, worker processes die or hang.  This module is the one place
their recovery discipline lives:

* :class:`RetryPolicy` — bounded exponential backoff with
  **deterministic seeded jitter** (a :func:`hashlib.blake2b` draw of
  ``(seed, key, attempt)``, the same discipline the chaos harness uses
  for fault draws, so a retry schedule is reproducible across runs) and
  a cooperative per-attempt timeout.
* :class:`CircuitBreaker` — the classic closed / open / half-open
  automaton, keyed per subsystem through :class:`BreakerRegistry`, so a
  persistently failing dependency (the shard pool, the WAL device) is
  stood down instead of being hammered on every call.
* :func:`fire_fault` — the **fault-injection hook**.  Production code
  calls ``fire_fault("wal.append", index=i, attempt=a)`` at each
  hardened fault site; with no hook installed this is one global read
  and a ``None`` check (zero overhead, nothing fires).  The seeded
  :class:`~repro.testing.faultplane.FaultPlane` installs a hook that
  deterministically raises ``OSError`` / ``ENOSPC`` / crashes the
  worker at those sites, which is how the fault-sweep suite proves the
  safety property: under any injected schedule the engine returns
  bit-identical answers or an explicitly flagged degraded one — never
  a silently wrong one.

Like the observability modules, this file imports nothing from the
rest of ``repro`` so every layer can depend on it.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable

#: Denominator turning a 64-bit hash prefix into a uniform draw in [0, 1).
_DRAW_SPACE = float(2**64)

# -- fault sites ------------------------------------------------------------
# One constant per hardened fault site; the site string is the contract
# between the production call site and the injection plane.

SITE_WAL_APPEND = "wal.append"
SITE_WAL_FSYNC = "wal.fsync"
SITE_CHECKPOINT_WRITE = "checkpoint.write"
SITE_SHM_CREATE = "shm.create"
SITE_SHM_ATTACH = "shm.attach"
SITE_WORKER_CRASH = "worker.crash"
SITE_WORKER_HANG = "worker.hang"

FAULT_SITES = (
    SITE_WAL_APPEND,
    SITE_WAL_FSYNC,
    SITE_CHECKPOINT_WRITE,
    SITE_SHM_CREATE,
    SITE_SHM_ATTACH,
    SITE_WORKER_CRASH,
    SITE_WORKER_HANG,
)

# -- fault hook -------------------------------------------------------------

_FAULT_HOOK: Callable[[str, dict], None] | None = None


def install_fault_hook(
    hook: Callable[[str, dict], None] | None,
) -> Callable[[str, dict], None] | None:
    """Install *hook* as the process-wide fault hook; return the previous.

    The hook is called as ``hook(site, ids)`` at every hardened fault
    site and injects a fault by raising (or, for worker faults, by
    exiting/sleeping).  Pass ``None`` to uninstall.  Forked worker
    processes inherit the installed hook, which is exactly how worker
    crash/hang faults reach the children.
    """
    global _FAULT_HOOK
    previous = _FAULT_HOOK
    _FAULT_HOOK = hook
    return previous


def fault_hook_installed() -> bool:
    """True when a fault-injection hook is currently installed."""
    return _FAULT_HOOK is not None


def fire_fault(site: str, **ids) -> None:
    """Give the installed fault hook (if any) a chance to inject at *site*.

    No-op — one global read — when nothing is installed, so hardened
    production paths pay nothing on the clean path (asserted by the X12
    benchmark).
    """
    hook = _FAULT_HOOK
    if hook is not None:
        hook(site, ids)


# -- retry policy -----------------------------------------------------------


class RetryExhausted(Exception):
    """Every attempt a :class:`RetryPolicy` allowed has failed.

    Carries the last underlying exception as ``__cause__`` and the
    attempt count; callers that can degrade catch this, callers that
    cannot let it propagate.
    """

    def __init__(self, key: str, attempts: int, last: BaseException):
        super().__init__(
            f"{key or 'operation'} failed after {attempts} attempt(s): "
            f"{last!r}"
        )
        self.key = key
        self.attempts = attempts
        self.last = last


class AttemptTimeout(Exception):
    """A retried attempt returned, but only after its per-attempt budget.

    Cooperative, like the resilience layer's call timeouts: pure-Python
    code cannot be preempted, so the over-budget result is discarded
    after the fact and the attempt treated as failed.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic retry schedule for one subsystem.

    Attributes:
        max_attempts: Total tries (first call included).  1 = no retry.
        base_delay_seconds: Backoff before the first retry; doubles per
            retry up to :attr:`max_delay_seconds`.
        max_delay_seconds: Upper bound on any single backoff sleep.
        jitter: Fraction of each backoff randomized *deterministically*:
            the sleep is scaled into ``[1 - jitter, 1]`` by a blake2b
            draw of ``(seed, key, attempt)``.  0 disables jitter.
        seed: Root of the jitter draws — a pinned seed reproduces the
            exact schedule.
        attempt_timeout_seconds: Cooperative per-attempt budget: an
            attempt that returns after this long is treated as failed
            (and retried) instead of trusted.  None = no budget.
        retryable: Exception types worth retrying; anything else
            propagates immediately.
    """

    max_attempts: int = 3
    base_delay_seconds: float = 0.005
    max_delay_seconds: float = 0.25
    jitter: float = 0.5
    seed: int = 0
    attempt_timeout_seconds: float | None = None
    retryable: tuple[type[BaseException], ...] = (OSError,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_seconds < 0 or self.max_delay_seconds < 0:
            raise ValueError("backoff delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if (
            self.attempt_timeout_seconds is not None
            and self.attempt_timeout_seconds < 0
        ):
            raise ValueError("attempt_timeout_seconds must be >= 0")

    def backoff_seconds(self, attempt: int, key: str = "") -> float:
        """Deterministic sleep before retry *attempt* (1-based)."""
        raw = min(
            self.max_delay_seconds,
            self.base_delay_seconds * (2 ** max(0, attempt - 1)),
        )
        if not self.jitter or raw <= 0:
            return raw
        digest = hashlib.blake2b(
            f"{self.seed}|{key}|{attempt}".encode(), digest_size=8
        ).digest()
        draw = int.from_bytes(digest, "big") / _DRAW_SPACE
        return raw * (1.0 - self.jitter * draw)

    def call(
        self,
        fn: Callable[[int], object],
        *,
        key: str = "",
        retry_on: Callable[[BaseException], bool] | None = None,
        breaker: "CircuitBreaker | None" = None,
        metrics=None,
        subsystem: str = "",
        sleep: Callable[[float], None] = time.sleep,
    ):
        """Run ``fn(attempt)`` under this policy; return its value.

        Args:
            fn: The attempt body, called with the 0-based attempt number
                (call sites thread it into :func:`fire_fault` so
                injected faults can differ per attempt).
            key: Stable identity of the operation — seeds the jitter and
                names the failure in :class:`RetryExhausted`.
            retry_on: Extra predicate over a retryable exception; return
                False to stop retrying it (e.g. ``ENOSPC`` is an
                ``OSError`` but retrying a full disk is pointless).
            breaker: Optional circuit breaker observing this call:
                consulted before the first attempt (an open breaker
                fails fast with :class:`RetryExhausted`), told about the
                final success/failure.
            metrics: Optional metrics registry; each *retry* (not the
                first attempt) increments
                ``repro_retries_total{subsystem=...}``.
            subsystem: Label for the retry counter.
            sleep: Injectable for tests.

        Raises:
            RetryExhausted: All attempts failed with retryable errors
                (or the breaker was open).
            BaseException: A non-retryable exception, unchanged, from
                the failing attempt.
        """
        if breaker is not None and not breaker.allow():
            raise RetryExhausted(
                key, 0, BreakerOpen(breaker.name or subsystem or key)
            )
        last: BaseException | None = None
        timeout = self.attempt_timeout_seconds
        for attempt in range(self.max_attempts):
            if attempt:
                if metrics is not None and metrics.enabled:
                    metrics.counter(
                        "repro_retries_total", subsystem=subsystem or key
                    ).inc()
                sleep(self.backoff_seconds(attempt, key=key))
            started = time.perf_counter() if timeout is not None else 0.0
            try:
                value = fn(attempt)
            except self.retryable as exc:
                if retry_on is not None and not retry_on(exc):
                    if breaker is not None:
                        breaker.record_failure()
                    raise
                last = exc
                continue
            if (
                timeout is not None
                and time.perf_counter() - started > timeout
            ):
                last = AttemptTimeout(
                    f"{key or 'attempt'} exceeded {timeout}s budget "
                    f"(attempt {attempt})"
                )
                continue
            if breaker is not None:
                breaker.record_success()
            return value
        if breaker is not None:
            breaker.record_failure()
        raise RetryExhausted(key, self.max_attempts, last) from last


# -- circuit breaker --------------------------------------------------------

STATE_CLOSED = "closed"
STATE_HALF_OPEN = "half_open"
STATE_OPEN = "open"

#: Numeric encoding exported through the ``repro_breaker_state`` gauge.
BREAKER_STATE_CODES = {
    STATE_CLOSED: 0.0,
    STATE_HALF_OPEN: 1.0,
    STATE_OPEN: 2.0,
}


class BreakerOpen(Exception):
    """A call was refused because its subsystem's breaker is open."""

    def __init__(self, name: str):
        super().__init__(f"circuit breaker {name!r} is open")
        self.name = name


class CircuitBreaker:
    """Closed / open / half-open failure automaton for one subsystem.

    * **closed** — calls flow; :attr:`failure_threshold` *consecutive*
      failures trip the breaker open (a success resets the streak).
    * **open** — calls are refused (:meth:`allow` is False) until
      :attr:`recovery_seconds` have elapsed, then one probe is let
      through (half-open).
    * **half-open** — :attr:`half_open_successes` consecutive successes
      close the breaker; any failure re-opens it and restarts the
      recovery clock.

    The clock is injectable so tests drive transitions without real
    waiting.  Thread-unsafe by design (the engine is single-writer);
    the parallel layer's breaker lives in the parent process only.
    """

    def __init__(
        self,
        name: str = "",
        failure_threshold: int = 5,
        recovery_seconds: float = 60.0,
        half_open_successes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if recovery_seconds < 0:
            raise ValueError("recovery_seconds must be >= 0")
        if half_open_successes < 1:
            raise ValueError("half_open_successes must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_seconds = recovery_seconds
        self.half_open_successes = half_open_successes
        self._clock = clock
        self._state = STATE_CLOSED
        self._failure_streak = 0
        self._probe_successes = 0
        self._opened_at = 0.0
        self.failures_total = 0
        self.trips_total = 0

    @property
    def state(self) -> str:
        """Current state, recovery-clock transitions applied."""
        if (
            self._state == STATE_OPEN
            and self._clock() - self._opened_at >= self.recovery_seconds
        ):
            self._state = STATE_HALF_OPEN
            self._probe_successes = 0
        return self._state

    @property
    def state_code(self) -> float:
        return BREAKER_STATE_CODES[self.state]

    def allow(self) -> bool:
        """Whether a call may proceed right now (open = fail fast)."""
        return self.state != STATE_OPEN

    def record_success(self) -> None:
        if self.state == STATE_HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_successes:
                self._state = STATE_CLOSED
                self._failure_streak = 0
        else:
            self._failure_streak = 0

    def record_failure(self) -> None:
        self.failures_total += 1
        state = self.state
        if state == STATE_HALF_OPEN:
            self._trip()
        else:
            self._failure_streak += 1
            if self._failure_streak >= self.failure_threshold:
                self._trip()

    def _trip(self) -> None:
        self._state = STATE_OPEN
        self._opened_at = self._clock()
        self._failure_streak = 0
        self._probe_successes = 0
        self.trips_total += 1

    def reset(self) -> None:
        """Force the breaker closed and clear its streaks (tests)."""
        self._state = STATE_CLOSED
        self._failure_streak = 0
        self._probe_successes = 0


class BreakerRegistry:
    """Process-wide named circuit breakers, created on first use.

    The health monitor reads :meth:`states` for its snapshot and the
    ``repro_breaker_state`` gauge export; subsystems fetch their
    breaker with :meth:`breaker` (constructor kwargs apply only on
    first creation).
    """

    def __init__(self) -> None:
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker(self, name: str, **kwargs) -> CircuitBreaker:
        found = self._breakers.get(name)
        if found is None:
            found = self._breakers[name] = CircuitBreaker(name=name, **kwargs)
        return found

    def states(self) -> dict[str, str]:
        """``{name: state}`` for every registered breaker."""
        return {name: b.state for name, b in sorted(self._breakers.items())}

    def __iter__(self):
        return iter(sorted(self._breakers.items()))

    def reset(self) -> None:
        """Close every breaker and clear its streaks (tests)."""
        for breaker in self._breakers.values():
            breaker.reset()

    def clear(self) -> None:
        """Drop every registered breaker (tests)."""
        self._breakers.clear()


#: The default process-wide registry; subsystems and the health monitor
#: share it unless handed an explicit one.
BREAKERS = BreakerRegistry()
