"""Top-K rank and thresholded rank queries (Section 7).

The **Top-K rank query** wants only the rank order of the K largest
groups, each identified by a canonical member — not exact group sizes.
That weaker contract allows pruning beyond the count query's: once a
group's rank cannot conflict with anyone (it is *resolved*) and none of
its neighbors needs it to cross the bound M, its neighbors become
redundant (Section 7.1).

The **thresholded rank query** replaces K with an explicit size
threshold T: return every group of size >= T, ranked (Section 7.2).  It
reuses the machinery with ``M = T`` fixed instead of estimated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from dataclasses import field as dataclass_field

from ..predicates.base import PredicateLevel
from ..predicates.blocking import NeighborIndex
from .lower_bound import estimate_lower_bound
from .parallel import parallel_collapse, prime_neighbor_index, resolve_workers
from .prune import prune
from .records import GroupSet, RecordStore
from .resilience import (
    ExecutionPolicy,
    StageRecord,
    StageRunner,
    guard_levels,
    necessary_compromised,
)
from .verification import PipelineCounters, VerificationContext


@dataclass(frozen=True)
class RankedGroup:
    """One (c_i, u_i) pair of the rank-query answer.

    Attributes:
        representative_id: Canonical record identifying the group.
        weight: Known (collapsed) weight — a lower bound on the final
            group's weight.
        upper_bound: Upper bound u_i on the weight of the answer group
            containing this group.
        resolved: True when the group's rank cannot conflict with any
            other retained group.
    """

    representative_id: int
    weight: float
    upper_bound: float
    resolved: bool


@dataclass
class RankQueryResult:
    """Outcome of a rank query.

    Attributes:
        ranking: Retained groups in non-increasing weight order.
        groups: The retained GroupSet (for downstream exact evaluation).
        n_retained: Groups kept after both pruning passes.
        n_extra_pruned: Groups removed by the rank-specific second pass
            beyond the count query's pruning.
        certain: For thresholded queries — True when the termination test
            held and the ranking needs no exact evaluation.
        counters: Verification work done across the whole query.
        degraded: True when the execution policy stopped the query
            early; the ranking then reflects the last consistent state
            (weight-ordered, conservative upper bounds, nothing marked
            resolved) — role-safe but not certified.
        degraded_reason: Why the query degraded (``"deadline"`` or
            ``"stage_budget"``); empty otherwise.
        stage_records: Per-stage completion trail
            (:class:`~repro.core.resilience.StageRecord`).
    """

    ranking: list[RankedGroup]
    groups: GroupSet
    n_retained: int
    n_extra_pruned: int
    certain: bool = False
    counters: PipelineCounters | None = None
    degraded: bool = False
    degraded_reason: str = ""
    stage_records: list[StageRecord] = dataclass_field(default_factory=list)


def _resolved_flags(
    weights: list[float],
    upper: list[float],
    neighbor_lists: dict[int, list[int]],
    bound: float,
) -> list[bool]:
    """Apply Section 7.1's two resolution conditions to every group."""
    n = len(weights)
    neighbor_sets = {i: set(neighbors) for i, neighbors in neighbor_lists.items()}
    flags = []
    for j in range(n):
        neighbors_j = neighbor_sets.get(j, set())
        resolved = True
        for g in range(n):
            if g == j:
                continue
            if g in neighbors_j:
                # A neighbor must not be able to reach M without c_j.
                if upper[g] - weights[j] >= bound:
                    resolved = False
                    break
            else:
                # A non-neighbor must have no rank conflict with c_j.
                if not (weights[j] >= upper[g] or upper[j] <= weights[g]):
                    resolved = False
                    break
        flags.append(resolved)
    return flags


def _rank_prune(
    group_set: GroupSet,
    necessary,
    upper: list[float],
    bound: float,
    context: VerificationContext | None = None,
) -> tuple[list[int], list[bool]]:
    """Section 7.1's extra pruning: drop groups only adjacent to resolved
    groups (and themselves below M), returning kept ids + resolved flags.
    """
    n = len(group_set)
    weights = group_set.weights()
    representatives = group_set.representatives()
    if context is not None:
        index = context.neighbor_index(necessary, group_set)
    else:
        index = NeighborIndex(necessary, representatives)
    neighbor_lists = {
        i: index.neighbors(representatives[i], exclude_position=i)
        for i in range(n)
    }
    resolved = _resolved_flags(weights, upper, neighbor_lists, bound)

    # A group is prunable when it is below M on its own and disconnected
    # from every *unresolved* group with u_i >= M.
    unresolved_live = {
        i for i in range(n) if not resolved[i] and upper[i] >= bound
    }
    kept: list[int] = []
    flags: list[bool] = []
    for g in range(n):
        if resolved[g] or weights[g] >= bound:
            kept.append(g)
            flags.append(resolved[g])
            continue
        if any(neighbor in unresolved_live for neighbor in neighbor_lists[g]):
            kept.append(g)
            flags.append(resolved[g])
    return kept, flags


def _degraded_rank_result(
    current: GroupSet,
    upper: list[float],
    runner: StageRunner,
    context: VerificationContext,
) -> RankQueryResult:
    """Anytime answer after policy exhaustion: the last consistent state
    in weight order, conservative upper bounds, nothing resolved."""
    weights = current.weights()
    # Upper bounds only align with `current` when no merge has happened
    # since they were computed; otherwise fall back to "unknown".
    bounds = upper if len(upper) == len(current) else [math.inf] * len(current)
    ranking = [
        RankedGroup(
            representative_id=current[i].representative_id,
            weight=weights[i],
            upper_bound=bounds[i],
            resolved=False,
        )
        for i in range(len(current))
    ]
    return RankQueryResult(
        ranking=ranking,
        groups=current,
        n_retained=len(current),
        n_extra_pruned=0,
        certain=False,
        counters=context.counters,
        degraded=True,
        degraded_reason=runner.reason,
        stage_records=runner.records,
    )


def topk_rank_query(
    store: RecordStore,
    k: int,
    levels: list[PredicateLevel],
    prune_iterations: int = 2,
    context: VerificationContext | None = None,
    policy: ExecutionPolicy | None = None,
    workers: int | None = None,
) -> RankQueryResult:
    """Answer a Top-K *rank* query (Section 7.1).

    Runs the count query's collapse/bound/prune per level, then the
    rank-specific resolved-group pruning after the last level.  The
    verification context (created when omitted) shares each level's
    neighbor index between bound estimation, pruning, and the rank pass,
    and carries pair verdicts across all of them.

    With an :class:`~repro.core.resilience.ExecutionPolicy`, predicate
    faults are contained role-safely (a compromised necessary predicate
    stands pruning down for its level) and on deadline/budget exhaustion
    the query returns the last consistent state flagged ``degraded``.

    *workers* > 1 shards the collapse and neighbor-verification work
    over forked processes (:mod:`repro.core.parallel`) with
    bit-identical results; ``None`` consults ``REPRO_WORKERS``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not levels:
        raise ValueError("need at least one predicate level")

    if context is None:
        context = VerificationContext()
    metrics = context.metrics
    before = context.counters.snapshot() if metrics.enabled else None
    with context.span("query", kind="rank", k=k):
        result = _topk_rank_query(
            store, k, levels, prune_iterations, context, policy, workers
        )
    if metrics.enabled:
        metrics.counter("repro_queries_total", kind="rank").inc()
        if result.degraded:
            metrics.counter(
                "repro_degraded_queries_total", reason=result.degraded_reason
            ).inc()
        context.publish_pipeline_metrics(context.counters.delta(before))
    return result


def _topk_rank_query(
    store: RecordStore,
    k: int,
    levels: list[PredicateLevel],
    prune_iterations: int,
    context: VerificationContext,
    policy: ExecutionPolicy | None,
    workers: int | None,
) -> RankQueryResult:
    n_workers = resolve_workers(workers)
    state = policy.start(context.counters) if policy is not None else None
    executed = guard_levels(levels, state) if state is not None else levels
    runner = StageRunner(context, state)

    current = GroupSet.singletons(store)
    bound = 0.0
    upper: list[float] = []
    compromised = False
    for level in executed:
        with context.span("level", level=level.name) as level_span:
            collapsed = runner.run(
                level.name,
                "collapse",
                lambda: parallel_collapse(
                    current, level.sufficient, n_workers, context
                ),
            )
            if runner.aborted:
                return _degraded_rank_result(current, upper, runner, context)
            current = collapsed
            level_span.set_attribute("n_after_collapse", len(current))
            if n_workers > 1:
                runner.run(
                    level.name,
                    "neighbors",
                    lambda: prime_neighbor_index(
                        current, level.necessary, n_workers, context
                    ),
                    transient=True,
                )
                if runner.aborted:
                    return _degraded_rank_result(current, upper, runner, context)
            estimate = runner.run(
                level.name,
                "lower_bound",
                lambda: estimate_lower_bound(
                    current, level.necessary, k, context=context
                ),
            )
            if runner.aborted:
                return _degraded_rank_result(current, upper, runner, context)
            bound = estimate.bound
            if necessary_compromised(level):
                # Missing N-edges: neither the bound nor neighbor-derived
                # upper bounds are safe to prune with at this level.
                bound = 0.0
                compromised = True
            level_span.set_attributes(m=estimate.m, bound=bound)
            result = runner.run(
                level.name,
                "prune",
                lambda: prune(
                    current,
                    level.necessary,
                    bound,
                    iterations=prune_iterations,
                    compute_all_bounds=True,
                    context=context,
                ),
            )
            if runner.aborted:
                return _degraded_rank_result(current, upper, runner, context)
            current = result.retained
            upper = [result.upper_bounds[i] for i in result.kept_group_ids]
            level_span.set_attribute("n_after_prune", len(current))

    if compromised:
        # The final level's N-graph may be missing edges, so Section
        # 7.1's resolution/redundancy reasoning is unsound: skip the
        # extra pruning, keep everything, mark nothing resolved.
        kept = list(range(len(current)))
        flags = [False] * len(current)
    else:
        if n_workers > 1:
            # The last prune produced a fresh group set, so the rank
            # pass needs a fresh index: build and prime it in parallel.
            runner.run(
                "rank",
                "neighbors",
                lambda: prime_neighbor_index(
                    current, executed[-1].necessary, n_workers, context
                ),
                transient=True,
            )
            if runner.aborted:
                return _degraded_rank_result(current, upper, runner, context)
        rank_pruned = runner.run(
            "rank",
            "rank_prune",
            lambda: _rank_prune(
                current, executed[-1].necessary, upper, bound, context=context
            ),
        )
        if runner.aborted:
            return _degraded_rank_result(current, upper, runner, context)
        kept, flags = rank_pruned
    retained = current.subset(kept)
    ranking = [
        RankedGroup(
            representative_id=retained[pos].representative_id,
            weight=retained[pos].weight,
            upper_bound=upper[original],
            resolved=flags[pos],
        )
        for pos, original in enumerate(kept)
    ]
    return RankQueryResult(
        ranking=ranking,
        groups=retained,
        n_retained=len(kept),
        n_extra_pruned=len(current) - len(kept),
        counters=context.counters,
        stage_records=runner.records,
    )


def thresholded_rank_query(
    store: RecordStore,
    threshold: float,
    levels: list[PredicateLevel],
    prune_iterations: int = 2,
    context: VerificationContext | None = None,
    policy: ExecutionPolicy | None = None,
    workers: int | None = None,
) -> RankQueryResult:
    """Answer a thresholded rank query (Section 7.2): groups of size >= T.

    Sets ``M = threshold`` directly (no estimation step).  The result is
    ``certain`` when Section 7.2's termination test holds: some prefix of
    the retained groups is each of weight >= T and rank-resolved, while
    every later group is redundant given the prefix.

    With an :class:`~repro.core.resilience.ExecutionPolicy`, predicate
    faults are contained role-safely (a compromised necessary predicate
    stands pruning down and forfeits certainty) and on deadline/budget
    exhaustion the query returns the last consistent state flagged
    ``degraded``.

    *workers* > 1 shards the collapse and neighbor-verification work
    over forked processes (:mod:`repro.core.parallel`) with
    bit-identical results; ``None`` consults ``REPRO_WORKERS``.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    if not levels:
        raise ValueError("need at least one predicate level")

    if context is None:
        context = VerificationContext()
    metrics = context.metrics
    before = context.counters.snapshot() if metrics.enabled else None
    with context.span("query", kind="threshold", threshold=threshold):
        result = _thresholded_rank_query(
            store, threshold, levels, prune_iterations, context, policy, workers
        )
    if metrics.enabled:
        metrics.counter("repro_queries_total", kind="threshold").inc()
        if result.degraded:
            metrics.counter(
                "repro_degraded_queries_total", reason=result.degraded_reason
            ).inc()
        context.publish_pipeline_metrics(context.counters.delta(before))
    return result


def _thresholded_rank_query(
    store: RecordStore,
    threshold: float,
    levels: list[PredicateLevel],
    prune_iterations: int,
    context: VerificationContext,
    policy: ExecutionPolicy | None,
    workers: int | None,
) -> RankQueryResult:
    n_workers = resolve_workers(workers)
    state = policy.start(context.counters) if policy is not None else None
    executed = guard_levels(levels, state) if state is not None else levels
    runner = StageRunner(context, state)

    current = GroupSet.singletons(store)
    upper: list[float] = []
    compromised = False
    for level in executed:
        with context.span("level", level=level.name) as level_span:
            collapsed = runner.run(
                level.name,
                "collapse",
                lambda: parallel_collapse(
                    current, level.sufficient, n_workers, context
                ),
            )
            if runner.aborted:
                return _degraded_rank_result(current, upper, runner, context)
            current = collapsed
            level_span.set_attribute("n_after_collapse", len(current))
            if state is not None or n_workers > 1:
                # Unlike the count query there is no lower-bound stage to
                # exercise the necessary predicate's keying before pruning,
                # so sweep it now: building the neighbor index (reused by
                # prune through the context cache) attempts blocking_keys on
                # every representative and surfaces keying failures while
                # pruning can still stand down.  With workers the same call
                # also pre-verifies every neighbor list across the pool.
                # (Transient span: the sweep only exists under a policy
                # or parallel workers.)
                runner.run(
                    level.name,
                    "prune",
                    lambda: prime_neighbor_index(
                        current, level.necessary, n_workers, context
                    ),
                    transient=True,
                )
                if runner.aborted:
                    return _degraded_rank_result(current, upper, runner, context)
            bound = threshold
            if necessary_compromised(level):
                # Missing N-edges make the upper bounds unsafe: retain
                # everything at this level rather than risk over-pruning.
                bound = 0.0
                compromised = True
            level_span.set_attribute("bound", bound)
            result = runner.run(
                level.name,
                "prune",
                lambda: prune(
                    current,
                    level.necessary,
                    bound,
                    iterations=prune_iterations,
                    compute_all_bounds=True,
                    context=context,
                ),
            )
            if runner.aborted:
                return _degraded_rank_result(current, upper, runner, context)
            current = result.retained
            upper = [result.upper_bounds[i] for i in result.kept_group_ids]
            level_span.set_attribute("n_after_prune", len(current))

    if compromised:
        kept = list(range(len(current)))
        flags = [False] * len(current)
        certain = False
        kept_upper = [upper[original] for original in kept]
    else:
        if n_workers > 1:
            runner.run(
                "rank",
                "neighbors",
                lambda: prime_neighbor_index(
                    current, executed[-1].necessary, n_workers, context
                ),
                transient=True,
            )
            if runner.aborted:
                return _degraded_rank_result(current, upper, runner, context)
        rank_pruned = runner.run(
            "rank",
            "rank_prune",
            lambda: _rank_prune(
                current, executed[-1].necessary, upper, threshold, context=context
            ),
        )
        if runner.aborted:
            return _degraded_rank_result(current, upper, runner, context)
        kept, flags = rank_pruned
        kept_upper = [upper[original] for original in kept]
        retained_for_test = current.subset(kept)
        if n_workers > 1:
            runner.run(
                "rank",
                "neighbors",
                lambda: prime_neighbor_index(
                    retained_for_test,
                    executed[-1].necessary,
                    n_workers,
                    context,
                ),
                transient=True,
            )
            if runner.aborted:
                return _degraded_rank_result(current, upper, runner, context)
        certain = runner.run(
            "rank",
            "rank_prune",
            lambda: _threshold_termination(
                retained_for_test.weights(),
                kept_upper,
                retained_for_test,
                executed[-1].necessary,
                threshold,
                context=context,
            ),
        )
        if runner.aborted:
            return _degraded_rank_result(current, upper, runner, context)
    retained = current.subset(kept)
    ranking = [
        RankedGroup(
            representative_id=retained[pos].representative_id,
            weight=retained[pos].weight,
            upper_bound=kept_upper[pos],
            resolved=flags[pos],
        )
        for pos in range(len(kept))
    ]
    if certain:
        ranking = [r for r in ranking if r.weight >= threshold]
    return RankQueryResult(
        ranking=ranking,
        groups=retained,
        n_retained=len(kept),
        n_extra_pruned=len(current) - len(kept),
        certain=certain,
        counters=context.counters,
        stage_records=runner.records,
    )


def _threshold_termination(
    weights: list[float],
    upper: list[float],
    retained: GroupSet,
    necessary,
    threshold: float,
    context: VerificationContext | None = None,
) -> bool:
    """Section 7.2's termination test for some prefix length k."""
    n = len(weights)
    if n == 0:
        return True
    representatives = retained.representatives()
    if context is not None:
        index = context.neighbor_index(necessary, retained)
    else:
        index = NeighborIndex(necessary, representatives)
    neighbor_lists = [
        set(index.neighbors(representatives[i], exclude_position=i))
        for i in range(n)
    ]
    for k in range(n + 1):
        prefix_ok = all(
            weights[i] >= threshold and weights[i] >= upper[j]
            for i in range(k)
            for j in range(i + 1, k)
        )
        if not prefix_ok:
            continue
        tail_ok = True
        for j in range(k, n):
            redundant = any(
                i in neighbor_lists[j] and upper[j] - weights[i] <= threshold
                for i in range(k)
            )
            if not redundant:
                tail_ok = False
                break
        if tail_ok:
            return True
    return False
