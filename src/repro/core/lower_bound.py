"""Lower-bound estimation (Section 4.2).

Given collapsed groups ``c1..cn`` in non-increasing weight order and a
necessary predicate N, find the smallest prefix length ``m`` such that the
first ``m`` groups are *guaranteed* to contain K distinct entities — then
``M = weight(c_m)`` lower-bounds the weight of the K-th answer group.

The guarantee comes from the N-graph: any set of groups that end up
merged in the true answer must form a clique (N is necessary), so the
clique partition number of the prefix graph lower-bounds its number of
distinct entities.  We add groups one at a time to an incremental CPN
bound (:class:`~repro.graphs.clique_partition.IncrementalCliquePartition`)
and stop as soon as the bound reaches K.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..graphs.clique_partition import IncrementalCliquePartition
from ..predicates.base import Predicate
from ..predicates.blocking import NeighborIndex
from .records import GroupSet

if TYPE_CHECKING:
    from .verification import VerificationContext


def _sparse_enough(graph, max_density: float = 0.25) -> bool:
    """Min-fill refinement only pays off on sparse prefix graphs: on a
    dense graph the clique cover is small and triangulation is cubic, so
    the cheap incremental bound should drive the loop alone."""
    n = graph.n_vertices
    if n < 3:
        return True
    return graph.n_edges <= max_density * n * (n - 1) / 2


@dataclass(frozen=True)
class LowerBoundEstimate:
    """Result of the Section 4.2 estimator.

    Attributes:
        m: 1-based rank at which K distinct groups are guaranteed;
            equals ``len(group_set)`` when the guarantee is never reached.
        bound: Weight lower bound M for the K-th answer group (0.0 when
            fewer than K distinct groups can be certified).
        certified: Whether the CPN bound actually reached K.
        cpn: The final CPN lower bound value.
    """

    m: int
    bound: float
    certified: bool
    cpn: int


def estimate_lower_bound(
    group_set: GroupSet,
    necessary: Predicate,
    k: int,
    refine: bool = True,
    refine_max_vertices: int = 400,
    context: "VerificationContext | None" = None,
) -> LowerBoundEstimate:
    """Estimate ``(m, M)`` for a Top-*k* query over *group_set*.

    Groups are consumed in the set's (non-increasing weight) order.  After
    each addition the cheap incremental bound is consulted; when *refine*
    is set, the full Min-fill bound of Algorithm 1 is re-run at geometric
    checkpoints past rank ``k`` to certify K earlier (tightening M) —
    until the prefix graph exceeds *refine_max_vertices*, past which the
    cubic Min-fill pass stops paying for itself and only the incremental
    bound drives the loop.

    With a :class:`~repro.core.verification.VerificationContext`, the
    neighbor index is obtained from (and left in) the context so the
    following prune stage reuses the build and every pair verdict.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n = len(group_set)
    if n == 0:
        return LowerBoundEstimate(m=0, bound=0.0, certified=False, cpn=0)

    representatives = group_set.representatives()
    if context is not None:
        index = context.neighbor_index(necessary, group_set)
    else:
        index = NeighborIndex(necessary, representatives)
    cpn = IncrementalCliquePartition()
    next_refine = max(k, 2)

    for position, representative in enumerate(representatives):
        earlier = [
            p
            for p in index.neighbors(representative, exclude_position=position)
            if p < position
        ]
        bound = cpn.add_vertex(earlier)
        can_refine = (
            refine
            and position + 1 <= refine_max_vertices
            and _sparse_enough(cpn.graph)
        )
        if bound < k and can_refine and position + 1 >= next_refine:
            bound = cpn.refine()
            next_refine = max(next_refine + 1, int(next_refine * 1.25))
        if bound >= k:
            return LowerBoundEstimate(
                m=position + 1,
                bound=group_set[position].weight,
                certified=True,
                cpn=bound,
            )

    if refine and n <= refine_max_vertices and _sparse_enough(cpn.graph):
        final = cpn.refine()
    else:
        final = cpn.bound()
    if final >= k:
        return LowerBoundEstimate(
            m=n, bound=group_set[n - 1].weight, certified=True, cpn=final
        )
    # Fewer than k distinct groups can be certified: no pruning is safe.
    return LowerBoundEstimate(m=n, bound=0.0, certified=False, cpn=final)


def estimate_lower_bound_naive(
    group_set: GroupSet, necessary: Predicate, k: int
) -> LowerBoundEstimate:
    """The weak Section 4.2 baseline (ablation X2).

    Counts, in weight order, groups that cannot merge with any earlier
    group; stops when *k* such groups are found.  On the paper's Figure-1
    example this needs the whole list where the CPN bound stops at rank 3.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n = len(group_set)
    if n == 0:
        return LowerBoundEstimate(m=0, bound=0.0, certified=False, cpn=0)

    representatives = group_set.representatives()
    index = NeighborIndex(necessary, representatives)
    count = 0
    for position, representative in enumerate(representatives):
        earlier = [
            p
            for p in index.neighbors(representative, exclude_position=position)
            if p < position
        ]
        if not earlier:
            count += 1
        if count >= k:
            return LowerBoundEstimate(
                m=position + 1,
                bound=group_set[position].weight,
                certified=True,
                cpn=count,
            )
    if count >= k:
        return LowerBoundEstimate(
            m=n, bound=group_set[n - 1].weight, certified=True, cpn=count
        )
    return LowerBoundEstimate(m=n, bound=0.0, certified=False, cpn=count)
