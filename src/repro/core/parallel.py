"""Sharded parallel execution for the PrunedDedup hot stages.

Figure 6's timing is dominated by S/N predicate evaluation inside two
stages of Algorithm 2 — the sufficient-closure **collapse** and the
necessary-predicate **neighbor verification** feeding the lower-bound
and prune stages.  Both decompose over the blocking structure:

* :meth:`ShardPlan.by_components` partitions group representatives by
  connected components of the predicate's key-sharing graph.  Every
  candidate pair lies inside one component, so per-shard transitive
  closures compose exactly: the collapse stage runs :func:`~repro.predicates.blocking.closure`
  per shard in worker processes and the parent folds the returned merge
  edges into one union-find **in fixed shard order**, then regroups
  exactly like the serial :func:`~repro.core.collapse.collapse` — the
  resulting :class:`~repro.core.records.GroupSet` is bit-identical.
* :meth:`ShardPlan.by_candidate_mass` balances *probes* instead:
  neighbor lists are independent per probe, so the parent builds the
  (one, shared) :class:`~repro.predicates.blocking.NeighborIndex`, the
  workers verify disjoint probe batches against it, and the parent
  primes the index's memo with the returned lists.  Downstream stages
  (lower bound, prune, rank pruning) run unchanged and hit the memo.

Both plans balance shards by estimated candidate-pair count (LPT
bin-packing, deterministic tie-breaks).

Worker processes are **forked**, not spawned: predicates routinely hold
closures (:class:`~repro.predicates.base.FunctionPredicate`, chaos and
resilience wrappers) that cannot be pickled, so the task payload is
published in a module global immediately before the pool is created and
inherited by the children.  Where ``fork`` is unavailable the layer
falls back to serial execution — never to different results.

Composition with :class:`~repro.core.resilience.ExecutionPolicy`:
guarded predicates travel into the workers with their armed state, so
deadline checks and role-safe fault containment apply inside each
worker exactly as they would serially (``time.perf_counter`` is the
system-wide CLOCK_MONOTONIC on the supported platforms, so an inherited
deadline stays valid across ``fork``).  A worker that reports policy
exhaustion degrades the whole stage — the serial semantics — while a
worker that *dies* degrades only its shard: the parent recomputes that
shard serially (counted in ``PipelineCounters.shards_degraded``) and
the query completes with identical results.  Per-worker counter deltas
(and ``GuardedPredicate.keying_failures``, which gates the pipelines'
pruning stand-down) are merged back into the parent in shard order.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import time
from collections import defaultdict
from collections.abc import Hashable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable

import numpy as np

from ..graphs.union_find import UnionFind
from ..observability import RATIO_BUCKETS
from ..predicates.base import Predicate
from ..predicates.batch import BatchNeighborEngine
from ..predicates.blocking import NeighborIndex, build_key_index, closure
from .collapse import collapse
from .records import Group, GroupSet, Record, merge_groups
from .resilience import GuardedPredicate, ResilienceExhausted
from .retry import (
    BREAKERS,
    SITE_SHM_ATTACH,
    SITE_SHM_CREATE,
    SITE_WORKER_CRASH,
    SITE_WORKER_HANG,
    RetryPolicy,
    fire_fault,
)
from .verification import PipelineCounters, VerificationContext

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Environment variable overriding the per-stage shard wall-clock budget.
SHARD_TIMEOUT_ENV_VAR = "REPRO_SHARD_TIMEOUT"

#: Default wall-clock budget for collecting one stage's shard results.
#: A worker that hangs past it is killed and its shard recomputed
#: serially — generous enough that no legitimate shard ever hits it.
DEFAULT_SHARD_TIMEOUT = 300.0

#: Below this many groups the fork + merge overhead outweighs any
#: parallel speedup; stages run serially regardless of the worker knob.
MIN_PARALLEL_GROUPS = 32

#: Name of the shard pool's circuit breaker in the global registry
#: (:data:`repro.core.retry.BREAKERS`).  After
#: :data:`SHARD_BREAKER_THRESHOLD` consecutive shard failures *that
#: survived their retry*, the breaker opens and queries run serial-only
#: for the rest of the session — bit-identical answers, no more forked
#: pools against infrastructure that keeps eating workers.
SHARD_BREAKER = "parallel.shards"
SHARD_BREAKER_THRESHOLD = 5

#: Retry schedule for attaching a worker to the shared-memory segment.
SHM_ATTACH_RETRY = RetryPolicy(
    max_attempts=3, base_delay_seconds=0.001, max_delay_seconds=0.01
)

_shard_timeout_override: float | None = None


def shard_timeout() -> float | None:
    """Effective shard-collection budget in seconds (None = unbounded).

    Resolution order: :func:`set_shard_timeout` override, then the
    ``REPRO_SHARD_TIMEOUT`` environment variable (0 or negative =
    unbounded), then :data:`DEFAULT_SHARD_TIMEOUT`.
    """
    if _shard_timeout_override is not None:
        return _shard_timeout_override if _shard_timeout_override > 0 else None
    raw = os.environ.get(SHARD_TIMEOUT_ENV_VAR, "").strip()
    if raw:
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(
                f"{SHARD_TIMEOUT_ENV_VAR} must be a number, got {raw!r}"
            ) from None
        return value if value > 0 else None
    return DEFAULT_SHARD_TIMEOUT


def set_shard_timeout(seconds: float | None) -> float | None:
    """Override the shard budget for this process (tests, embedders).

    Pass ``None`` to fall back to the environment/default chain; 0 or a
    negative value disables the budget.  Returns the previous override.
    """
    global _shard_timeout_override
    previous = _shard_timeout_override
    _shard_timeout_override = seconds
    return previous


def shard_breaker():
    """The shard pool's session circuit breaker (global registry)."""
    return BREAKERS.breaker(
        SHARD_BREAKER,
        failure_threshold=SHARD_BREAKER_THRESHOLD,
        recovery_seconds=float("inf"),
    )


def resolve_workers(workers: int | None = None) -> int:
    """Resolve the effective worker count for a query run.

    An explicit *workers* wins; ``None`` falls back to the
    ``REPRO_WORKERS`` environment variable, then to 1 (serial).
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def fork_available() -> bool:
    """True when forked worker processes are supported on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of record positions into worker shards.

    Attributes:
        shards: Per-shard record positions, ascending within each shard.
        shard_pairs: Estimated candidate-pair count per shard (the LPT
            balancing weight).
        isolated: Positions participating in no candidate pair; they
            need no predicate work at all and are handled directly by
            the parent (a collapse leaves them untouched, a neighbor
            probe returns the empty list).
    """

    shards: tuple[tuple[int, ...], ...]
    shard_pairs: tuple[int, ...]
    isolated: tuple[int, ...]

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @classmethod
    def by_components(
        cls,
        predicate: Predicate,
        records: Sequence[Record],
        max_shards: int,
    ) -> "ShardPlan":
        """Partition by connected components of *predicate*'s key graph.

        Two records land in the same shard whenever any key chain links
        them, so every candidate pair — and therefore every possible
        closure merge — is local to one shard.  Components are packed
        into at most *max_shards* shards by estimated pair count.
        """
        n = len(records)
        uf = UnionFind(n)
        index = build_key_index(predicate, records)
        for positions in index.values():
            if len(positions) < 2:
                continue
            first = positions[0]
            for other in positions[1:]:
                uf.union(first, other)
        pairs_by_root: dict[int, int] = defaultdict(int)
        for positions in index.values():
            if len(positions) < 2:
                continue
            pairs_by_root[uf.find(positions[0])] += (
                len(positions) * (len(positions) - 1) // 2
            )
        members: dict[int, list[int]] = defaultdict(list)
        for position in range(n):
            members[uf.find(position)].append(position)
        components: list[tuple[int, list[int]]] = []
        isolated: list[int] = []
        for root, positions in members.items():
            weight = pairs_by_root.get(root, 0)
            if weight == 0:
                isolated.extend(positions)
            else:
                components.append((weight, positions))
        components.sort(key=lambda c: (-c[0], c[1][0]))
        return cls._pack(components, isolated, max_shards)

    @classmethod
    def by_candidate_mass(
        cls,
        postings: dict[Hashable, list[int]],
        n_records: int,
        max_shards: int,
    ) -> "ShardPlan":
        """Balance individual probes by their candidate posting mass.

        Used for neighbor verification, where each probe's list is
        independent (the workers all read one shared index), so no
        component constraint applies and per-record LPT packing gives
        near-perfect balance even when one stop-key chains most records
        into a single connected component.
        """
        mass = [0] * n_records
        for positions in postings.values():
            if len(positions) < 2:
                continue
            bump = len(positions) - 1
            for position in positions:
                mass[position] += bump
        components = [(m, [p]) for p, m in enumerate(mass) if m > 0]
        isolated = [p for p, m in enumerate(mass) if m == 0]
        components.sort(key=lambda c: (-c[0], c[1][0]))
        return cls._pack(components, isolated, max_shards)

    @classmethod
    def _pack(
        cls,
        components: list[tuple[int, list[int]]],
        isolated: list[int],
        max_shards: int,
    ) -> "ShardPlan":
        """LPT bin-packing of (weight, positions) components, heaviest
        first, ties broken toward the lowest shard index — fully
        deterministic for a deterministic component list."""
        if not components or max_shards < 1:
            return cls(
                shards=(), shard_pairs=(), isolated=tuple(sorted(isolated))
            )
        n_shards = min(max_shards, len(components))
        heap = [(0, index) for index in range(n_shards)]
        bins: list[list[int]] = [[] for _ in range(n_shards)]
        loads = [0] * n_shards
        for weight, positions in components:
            load, index = heapq.heappop(heap)
            bins[index].extend(positions)
            loads[index] = load + weight
            heapq.heappush(heap, (load + weight, index))
        return cls(
            shards=tuple(tuple(sorted(b)) for b in bins),
            shard_pairs=tuple(loads),
            isolated=tuple(sorted(isolated)),
        )


def group_fingerprint(group_set: GroupSet) -> tuple:
    """Canonical, order-insensitive identity of a group partition.

    Two group sets with equal fingerprints have identical members,
    weights (bit-exact floats), and elected representatives — the
    equality the parallel path promises against the serial one.
    """
    return tuple(
        sorted(
            (
                group.weight,
                tuple(sorted(group.member_ids)),
                group.representative_id,
            )
            for group in group_set
        )
    )


# --------------------------------------------------------------------------
# Shared-memory transport for the batch neighbor engine.  Forked children
# share parent pages copy-on-write, but touching millions of Python
# objects (records, signatures, postings dicts) faults their refcount
# pages into every worker.  The batch engine's state is a handful of
# flat NumPy arrays, so shipping it as one ``multiprocessing.shared_memory``
# segment keeps the workers' working set to genuinely shared read-only
# pages — the payload then carries only the segment name and a manifest.


def _attach_shared_memory(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker tracking.

    Python 3.13 has ``track=False`` for exactly this; earlier versions
    unconditionally register the attachment, and each worker's tracker
    would then unlink the (parent-owned) segment at exit.  The fallback
    suppresses registration around the attach only.

    Attaches are retried under :data:`SHM_ATTACH_RETRY` (transient
    ``ENOENT``/``EACCES`` around segment publication); exhaustion
    propagates out of the worker, which degrades that shard to the
    parent's serial fallback.
    """

    def _attempt(attempt: int) -> shared_memory.SharedMemory:
        fire_fault(SITE_SHM_ATTACH, segment=name, attempt=attempt)
        try:
            return shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python <= 3.12: no track parameter
            from multiprocessing import resource_tracker

            original = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                return shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original

    return SHM_ATTACH_RETRY.call(_attempt, key=f"shm.attach:{name}")


class SharedArrayPack:
    """Named arrays packed into one shared-memory segment.

    The creating (parent) process owns the segment and must call
    :meth:`destroy` after the workers are done; workers :meth:`attach`
    by name, read zero-copy views, and :meth:`close` their mapping.
    """

    _ALIGN = 8

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        manifest: dict[str, tuple[int, str, tuple[int, ...]]],
        owner: bool,
    ) -> None:
        self.shm = shm
        self.manifest = manifest
        self._owner = owner

    @property
    def name(self) -> str:
        return self.shm.name

    @classmethod
    def create(cls, arrays: dict[str, np.ndarray]) -> "SharedArrayPack":
        fire_fault(SITE_SHM_CREATE, n_arrays=len(arrays))
        contiguous = {
            name: np.ascontiguousarray(array) for name, array in arrays.items()
        }
        align = cls._ALIGN
        total = sum(
            (array.nbytes + align - 1) // align * align
            for array in contiguous.values()
        )
        shm = shared_memory.SharedMemory(create=True, size=max(1, total))
        manifest: dict[str, tuple[int, str, tuple[int, ...]]] = {}
        offset = 0
        for name, array in contiguous.items():
            view = np.ndarray(
                array.shape, dtype=array.dtype, buffer=shm.buf, offset=offset
            )
            view[...] = array
            manifest[name] = (offset, array.dtype.str, array.shape)
            offset += (array.nbytes + align - 1) // align * align
        return cls(shm, manifest, owner=True)

    @classmethod
    def attach(
        cls, name: str, manifest: dict[str, tuple[int, str, tuple[int, ...]]]
    ) -> "SharedArrayPack":
        return cls(_attach_shared_memory(name), manifest, owner=False)

    def arrays(self) -> dict[str, np.ndarray]:
        """Zero-copy views of every packed array (valid until close)."""
        return {
            name: np.ndarray(
                shape, dtype=np.dtype(dtype_str), buffer=self.shm.buf, offset=offset
            )
            for name, (offset, dtype_str, shape) in self.manifest.items()
        }

    def close(self) -> None:
        self.shm.close()

    def destroy(self) -> None:
        """Close and (owner only) unlink the segment."""
        self.shm.close()
        if self._owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:
                pass


# --------------------------------------------------------------------------
# Worker-side machinery.  The payload is published in a module global and
# inherited by forked children: predicates (lambdas, guards, chaos
# wrappers) are not picklable, and the records/indexes are large enough
# that copy-on-write inheritance beats serialization anyway.

_PAYLOAD: dict | None = None


def _keying_failures(predicate: Predicate) -> int:
    return getattr(predicate, "keying_failures", 0)


def _collapse_positions(
    predicate: Predicate, records: Sequence[Record], positions: Sequence[int]
) -> list[tuple[int, int]]:
    """Run the S-closure over one shard; return merge edges in global
    positions.  Deterministic: the closure partition is the transitive
    closure of all true candidate pairs (order-independent), and edges
    are emitted in ascending local position."""
    local = [records[position] for position in positions]
    uf = closure(predicate, local)
    merges: list[tuple[int, int]] = []
    for local_index in range(len(local)):
        root = uf.find(local_index)
        if root != local_index:
            merges.append((positions[root], positions[local_index]))
    return merges


def _neighbor_lists(
    index: NeighborIndex, records: Sequence[Record], positions: Sequence[int]
) -> list[list[int]]:
    """Verify the neighbor list of each probe in *positions* against the
    shared index (member-probe semantics: the probe excludes itself)."""
    return [
        index.neighbors(records[position], exclude_position=position)
        for position in positions
    ]


def _neighbor_csr(
    payload: dict, positions: Sequence[int], counters: PipelineCounters
) -> tuple[np.ndarray, np.ndarray]:
    """Batch-engine worker body: attach the shared-memory pack, rebuild
    the engine over its arrays, and return this shard's verified
    neighbor lists in CSR form (int64 indptr, int32 flat) — a far
    cheaper pickle than one Python list per probe."""
    pack = SharedArrayPack.attach(payload["pack_name"], payload["pack_manifest"])
    try:
        engine = BatchNeighborEngine.from_state(
            pack.arrays(), payload["engine_params"]
        )
        counters.neighbor_queries += len(positions)
        return engine.member_neighbors_csr(positions, counters)
    finally:
        pack.close()


def _csr_to_lists(
    indptr: np.ndarray, flat: np.ndarray, n_rows: int
) -> list[list[int]]:
    """Expand a worker's CSR result back into per-probe Python lists."""
    return [
        flat[indptr[row] : indptr[row + 1]].tolist() for row in range(n_rows)
    ]


def _shard_entry(task: tuple[str, int, int]):
    """Child-process entry point: run one shard, returning its data plus
    the counter and keying-failure deltas it produced (fork gives each
    child an independent copy of the shared counters, so deltas are the
    only way work travels back to the parent) and the worker-side
    elapsed wall time (observability only — the parent folds it into a
    transient shard span, never into stage timings).

    The first two fault sites fire here, inside the child: a crash
    fault hard-exits the process (the parent sees a dead worker), a
    hang fault sleeps past the parent's shard budget (the parent times
    the result out and kills the pool).  The attempt number keys the
    draws so a one-shot fault clears on the shard's retry.
    """
    kind, shard_index, attempt = task
    payload = _PAYLOAD
    assert payload is not None, "worker forked before the payload was set"
    fire_fault(SITE_WORKER_CRASH, shard=shard_index, attempt=attempt)
    fire_fault(SITE_WORKER_HANG, shard=shard_index, attempt=attempt)
    counters: PipelineCounters = payload["counters"]
    predicate: Predicate = payload["predicate"]
    records: Sequence[Record] = payload["records"]
    positions = payload["plan"].shards[shard_index]
    before = counters.snapshot()
    keying_before = _keying_failures(predicate)
    started = time.perf_counter()
    try:
        if kind == "collapse":
            data = _collapse_positions(predicate, records, positions)
        elif kind == "neighbors_batch":
            data = _neighbor_csr(payload, positions, counters)
        else:
            data = _neighbor_lists(payload["index"], records, positions)
    except ResilienceExhausted as exc:
        # Policy exhaustion inside a worker degrades the whole stage —
        # exactly what the serial pipeline would do — so it is reported
        # as data, not as a worker failure.
        return ("exhausted", exc.reason)
    elapsed = time.perf_counter() - started
    delta = counters.delta(before)
    return (
        "ok",
        (data, delta, _keying_failures(predicate) - keying_before, elapsed),
    )


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on its (possibly hung) workers.

    ``shutdown(wait=True)`` — what a ``with`` block does — joins every
    worker, so one hung child would hang the parent forever.  Cancel
    what hasn't started, kill what has, then reap.  ``_processes`` is
    private API, so it is read defensively; on an interpreter where it
    is absent the workers leak until process exit rather than hang us.
    """
    # Grab the worker handles first: shutdown(wait=False) clears the
    # pool's _processes dict reference on some interpreter versions.
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.kill()
        except Exception:  # noqa: BLE001 — already-dead workers etc.
            pass
    for process in processes:
        try:
            process.join(timeout=5.0)
        except Exception:  # noqa: BLE001
            pass


def _run_shard_batch(
    payload: dict,
    shard_indices: Sequence[int],
    workers: int,
    attempt: int,
    budget: float | None,
) -> dict[int, object]:
    """Run *shard_indices* over one fresh fork pool; map shard → result.

    A missing/None value means that shard failed this round: its worker
    died, its result did not arrive within *budget* seconds, or the
    pool itself broke.  On a timeout the pool's workers are killed —
    a hung worker must not outlive the stage.
    """
    global _PAYLOAD
    out: dict[int, object] = {index: None for index in shard_indices}
    _PAYLOAD = payload
    pool = None
    hung = False
    try:
        context = multiprocessing.get_context("fork")
        pool = ProcessPoolExecutor(
            max_workers=min(workers, len(shard_indices)), mp_context=context
        )
        futures = {
            shard_index: pool.submit(
                _shard_entry, (payload["kind"], shard_index, attempt)
            )
            for shard_index in shard_indices
        }
        deadline = None if budget is None else time.monotonic() + budget
        for shard_index, future in futures.items():
            remaining = (
                None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            try:
                out[shard_index] = future.result(timeout=remaining)
            except _FutureTimeout:
                hung = True
                out[shard_index] = None
            except Exception:
                # Worker process died (or its result failed to travel):
                # leave None, the caller retries or recomputes it.
                out[shard_index] = None
    except Exception:
        # Pool-level failure: every unfinished shard falls back serially.
        pass
    finally:
        _PAYLOAD = None
        if pool is not None:
            if hung:
                _kill_pool(pool)
            else:
                pool.shutdown(wait=True)
    return out


def _run_shards(payload: dict, plan: ShardPlan, workers: int) -> list:
    """Fan the plan's shards out, retrying failed shards once.

    Returns one entry per shard: the worker's ``("ok", ...)`` /
    ``("exhausted", reason)`` result, or None when the worker died or
    hung twice (the caller recomputes such shards serially).  A fresh
    fork pool per batch is required for correctness: forked children
    snapshot the payload global at fork time, so a reused pool would
    serve stale payloads — and a dead worker breaks its whole pool
    anyway, so the retry round *needs* a new one.

    Every shard's final outcome feeds the session breaker
    (:func:`shard_breaker`): enough consecutive failures and the
    breaker opens, standing the parallel path down for the session
    (callers then run serial — bit-identical answers either way).
    """
    budget = shard_timeout()
    metrics = payload.get("metrics")
    results_map = _run_shard_batch(
        payload, range(plan.n_shards), workers, attempt=0, budget=budget
    )
    failed = [
        index for index in range(plan.n_shards) if results_map[index] is None
    ]
    if failed:
        if metrics is not None and metrics.enabled:
            metrics.counter("repro_shard_retries_total").inc(len(failed))
        retry_map = _run_shard_batch(
            payload, failed, workers, attempt=1, budget=budget
        )
        results_map.update(
            {i: r for i, r in retry_map.items() if r is not None}
        )
    breaker = shard_breaker()
    for index in range(plan.n_shards):
        if results_map[index] is None:
            breaker.record_failure()
        else:
            breaker.record_success()
    return [results_map[index] for index in range(plan.n_shards)]


def _fold_shard_results(
    results: list,
    predicate: Predicate,
    context: VerificationContext,
    fallback: Callable[[int], object],
    plan: ShardPlan | None = None,
) -> list:
    """Merge worker results deterministically, in fixed shard order.

    Counter and keying-failure deltas are applied for every completed
    shard first; a reported policy exhaustion then aborts the stage
    (serial semantics).  Only after that are dead-worker shards
    recomputed serially in the parent via *fallback* — each counted as
    one degraded shard.

    Observability rides the same fixed-order fold: each shard becomes a
    transient child span of the current stage span (its counter delta
    attached, the worker-side elapsed time as an attribute — never as
    span wall time, since shards overlap in real time), dead workers
    emit a ``shard_degraded`` event, and shard imbalance is observed
    into the metrics registry when *plan* is given.
    """
    folded: list = [None] * len(results)
    failed: list[int] = []
    exhausted: str | None = None
    for shard_index, result in enumerate(results):
        if result is None:
            failed.append(shard_index)
            continue
        status, value = result
        if status == "exhausted":
            exhausted = value
            continue
        data, delta, keying_delta, elapsed = value
        context.counters.merge(delta)
        if keying_delta and isinstance(predicate, GuardedPredicate):
            predicate.keying_failures += keying_delta
        context.record_span(
            "shard",
            counters_delta=delta,
            transient=True,
            shard=shard_index,
            worker_wall_seconds=elapsed,
        )
        folded[shard_index] = data
    if exhausted is not None:
        raise ResilienceExhausted(exhausted)
    metrics = context.metrics
    for shard_index in failed:
        context.counters.shards_degraded += 1
        context.event("shard_degraded", shard=shard_index)
        if metrics.enabled:
            metrics.counter("repro_shards_degraded_total").inc()
        before = context.counters.snapshot()
        folded[shard_index] = fallback(shard_index)
        context.record_span(
            "shard",
            counters_delta=context.counters.delta(before),
            transient=True,
            shard=shard_index,
            recovered_serially=True,
        )
    if metrics.enabled:
        metrics.counter("repro_shards_total").inc(len(results))
        if plan is not None and plan.shard_pairs:
            mean = sum(plan.shard_pairs) / len(plan.shard_pairs)
            if mean > 0:
                metrics.histogram(
                    "repro_shard_imbalance_ratio", buckets=RATIO_BUCKETS
                ).observe(max(plan.shard_pairs) / mean)
    return folded


# --------------------------------------------------------------------------
# The two parallel stages.


def _parallel_allowed(context: VerificationContext) -> bool:
    """Consult the session breaker before forking a pool.

    An open breaker stands the parallel path down: the stage runs
    serially (bit-identical answer), the stand-down is visible as a
    span event and the ``repro_parallel_stand_downs_total`` counter.
    """
    if shard_breaker().allow():
        return True
    context.event("parallel_stood_down", breaker=SHARD_BREAKER)
    metrics = context.metrics
    if metrics.enabled:
        metrics.counter("repro_parallel_stand_downs_total").inc()
    return False


def parallel_collapse(
    group_set: GroupSet,
    sufficient: Predicate,
    workers: int,
    context: VerificationContext,
) -> GroupSet:
    """Collapse *group_set* under *sufficient*, sharded over *workers*.

    Bit-identical to :func:`~repro.core.collapse.collapse`: the shard
    plan keeps every S-candidate pair inside one shard, per-shard
    closures therefore compose to exactly the global closure partition,
    and the parent rebuilds the merged groups with the serial stage's
    own position-ordered fold (same member order, same float summation
    order, same representative election).

    Falls back to the serial stage when parallelism cannot pay or is
    unavailable: fewer than :data:`MIN_PARALLEL_GROUPS` groups, a
    ``key_implies_match`` predicate (its closure does no predicate work
    worth distributing), fewer than two populated shards, or no ``fork``
    support.
    """
    if (
        workers < 2
        or len(group_set) < MIN_PARALLEL_GROUPS
        or sufficient.key_implies_match
        or not fork_available()
    ):
        return collapse(group_set, sufficient)
    if not _parallel_allowed(context):
        return collapse(group_set, sufficient)
    representatives = group_set.representatives()
    plan = ShardPlan.by_components(sufficient, representatives, workers)
    if plan.n_shards < 2:
        return collapse(group_set, sufficient)

    payload = {
        "kind": "collapse",
        "predicate": sufficient,
        "records": representatives,
        "plan": plan,
        "counters": context.counters,
        "metrics": context.metrics,
    }
    results = _run_shards(payload, plan, workers)
    merge_lists = _fold_shard_results(
        results,
        sufficient,
        context,
        fallback=lambda shard_index: _collapse_positions(
            sufficient, representatives, plan.shards[shard_index]
        ),
        plan=plan,
    )

    uf = UnionFind(len(representatives))
    for merges in merge_lists:
        for a, b in merges:
            uf.union(a, b)
    by_root: dict[int, list[Group]] = defaultdict(list)
    for position, group in enumerate(group_set):
        by_root[uf.find(position)].append(group)
    merged = [
        merge_groups(group_set.store, members) for members in by_root.values()
    ]
    return GroupSet(store=group_set.store, groups=merged)


def prime_neighbor_index(
    group_set: GroupSet,
    necessary: Predicate,
    workers: int,
    context: VerificationContext,
) -> NeighborIndex:
    """Build the level's shared neighbor index and pre-verify, in
    parallel, the member neighbor list of every group representative.

    The parent builds the index (one postings pass), forked workers
    verify disjoint probe batches against it, and the returned lists are
    injected into the index memo (:meth:`NeighborIndex.prime`).  The
    subsequent lower-bound / prune / rank stages then run unchanged and
    are answered from the memo — each list is the pure function of the
    shared index and an immutable probe, so results are exactly what
    the stage would have computed itself.

    With ``workers < 2`` (or no payoff / no ``fork``) this degenerates
    to plain :meth:`VerificationContext.neighbor_index`, which is also
    the thresholded query's keying sweep.
    """
    index = context.neighbor_index(necessary, group_set)
    if (
        workers < 2
        or len(group_set) < MIN_PARALLEL_GROUPS
        or necessary.key_implies_match
        or not fork_available()
        or not index.memoizing
    ):
        return index
    if not _parallel_allowed(context):
        return index
    representatives = group_set.representatives()
    plan = ShardPlan.by_candidate_mass(
        index.key_postings, len(representatives), workers
    )
    if plan.n_shards < 2:
        return index

    engine = index.batch_engine
    pack = None
    if engine is not None:
        # Batch path: workers rebuild the engine from one shared-memory
        # segment of flat arrays and never touch a Record object, so
        # their resident working set is the genuinely shared pages plus
        # the (compact, CSR) result.  A failed segment creation falls
        # back to the record-sharing payload — slower, same answers.
        arrays, engine_params = engine.export_state()
        try:
            pack = SharedArrayPack.create(arrays)
        except OSError:
            context.event("shm_create_failed")
            if context.metrics.enabled:
                context.metrics.counter("repro_shm_create_failures_total").inc()
            pack = None
    if pack is not None:
        payload = {
            "kind": "neighbors_batch",
            "predicate": necessary,
            "records": representatives,
            "plan": plan,
            "counters": context.counters,
            "metrics": context.metrics,
            "pack_name": pack.name,
            "pack_manifest": pack.manifest,
            "engine_params": engine_params,
        }
    else:
        payload = {
            "kind": "neighbors",
            "predicate": necessary,
            "records": representatives,
            "plan": plan,
            "counters": context.counters,
            "metrics": context.metrics,
            "index": index,
        }
    try:
        results = _run_shards(payload, plan, workers)
    finally:
        if pack is not None:
            pack.destroy()
    shard_lists = _fold_shard_results(
        results,
        necessary,
        context,
        fallback=lambda shard_index: _neighbor_lists(
            index, representatives, plan.shards[shard_index]
        ),
        plan=plan,
    )
    for positions, lists in zip(plan.shards, shard_lists):
        if isinstance(lists, tuple):  # CSR from a batch worker
            lists = _csr_to_lists(lists[0], lists[1], len(positions))
        for position, neighbor_list in zip(positions, lists):
            index.prime(position, neighbor_list)
    for position in plan.isolated:
        # No shared key with anyone: the verified list is empty by
        # construction, no predicate call needed.
        index.prime(position, [])
    return index
