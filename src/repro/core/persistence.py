"""Durable stream state: checkpoints + write-ahead log for IncrementalTopK.

The incremental engine exists to avoid re-tokenizing and re-unioning
history on every query — but a process death used to lose the whole
maintained sufficient-predicate closure, forcing exactly that replay.
This module makes stream state recoverable with the discipline of
log-structured stores:

* **Write-ahead log** — every ``add`` appends a length-prefixed,
  CRC32-checksummed JSON record *before* engine state mutates, into
  segment files (``wal-<first_entry>.log``) rotated at a configurable
  size.  A crash can therefore only ever lose the suffix of inserts
  whose WAL entries did not survive — never corrupt the applied prefix.
* **Checkpoints** — versioned snapshot files
  (``checkpoint-<entries>.ckpt``) of the record store, union-find
  closure, per-group weights and dead letters, written atomically
  (tmp file + fsync + rename + directory fsync) as framed sections,
  each carrying its own CRC32, behind a format-version header.
  Segments fully subsumed by a retained checkpoint are deleted.
* **Recovery** — load the newest *valid* checkpoint (corrupt ones fall
  back to older), replay the WAL tail, stop cleanly at a torn or
  corrupt **trailing** entry (the signature of a crash mid-append) and
  raise :class:`WalCorruptionError` on **mid-log** damage (an invalid
  entry with intact data after it, a missing segment, or an index gap
  — real damage, not a crash).

The index side of the state (the blocking-key inverted lists) is
deliberately *not* persisted: as in the Sarawagi–Kirpal set-join
infrastructure, indexes are cheap to rebuild from the record store,
while the closure — the expensive pairwise-verified part — is exactly
what the checkpoint preserves.

File formats are private to this module; the public surface is
:class:`DurabilityPolicy`, :class:`DurableStateStore`,
:func:`has_state` and the error types.  See ``docs/robustness.md``
("Durability") for the recovery contract and fsync caveats.
"""

from __future__ import annotations

import errno
import json
import os
import struct
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from .retry import (
    SITE_CHECKPOINT_WRITE,
    SITE_WAL_APPEND,
    SITE_WAL_FSYNC,
    CircuitBreaker,
    RetryExhausted,
    RetryPolicy,
    fire_fault,
)

FORMAT_VERSION = 2
#: Checkpoint formats this build can restore.  Format 2 (current) may
#: carry a ``columnar`` section referencing a ``columnar-<entries>.col``
#: array sidecar instead of inline JSON state; format 1 (inline JSON
#: only) stays fully readable for state directories written before the
#: columnar store existed.
SUPPORTED_FORMAT_VERSIONS = (1, 2)
CHECKPOINT_MAGIC = "repro-checkpoint"

_FRAME = struct.Struct(">II")  # payload byte length, CRC32 of the payload
_WAL_PREFIX = "wal-"
_WAL_SUFFIX = ".log"
_CKPT_PREFIX = "checkpoint-"
_CKPT_SUFFIX = ".ckpt"
#: Columnar engine-state sidecars (format-2 checkpoints reference one).
_COL_PREFIX = "columnar-"
_COL_SUFFIX = ".col"
_INDEX_DIGITS = 12
# A WAL entry is one JSON-encoded insert; anything claiming to be larger
# than this is a corrupted length field, not a real record.
MAX_ENTRY_BYTES = 32 * 1024 * 1024
# A checkpoint section frame holds the whole record store, so it is
# legitimately huge (an inline-JSON section clears 32 MiB around 400k
# records).  Reading is still bounded by the file's actual size and the
# per-frame CRC; this cap only rejects absurd decoded lengths.
MAX_CHECKPOINT_FRAME_BYTES = 4 * 1024 * 1024 * 1024


class PersistenceError(ValueError):
    """Base error for durable-state problems (a ValueError: bad data)."""


class CheckpointError(PersistenceError):
    """A checkpoint file is structurally invalid or fails its checksums."""


class CheckpointWriteError(PersistenceError):
    """Writing a new checkpoint failed.

    The prior checkpoint and every WAL segment are untouched — a failed
    snapshot narrows nothing, it only means recovery replays a longer
    tail.  ``__cause__`` carries the underlying ``OSError``."""


class WalCorruptionError(PersistenceError):
    """The WAL is damaged *mid-log*: an invalid entry with intact data
    after it, a segment gap, or an index mismatch.  Unlike a torn tail
    (which recovery absorbs silently), this indicates real damage.

    ``segment`` names the damaged file when known (the CLI uses it for
    its remediation hint)."""

    def __init__(self, message: str, segment: str | None = None):
        super().__init__(message)
        self.segment = segment


#: Default retry schedule for transient WAL/checkpoint I/O errors.
#: Deliberately short: storage faults that survive three spaced attempts
#: are treated as persistent and degrade the store instead of blocking
#: the stream.
STORAGE_RETRY = RetryPolicy(
    max_attempts=3,
    base_delay_seconds=0.002,
    max_delay_seconds=0.05,
    retryable=(OSError,),
)


def _transient_storage_error(exc: BaseException) -> bool:
    """Whether retrying *exc* could plausibly succeed.

    ``ENOSPC`` is the canonical persistent fault — retrying a full disk
    is pointless, the store degrades instead.  A torn-segment rewind
    failure is likewise final: retrying would append after a torn frame
    and corrupt the log.
    """
    if isinstance(exc, _SegmentRewindError):
        return False
    return getattr(exc, "errno", None) != errno.ENOSPC


class _SegmentRewindError(OSError):
    """Truncating a partially-written entry back off the segment failed;
    the tail can no longer be proven clean, so appends must stop."""


class StateAuditError(PersistenceError):
    """Recovered (or live) engine state violates a closure invariant."""


@dataclass(frozen=True)
class DurabilityPolicy:
    """Configuration of the durable state directory.

    Attributes:
        state_dir: Directory holding WAL segments and checkpoints
            (created on first use).
        segment_bytes: Rotate to a new WAL segment once the current one
            reaches this size.
        fsync: Fsync the WAL after every append (durable against OS
            crash, not just process crash).  With False, appends are
            flushed to the OS but an OS/power failure may lose a
            recent suffix — recovery semantics are unchanged either
            way (the surviving prefix is restored exactly).
        keep_checkpoints: Retain this many newest checkpoints; WAL
            segments are only pruned once subsumed by the *oldest*
            retained checkpoint, so every retained checkpoint stays a
            usable fallback.
    """

    state_dir: str | Path
    segment_bytes: int = 4 * 1024 * 1024
    fsync: bool = True
    keep_checkpoints: int = 2

    def __post_init__(self) -> None:
        if self.segment_bytes < 1:
            raise ValueError(
                f"segment_bytes must be positive, got {self.segment_bytes}"
            )
        if self.keep_checkpoints < 1:
            raise ValueError(
                f"keep_checkpoints must be >= 1, got {self.keep_checkpoints}"
            )

    @property
    def path(self) -> Path:
        return Path(self.state_dir)


def as_policy(
    durability: DurabilityPolicy | str | Path | None,
) -> DurabilityPolicy | None:
    """Coerce a state-dir path (or policy, or None) to a policy."""
    if durability is None or isinstance(durability, DurabilityPolicy):
        return durability
    return DurabilityPolicy(state_dir=durability)


def has_state(state_dir: str | Path) -> bool:
    """Return True when *state_dir* holds any WAL segment or checkpoint."""
    directory = Path(state_dir)
    if not directory.is_dir():
        return False
    for entry in directory.iterdir():
        name = entry.name
        if name.startswith(_WAL_PREFIX) and name.endswith(_WAL_SUFFIX):
            return True
        if name.startswith(_CKPT_PREFIX) and name.endswith(_CKPT_SUFFIX):
            return True
    return False


@dataclass(frozen=True)
class RecoveryInfo:
    """What a :meth:`IncrementalTopK.restore` actually did.

    Attributes:
        checkpoint_path: The checkpoint the state was seeded from
            (None when recovery replayed the WAL from scratch).
        checkpoint_entries: WAL entries subsumed by that checkpoint.
        entries_replayed: WAL entries applied on top of the checkpoint.
        torn_tail_bytes: Bytes dropped from the final segment because
            the last entry was torn or corrupt (0 for a clean log).
        corrupt_checkpoints_skipped: Newer checkpoint files that failed
            validation and were passed over.
    """

    checkpoint_path: Path | None
    checkpoint_entries: int
    entries_replayed: int
    torn_tail_bytes: int
    corrupt_checkpoints_skipped: int


@dataclass(frozen=True)
class _ScannedSegment:
    """One WAL segment's parse result."""

    path: Path
    first_index: int
    payloads: list[dict]
    spans: list[tuple[int, int]]  # (start, end) byte offsets per entry
    valid_end: int  # byte offset of the last intact entry's end
    torn_reason: str | None  # why scanning stopped early (final segment)
    file_size: int = 0  # segment size at scan time


@dataclass(frozen=True)
class _RecoveredLog:
    """The surviving WAL contents, in global entry order."""

    segments: list[_ScannedSegment] = field(default_factory=list)

    @property
    def first_index(self) -> int:
        return self.segments[0].first_index if self.segments else 0

    @property
    def end_index(self) -> int:
        if not self.segments:
            return 0
        last = self.segments[-1]
        return last.first_index + len(last.payloads)

    def entries(self) -> list[tuple[int, dict]]:
        out: list[tuple[int, dict]] = []
        for segment in self.segments:
            for offset, payload in enumerate(segment.payloads):
                out.append((segment.first_index + offset, payload))
        return out

    @property
    def torn_tail_bytes(self) -> int:
        if not self.segments:
            return 0
        last = self.segments[-1]
        return last.file_size - last.valid_end


def _frame(payload: dict) -> bytes:
    blob = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return _FRAME.pack(len(blob), zlib.crc32(blob) & 0xFFFFFFFF) + blob


def _fsync_dir(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _scan_segment(
    path: Path,
    first_index: int,
    *,
    final: bool,
    max_entry_bytes: int = MAX_ENTRY_BYTES,
) -> _ScannedSegment:
    """Parse one segment; absorb a torn/corrupt tail only when *final*.

    Raises :class:`WalCorruptionError` for any invalid entry that is
    not the trailing entry of the final segment — data after the damage
    proves the log was written past this point, so the damage is real.
    """
    data = path.read_bytes()
    payloads: list[dict] = []
    spans: list[tuple[int, int]] = []
    pos = 0

    def _fail(reason: str, *, trailing: bool) -> _ScannedSegment:
        if final and trailing:
            return _ScannedSegment(
                path, first_index, payloads, spans, pos, reason, len(data)
            )
        raise WalCorruptionError(
            f"{path.name}: {reason} at byte {pos} with "
            f"{'data following' if final else 'later segments present'} — "
            f"mid-log corruption, not a torn tail",
            segment=path.name,
        )

    while pos < len(data):
        if len(data) - pos < _FRAME.size:
            return _fail("truncated entry header", trailing=True)
        length, crc = _FRAME.unpack_from(data, pos)
        end = pos + _FRAME.size + length
        if length > max_entry_bytes or end > len(data):
            # An absurd length and an overrunning length are both
            # indistinguishable from a torn final append.
            return _fail("truncated or length-corrupt entry", trailing=True)
        blob = data[pos + _FRAME.size : end]
        if zlib.crc32(blob) & 0xFFFFFFFF != crc:
            return _fail("entry checksum mismatch", trailing=end >= len(data))
        try:
            payload = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return _fail("entry is not valid JSON", trailing=end >= len(data))
        if not isinstance(payload, dict):
            return _fail("entry is not a JSON object", trailing=end >= len(data))
        payloads.append(payload)
        spans.append((pos, end))
        pos = end
    return _ScannedSegment(path, first_index, payloads, spans, pos, None, len(data))


def wal_entry_spans(
    state_dir: str | Path,
) -> list[tuple[Path, int, list[tuple[int, int]]]]:
    """Return ``(segment_path, first_entry_index, [(start, end), ...])``
    for every WAL segment of *state_dir*, in log order.

    Strict: any framing damage raises.  Used by the crash-point test
    harness to enumerate truncation offsets on a pristine log.
    """
    directory = Path(state_dir)
    out: list[tuple[Path, int, list[tuple[int, int]]]] = []
    for first_index, path in _list_indexed(directory, _WAL_PREFIX, _WAL_SUFFIX):
        scanned = _scan_segment(path, first_index, final=False)
        out.append((path, first_index, scanned.spans))
    return out


def columnar_sidecar_path(directory: str | Path, entries: int) -> Path:
    """Path of the columnar sidecar paired with ``checkpoint-<entries>``."""
    return Path(directory) / (
        f"{_COL_PREFIX}{entries:0{_INDEX_DIGITS}d}{_COL_SUFFIX}"
    )


def _list_indexed(
    directory: Path, prefix: str, suffix: str
) -> list[tuple[int, Path]]:
    """List ``<prefix><index><suffix>`` files sorted by index."""
    found: list[tuple[int, Path]] = []
    if not directory.is_dir():
        return found
    for entry in directory.iterdir():
        name = entry.name
        if not (name.startswith(prefix) and name.endswith(suffix)):
            continue
        digits = name[len(prefix) : -len(suffix)]
        if not digits.isdigit():
            raise PersistenceError(f"unparseable state file name: {name}")
        found.append((int(digits), entry))
    found.sort()
    return found


class DurableStateStore:
    """Manages one state directory: WAL segments plus checkpoints.

    The store is a mechanism, not a policy: :class:`IncrementalTopK`
    decides *what* to journal and snapshot; this class owns framing,
    atomicity, rotation, pruning and recovery scanning.
    """

    def __init__(
        self, policy: DurabilityPolicy, retry: RetryPolicy = STORAGE_RETRY
    ):
        self.policy = policy
        self.retry = retry
        self.directory = policy.path
        self.directory.mkdir(parents=True, exist_ok=True)
        self._segment_handle = None
        self._segment_path: Path | None = None
        self._segment_size = 0
        self._next_index = 0
        self._metrics = None
        # Per-store breaker (not the global registry): storage health is
        # a property of this directory/device, and sharing it across
        # stores would leak one stream's tripped state into another.
        self.breaker = CircuitBreaker(
            name="storage.wal", failure_threshold=3, recovery_seconds=30.0
        )
        self.durability_degraded = False
        self.degraded_reason: str | None = None
        self.appends_suspended = 0
        self.checkpoints_failed = 0

    def set_metrics(self, metrics) -> None:
        """Feed WAL instrumentation (append counts/bytes, fsync latency)
        into a :class:`repro.observability.MetricsRegistry`.

        Duck-typed and optional so the persistence layer works without
        observability; pass None to detach.
        """
        if metrics is not None and not getattr(metrics, "enabled", False):
            metrics = None
        self._metrics = metrics
        if metrics is not None:
            metrics.describe(
                "repro_wal_fsync_seconds", "WAL per-append fsync latency"
            )
            metrics.describe(
                "repro_wal_appends_total", "WAL entries appended"
            )
            metrics.describe(
                "repro_wal_bytes_total", "WAL bytes written (framed)"
            )
            metrics.describe(
                "repro_retries_total", "Retried storage/parallel operations"
            )
            metrics.describe(
                "repro_wal_appends_suspended_total",
                "WAL entries skipped while journaling was suspended",
            )
            metrics.describe(
                "repro_checkpoint_failures_total",
                "Checkpoint writes that failed (prior checkpoint retained)",
            )
            metrics.describe(
                "repro_durability_degraded",
                "1 when journaling is suspended (degraded durability)",
            )

    # -- lifecycle ----------------------------------------------------

    def has_state(self) -> bool:
        return has_state(self.directory)

    def open_fresh(self) -> None:
        """Arm the store for a brand-new stream; refuse to overwrite."""
        if self.has_state():
            raise PersistenceError(
                f"{self.directory} already holds stream state; use "
                f"IncrementalTopK.restore() to resume it"
            )
        self._next_index = 0

    def close(self) -> None:
        """Release the open WAL segment handle.

        Idempotent and exception-safe: a second close is a no-op, and a
        handle whose final flush fails (the device died under us, or a
        fault-injection run left the descriptor wedged) is dropped
        instead of raising — the on-disk tail is recovered like any
        torn tail, and close() is routinely called from ``finally``
        blocks that must not mask the original error.
        """
        handle = self._segment_handle
        self._segment_handle = None
        self._segment_path = None
        if handle is not None:
            try:
                handle.close()
            except OSError:
                pass

    @property
    def next_index(self) -> int:
        """Global index the next appended entry will receive."""
        return self._next_index

    # -- write-ahead log ----------------------------------------------

    def append(self, payload: dict) -> None:
        """Append one framed entry, rotating segments as configured.

        Transient I/O errors (``EIO`` and friends) are retried under
        :attr:`retry` with deterministic backoff; a partially-written
        entry is truncated back off the segment before any retry, so a
        retry can never land after a torn frame.  Persistent failures —
        ``ENOSPC``, an unrewindable tail, or retry exhaustion — switch
        the store into **journaling-suspended** mode
        (:attr:`durability_degraded`): the entry (and all later ones)
        is not journaled, live answers stay correct, and recovery
        replays only the journaled prefix.  Suspension never raises —
        a full disk must degrade durability, not crash the stream.
        """
        if self.durability_degraded:
            self.appends_suspended += 1
            if self._metrics is not None:
                self._metrics.counter("repro_wal_appends_suspended_total").inc()
            return
        blob = _frame(payload)
        try:
            self.retry.call(
                lambda attempt: self._append_once(blob, attempt),
                key="wal.append",
                retry_on=_transient_storage_error,
                breaker=self.breaker,
                metrics=self._metrics,
                subsystem="wal",
            )
        except (RetryExhausted, OSError) as exc:
            self._suspend(f"WAL append of entry {self._next_index}: {exc}")
            return
        metrics = self._metrics
        if metrics is not None:
            metrics.counter("repro_wal_appends_total").inc()
            metrics.counter("repro_wal_bytes_total").inc(len(blob))
        self._segment_size += len(blob)
        self._next_index += 1

    def _append_once(self, blob: bytes, attempt: int) -> None:
        """One append attempt: rotate/open, write, flush, fsync."""
        if (
            self._segment_handle is not None
            and self._segment_size >= self.policy.segment_bytes
        ):
            self.close()
        if self._segment_handle is None:
            self._start_segment(self._next_index)
        handle = self._segment_handle
        start = self._segment_size
        fire_fault(SITE_WAL_APPEND, index=self._next_index, attempt=attempt)
        try:
            handle.write(blob)
            handle.flush()
        except OSError:
            self._rewind_segment(start)
            raise
        if self.policy.fsync:
            metrics = self._metrics
            started = time.perf_counter() if metrics is not None else 0.0
            try:
                fire_fault(
                    SITE_WAL_FSYNC, index=self._next_index, attempt=attempt
                )
                os.fsync(handle.fileno())
            except OSError:
                self._rewind_segment(start)
                raise
            if metrics is not None:
                metrics.histogram("repro_wal_fsync_seconds").observe(
                    time.perf_counter() - started
                )

    def _rewind_segment(self, size: int) -> None:
        """Truncate a failed attempt's partial bytes back off the
        segment, so the next attempt (or recovery) sees a clean tail."""
        try:
            handle = self._segment_handle
            handle.truncate(size)
            handle.flush()
        except OSError as exc:
            raise _SegmentRewindError(
                f"could not rewind segment to byte {size}: {exc}"
            ) from exc

    def _suspend(self, reason: str) -> None:
        """Enter journaling-suspended (degraded-durability) mode."""
        self.durability_degraded = True
        self.degraded_reason = reason
        self.appends_suspended += 1
        metrics = self._metrics
        if metrics is not None:
            metrics.counter("repro_wal_appends_suspended_total").inc()
            metrics.gauge("repro_durability_degraded").set(1.0)
        try:
            self.close()
        except OSError:
            self._segment_handle = None
            self._segment_path = None

    def _start_segment(self, first_index: int) -> None:
        path = self.directory / (
            f"{_WAL_PREFIX}{first_index:0{_INDEX_DIGITS}d}{_WAL_SUFFIX}"
        )
        self._segment_handle = open(path, "ab")
        self._segment_path = path
        self._segment_size = path.stat().st_size
        _fsync_dir(self.directory)

    def recover_log(self) -> _RecoveredLog:
        """Scan every surviving segment, validating contiguity.

        Only the final segment may end in a torn/corrupt entry; damage
        anywhere else raises :class:`WalCorruptionError`.
        """
        listed = _list_indexed(self.directory, _WAL_PREFIX, _WAL_SUFFIX)
        segments: list[_ScannedSegment] = []
        expected: int | None = None
        for position, (first_index, path) in enumerate(listed):
            if expected is not None and first_index != expected:
                raise WalCorruptionError(
                    f"WAL segment gap: expected entry {expected} next but "
                    f"{path.name} starts at {first_index}",
                    segment=path.name,
                )
            scanned = _scan_segment(
                path, first_index, final=position == len(listed) - 1
            )
            segments.append(scanned)
            expected = first_index + len(scanned.payloads)
        return _RecoveredLog(segments)

    def resume_appends(self, log: _RecoveredLog, entries_applied: int) -> None:
        """Position the store to append entry *entries_applied* next.

        Truncates a torn tail off the final segment and deletes stale
        segments wholly behind the restored state (possible when a
        checkpoint outlived the log's tail), so the on-disk entry
        numbering stays contiguous with what recovery restored.
        """
        self.close()
        # A crash mid-checkpoint can leave a ``.tmp`` behind; recovery
        # never reads them, but clear them so the directory only holds
        # live state.
        for stale in self.directory.glob(f"{_CKPT_PREFIX}*{_CKPT_SUFFIX}.tmp"):
            stale.unlink()
        if log.segments:
            last = log.segments[-1]
            if last.torn_reason is not None:
                with open(last.path, "r+b") as handle:
                    handle.truncate(last.valid_end)
                    handle.flush()
                    os.fsync(handle.fileno())
        if log.end_index < entries_applied:
            # The newest checkpoint is ahead of the surviving log:
            # every segment is subsumed; clear them so the next append
            # starts a fresh, correctly-numbered segment.
            for segment in log.segments:
                segment.path.unlink()
            _fsync_dir(self.directory)
        self._next_index = max(log.end_index, entries_applied)

    # -- checkpoints --------------------------------------------------

    def write_checkpoint(self, header: dict, sections: dict[str, object]) -> Path:
        """Atomically write a sectioned, per-section-checksummed snapshot.

        Transient I/O errors are retried under :attr:`retry`; a failed
        write raises :class:`CheckpointWriteError` after removing the
        tmp file (best-effort — a tmp left by a crash is equally
        harmless, recovery never reads ``.tmp`` files).  The prior
        checkpoint and all WAL segments are untouched either way.
        """
        header = dict(header)
        header["magic"] = CHECKPOINT_MAGIC
        header["format_version"] = FORMAT_VERSION
        header["sections"] = list(sections)
        blob = bytearray(_frame(header))
        for name, data in sections.items():
            blob += _frame({"section": name, "data": data})
        entries = int(header["entries_applied"])
        path = self.directory / (
            f"{_CKPT_PREFIX}{entries:0{_INDEX_DIGITS}d}{_CKPT_SUFFIX}"
        )
        tmp = path.with_suffix(path.suffix + ".tmp")

        def _attempt(attempt: int) -> None:
            with open(tmp, "wb") as handle:
                fire_fault(
                    SITE_CHECKPOINT_WRITE, entries=entries, attempt=attempt
                )
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            _fsync_dir(self.directory)

        try:
            self.retry.call(
                _attempt,
                key="checkpoint.write",
                retry_on=_transient_storage_error,
                breaker=self.breaker,
                metrics=self._metrics,
                subsystem="checkpoint",
            )
        except (RetryExhausted, OSError) as exc:
            self.checkpoints_failed += 1
            if self._metrics is not None:
                self._metrics.counter("repro_checkpoint_failures_total").inc()
            try:
                tmp.unlink()
            except OSError:
                pass
            raise CheckpointWriteError(
                f"checkpoint at entry {entries} failed ({exc}); the prior "
                f"checkpoint and all WAL segments are retained"
            ) from exc
        return path

    @staticmethod
    def read_checkpoint(path: Path) -> tuple[dict, dict[str, object]]:
        """Parse and fully validate one checkpoint file.

        Checkpoint frames use the relaxed
        :data:`MAX_CHECKPOINT_FRAME_BYTES` cap, not the WAL's per-insert
        bound: an inline-JSON record section grows with the corpus, and
        rejecting a frame the writer just produced would make every
        checkpoint beyond ~400k records silently unreadable (restores
        would fall back to full WAL replay — or to nothing once the WAL
        was pruned against that very checkpoint).
        """
        try:
            scanned = _scan_segment(
                path,
                0,
                final=False,
                max_entry_bytes=MAX_CHECKPOINT_FRAME_BYTES,
            )
        except WalCorruptionError as exc:
            raise CheckpointError(f"{path.name}: {exc}") from None
        frames = scanned.payloads
        if not frames:
            raise CheckpointError(f"{path.name}: empty checkpoint")
        header = frames[0]
        if header.get("magic") != CHECKPOINT_MAGIC:
            raise CheckpointError(f"{path.name}: bad magic in header")
        if header.get("format_version") not in SUPPORTED_FORMAT_VERSIONS:
            raise CheckpointError(
                f"{path.name}: unsupported format version "
                f"{header.get('format_version')!r} (expected one of "
                f"{SUPPORTED_FORMAT_VERSIONS})"
            )
        sections: dict[str, object] = {}
        for frame_payload in frames[1:]:
            name = frame_payload.get("section")
            if not isinstance(name, str) or "data" not in frame_payload:
                raise CheckpointError(f"{path.name}: malformed section frame")
            sections[name] = frame_payload["data"]
        declared = header.get("sections")
        if declared != list(sections):
            raise CheckpointError(
                f"{path.name}: header declares sections {declared!r} but "
                f"file holds {list(sections)!r}"
            )
        return header, sections

    def load_latest_checkpoint(
        self,
    ) -> tuple[dict, dict[str, object], Path, int] | None:
        """Return the newest checkpoint that validates, or None.

        Corrupt newer checkpoints are skipped (their count is returned
        as the 4th element) — a torn checkpoint write must never make
        older durable state unreachable.
        """
        skipped = 0
        for _entries, path in reversed(
            _list_indexed(self.directory, _CKPT_PREFIX, _CKPT_SUFFIX)
        ):
            try:
                header, sections = self.read_checkpoint(path)
            except CheckpointError:
                skipped += 1
                continue
            if not self._sidecar_valid(sections):
                # A format-2 checkpoint whose columnar sidecar is gone
                # or damaged is as unusable as a corrupt checkpoint:
                # fall back to the next older one.
                skipped += 1
                continue
            return header, sections, path, skipped
        return None

    def _sidecar_valid(self, sections: dict[str, object]) -> bool:
        """Whether the columnar sidecar *sections* references (if any)
        exists with an intact header.  Cheap: the sidecar's array
        bodies are checksum-verified lazily, never at validation."""
        ref = sections.get("columnar")
        if ref is None:
            return True
        if not isinstance(ref, dict):
            return False
        name = ref.get("file")
        if not isinstance(name, str) or "/" in name or name in (".", ".."):
            return False
        from ..storage.layout import read_header_meta

        try:
            read_header_meta(self.directory / name)
        except (ValueError, OSError):
            return False
        return True

    def checkpoint_usable(self, path: Path) -> bool:
        """Whether a restore could actually seed from this checkpoint:
        it parses, its checksums hold, and (format 2) its columnar
        sidecar's header validates."""
        try:
            _header, sections = self.read_checkpoint(path)
        except CheckpointError:
            return False
        return self._sidecar_valid(sections)

    def prune(self) -> None:
        """Drop checkpoints beyond the retention count, then WAL
        segments wholly subsumed by the oldest *retained* checkpoint.

        Only checkpoints that **validate** (sidecar included) count
        toward retention or set the WAL floor.  A corrupt checkpoint —
        e.g. one renamed into place but never durably written before an
        OS crash under ``fsync=False`` — must not occupy a retention
        slot: counting it would delete the older *valid* checkpoint a
        restore would really seed from, plus the WAL segments needed to
        replay forward from it, turning a recoverable directory into an
        unrecoverable one.  With no valid checkpoint at all, nothing is
        pruned: recovery would have to replay the WAL from entry 0, so
        every segment (and every checkpoint file, for forensics) is
        still load-bearing.
        """
        checkpoints = _list_indexed(self.directory, _CKPT_PREFIX, _CKPT_SUFFIX)
        valid: list[tuple[int, Path]] = []
        corrupt: list[Path] = []
        for entries, path in checkpoints:
            if self.checkpoint_usable(path):
                valid.append((entries, path))
            else:
                corrupt.append(path)
        retained = valid[-self.policy.keep_checkpoints :]
        if not retained:
            return
        for _entries, path in valid[: -self.policy.keep_checkpoints]:
            path.unlink()
        for path in corrupt:
            # Restores skip these anyway; with a valid fallback retained
            # they carry no recovery value, only confusion.
            path.unlink()
        floor = retained[0][0]
        segments = _list_indexed(self.directory, _WAL_PREFIX, _WAL_SUFFIX)
        for position, (first_index, path) in enumerate(segments):
            if position + 1 < len(segments):
                end = segments[position + 1][0]
            else:
                end = self._next_index
            if end <= floor:
                if path == self._segment_path:
                    self.close()
                path.unlink()
        # Columnar sidecars follow their checkpoints: drop any not
        # referenced by a retained one (orphans from a crash between
        # sidecar and checkpoint write included).
        keep_entries = {entries for entries, _path in retained}
        for entries, path in _list_indexed(
            self.directory, _COL_PREFIX, _COL_SUFFIX
        ):
            if entries not in keep_entries:
                path.unlink()
        _fsync_dir(self.directory)
