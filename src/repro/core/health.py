"""Health signals: one readiness/liveness view over the fault machinery.

The retry layer (:mod:`repro.core.retry`), the hardened storage layer
(:mod:`repro.core.persistence`) and the shard pool
(:mod:`repro.core.parallel`) each keep their own degradation state —
breaker automata, the journaling-suspended latch, dead-letter pressure,
degraded-shard counters.  :class:`HealthMonitor` folds them into a
single :class:`HealthSnapshot` an operator (or the ROADMAP's planned
query service) can poll:

* **live** — the process can still compute answers at all.  Nothing in
  the degradation machinery makes the engine un-live: that is the point
  of it.
* **ready** — the engine may serve queries and trust its own state.  A
  failed state audit is the one condition that clears it: serving from
  a closure that violates its invariants is exactly the "silently
  wrong" answer the fault plane exists to rule out.
* **degraded** — answers are still correct but some capability is stood
  down: journaling suspended (``ENOSPC``), the shard pool's breaker
  open (serial-only), shards recomputed serially, dead letters piling
  up.  Every degradation is itemized in :attr:`HealthSnapshot.checks`.

:meth:`HealthMonitor.publish` exports the same view through a
:class:`~repro.observability.MetricsRegistry` (``repro_breaker_state``,
``repro_health_ready`` and friends) so the existing Prometheus path
carries it; the CLI ``health`` verb prints it and exits non-zero when
not ready.
"""

from __future__ import annotations

from dataclasses import dataclass

from .retry import BREAKERS, BREAKER_STATE_CODES, STATE_CLOSED, BreakerRegistry


@dataclass(frozen=True)
class HealthCheck:
    """One named health signal.

    Attributes:
        name: Stable dotted identifier (``durability.journaling``,
            ``breaker.parallel.shards``...).
        ok: False when this signal is degrading the engine.
        detail: One human-readable line of state.
    """

    name: str
    ok: bool
    detail: str


@dataclass(frozen=True)
class HealthSnapshot:
    """Point-in-time readiness/liveness aggregate (see module docs)."""

    live: bool
    ready: bool
    degraded: bool
    checks: tuple[HealthCheck, ...]

    def problems(self) -> list[HealthCheck]:
        return [check for check in self.checks if not check.ok]

    def as_dict(self) -> dict:
        return {
            "live": self.live,
            "ready": self.ready,
            "degraded": self.degraded,
            "checks": [
                {"name": c.name, "ok": c.ok, "detail": c.detail}
                for c in self.checks
            ],
        }


#: Dead-letter fill fraction above which the quarantine is flagged.
DEAD_LETTER_PRESSURE_THRESHOLD = 0.5


class HealthMonitor:
    """Aggregate breaker, durability, and quarantine state.

    Args:
        engine: Optional :class:`~repro.core.incremental.IncrementalTopK`
            whose durability/quarantine state should be included (duck-
            typed: anything with ``durability_status()``,
            ``dead_letters``, and ``verification`` works).
        breakers: Breaker registry to report; defaults to the global
            :data:`~repro.core.retry.BREAKERS`.
        audit: Run the engine's (O(n)) :meth:`audit` on every snapshot
            and clear readiness on problems.  Off by default — restores
            already audit, and a polled health endpoint should be cheap.
        extra_checks: Callables contributing further
            :class:`HealthCheck` lists to every snapshot — the query
            service registers its writer/admission/lifecycle signals
            here.  A check named with a ``critical.`` prefix clears
            readiness when not ok (everything else only marks the
            snapshot degraded).
    """

    def __init__(
        self,
        engine=None,
        breakers: BreakerRegistry | None = None,
        audit: bool = False,
        extra_checks=None,
    ):
        self.engine = engine
        self.breakers = breakers if breakers is not None else BREAKERS
        self.audit = audit
        self.extra_checks = list(extra_checks) if extra_checks else []

    def snapshot(self) -> HealthSnapshot:
        checks: list[HealthCheck] = []
        ready = True

        for name, state in self.breakers.states().items():
            checks.append(
                HealthCheck(
                    name=f"breaker.{name}",
                    ok=state == STATE_CLOSED,
                    detail=f"state={state}",
                )
            )

        engine = self.engine
        if engine is not None:
            status = engine.durability_status()
            if status.get("durable"):
                degraded = bool(status.get("degraded"))
                checks.append(
                    HealthCheck(
                        name="durability.journaling",
                        ok=not degraded,
                        detail=(
                            f"suspended ({status.get('degraded_reason')}); "
                            f"{status.get('appends_suspended')} entries "
                            f"not journaled"
                            if degraded
                            else f"journaling at entry "
                            f"{status.get('entries_journaled')}"
                        ),
                    )
                )
                failed = int(status.get("checkpoints_failed") or 0)
                checks.append(
                    HealthCheck(
                        name="durability.checkpoints",
                        ok=failed == 0,
                        detail=(
                            f"{failed} failed write(s), prior checkpoint "
                            f"retained"
                            if failed
                            else "ok"
                        ),
                    )
                )
                wal_state = status.get("breaker_state", STATE_CLOSED)
                checks.append(
                    HealthCheck(
                        name="breaker.storage.wal",
                        ok=wal_state == STATE_CLOSED,
                        detail=f"state={wal_state}",
                    )
                )

            letters = len(engine.dead_letters)
            limit = getattr(engine, "_dead_letter_limit", 0) or 1
            dropped = engine.dead_letters_dropped
            pressure = letters / limit
            checks.append(
                HealthCheck(
                    name="stream.dead_letters",
                    ok=(
                        pressure < DEAD_LETTER_PRESSURE_THRESHOLD
                        and dropped == 0
                    ),
                    detail=(
                        f"{letters}/{limit} quarantined, {dropped} dropped"
                    ),
                )
            )

            degraded_shards = engine.verification.counters.shards_degraded
            checks.append(
                HealthCheck(
                    name="parallel.shards_degraded",
                    ok=degraded_shards == 0,
                    detail=f"{degraded_shards} shard(s) recomputed serially",
                )
            )

            if self.audit:
                problems = engine.audit(strict=False)
                checks.append(
                    HealthCheck(
                        name="state.audit",
                        ok=not problems,
                        detail="; ".join(problems) if problems else "passed",
                    )
                )
                if problems:
                    ready = False

        for contribute in self.extra_checks:
            for check in contribute():
                checks.append(check)
                if not check.ok and check.name.startswith("critical."):
                    ready = False

        degraded = any(not check.ok for check in checks)
        return HealthSnapshot(
            live=True, ready=ready, degraded=degraded, checks=tuple(checks)
        )

    def publish(self, metrics) -> HealthSnapshot:
        """Take a snapshot and export it through *metrics* as gauges."""
        snapshot = self.snapshot()
        if metrics is None or not getattr(metrics, "enabled", False):
            return snapshot
        metrics.describe(
            "repro_breaker_state",
            "Circuit breaker state (0=closed, 1=half-open, 2=open)",
        )
        metrics.describe("repro_health_ready", "1 when the engine is ready")
        metrics.describe(
            "repro_health_degraded", "1 when any capability is stood down"
        )
        for name, state in self.breakers.states().items():
            metrics.gauge("repro_breaker_state", subsystem=name).set(
                BREAKER_STATE_CODES[state]
            )
        engine = self.engine
        if engine is not None:
            status = engine.durability_status()
            if status.get("durable"):
                metrics.gauge("repro_durability_degraded").set(
                    1.0 if status.get("degraded") else 0.0
                )
                metrics.gauge("repro_breaker_state", subsystem="storage.wal").set(
                    BREAKER_STATE_CODES[
                        status.get("breaker_state", STATE_CLOSED)
                    ]
                )
            limit = getattr(engine, "_dead_letter_limit", 0) or 1
            metrics.gauge("repro_dead_letter_pressure").set(
                len(engine.dead_letters) / limit
            )
        metrics.gauge("repro_health_ready").set(1.0 if snapshot.ready else 0.0)
        metrics.gauge("repro_health_degraded").set(
            1.0 if snapshot.degraded else 0.0
        )
        return snapshot
